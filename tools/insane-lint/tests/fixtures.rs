//! End-to-end runs over the seeded fixture trees: the linter must find
//! every planted violation in `fixtures/bad` and nothing in
//! `fixtures/good` — and, as the acceptance gate, nothing in the real
//! workspace either.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn bad_fixture_trips_every_rule() {
    let violations = insane_lint::lint_root(&fixture("bad")).expect("scan fixture");
    let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    for expected in [
        "raw-socket",
        "raw-slot-arithmetic",
        "no-panic-paths",
        "unsafe-whitelist",
        "safety-comment",
        "bad-waiver",
    ] {
        assert!(
            rules.contains(&expected),
            "rule {expected} did not fire; got: {rules:?}"
        );
    }
    // The reason-less waiver must NOT suppress its target.
    assert!(
        violations
            .iter()
            .any(|v| v.rule == "no-panic-paths" && v.line == 23),
        "reason-less waiver suppressed the violation it covered: {violations:#?}"
    );
}

#[test]
fn bad_v2_fixture_trips_every_new_rule() {
    let violations = insane_lint::lint_root(&fixture("bad_v2")).expect("scan fixture");
    let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    for expected in [
        "hot-path-alloc",
        "hot-path-block",
        "hot-path-rwlock",
        "hot-path-panic",
        "lock-order-cycle",
        "lock-across-wait",
        "slot-token-drop",
    ] {
        assert!(
            rules.contains(&expected),
            "rule {expected} did not fire; got: {rules:?}"
        );
    }
    // The alloc finding sits in an unannotated callee of the root: the
    // call graph, not a textual scan, established hot-path membership.
    assert!(
        violations.iter().any(|v| v.rule == "hot-path-alloc"
            && v.message.contains("drain_step")
            && v.message.contains("poll_hot")),
        "call-graph provenance missing from hot-path-alloc: {violations:#?}"
    );
}

#[test]
fn good_v2_fixture_is_clean() {
    let violations = insane_lint::lint_root(&fixture("good_v2")).expect("scan fixture");
    assert!(violations.is_empty(), "false positives: {violations:#?}");
}

#[test]
fn good_fixture_is_clean() {
    let violations = insane_lint::lint_root(&fixture("good")).expect("scan fixture");
    assert!(violations.is_empty(), "false positives: {violations:#?}");
}

#[test]
fn shipped_workspace_is_clean() {
    // CARGO_MANIFEST_DIR = <repo>/tools/insane-lint.
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
        .to_path_buf();
    assert!(repo.join("Cargo.toml").exists(), "repo root not found");
    let violations = insane_lint::lint_root(&repo).expect("scan workspace");
    assert!(
        violations.is_empty(),
        "workspace has invariant violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
