//! Planted violations for the v2 (AST + call-graph) rule tier.  Each
//! construct below must produce exactly the finding named in its
//! comment; `fixtures.rs` asserts every new rule fires at least once.

use std::sync::{Condvar, Mutex, RwLock};

pub struct Pools {
    a: Mutex<u32>,
    b: Mutex<u32>,
    cv: Condvar,
    table: RwLock<u32>,
}

// insane-lint: hot-path-root
pub fn poll_hot(p: &Pools, xs: &[u32]) -> u32 {
    let first = xs[0]; // hot-path-panic: unguarded indexing in the root
    drain_step(p);
    route_step(p);
    first
}

/// Not annotated: hot only because the call graph reaches it from
/// `poll_hot` — the findings below prove graph propagation works.
fn drain_step(p: &Pools) {
    let mut grown = Vec::new(); // hot-path-alloc in a callee
    grown.push(1u32);
    let g = p.a.lock().unwrap(); // hot-path-block (+ unwrap panic)
    drop(g);
}

/// Also unannotated: reached from `poll_hot` through the call graph.
fn route_step(p: &Pools) -> u32 {
    let g = p.table.read(); // hot-path-rwlock: reader-writer lock on the hot path
    g.map(|v| *v).unwrap_or(0)
}

// Lock-order cycle: `a` is held while `b` is acquired here ...
pub fn order_ab(p: &Pools) {
    let ga = p.a.lock().unwrap();
    let gb = p.b.lock().unwrap();
    drop(gb);
    drop(ga);
}

// ... and `b` is held while `a` is acquired here: lock-order-cycle.
pub fn order_ba(p: &Pools) {
    let gb = p.b.lock().unwrap();
    let ga = p.a.lock().unwrap();
    drop(ga);
    drop(gb);
}

// lock-across-wait: the channel recv blocks while `g` is held.
pub fn wait_holding(p: &Pools, rx: &std::sync::mpsc::Receiver<u32>) -> u32 {
    let g = p.a.lock().unwrap();
    let v = rx.recv().unwrap_or(0);
    drop(g);
    v
}

pub struct Guard;

impl Guard {
    pub fn into_token(self) -> u64 {
        0
    }
}

// slot-token-drop: the minted token is never consumed — the slot leaks.
pub fn leak_token(g: Guard) -> u32 {
    let token = g.into_token();
    7
}
