// Seeded-violation fixture: every line below should trip a rule.
// This tree is excluded from real lint runs (fixtures/ is skipped by the
// directory walker) and exists so the integration test can prove the
// linter exits non-zero on known-bad input.

use std::net::UdpSocket;

pub fn forge_token() -> u32 {
    let token = SlotToken { index: 3, generation: 1 };
    token.index() * 64
}

pub fn die(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn poke(p: *mut u8) {
    unsafe { *p = 0 };
}

// insane-lint: allow(no-panic-paths)
pub fn waived_badly(x: Option<u8>) -> u8 {
    x.expect("boom")
}

pub struct SlotToken {
    pub index: u32,
    pub generation: u32,
}
