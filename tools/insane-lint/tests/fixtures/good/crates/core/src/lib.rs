// Clean fixture: exercises constructs that look like violations but are
// not (strings, comments, test modules, word-boundary near-misses).

pub fn describe() -> &'static str {
    "unsafe unwrap() panic!() UdpSocket" // raw-socket unsafe unwrap()
}

pub fn lookup(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

pub fn seed(host_index: usize) -> usize {
    host_index + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let x: Option<u8> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
