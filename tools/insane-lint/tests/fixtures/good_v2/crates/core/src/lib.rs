//! Negative cases for the v2 (AST + call-graph) rule tier: every
//! construct here is discipline-clean and must produce no findings.

use std::sync::{Condvar, Mutex};

pub struct Pools {
    a: Mutex<u32>,
    b: Mutex<u32>,
    cv: Condvar,
}

// insane-lint: hot-path-root
pub fn poll_hot(p: &Pools, xs: &[u32]) -> u32 {
    let first = xs.first().copied().unwrap_or(0);
    report(p);
    first
}

pub struct Device;

impl Device {
    pub fn read(&self, out: &mut [u8]) -> usize {
        out.len()
    }
    pub fn write(&self, out: &[u8]) -> usize {
        out.len()
    }
}

// insane-lint: hot-path-root
// `read`/`write` WITH arguments are io-style calls, not RwLock
// acquisition: hot-path-rwlock must not fire on them.
pub fn poll_device(dev: &Device, out: &mut [u8]) -> usize {
    let got = dev.read(out);
    got + dev.write(out)
}

// insane-lint: cold-path -- setup/reporting; hot reachability must stop here
fn report(p: &Pools) -> Vec<u32> {
    let mut grown = Vec::new();
    grown.push(p.a.lock().map(|g| *g).unwrap_or(0));
    grown
}

// Consistent a -> b order in every function: no lock-order-cycle.
pub fn order_ab_sum(p: &Pools) -> u32 {
    let ga = p.a.lock().unwrap_or_else(|e| e.into_inner());
    let gb = p.b.lock().unwrap_or_else(|e| e.into_inner());
    *ga + *gb
}

pub fn order_ab_diff(p: &Pools) -> u32 {
    let ga = p.a.lock().unwrap_or_else(|e| e.into_inner());
    let gb = p.b.lock().unwrap_or_else(|e| e.into_inner());
    ga.wrapping_sub(*gb)
}

// The condvar wait takes (and so releases) the only held guard: no
// lock-across-wait.
pub fn wait_releases(p: &Pools) -> u32 {
    let mut g = p.a.lock().unwrap_or_else(|e| e.into_inner());
    g = p.cv.wait(g).unwrap_or_else(|e| e.into_inner());
    *g
}

pub struct Guard;

impl Guard {
    pub fn into_token(self) -> u64 {
        0
    }
}

pub struct Pool;

impl Pool {
    pub fn release(&self, token: u64) -> u64 {
        token
    }
}

// The token is forwarded to the pool: no slot-token-drop.
pub fn forward_token(pool: &Pool, g: Guard) -> u64 {
    let token = g.into_token();
    pool.release(token)
}

#[cfg(test)]
mod tests {
    // Allocation inside test code is outside every hot-path analysis.
    #[test]
    fn alloc_in_tests_is_fine() {
        let mut v = Vec::new();
        v.push(1u32);
        assert_eq!(v.len(), 1);
    }
}
