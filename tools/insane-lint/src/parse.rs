//! Lightweight item parser over the [`crate::lex`] token stream.
//!
//! Recovers the structure the analyzer needs — functions with their
//! signature/body token ranges, enclosing `impl` type and module path,
//! `#[cfg(test)]`/`#[test]` spans — plus the `insane-lint:` marker
//! directives attached to each function from the contiguous comment
//! block directly above it:
//!
//! * `// insane-lint: hot-path-root` — the function is a hot-path
//!   reachability root (shard poll loop, lend/emit/consume, scheduler
//!   next/tx drain, queue push/pop).
//! * `// insane-lint: cold-path -- <reason>` — reachability stops here:
//!   the function is control-plane/failover code that hot callers only
//!   enter on rare transitions.
//! * `// insane-lint: allow-fn(<rule>) -- <reason>` — waives `<rule>`
//!   for the whole function body (line waivers stay available for
//!   single sites).

use crate::lex::{Comment, CommentKind, Lexed, TokKind, Token};

/// A directive parsed from a single comment token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    HotRoot,
    ColdPath { reason_ok: bool },
    AllowFn { rule: String, reason_ok: bool },
    Allow { rule: String, reason_ok: bool },
}

/// A function-scoped waiver (from `allow-fn`).
#[derive(Debug, Clone)]
pub struct FnWaiver {
    pub rule: String,
    /// Line the directive sits on (for bad-waiver reporting).
    pub line: u32,
    pub reason_ok: bool,
}

/// One parsed function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// Display path: `module::Type::name` (best effort).
    pub qname: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Last line covered by the body (== `line` for bodyless decls).
    pub end_line: u32,
    /// Token range of the signature: `[fn kw, body `{`)`.
    pub sig: (usize, usize),
    /// Token range of the body, exclusive of its braces. `(0, 0)` when
    /// the function has no body (trait method declaration).
    pub body: (usize, usize),
    /// Inside `#[cfg(test)]` / `#[test]` / an integration-test file.
    pub is_test: bool,
    pub hot_root: bool,
    pub cold: bool,
    pub waivers: Vec<FnWaiver>,
    /// `Some(TypeName)` when declared inside an `impl` block.
    pub impl_type: Option<String>,
    /// Enclosing in-file module names, outermost first.
    pub module: Vec<String>,
}

impl FnInfo {
    pub fn has_body(&self) -> bool {
        self.body.1 > self.body.0
    }

    pub fn covers_line(&self, line: usize) -> bool {
        line >= self.line as usize && line <= self.end_line as usize
    }
}

/// One parsed file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Repo-relative `/`-separated path.
    pub file: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub fns: Vec<FnInfo>,
}

const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while",
];

pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parses a directive out of one comment token. Doc-comment markers
/// (`///`, `//!`) leave a leading `/` or `!` in the text; strip them.
/// `BlockInterior` comments never yield directives — that is the
/// waiver-position fix: commented-out code inside `/* ... */` (which may
/// itself contain old directives) must not waive anything.
pub fn directive_of(comment: &Comment) -> Option<Directive> {
    if comment.kind == CommentKind::BlockInterior {
        return None;
    }
    let text = comment
        .text
        .trim()
        .trim_start_matches(['/', '!'])
        .trim_start();
    let rest = text.strip_prefix("insane-lint:")?.trim_start();
    if rest == "hot-path-root" || rest.starts_with("hot-path-root ") {
        return Some(Directive::HotRoot);
    }
    if let Some(after) = rest.strip_prefix("cold-path") {
        return Some(Directive::ColdPath {
            reason_ok: reason_ok(after),
        });
    }
    if let Some(inner) = rest.strip_prefix("allow-fn(") {
        let close = inner.find(')')?;
        return Some(Directive::AllowFn {
            rule: inner[..close].trim().to_string(),
            reason_ok: reason_ok(&inner[close + 1..]),
        });
    }
    if let Some(inner) = rest.strip_prefix("allow(") {
        let close = inner.find(')')?;
        return Some(Directive::Allow {
            rule: inner[..close].trim().to_string(),
            reason_ok: reason_ok(&inner[close + 1..]),
        });
    }
    None
}

fn reason_ok(after: &str) -> bool {
    let after = after.trim();
    let reason = after
        .strip_prefix("--")
        .or_else(|| after.strip_prefix(':'))
        .map(str::trim)
        .unwrap_or("");
    reason.len() >= 3
}

struct Scope {
    kind: ScopeKind,
    /// Brace depth *inside* the scope's body.
    body_depth: i32,
    test: bool,
}

enum ScopeKind {
    Mod(String),
    Impl(String),
    Fn(usize),
}

/// Parses one lexed file. `test_file` marks integration-test/bench/
/// example files whose every function counts as test code.
pub fn parse_file(rel: &str, lexed: Lexed, test_file: bool) -> ParsedFile {
    let Lexed { tokens, comments } = lexed;
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth: i32 = 0;
    let mut pending_test = false;
    let mut pending_attr_line: Option<u32> = None;
    let mut i = 0usize;

    while i < tokens.len() {
        let t = &tokens[i];

        // Attributes: `#[...]` / `#![...]`.
        if t.is_punct('#') {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_punct('[')) {
                if pending_attr_line.is_none() {
                    pending_attr_line = Some(t.line);
                }
                let mut bdepth = 0i32;
                while j < tokens.len() {
                    if tokens[j].is_punct('[') {
                        bdepth += 1;
                    } else if tokens[j].is_punct(']') {
                        bdepth -= 1;
                        if bdepth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                if attr_is_test(&tokens[i..=j.min(tokens.len() - 1)]) {
                    pending_test = true;
                }
                i = j + 1;
                continue;
            }
        }

        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            while scopes.last().is_some_and(|s| s.body_depth > depth) {
                if let Some(Scope {
                    kind: ScopeKind::Fn(fx),
                    ..
                }) = scopes.pop()
                {
                    fns[fx].body.1 = i;
                    fns[fx].end_line = t.line;
                }
            }
            i += 1;
            continue;
        }

        let in_fn = matches!(
            scopes.last(),
            Some(Scope {
                kind: ScopeKind::Fn(_),
                ..
            })
        );

        if !in_fn && t.kind == TokKind::Ident {
            match t.text.as_str() {
                "mod" => {
                    if let Some(name_tok) = tokens.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        if tokens.get(i + 2).is_some_and(|b| b.is_punct('{')) {
                            let inherited = scopes.iter().any(|s| s.test);
                            scopes.push(Scope {
                                kind: ScopeKind::Mod(name_tok.text.clone()),
                                body_depth: depth + 1,
                                test: pending_test || inherited,
                            });
                            pending_test = false;
                            pending_attr_line = None;
                            depth += 1;
                            i += 3;
                            continue;
                        }
                    }
                    pending_test = false;
                    pending_attr_line = None;
                    i += 1;
                    continue;
                }
                "impl" => {
                    // Scan to the body `{` (or `;` for bodyless impls),
                    // extracting the implemented-on type: the last path
                    // segment at angle depth 0, after `for` if present.
                    let mut j = i + 1;
                    let mut angle = 0i32;
                    let mut ty = String::new();
                    while j < tokens.len() {
                        let tj = &tokens[j];
                        if tj.is_punct('{') || tj.is_punct(';') {
                            break;
                        }
                        if tj.is_punct('<') {
                            angle += 1;
                        } else if tj.is_punct('>') {
                            angle -= 1;
                        } else if angle <= 0 && tj.kind == TokKind::Ident {
                            if tj.text == "for" {
                                ty.clear();
                            } else if tj.text != "where" && !is_keyword(&tj.text) {
                                ty = tj.text.clone();
                            }
                        }
                        j += 1;
                    }
                    if tokens.get(j).is_some_and(|b| b.is_punct('{')) {
                        let inherited = scopes.iter().any(|s| s.test);
                        scopes.push(Scope {
                            kind: ScopeKind::Impl(ty),
                            body_depth: depth + 1,
                            test: pending_test || inherited,
                        });
                        depth += 1;
                        j += 1;
                    }
                    pending_test = false;
                    pending_attr_line = None;
                    i = j;
                    continue;
                }
                "fn" => {
                    if let Some(name_tok) = tokens.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        let name = name_tok.text.clone();
                        let fn_line = t.line;
                        // Signature runs to the body `{` or a `;`.
                        let mut j = i + 2;
                        let mut paren = 0i32;
                        while j < tokens.len() {
                            let tj = &tokens[j];
                            if tj.is_punct('(') {
                                paren += 1;
                            } else if tj.is_punct(')') {
                                paren -= 1;
                            } else if paren == 0 && (tj.is_punct('{') || tj.is_punct(';')) {
                                break;
                            }
                            j += 1;
                        }
                        let sig = (i, j);
                        let impl_type = scopes.iter().rev().find_map(|s| match &s.kind {
                            ScopeKind::Impl(t) if !t.is_empty() => Some(t.clone()),
                            _ => None,
                        });
                        let module: Vec<String> = scopes
                            .iter()
                            .filter_map(|s| match &s.kind {
                                ScopeKind::Mod(m) => Some(m.clone()),
                                _ => None,
                            })
                            .collect();
                        let is_test = test_file || pending_test || scopes.iter().any(|s| s.test);
                        let block_first_line = pending_attr_line.unwrap_or(fn_line);
                        let (hot_root, cold, waivers) = fn_markers(&comments, block_first_line);
                        let mut qname = String::new();
                        for m in &module {
                            qname.push_str(m);
                            qname.push_str("::");
                        }
                        if let Some(ty) = &impl_type {
                            qname.push_str(ty);
                            qname.push_str("::");
                        }
                        qname.push_str(&name);

                        let fx = fns.len();
                        let has_body = tokens.get(j).is_some_and(|b| b.is_punct('{'));
                        fns.push(FnInfo {
                            name,
                            qname,
                            line: fn_line,
                            end_line: tokens.get(j).map(|b| b.line).unwrap_or(fn_line),
                            sig,
                            body: if has_body { (j + 1, j + 1) } else { (0, 0) },
                            is_test,
                            hot_root,
                            cold,
                            waivers,
                            impl_type,
                            module,
                        });
                        pending_test = false;
                        pending_attr_line = None;
                        if has_body {
                            scopes.push(Scope {
                                kind: ScopeKind::Fn(fx),
                                body_depth: depth + 1,
                                test: is_test,
                            });
                            depth += 1;
                            i = j + 1;
                        } else {
                            i = j;
                        }
                        continue;
                    }
                }
                // Other item keywords consume any pending test attribute
                // (e.g. `#[cfg(test)] use ...;` / `struct ...`).
                "struct" | "enum" | "trait" | "union" | "use" | "static" | "const" | "type"
                | "macro_rules" => {
                    pending_test = false;
                    pending_attr_line = None;
                }
                _ => {}
            }
        }
        i += 1;
    }

    // Close any still-open fn bodies (unbalanced braces at EOF).
    while let Some(s) = scopes.pop() {
        if let ScopeKind::Fn(fx) = s.kind {
            fns[fx].body.1 = tokens.len();
            fns[fx].end_line = tokens.last().map(|t| t.line).unwrap_or(fns[fx].line);
        }
    }

    ParsedFile {
        file: rel.to_string(),
        tokens,
        comments,
        fns,
    }
}

/// Does the attribute token slice (`#` .. `]`) mark test-only code?
/// Matches `#[test]`, `#[should_panic...]`, and any `#[cfg(...)]` whose
/// arguments contain the bare ident `test` (so `cfg(all(test, ...))`
/// counts but `cfg(feature = "test-util")` does not — feature names are
/// string literals, not idents).
fn attr_is_test(attr: &[Token]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match idents.first() {
        Some(&"test") | Some(&"should_panic") => true,
        Some(&"cfg") => idents[1..].contains(&"test"),
        _ => false,
    }
}

/// Collects `hot-path-root` / `cold-path` / `allow-fn` markers from the
/// contiguous own-line comment block ending on `first_line - 1` (where
/// `first_line` is the fn's first attribute line, or the `fn` keyword
/// line when there are no attributes).
fn fn_markers(comments: &[Comment], first_line: u32) -> (bool, bool, Vec<FnWaiver>) {
    let mut hot_root = false;
    let mut cold = false;
    let mut waivers = Vec::new();
    let mut expect = first_line.saturating_sub(1);
    // Walk the comment list backwards, consuming the contiguous block.
    for c in comments.iter().rev() {
        if c.line > expect || expect == 0 {
            continue;
        }
        if c.line < expect {
            break;
        }
        if c.own_line {
            match directive_of(c) {
                Some(Directive::HotRoot) => hot_root = true,
                Some(Directive::ColdPath { reason_ok }) => {
                    cold = true;
                    // A cold-path marker without a reason is still
                    // honoured for reachability but surfaces as a
                    // bad-waiver via the rules layer; record it.
                    waivers.push(FnWaiver {
                        rule: "cold-path".to_string(),
                        line: c.line,
                        reason_ok,
                    });
                }
                Some(Directive::AllowFn { rule, reason_ok }) => {
                    waivers.push(FnWaiver {
                        rule,
                        line: c.line,
                        reason_ok,
                    });
                }
                _ => {}
            }
            expect = c.line.saturating_sub(1);
        } else {
            break;
        }
    }
    (hot_root, cold, waivers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/x/src/lib.rs", lex(src), false)
    }

    #[test]
    fn finds_fns_with_impl_and_module_context() {
        let src = "mod inner {\n  struct S;\n  impl S {\n    fn m(&self) -> u8 { 1 }\n  }\n  fn free() {}\n}\nfn top() {}\n";
        let p = parse(src);
        let names: Vec<_> = p.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(names, vec!["inner::S::m", "inner::free", "top"]);
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("S"));
        assert!(p.fns[0].has_body());
    }

    #[test]
    fn impl_trait_for_type_records_the_type() {
        let p = parse("impl Scheduler for FifoScheduler {\n  fn next(&mut self) {}\n}\n");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("FifoScheduler"));
    }

    #[test]
    fn cfg_test_mod_and_test_attr_mark_fns() {
        let src =
            "#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\n#[test]\nfn unit() {}\nfn real() {}\n";
        let p = parse(src);
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("helper").is_test);
        assert!(by_name("unit").is_test);
        assert!(!by_name("real").is_test);
    }

    #[test]
    fn markers_attach_through_attributes() {
        let src = "// insane-lint: hot-path-root\n#[inline]\nfn poll() {}\n\n// insane-lint: cold-path -- failover only\nfn divert() {}\n// insane-lint: allow-fn(hot-path-panic) -- indices proven in bounds\nfn drain() {}\n";
        let p = parse(src);
        assert!(p.fns[0].hot_root);
        assert!(p.fns[1].cold);
        assert_eq!(p.fns[2].waivers[0].rule, "hot-path-panic");
        assert!(p.fns[2].waivers[0].reason_ok);
    }

    #[test]
    fn marker_block_must_be_contiguous() {
        let src = "// insane-lint: hot-path-root\n\nfn not_rooted() {}\n";
        let p = parse(src);
        assert!(!p.fns[0].hot_root);
    }

    #[test]
    fn block_interior_comments_never_carry_directives() {
        let c = Comment {
            line: 3,
            text: " insane-lint: allow(no-panic-paths) -- stale".to_string(),
            kind: CommentKind::BlockInterior,
            own_line: true,
        };
        assert_eq!(directive_of(&c), None);
    }

    #[test]
    fn bodyless_trait_methods_are_recorded() {
        let p = parse("trait T {\n  fn decl(&self);\n  fn dflt(&self) -> u8 { 2 }\n}\n");
        assert_eq!(p.fns.len(), 2);
        assert!(!p.fns[0].has_body());
        assert!(p.fns[1].has_body());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parse("type Cb = fn(u8) -> u8;\nfn real(cb: Cb) {}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }
}
