//! Lexical pre-pass: separates each source line into *code* and *comment*
//! channels so rules never fire on words inside strings or doc text.
//!
//! This is a hand-rolled scanner, not a full parser: the workspace builds
//! offline and cannot pull `syn`, and every rule in this tool needs only
//! token-level context (identifier boundaries, brace depth, attribute
//! adjacency).  The state machine understands line and nested block
//! comments, string/byte-string literals with escapes, raw strings with
//! arbitrary `#` fences, and character literals vs. lifetimes.

/// One physical source line split into channels.
#[derive(Debug, Clone, Default)]
pub struct ScannedLine {
    /// Line text with comment and string-literal *contents* blanked to
    /// spaces (string delimiters are preserved so offsets line up).
    pub code: String,
    /// Concatenated text of every comment on the line.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_fence: Option<u32> },
}

/// Splits `source` into per-line code/comment channels.
pub fn scan(source: &str) -> Vec<ScannedLine> {
    let mut lines = Vec::new();
    let mut current = ScannedLine::default();
    let mut state = State::Code;
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut current));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = bytes.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        i += 2;
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        current.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        current.code.push('"');
                        state = State::Str { raw_fence: None };
                        i += 1;
                        continue;
                    }
                    'r' | 'b' if is_raw_string_start(&bytes, i) => {
                        let (fence, consumed) = raw_string_fence(&bytes, i);
                        for _ in 0..consumed {
                            current.code.push(' ');
                        }
                        current.code.push('"');
                        state = State::Str {
                            raw_fence: Some(fence),
                        };
                        i += consumed + 1;
                        continue;
                    }
                    '\'' => {
                        // Distinguish a char literal from a lifetime: a
                        // literal is 'x' or an escape '\..'; a lifetime has
                        // no closing quote right after one scalar.
                        if next == Some('\\') {
                            // Escaped char literal: skip to the closing
                            // quote. The char after the backslash is
                            // always content, so `'\''` closes at i+3 —
                            // not at the escaped quote.
                            current.code.push('\'');
                            current.code.push_str("  ");
                            let mut j = i + 3;
                            while j < bytes.len() && bytes[j] != '\'' && bytes[j] != '\n' {
                                current.code.push(' ');
                                j += 1;
                            }
                            if j < bytes.len() && bytes[j] == '\'' {
                                current.code.push('\'');
                                j += 1;
                            }
                            i = j;
                            continue;
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            current.code.push_str("' '");
                            i += 3;
                            continue;
                        }
                        // Lifetime (or label): keep as code.
                        current.code.push('\'');
                        i += 1;
                        continue;
                    }
                    _ => {
                        current.code.push(c);
                        i += 1;
                        continue;
                    }
                }
            }
            State::LineComment => {
                current.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = bytes.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    current.comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_fence } => match raw_fence {
                None => {
                    if c == '\\' {
                        current.code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        current.code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        current.code.push(' ');
                        i += 1;
                    }
                }
                Some(fence) => {
                    if c == '"' && closes_raw_string(&bytes, i, fence) {
                        current.code.push('"');
                        for _ in 0..fence {
                            current.code.push(' ');
                        }
                        state = State::Code;
                        i += 1 + fence as usize;
                    } else {
                        current.code.push(' ');
                        i += 1;
                    }
                }
            },
        }
    }
    lines.push(current);
    lines
}

/// Is `bytes[i]` the start of `r"`, `r#"`, `b"`, `br#"`, …?
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // Must not be the tail of a longer identifier (e.g. `var` ending in r).
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    // Plain (escaped) strings and byte strings take the non-raw path; only
    // an `r` marks a raw fence.
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Returns `(fence_hash_count, chars_before_opening_quote)`.
fn raw_string_fence(bytes: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&'r') {
        j += 1;
    }
    let mut fence = 0u32;
    while bytes.get(j) == Some(&'#') {
        fence += 1;
        j += 1;
    }
    (fence, j - i)
}

/// Does the quote at `bytes[i]` close a raw string with `fence` hashes?
fn closes_raw_string(bytes: &[char], i: usize, fence: u32) -> bool {
    (1..=fence as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// True when `hay[pos..]` starts with `word` at an identifier boundary on
/// both sides.
pub fn word_at(hay: &str, pos: usize, word: &str) -> bool {
    if !hay[pos..].starts_with(word) {
        return false;
    }
    let before_ok = pos == 0
        || !hay[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = hay[pos + word.len()..].chars().next();
    let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// Byte offsets of every boundary-delimited occurrence of `word` in `hay`.
pub fn find_word(hay: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(rel) = hay[start..].find(word) {
        let pos = start + rel;
        if word_at(hay, pos, word) {
            out.push(pos);
        }
        start = pos + word.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"unsafe\"; // unsafe trailing\nunsafe {}";
        let lines = scan(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("unsafe trailing"));
        assert!(lines[1].code.contains("unsafe"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let p = r#\"panic!(\"x\")\"#; call();";
        let lines = scan(src);
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("call();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(c: char) { let q = '{'; let e = '\\n'; g::<'a>(); }";
        let lines = scan(src);
        // The brace inside the char literal must not appear in code.
        assert_eq!(lines[0].code.matches('{').count(), 1);
        assert!(lines[0].code.contains("'a"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ code()";
        let lines = scan(src);
        assert!(lines[0].code.contains("code()"));
        assert!(!lines[0].code.contains("outer"));
        assert!(lines[0].comment.contains("inner"));
    }

    #[test]
    fn escaped_quote_char_literal_closes_correctly() {
        // `'\''` must close at the 4th char; the old scanner closed at
        // the escaped quote, leaving the scanner out of sync with the
        // source so following string contents could surface as code.
        let src = "let q = '\\''; call(\"payload .unwrap()\");";
        let lines = scan(src);
        assert!(lines[0].code.contains("call("));
        assert!(!lines[0].code.contains("unwrap"));
    }

    #[test]
    fn word_boundaries() {
        assert!(word_at("unsafe {", 0, "unsafe"));
        assert!(!word_at("unsafe_code", 0, "unsafe"));
        assert!(!word_at("my_unwrap()", 3, "unwrap"));
        assert_eq!(find_word("x.unwrap().unwrap_or(1)", "unwrap"), vec![2]);
    }
}
