//! Machine-readable findings output (SARIF-lite), consumed by the
//! `lint-invariants` CI job. Dependency-free: the workspace builds
//! offline, so the writer is hand-rolled (same approach as the BENCH
//! schema writer in `insane-telemetry`).
//!
//! Schema (`insane-lint/v2`):
//! ```json
//! {
//!   "schema": "insane-lint/v2",
//!   "elapsed_ms": 1234,
//!   "analyzed": {"files": 10, "functions": 200, "hot_functions": 40},
//!   "waived": 7,
//!   "findings": [
//!     {"rule": "hot-path-alloc", "file": "crates/core/src/x.rs",
//!      "line": 12, "message": "..."}
//!   ],
//!   "summary": {"total": 1, "by_rule": {"hot-path-alloc": 1}}
//! }
//! ```

use std::collections::BTreeMap;

use crate::{Stats, Violation};

/// Serializes an analysis result to the `insane-lint/v2` JSON schema.
pub fn to_json(violations: &[Violation], stats: &Stats) -> String {
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for v in violations {
        *by_rule.entry(v.rule).or_insert(0) += 1;
    }

    let mut s = String::with_capacity(1024 + violations.len() * 160);
    s.push_str("{\n");
    s.push_str("  \"schema\": \"insane-lint/v2\",\n");
    s.push_str(&format!("  \"elapsed_ms\": {},\n", stats.elapsed_ms));
    s.push_str(&format!(
        "  \"analyzed\": {{\"files\": {}, \"functions\": {}, \"hot_functions\": {}}},\n",
        stats.files, stats.functions, stats.hot_functions
    ));
    s.push_str(&format!("  \"waived\": {},\n", stats.waived));
    s.push_str("  \"findings\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"rule\": \"{}\", ", escape(v.rule)));
        s.push_str(&format!(
            "\"file\": \"{}\", ",
            escape(&v.file.to_string_lossy().replace('\\', "/"))
        ));
        s.push_str(&format!("\"line\": {}, ", v.line));
        s.push_str(&format!("\"message\": \"{}\"}}", escape(&v.message)));
    }
    if !violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    s.push_str(&format!(
        "  \"summary\": {{\"total\": {}, \"by_rule\": {{",
        violations.len()
    ));
    for (i, (rule, count)) in by_rule.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{}\": {}", escape(rule), count));
    }
    s.push_str("}}\n}\n");
    s
}

fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn json_shape_and_escaping() {
        let vs = vec![Violation {
            file: PathBuf::from("crates/core/src/api.rs"),
            line: 7,
            rule: "hot-path-alloc",
            message: "a \"quoted\" thing\nwith newline".to_string(),
        }];
        let stats = Stats {
            files: 3,
            functions: 10,
            hot_functions: 4,
            waived: 2,
            elapsed_ms: 55,
        };
        let json = to_json(&vs, &stats);
        assert!(json.contains("\"schema\": \"insane-lint/v2\""));
        assert!(json.contains("\"hot_functions\": 4"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"by_rule\": {\"hot-path-alloc\": 1}"));
        assert!(!json.contains('\u{0}'));
    }

    #[test]
    fn empty_findings_serialize_cleanly() {
        let stats = Stats {
            files: 1,
            functions: 0,
            hot_functions: 0,
            waived: 0,
            elapsed_ms: 1,
        };
        let json = to_json(&[], &stats);
        assert!(json.contains("\"findings\": [],"));
        assert!(json.contains("\"total\": 0"));
    }
}
