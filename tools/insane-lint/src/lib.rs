//! INSANE invariant linter v2: a two-tier static analyzer for the
//! repo-specific rules `clippy` cannot express, run as
//! `cargo run -p insane-lint` (CI job `lint-invariants`).
//!
//! **Tier 1 (regex fallback, [`scan`])** — per-line code/comment channel
//! rules, unchanged from v1:
//!
//! * `safety-comment` — every `unsafe` keyword must carry a `// SAFETY:`
//!   comment on the same line or in the contiguous comment block
//!   immediately above.
//! * `unsafe-whitelist` — `unsafe` may appear only in the two crates
//!   whose job it is (`insane-memory`, `insane-queues`) plus the
//!   telemetry overhead-guard test (counting global allocator); every
//!   other crate additionally carries `#![forbid(unsafe_code)]`.
//! * `no-panic-paths` — non-test code in `insane-core`/`insane-fabric`/
//!   `insane-telemetry`/`insanectl` must not call `unwrap`/`expect` or
//!   invoke `panic!`-family macros.
//! * `raw-slot-arithmetic` — slot-index/generation arithmetic belongs in
//!   `insane-memory` alone.
//! * `raw-socket` — OS socket types may be named only by the kernel-UDP
//!   datapath plugin and the simulated-fabric UDP device.
//! * `bad-waiver` — an `insane-lint:` directive lacking a non-empty
//!   reason.
//!
//! **Tier 2 (AST + call graph, [`lex`]/[`parse`]/[`callgraph`]/
//! [`rules`])** — whole-workspace analyses:
//!
//! * `hot-path-alloc` / `hot-path-block` / `hot-path-rwlock` /
//!   `hot-path-panic` — functions reachable from
//!   `// insane-lint: hot-path-root` markers must not allocate, block,
//!   acquire reader-writer locks (read-mostly state belongs in a
//!   `SnapshotCell`, DESIGN.md §12), or carry implicit panic sites;
//!   reachability stops at `#[cfg(test)]` boundaries and
//!   `// insane-lint: cold-path` markers.
//! * `lock-order-cycle` / `lock-across-wait` — the workspace lock
//!   acquisition graph must be acyclic and no guard may be held across
//!   a wait point (condvar waits that take the guard are exempt: the
//!   condvar releases it).
//! * `slot-token-drop` — a `SlotToken` (Copy, no Drop) bound outside
//!   `insane-memory` must be consumed, never silently dropped.
//!
//! **Waivers** are parsed only from genuine comment tokens (line
//! comments and single-line block comments — never from string
//! literals or the interior lines of multi-line block comments):
//!
//! * line waiver: `insane-lint: allow(<rule>) -- <reason>` covers its
//!   own line and the next;
//! * function waiver: `insane-lint: allow-fn(<rule>) -- <reason>` in
//!   the comment block above a `fn` covers the whole body;
//! * a waiver without a reason (≥ 3 chars) is itself a `bad-waiver`
//!   violation.

pub mod callgraph;
pub mod findings;
pub mod lex;
pub mod parse;
pub mod rules;
pub mod scan;

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

use parse::{Directive, ParsedFile};
use scan::{find_word, ScannedLine};

/// Path prefixes (repo-relative, `/`-separated) where `unsafe` is legal.
/// `crates/telemetry/tests/` is allowed one `unsafe`: the overhead-guard
/// test installs a counting `GlobalAlloc` to prove the emit/consume path
/// adds zero allocations (library code in `crates/telemetry/src/` stays
/// under `#![forbid(unsafe_code)]`).
const UNSAFE_WHITELIST: &[&str] = &[
    "crates/memory/",
    "crates/queues/",
    "crates/ipc/",
    "crates/telemetry/tests/",
];

/// Crates whose non-test code must be panic-free.  The shard scale-out
/// and noisy-neighbor benches ride along: they exercise the sharded
/// polling engine and the multi-tenant overload paths, and must report
/// failures (ordering violations, stalls, refused tenants) instead of
/// panicking.  `crates/ipc` (the daemon and client library) and the
/// process-split bench join the zone: a panic in the daemon kills every
/// attached application's session.
const NO_PANIC_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/fabric/src/",
    "crates/ipc/src/",
    "crates/telemetry/src/",
    "crates/bench/src/shard_bench.rs",
    "crates/bench/src/bin/shard_bench.rs",
    "crates/bench/src/noisy_neighbor.rs",
    "crates/bench/src/bin/noisy_neighbor.rs",
    "crates/bench/src/hotpath.rs",
    "crates/bench/src/bin/hotpath_bench.rs",
    "crates/bench/src/ipc_bench.rs",
    "crates/bench/src/bin/ipc_bench.rs",
    "crates/bench/src/mixed_criticality.rs",
    "crates/bench/src/bin/mixed_criticality.rs",
    "examples/mixed_criticality.rs",
    "tools/insanectl/src/",
];

/// Files allowed to name OS socket types: the kernel-UDP datapath plugin
/// and the simulated AF_INET device it is built on.
const SOCKET_ALLOWLIST: &[&str] = &[
    "crates/fabric/src/devices/udp.rs",
    "crates/core/src/runtime/plugins.rs",
];

/// Where slot-token internals may be manipulated.
const SLOT_ARITHMETIC_HOME: &str = "crates/memory/";

/// Identifier-boundary tokens whose call marks a panic path.
const PANIC_CALLS: &[&str] = &["unwrap", "expect"];

/// Macros whose invocation marks a panic path.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Socket type names guarded by `raw-socket`.
const SOCKET_TYPES: &[&str] = &["UdpSocket", "TcpListener", "TcpStream"];

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule name (what `allow(...)` takes).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Workspace-analysis counters for the JSON report and the CI runtime
/// guard.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    pub files: usize,
    pub functions: usize,
    pub hot_functions: usize,
    /// Findings suppressed by (reasoned) waivers.
    pub waived: usize,
    pub elapsed_ms: u128,
}

/// Full analysis result.
#[derive(Debug)]
pub struct Analysis {
    pub violations: Vec<Violation>,
    pub stats: Stats,
    /// Hot functions as `(qname, root qname, file, line)` — the
    /// reachability set behind the hot-path rules (`--list-hot`).
    pub hot: Vec<(String, String, String, u32)>,
}

/// Lints one file's source text with the **regex tier only** (plus
/// waivers). `rel` is the repo-relative path used for scope decisions
/// (whitelists) and reporting. The AST tier needs the whole workspace
/// (call graph); use [`analyze_root`] for it.
pub fn lint_file(rel: &Path, source: &str) -> Vec<Violation> {
    let rel_str = rel_str_of(rel);
    let lexed = lex::lex(source);
    let waivers = collect_waivers(&lexed.comments);
    let mut out = regex_tier(&rel_str, source);
    let mut kept: Vec<Violation> = out
        .drain(..)
        .filter(|v| !waivers.iter().any(|w| w.covers(v)))
        .collect();
    kept.extend(bad_waiver_violations(rel, &waivers));
    for v in &mut kept {
        v.file = rel.to_path_buf();
    }
    kept.sort_by_key(|v| v.line);
    kept
}

/// Recursively runs the **full two-tier analysis** on every `.rs` file
/// under `root` that belongs to the workspace's own code (crates/, src/,
/// tools/, tests/, examples/), skipping `target/`, `vendor/`
/// (third-party shims) and test fixtures. Equivalent to
/// [`analyze_root`] but returning only the violations.
pub fn lint_root(root: &Path) -> std::io::Result<Vec<Violation>> {
    Ok(analyze_root(root)?.violations)
}

/// The full v2 analysis: regex tier per file, then the AST/call-graph
/// tier across the whole workspace, then waiver application.
pub fn analyze_root(root: &Path) -> std::io::Result<Analysis> {
    let started = Instant::now();
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut parsed: Vec<ParsedFile> = Vec::with_capacity(files.len());
    let mut raw: Vec<Violation> = Vec::new();
    let mut waivers_by_file: Vec<Vec<Waiver>> = Vec::with_capacity(files.len());

    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel_str_of(rel);
        let lexed = lex::lex(&source);
        let test_file = is_test_file(&rel_str);
        let waivers = collect_waivers(&lexed.comments);
        raw.extend(regex_tier(&rel_str, &source).into_iter().map(|mut v| {
            v.file = rel.clone();
            v
        }));
        raw.extend(bad_waiver_violations(rel, &waivers));
        waivers_by_file.push(waivers);
        parsed.push(parse::parse_file(&rel_str, lexed, test_file));
    }

    let graph = callgraph::build(&parsed);
    let hot = callgraph::hot_provenance(&parsed, &graph);
    let ctx = rules::RuleCtx {
        files: &parsed,
        graph: &graph,
        hot: &hot,
    };
    rules::hot_path::run(&ctx, &mut raw);
    rules::lock_order::run(&ctx, &mut raw);
    rules::slot_token::run(&ctx, &mut raw);

    // Fn-scoped waiver index: file -> parsed index, plus bad fn-waivers.
    let rel_index: std::collections::HashMap<String, usize> = parsed
        .iter()
        .enumerate()
        .map(|(i, p)| (p.file.clone(), i))
        .collect();
    for p in &parsed {
        for f in &p.fns {
            for w in &f.waivers {
                if !w.reason_ok {
                    raw.push(Violation {
                        file: PathBuf::from(&p.file),
                        line: w.line as usize,
                        rule: "bad-waiver",
                        message: format!(
                            "`{}` marker on `{}` has no reason; append `-- <why>`",
                            w.rule, f.qname
                        ),
                    });
                }
            }
        }
    }

    let before = raw.len();
    let mut kept: Vec<Violation> = raw
        .into_iter()
        .filter(|v| {
            if v.rule == "bad-waiver" {
                return true;
            }
            let rel_str = rel_str_of(&v.file);
            let Some(&pi) = rel_index.get(&rel_str) else {
                return true;
            };
            // Line waivers.
            if waivers_by_file[pi].iter().any(|w| w.covers(v)) {
                return false;
            }
            // Function waivers.
            !parsed[pi].fns.iter().any(|f| {
                f.covers_line(v.line) && f.waivers.iter().any(|w| w.reason_ok && w.rule == v.rule)
            })
        })
        .collect();
    let waived = before - kept.len();
    kept.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    kept.dedup();

    let functions: usize = parsed.iter().map(|p| p.fns.len()).sum();
    let hot_functions = hot.iter().filter(|p| p.is_some()).count();
    let mut hot_list: Vec<(String, String, String, u32)> = hot
        .iter()
        .enumerate()
        .filter_map(|(id, prov)| {
            let root = (*prov)?;
            let f = graph.info(&parsed, id);
            let r = graph.info(&parsed, root);
            Some((
                f.qname.clone(),
                r.qname.clone(),
                parsed[graph.fns[id].file].file.clone(),
                f.line,
            ))
        })
        .collect();
    hot_list.sort();
    Ok(Analysis {
        violations: kept,
        hot: hot_list,
        stats: Stats {
            files: parsed.len(),
            functions,
            hot_functions,
            waived,
            elapsed_ms: started.elapsed().as_millis(),
        },
    })
}

fn rel_str_of(rel: &Path) -> String {
    rel.to_string_lossy().replace('\\', "/")
}

fn is_test_file(rel_str: &str) -> bool {
    rel_str.starts_with("tests/") || rel_str.contains("/tests/") || rel_str.contains("/benches/")
}

/// The v1 per-line rules (tier 1), without waiver application.
fn regex_tier(rel_str: &str, source: &str) -> Vec<Violation> {
    let lines = scan::scan(source);
    let in_test = test_spans(&lines, rel_str);
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        check_unsafe(rel_str, idx, &lines, &mut out);
        check_panic_paths(rel_str, idx, line, in_test[idx], &mut out);
        check_slot_arithmetic(rel_str, idx, line, in_test[idx], &mut out);
        check_sockets(rel_str, idx, line, &mut out);
    }
    out
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            let skip = ["target", "vendor", ".git", "fixtures"]
                .iter()
                .any(|d| rel_str == *d || rel_str.ends_with(&format!("/{d}")));
            let top_ok = ["crates", "src", "tools", "tests", "examples"]
                .iter()
                .any(|d| rel_str == *d || rel_str.starts_with(&format!("{d}/")));
            if !skip && (top_ok || rel_str.is_empty()) {
                collect_rs_files(root, &path, out)?;
            }
        } else if rel_str.ends_with(".rs") {
            let top_ok = ["crates/", "src/", "tools/", "tests/", "examples/"]
                .iter()
                .any(|d| rel_str.starts_with(d));
            if top_ok {
                out.push(rel);
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Waivers

#[derive(Debug)]
struct Waiver {
    /// 0-based line the directive appears on.
    line: usize,
    rule: String,
    reason_missing: bool,
}

impl Waiver {
    /// A directive covers its own line and the next line (so it can sit
    /// above the offending statement).
    fn covers(&self, v: &Violation) -> bool {
        !self.reason_missing
            && v.rule == self.rule
            && (v.line == self.line + 1 || v.line == self.line + 2)
    }
}

/// Collects line waivers from discrete comment tokens. This is where the
/// v1 substring hole is closed: only [`lex::CommentKind::Line`] and
/// single-line [`lex::CommentKind::Block`] comments can mint a waiver
/// ([`parse::directive_of`] rejects `BlockInterior`), and string
/// literals never reach this code at all — the lexer does not produce
/// comment tokens for them.
fn collect_waivers(comments: &[lex::Comment]) -> Vec<Waiver> {
    comments
        .iter()
        .filter_map(|c| match parse::directive_of(c) {
            Some(Directive::Allow { rule, reason_ok }) => Some(Waiver {
                line: (c.line as usize).saturating_sub(1),
                rule,
                reason_missing: !reason_ok,
            }),
            _ => None,
        })
        .collect()
}

fn bad_waiver_violations(rel: &Path, waivers: &[Waiver]) -> Vec<Violation> {
    waivers
        .iter()
        .filter(|w| w.reason_missing)
        .map(|w| Violation {
            file: rel.to_path_buf(),
            line: w.line + 1,
            rule: "bad-waiver",
            message: format!(
                "waiver for `{}` has no reason; write `insane-lint: allow({}) -- <why>`",
                w.rule, w.rule
            ),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Test-span detection

/// Computes, for each line, whether it sits inside test-only code:
/// a `#[cfg(test)]`/`#[cfg(all(test, ...))]` module, a `#[test]` function,
/// or an integration-test/bench file.
fn test_spans(lines: &[ScannedLine], rel_str: &str) -> Vec<bool> {
    if is_test_file(rel_str) {
        return vec![true; lines.len()];
    }
    let mut in_test = vec![false; lines.len()];
    let mut depth: i32 = 0;
    let mut test_starts: Vec<i32> = Vec::new();
    let mut pending_attr = false;

    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if is_test_attr(code) {
            pending_attr = true;
        }
        in_test[idx] = !test_starts.is_empty() || pending_attr;
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_attr {
                        test_starts.push(depth);
                        pending_attr = false;
                    }
                }
                '}' => {
                    if test_starts.last() == Some(&depth) {
                        test_starts.pop();
                    }
                    depth -= 1;
                }
                ';' if pending_attr && test_starts.is_empty() => {
                    // Attribute applied to a braceless item (e.g. a
                    // `#[cfg(test)] use ...;`): the span ends here.
                    pending_attr = false;
                }
                _ => {}
            }
        }
        if !test_starts.is_empty() {
            in_test[idx] = true;
        }
    }
    in_test
}

/// Does this code line carry an attribute that marks test-only code?
fn is_test_attr(code: &str) -> bool {
    let compact: String = code.chars().filter(|c| !c.is_whitespace()).collect();
    if compact.contains("#[test]") || compact.contains("#[should_panic") {
        return true;
    }
    if let Some(pos) = compact.find("#[cfg(") {
        let args = &compact[pos + 6..];
        let end = args.find(")]").map(|e| &args[..e]).unwrap_or(args);
        return !find_word(end, "test").is_empty();
    }
    false
}

// ---------------------------------------------------------------------------
// Tier-1 rules

fn check_unsafe(rel: &str, idx: usize, lines: &[ScannedLine], out: &mut Vec<Violation>) {
    let code = &lines[idx].code;
    if find_word(code, "unsafe").is_empty() {
        return;
    }
    let whitelisted = UNSAFE_WHITELIST.iter().any(|p| rel.starts_with(p));
    if !whitelisted {
        out.push(Violation {
            file: PathBuf::new(),
            line: idx + 1,
            rule: "unsafe-whitelist",
            message: format!(
                "`unsafe` is only permitted in {}; move the unsafe operation behind \
                 their safe APIs",
                UNSAFE_WHITELIST.join(", ")
            ),
        });
    }
    // SAFETY comment on the same line or anywhere in the contiguous
    // comment block immediately above (long justifications span many
    // lines; what matters is that the block is adjacent to the unsafe).
    let mut documented = lines[idx].comment.contains("SAFETY:");
    let mut j = idx;
    while !documented && j > 0 {
        j -= 1;
        let above = &lines[j];
        if !above.code.trim().is_empty() || above.comment.is_empty() {
            break;
        }
        documented = above.comment.contains("SAFETY:");
    }
    if !documented {
        out.push(Violation {
            file: PathBuf::new(),
            line: idx + 1,
            rule: "safety-comment",
            message: "`unsafe` without a `// SAFETY:` comment on the same line or in the \
                      comment block above; state the invariant that makes this sound"
                .to_string(),
        });
    }
}

fn check_panic_paths(
    rel: &str,
    idx: usize,
    line: &ScannedLine,
    in_test: bool,
    out: &mut Vec<Violation>,
) {
    if in_test || !NO_PANIC_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return;
    }
    let code = &line.code;
    for call in PANIC_CALLS {
        for pos in find_word(code, call) {
            // Only flag *calls*: `.unwrap()` / `.expect("...")`.
            let after = code[pos + call.len()..].trim_start();
            let is_method = code[..pos].trim_end().ends_with('.');
            if is_method && after.starts_with('(') {
                out.push(Violation {
                    file: PathBuf::new(),
                    line: idx + 1,
                    rule: "no-panic-paths",
                    message: format!(
                        "`.{call}()` in non-test {} code: return a typed error instead \
                         (control plane must degrade, not die)",
                        crate_of(rel)
                    ),
                });
            }
        }
    }
    for mac in PANIC_MACROS {
        for pos in find_word(code, mac) {
            let after = code[pos + mac.len()..].trim_start();
            if after.starts_with('!') {
                out.push(Violation {
                    file: PathBuf::new(),
                    line: idx + 1,
                    rule: "no-panic-paths",
                    message: format!(
                        "`{mac}!` in non-test {} code: return a typed error instead",
                        crate_of(rel)
                    ),
                });
            }
        }
    }
}

fn check_slot_arithmetic(
    rel: &str,
    idx: usize,
    line: &ScannedLine,
    in_test: bool,
    out: &mut Vec<Violation>,
) {
    if rel.starts_with(SLOT_ARITHMETIC_HOME) {
        return;
    }
    let code = &line.code;
    // SlotToken struct literals (construction belongs to the pool).
    for pos in find_word(code, "SlotToken") {
        let after = code[pos + "SlotToken".len()..].trim_start();
        if after.starts_with('{') {
            out.push(Violation {
                file: PathBuf::new(),
                line: idx + 1,
                rule: "raw-slot-arithmetic",
                message: "constructing a `SlotToken` outside insane-memory defeats the \
                          generation-tag discipline; mint tokens through the pool API"
                    .to_string(),
            });
        }
    }
    // Generation tags are an insane-memory implementation detail.  Test
    // code is exempt from the bare-identifier heuristic: scenario tests
    // legitimately name unrelated things "generation" (e.g. application
    // restart generations) and cannot reach pool internals anyway.
    if !in_test && !find_word(code, "generation").is_empty() {
        out.push(Violation {
            file: PathBuf::new(),
            line: idx + 1,
            rule: "raw-slot-arithmetic",
            message: "manipulating slot `generation` tags outside insane-memory; use the \
                      pool's validate/release API"
                .to_string(),
        });
    }
    // Arithmetic on `<token|slot>.index()` — recomputing slot addresses.
    let mut start = 0;
    while let Some(rel_pos) = code[start..].find(".index()") {
        let pos = start + rel_pos;
        start = pos + ".index()".len();
        let receiver: String = code[..pos]
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        let receiver = receiver.to_ascii_lowercase();
        if !(receiver.contains("token") || receiver.contains("slot")) {
            continue;
        }
        let after = code[pos + ".index()".len()..].trim_start();
        let before = code[..pos.saturating_sub(receiver.len())].trim_end();
        let arith = |s: &str| {
            s.starts_with('+')
                || s.starts_with('-')
                || s.starts_with('*')
                || s.starts_with('/')
                || s.starts_with('%')
                || s.starts_with("<<")
                || s.starts_with(">>")
        };
        let ends_arith = |s: &str| {
            s.ends_with('+')
                || s.ends_with('-')
                || s.ends_with('*')
                || s.ends_with('/')
                || s.ends_with('%')
                || s.ends_with("<<")
                || s.ends_with(">>")
        };
        if arith(after) || ends_arith(before) || after.starts_with("as ") {
            out.push(Violation {
                file: PathBuf::new(),
                line: idx + 1,
                rule: "raw-slot-arithmetic",
                message: "arithmetic on a slot index outside insane-memory; slot address \
                          computation belongs to the pool"
                    .to_string(),
            });
        }
    }
}

fn check_sockets(rel: &str, idx: usize, line: &ScannedLine, out: &mut Vec<Violation>) {
    if SOCKET_ALLOWLIST.contains(&rel) {
        return;
    }
    for ty in SOCKET_TYPES {
        if !find_word(&line.code, ty).is_empty() {
            out.push(Violation {
                file: PathBuf::new(),
                line: idx + 1,
                rule: "raw-socket",
                message: format!(
                    "`{ty}` outside the kernel-UDP datapath plugin; all packet I/O must go \
                     through a registered datapath so QoS routing and failover apply"
                ),
            });
        }
    }
}

fn crate_of(rel: &str) -> &str {
    if rel.starts_with("crates/core/") {
        "insane-core"
    } else if rel.starts_with("crates/fabric/") {
        "insane-fabric"
    } else if rel.starts_with("crates/telemetry/") {
        "insane-telemetry"
    } else if rel.starts_with("tools/insanectl/") {
        "insanectl"
    } else {
        "workspace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<&'static str> {
        lint_file(Path::new(rel), src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn undocumented_unsafe_in_whitelisted_crate() {
        let rules = lint(
            "crates/queues/src/spsc.rs",
            "fn f(p: *mut u8) { unsafe { *p = 0 }; }\n",
        );
        assert_eq!(rules, vec!["safety-comment"]);
    }

    #[test]
    fn documented_unsafe_is_clean() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: caller guarantees exclusivity.\n    unsafe { *p = 0 };\n}\n";
        assert!(lint("crates/memory/src/pool.rs", src).is_empty());
    }

    #[test]
    fn unsafe_outside_whitelist_is_flagged() {
        let rules = lint(
            "crates/core/src/api.rs",
            "// SAFETY: documented but still not allowed here.\nfn f() { unsafe {} }\n",
        );
        assert_eq!(rules, vec!["unsafe-whitelist"]);
    }

    #[test]
    fn unwrap_in_core_is_flagged_outside_tests_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n    fn g(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        let rules = lint("crates/core/src/api.rs", src);
        assert_eq!(rules, vec!["no-panic-paths"]);
    }

    #[test]
    fn cfg_all_test_modules_are_test_spans() {
        let src = "#[cfg(all(test, not(loom)))]\nmod tests {\n    fn g() { panic!(\"x\") }\n}\n";
        assert!(lint("crates/fabric/src/wire.rs", src).is_empty());
    }

    #[test]
    fn panic_macro_in_fabric_is_flagged() {
        let rules = lint("crates/fabric/src/link.rs", "fn f() { panic!(\"boom\") }\n");
        assert_eq!(rules, vec!["no-panic-paths"]);
    }

    #[test]
    fn telemetry_and_insanectl_are_panic_free_zones() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(
            lint("crates/telemetry/src/hist.rs", src),
            vec!["no-panic-paths"]
        );
        assert_eq!(
            lint("tools/insanectl/src/main.rs", src),
            vec!["no-panic-paths"]
        );
    }

    #[test]
    fn ipc_daemon_is_a_panic_free_zone_with_unsafe_allowed() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(
            lint("crates/ipc/src/server.rs", src),
            vec!["no-panic-paths"]
        );
        assert_eq!(
            lint("crates/bench/src/bin/ipc_bench.rs", src),
            vec!["no-panic-paths"]
        );
        // The shared-memory mapping code needs (documented) unsafe.
        let unsafe_src = "// SAFETY: fd from the kernel.\nfn f() { unsafe {} }\n";
        assert!(lint("crates/ipc/src/sys.rs", unsafe_src).is_empty());
    }

    #[test]
    fn documented_unsafe_in_telemetry_tests_is_allowed() {
        let src = "// SAFETY: counting allocator defers to System.\nfn f() { unsafe {} }\n";
        assert!(lint("crates/telemetry/tests/overhead.rs", src).is_empty());
        // ... but stays forbidden in the telemetry library itself.
        assert_eq!(
            lint("crates/telemetry/src/hist.rs", src),
            vec!["unsafe-whitelist"]
        );
    }

    #[test]
    fn unwrap_or_and_expect_like_idents_are_not_flagged() {
        let src =
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\nfn g(expected: u8) -> u8 { expected }\n";
        assert!(lint("crates/core/src/api.rs", src).is_empty());
    }

    #[test]
    fn slot_token_literal_outside_memory() {
        let rules = lint(
            "crates/core/src/api.rs",
            "fn forge() { let t = SlotToken { pool: 0 }; }\n",
        );
        assert!(rules.contains(&"raw-slot-arithmetic"));
    }

    #[test]
    fn host_index_arithmetic_is_fine_but_token_index_is_not() {
        let ok = "let seed = host.index() + 1;\n";
        assert!(lint("crates/fabric/src/fault.rs", ok).is_empty());
        let bad = "let addr = token.index() * slot_size;\n";
        assert_eq!(
            lint("crates/core/src/runtime/dispatch.rs", bad),
            vec!["raw-slot-arithmetic"]
        );
    }

    #[test]
    fn raw_socket_outside_plugin() {
        let rules = lint("crates/lunar/src/mom.rs", "use std::net::UdpSocket;\n");
        assert_eq!(rules, vec!["raw-socket"]);
        assert!(lint(
            "crates/fabric/src/devices/udp.rs",
            "use std::net::UdpSocket;\n"
        )
        .is_empty());
    }

    #[test]
    fn waiver_with_reason_suppresses() {
        let src = "// insane-lint: allow(no-panic-paths) -- startup config, cannot be absent\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint("crates/core/src/api.rs", src).is_empty());
    }

    #[test]
    fn waiver_without_reason_is_its_own_violation() {
        let src =
            "// insane-lint: allow(no-panic-paths)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let rules = lint("crates/core/src/api.rs", src);
        assert!(rules.contains(&"bad-waiver"));
        assert!(rules.contains(&"no-panic-paths"));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() { let s = \"unsafe panic!() .unwrap()\"; } // unsafe unwrap()\n";
        assert!(lint("crates/core/src/api.rs", src).is_empty());
    }

    // -- waiver-position regressions (the v1 substring hole) ---------------

    #[test]
    fn block_comment_interior_cannot_waive() {
        // v1 concatenated block-comment interiors into the line's comment
        // channel, so a stale directive inside commented-out code waived
        // live findings two lines below. The lexer's discrete comment
        // tokens reject BlockInterior directives.
        let src = "/*\ninsane-lint: allow(no-panic-paths) -- stale, commented out\n*/\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let rules = lint("crates/core/src/api.rs", src);
        assert_eq!(rules, vec!["no-panic-paths"]);
    }

    #[test]
    fn trailing_directive_after_block_comment_still_waives() {
        // v1 concatenated all of a line's comments into one string, so a
        // genuine trailing directive after `/* ... */` was corrupted and
        // silently dropped; each comment token is now parsed on its own.
        let src = "fn f(x: Option<u8>) -> u8 { /* total */ x.unwrap() } // insane-lint: allow(no-panic-paths) -- startup-only lookup\n";
        assert!(lint("crates/core/src/api.rs", src).is_empty());
    }

    #[test]
    fn string_literals_cannot_waive() {
        // The directive lives in a *string*; the `'\''` literal earlier
        // on the line is exactly the kind of token that derailed naive
        // scanners into treating string contents as code/comments.
        let src = "fn f(x: Option<u8>) -> u8 {\n    let _q = '\\''; let _s = \"// insane-lint: allow(no-panic-paths) -- nope\";\n    x.unwrap()\n}\n";
        let rules = lint("crates/core/src/api.rs", src);
        assert_eq!(rules, vec!["no-panic-paths"]);
    }

    #[test]
    fn single_line_block_comment_can_waive() {
        let src = "/* insane-lint: allow(no-panic-paths) -- bootstrap value is static */\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint("crates/core/src/api.rs", src).is_empty());
    }
}
