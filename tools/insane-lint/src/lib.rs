//! INSANE invariant linter: repo-specific rules that `clippy` cannot
//! express, run as `cargo run -p insane-lint` (CI job `lint-invariants`).
//!
//! Rules (each waivable in source with
//! `// insane-lint: allow(<rule>) -- <reason>` on the offending line or
//! the line above; a waiver without a reason is itself an error):
//!
//! * `safety-comment` — every `unsafe` keyword must carry a `// SAFETY:`
//!   comment on the same line or in the contiguous comment block
//!   immediately above.
//! * `unsafe-whitelist` — `unsafe` may appear only in the two crates
//!   whose job it is (`insane-memory`, `insane-queues`) plus the
//!   telemetry overhead-guard test (counting global allocator); every
//!   other crate additionally carries `#![forbid(unsafe_code)]`.
//! * `no-panic-paths` — non-test code in `insane-core`/`insane-fabric`/
//!   `insane-telemetry`/`insanectl` must not call `unwrap`/`expect` or
//!   invoke `panic!`-family macros: the self-healing control plane
//!   (DESIGN.md §6.7) relies on errors being returned, not thrown, and
//!   the observability layer must never take a runtime down.
//! * `raw-slot-arithmetic` — slot-index/generation arithmetic belongs in
//!   `insane-memory` alone: no `SlotToken` literals, no `generation`
//!   identifiers, no arithmetic on `<token|slot>.index()` elsewhere.
//! * `raw-socket` — OS socket types (`UdpSocket`, `TcpListener`,
//!   `TcpStream`) may be named only by the kernel-UDP datapath plugin
//!   and the simulated-fabric UDP device.
//! * `bad-waiver` — an `insane-lint: allow(...)` directive lacking a
//!   non-empty reason.

pub mod scan;

use std::fmt;
use std::path::{Path, PathBuf};

use scan::{find_word, ScannedLine};

/// Path prefixes (repo-relative, `/`-separated) where `unsafe` is legal.
/// `crates/telemetry/tests/` is allowed one `unsafe`: the overhead-guard
/// test installs a counting `GlobalAlloc` to prove the emit/consume path
/// adds zero allocations (library code in `crates/telemetry/src/` stays
/// under `#![forbid(unsafe_code)]`).
const UNSAFE_WHITELIST: &[&str] = &[
    "crates/memory/",
    "crates/queues/",
    "crates/telemetry/tests/",
];

/// Crates whose non-test code must be panic-free.  The shard scale-out
/// and noisy-neighbor benches ride along: they exercise the sharded
/// polling engine and the multi-tenant overload paths, and must report
/// failures (ordering violations, stalls, refused tenants) instead of
/// panicking.
const NO_PANIC_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/fabric/src/",
    "crates/telemetry/src/",
    "crates/bench/src/shard_bench.rs",
    "crates/bench/src/bin/shard_bench.rs",
    "crates/bench/src/noisy_neighbor.rs",
    "crates/bench/src/bin/noisy_neighbor.rs",
    "tools/insanectl/src/",
];

/// Files allowed to name OS socket types: the kernel-UDP datapath plugin
/// and the simulated AF_INET device it is built on.
const SOCKET_ALLOWLIST: &[&str] = &[
    "crates/fabric/src/devices/udp.rs",
    "crates/core/src/runtime/plugins.rs",
];

/// Where slot-token internals may be manipulated.
const SLOT_ARITHMETIC_HOME: &str = "crates/memory/";

/// Identifier-boundary tokens whose call marks a panic path.
const PANIC_CALLS: &[&str] = &["unwrap", "expect"];

/// Macros whose invocation marks a panic path.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Socket type names guarded by `raw-socket`.
const SOCKET_TYPES: &[&str] = &["UdpSocket", "TcpListener", "TcpStream"];

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule name (what `allow(...)` takes).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Lints one file's source text. `rel` is the repo-relative path used for
/// scope decisions (whitelists) and reporting.
pub fn lint_file(rel: &Path, source: &str) -> Vec<Violation> {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let lines = scan::scan(source);
    let in_test = test_spans(&lines, &rel_str);
    let waivers = collect_waivers(&lines);

    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        check_unsafe(&rel_str, idx, &lines, &mut out);
        check_panic_paths(&rel_str, idx, line, in_test[idx], &mut out);
        check_slot_arithmetic(&rel_str, idx, line, in_test[idx], &mut out);
        check_sockets(&rel_str, idx, line, &mut out);
        let _ = lineno;
    }

    // Apply waivers, then append waiver-syntax violations.
    let mut kept: Vec<Violation> = out
        .into_iter()
        .filter(|v| !waivers.iter().any(|w| w.covers(v)))
        .collect();
    for w in &waivers {
        if w.reason_missing {
            kept.push(Violation {
                file: rel.to_path_buf(),
                line: w.line + 1,
                rule: "bad-waiver",
                message: format!(
                    "waiver for `{}` has no reason; write `insane-lint: allow({}) -- <why>`",
                    w.rule, w.rule
                ),
            });
        }
    }
    for v in &mut kept {
        v.file = rel.to_path_buf();
    }
    kept.sort_by_key(|v| v.line);
    kept
}

/// Recursively lints every `.rs` file under `root` that belongs to the
/// workspace's own code (crates/, src/, tools/, tests/, examples/),
/// skipping `target/`, `vendor/` (third-party shims) and test fixtures.
pub fn lint_root(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        out.extend(lint_file(&rel, &source));
    }
    Ok(out)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            let skip = ["target", "vendor", ".git", "fixtures"]
                .iter()
                .any(|d| rel_str == *d || rel_str.ends_with(&format!("/{d}")));
            let top_ok = ["crates", "src", "tools", "tests", "examples"]
                .iter()
                .any(|d| rel_str == *d || rel_str.starts_with(&format!("{d}/")));
            if !skip && (top_ok || rel_str.is_empty()) {
                collect_rs_files(root, &path, out)?;
            }
        } else if rel_str.ends_with(".rs") {
            let top_ok = ["crates/", "src/", "tools/", "tests/", "examples/"]
                .iter()
                .any(|d| rel_str.starts_with(d));
            if top_ok {
                out.push(rel);
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Waivers

#[derive(Debug)]
struct Waiver {
    /// 0-based line the directive appears on.
    line: usize,
    rule: String,
    reason_missing: bool,
}

impl Waiver {
    /// A directive covers its own line and the next line (so it can sit
    /// above the offending statement).
    fn covers(&self, v: &Violation) -> bool {
        !self.reason_missing
            && v.rule == self.rule
            && (v.line == self.line + 1 || v.line == self.line + 2)
    }
}

fn collect_waivers(lines: &[ScannedLine]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        // The directive must be the comment's first token (doc comments
        // leave a leading `!` or `/` in the comment channel) — prose that
        // merely *mentions* the syntax, like this tool's own docs, is not
        // a directive.
        let comment = line
            .comment
            .trim()
            .trim_start_matches(['!', '/'])
            .trim_start();
        let Some(rest) = comment.strip_prefix("insane-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(inner) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = inner.find(')') else {
            continue;
        };
        let rule = inner[..close].trim().to_string();
        let after = inner[close + 1..].trim();
        let reason = after
            .strip_prefix("--")
            .or_else(|| after.strip_prefix(':'))
            .map(str::trim)
            .unwrap_or("");
        out.push(Waiver {
            line: idx,
            rule,
            reason_missing: reason.len() < 3,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Test-span detection

/// Computes, for each line, whether it sits inside test-only code:
/// a `#[cfg(test)]`/`#[cfg(all(test, ...))]` module, a `#[test]` function,
/// or an integration-test/bench file.
fn test_spans(lines: &[ScannedLine], rel_str: &str) -> Vec<bool> {
    if rel_str.starts_with("tests/") || rel_str.contains("/tests/") || rel_str.contains("/benches/")
    {
        return vec![true; lines.len()];
    }
    let mut in_test = vec![false; lines.len()];
    let mut depth: i32 = 0;
    let mut test_starts: Vec<i32> = Vec::new();
    let mut pending_attr = false;

    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if is_test_attr(code) {
            pending_attr = true;
        }
        in_test[idx] = !test_starts.is_empty() || pending_attr;
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_attr {
                        test_starts.push(depth);
                        pending_attr = false;
                    }
                }
                '}' => {
                    if test_starts.last() == Some(&depth) {
                        test_starts.pop();
                    }
                    depth -= 1;
                }
                ';' if pending_attr && test_starts.is_empty() => {
                    // Attribute applied to a braceless item (e.g. a
                    // `#[cfg(test)] use ...;`): the span ends here.
                    pending_attr = false;
                }
                _ => {}
            }
        }
        if !test_starts.is_empty() {
            in_test[idx] = true;
        }
    }
    in_test
}

/// Does this code line carry an attribute that marks test-only code?
fn is_test_attr(code: &str) -> bool {
    let compact: String = code.chars().filter(|c| !c.is_whitespace()).collect();
    if compact.contains("#[test]") || compact.contains("#[should_panic") {
        return true;
    }
    if let Some(pos) = compact.find("#[cfg(") {
        let args = &compact[pos + 6..];
        let end = args.find(")]").map(|e| &args[..e]).unwrap_or(args);
        return !find_word(end, "test").is_empty();
    }
    false
}

// ---------------------------------------------------------------------------
// Rules

fn check_unsafe(rel: &str, idx: usize, lines: &[ScannedLine], out: &mut Vec<Violation>) {
    let code = &lines[idx].code;
    if find_word(code, "unsafe").is_empty() {
        return;
    }
    let whitelisted = UNSAFE_WHITELIST.iter().any(|p| rel.starts_with(p));
    if !whitelisted {
        out.push(Violation {
            file: PathBuf::new(),
            line: idx + 1,
            rule: "unsafe-whitelist",
            message: format!(
                "`unsafe` is only permitted in {}; move the unsafe operation behind \
                 their safe APIs",
                UNSAFE_WHITELIST.join(", ")
            ),
        });
    }
    // SAFETY comment on the same line or anywhere in the contiguous
    // comment block immediately above (long justifications span many
    // lines; what matters is that the block is adjacent to the unsafe).
    let mut documented = lines[idx].comment.contains("SAFETY:");
    let mut j = idx;
    while !documented && j > 0 {
        j -= 1;
        let above = &lines[j];
        if !above.code.trim().is_empty() || above.comment.is_empty() {
            break;
        }
        documented = above.comment.contains("SAFETY:");
    }
    if !documented {
        out.push(Violation {
            file: PathBuf::new(),
            line: idx + 1,
            rule: "safety-comment",
            message: "`unsafe` without a `// SAFETY:` comment on the same line or in the \
                      comment block above; state the invariant that makes this sound"
                .to_string(),
        });
    }
}

fn check_panic_paths(
    rel: &str,
    idx: usize,
    line: &ScannedLine,
    in_test: bool,
    out: &mut Vec<Violation>,
) {
    if in_test || !NO_PANIC_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return;
    }
    let code = &line.code;
    for call in PANIC_CALLS {
        for pos in find_word(code, call) {
            // Only flag *calls*: `.unwrap()` / `.expect("...")`.
            let after = code[pos + call.len()..].trim_start();
            let is_method = code[..pos].trim_end().ends_with('.');
            if is_method && after.starts_with('(') {
                out.push(Violation {
                    file: PathBuf::new(),
                    line: idx + 1,
                    rule: "no-panic-paths",
                    message: format!(
                        "`.{call}()` in non-test {} code: return a typed error instead \
                         (control plane must degrade, not die)",
                        crate_of(rel)
                    ),
                });
            }
        }
    }
    for mac in PANIC_MACROS {
        for pos in find_word(code, mac) {
            let after = code[pos + mac.len()..].trim_start();
            if after.starts_with('!') {
                out.push(Violation {
                    file: PathBuf::new(),
                    line: idx + 1,
                    rule: "no-panic-paths",
                    message: format!(
                        "`{mac}!` in non-test {} code: return a typed error instead",
                        crate_of(rel)
                    ),
                });
            }
        }
    }
}

fn check_slot_arithmetic(
    rel: &str,
    idx: usize,
    line: &ScannedLine,
    in_test: bool,
    out: &mut Vec<Violation>,
) {
    if rel.starts_with(SLOT_ARITHMETIC_HOME) {
        return;
    }
    let code = &line.code;
    // SlotToken struct literals (construction belongs to the pool).
    for pos in find_word(code, "SlotToken") {
        let after = code[pos + "SlotToken".len()..].trim_start();
        if after.starts_with('{') {
            out.push(Violation {
                file: PathBuf::new(),
                line: idx + 1,
                rule: "raw-slot-arithmetic",
                message: "constructing a `SlotToken` outside insane-memory defeats the \
                          generation-tag discipline; mint tokens through the pool API"
                    .to_string(),
            });
        }
    }
    // Generation tags are an insane-memory implementation detail.  Test
    // code is exempt from the bare-identifier heuristic: scenario tests
    // legitimately name unrelated things "generation" (e.g. application
    // restart generations) and cannot reach pool internals anyway.
    if !in_test && !find_word(code, "generation").is_empty() {
        out.push(Violation {
            file: PathBuf::new(),
            line: idx + 1,
            rule: "raw-slot-arithmetic",
            message: "manipulating slot `generation` tags outside insane-memory; use the \
                      pool's validate/release API"
                .to_string(),
        });
    }
    // Arithmetic on `<token|slot>.index()` — recomputing slot addresses.
    let mut start = 0;
    while let Some(rel_pos) = code[start..].find(".index()") {
        let pos = start + rel_pos;
        start = pos + ".index()".len();
        let receiver: String = code[..pos]
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        let receiver = receiver.to_ascii_lowercase();
        if !(receiver.contains("token") || receiver.contains("slot")) {
            continue;
        }
        let after = code[pos + ".index()".len()..].trim_start();
        let before = code[..pos.saturating_sub(receiver.len())].trim_end();
        let arith = |s: &str| {
            s.starts_with('+')
                || s.starts_with('-')
                || s.starts_with('*')
                || s.starts_with('/')
                || s.starts_with('%')
                || s.starts_with("<<")
                || s.starts_with(">>")
        };
        let ends_arith = |s: &str| {
            s.ends_with('+')
                || s.ends_with('-')
                || s.ends_with('*')
                || s.ends_with('/')
                || s.ends_with('%')
                || s.ends_with("<<")
                || s.ends_with(">>")
        };
        if arith(after) || ends_arith(before) || after.starts_with("as ") {
            out.push(Violation {
                file: PathBuf::new(),
                line: idx + 1,
                rule: "raw-slot-arithmetic",
                message: "arithmetic on a slot index outside insane-memory; slot address \
                          computation belongs to the pool"
                    .to_string(),
            });
        }
    }
}

fn check_sockets(rel: &str, idx: usize, line: &ScannedLine, out: &mut Vec<Violation>) {
    if SOCKET_ALLOWLIST.contains(&rel) {
        return;
    }
    for ty in SOCKET_TYPES {
        if !find_word(&line.code, ty).is_empty() {
            out.push(Violation {
                file: PathBuf::new(),
                line: idx + 1,
                rule: "raw-socket",
                message: format!(
                    "`{ty}` outside the kernel-UDP datapath plugin; all packet I/O must go \
                     through a registered datapath so QoS routing and failover apply"
                ),
            });
        }
    }
}

fn crate_of(rel: &str) -> &str {
    if rel.starts_with("crates/core/") {
        "insane-core"
    } else if rel.starts_with("crates/fabric/") {
        "insane-fabric"
    } else if rel.starts_with("crates/telemetry/") {
        "insane-telemetry"
    } else if rel.starts_with("tools/insanectl/") {
        "insanectl"
    } else {
        "workspace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<&'static str> {
        lint_file(Path::new(rel), src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn undocumented_unsafe_in_whitelisted_crate() {
        let rules = lint(
            "crates/queues/src/spsc.rs",
            "fn f(p: *mut u8) { unsafe { *p = 0 }; }\n",
        );
        assert_eq!(rules, vec!["safety-comment"]);
    }

    #[test]
    fn documented_unsafe_is_clean() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: caller guarantees exclusivity.\n    unsafe { *p = 0 };\n}\n";
        assert!(lint("crates/memory/src/pool.rs", src).is_empty());
    }

    #[test]
    fn unsafe_outside_whitelist_is_flagged() {
        let rules = lint(
            "crates/core/src/api.rs",
            "// SAFETY: documented but still not allowed here.\nfn f() { unsafe {} }\n",
        );
        assert_eq!(rules, vec!["unsafe-whitelist"]);
    }

    #[test]
    fn unwrap_in_core_is_flagged_outside_tests_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n    fn g(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        let rules = lint("crates/core/src/api.rs", src);
        assert_eq!(rules, vec!["no-panic-paths"]);
    }

    #[test]
    fn cfg_all_test_modules_are_test_spans() {
        let src = "#[cfg(all(test, not(loom)))]\nmod tests {\n    fn g() { panic!(\"x\") }\n}\n";
        assert!(lint("crates/fabric/src/wire.rs", src).is_empty());
    }

    #[test]
    fn panic_macro_in_fabric_is_flagged() {
        let rules = lint("crates/fabric/src/link.rs", "fn f() { panic!(\"boom\") }\n");
        assert_eq!(rules, vec!["no-panic-paths"]);
    }

    #[test]
    fn telemetry_and_insanectl_are_panic_free_zones() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(
            lint("crates/telemetry/src/hist.rs", src),
            vec!["no-panic-paths"]
        );
        assert_eq!(
            lint("tools/insanectl/src/main.rs", src),
            vec!["no-panic-paths"]
        );
    }

    #[test]
    fn documented_unsafe_in_telemetry_tests_is_allowed() {
        let src = "// SAFETY: counting allocator defers to System.\nfn f() { unsafe {} }\n";
        assert!(lint("crates/telemetry/tests/overhead.rs", src).is_empty());
        // ... but stays forbidden in the telemetry library itself.
        assert_eq!(
            lint("crates/telemetry/src/hist.rs", src),
            vec!["unsafe-whitelist"]
        );
    }

    #[test]
    fn unwrap_or_and_expect_like_idents_are_not_flagged() {
        let src =
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\nfn g(expected: u8) -> u8 { expected }\n";
        assert!(lint("crates/core/src/api.rs", src).is_empty());
    }

    #[test]
    fn slot_token_literal_outside_memory() {
        let rules = lint(
            "crates/core/src/api.rs",
            "fn forge() { let t = SlotToken { pool: 0 }; }\n",
        );
        assert!(rules.contains(&"raw-slot-arithmetic"));
    }

    #[test]
    fn host_index_arithmetic_is_fine_but_token_index_is_not() {
        let ok = "let seed = host.index() + 1;\n";
        assert!(lint("crates/fabric/src/fault.rs", ok).is_empty());
        let bad = "let addr = token.index() * slot_size;\n";
        assert_eq!(
            lint("crates/core/src/runtime/dispatch.rs", bad),
            vec!["raw-slot-arithmetic"]
        );
    }

    #[test]
    fn raw_socket_outside_plugin() {
        let rules = lint("crates/lunar/src/mom.rs", "use std::net::UdpSocket;\n");
        assert_eq!(rules, vec!["raw-socket"]);
        assert!(lint(
            "crates/fabric/src/devices/udp.rs",
            "use std::net::UdpSocket;\n"
        )
        .is_empty());
    }

    #[test]
    fn waiver_with_reason_suppresses() {
        let src = "// insane-lint: allow(no-panic-paths) -- startup config, cannot be absent\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint("crates/core/src/api.rs", src).is_empty());
    }

    #[test]
    fn waiver_without_reason_is_its_own_violation() {
        let src =
            "// insane-lint: allow(no-panic-paths)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let rules = lint("crates/core/src/api.rs", src);
        assert!(rules.contains(&"bad-waiver"));
        assert!(rules.contains(&"no-panic-paths"));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() { let s = \"unsafe panic!() .unwrap()\"; } // unsafe unwrap()\n";
        assert!(lint("crates/core/src/api.rs", src).is_empty());
    }
}
