//! CLI wrapper:
//! `cargo run -p insane-lint [root] [--json PATH] [--max-seconds N]`.
//!
//! Runs the full two-tier analysis on the workspace rooted at `root`
//! (default: the current directory), prints human-readable findings,
//! optionally writes the machine-readable `insane-lint/v2` JSON report
//! (uploaded as a CI artifact by the `lint-invariants` job), and exits:
//!
//! * `0` — no unwaived findings;
//! * `1` — findings (CI gate);
//! * `2` — scan/IO failure;
//! * `3` — runtime guard exceeded (`--max-seconds`, default 60: the
//!   full-workspace analysis must stay fast enough to gate every PR).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut max_seconds: u64 = 60;
    let mut list_hot = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-hot" => list_hot = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("insane-lint: --json requires a path");
                    return ExitCode::from(2);
                }
            },
            "--max-seconds" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => max_seconds = n,
                None => {
                    eprintln!("insane-lint: --max-seconds requires an integer");
                    return ExitCode::from(2);
                }
            },
            other => root = PathBuf::from(other),
        }
    }

    let analysis = match insane_lint::analyze_root(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("insane-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if list_hot {
        for (qname, root, file, line) in &analysis.hot {
            println!("hot {qname} <- {root} ({file}:{line})");
        }
    }
    for v in &analysis.violations {
        println!("{v}");
    }
    let s = &analysis.stats;
    println!(
        "insane-lint: {} file(s), {} fn(s) ({} hot), {} finding(s), {} waived, {} ms",
        s.files,
        s.functions,
        s.hot_functions,
        analysis.violations.len(),
        s.waived,
        s.elapsed_ms
    );

    if let Some(path) = &json_path {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("insane-lint: cannot create {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        let json = insane_lint::findings::to_json(&analysis.violations, s);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("insane-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("insane-lint: wrote {}", path.display());
    }

    if s.elapsed_ms > u128::from(max_seconds) * 1000 {
        eprintln!(
            "insane-lint: analysis took {} ms, over the {max_seconds}s budget; \
             the linter must stay fast enough to gate every PR",
            s.elapsed_ms
        );
        return ExitCode::from(3);
    }
    if analysis.violations.is_empty() {
        println!("insane-lint: no invariant violations");
        ExitCode::SUCCESS
    } else {
        println!("insane-lint: {} violation(s)", analysis.violations.len());
        ExitCode::FAILURE
    }
}
