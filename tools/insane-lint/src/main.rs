//! CLI wrapper: `cargo run -p insane-lint [root]`.
//!
//! Lints the workspace rooted at `root` (default: the current directory)
//! and exits non-zero if any invariant violation is found, so CI can use
//! it as a required gate (`lint-invariants` job).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let violations = match insane_lint::lint_root(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("insane-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("insane-lint: no invariant violations");
        ExitCode::SUCCESS
    } else {
        println!("insane-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
