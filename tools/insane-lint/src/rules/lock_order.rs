//! Lock-order discipline: builds a lock-acquisition graph (which locks
//! are acquired while which guards are held) across the whole workspace
//! and reports:
//!
//! * `lock-order-cycle` — a cycle in the acquisition order (including a
//!   self-edge: re-acquiring a lock with the same identity while it is
//!   held). Any cycle is a potential deadlock under the right thread
//!   interleaving.
//! * `lock-across-wait` — a guard held across a wait point
//!   (`thread::sleep`/`park`, channel `recv`, `.join()`, condvar
//!   waits). A condvar wait that takes one of the held guards as an
//!   argument (`cv.wait_for(&mut guard, ..)`) *releases* that guard for
//!   the duration of the wait, so only the *other* held guards count.
//!
//! Lock identity is the normalized receiver path: leading `self` is
//! replaced by the impl type and index expressions are stripped, so
//! `self.shards[i][j].rx_inbox.lock()` acquires
//! `Runtime.shards.rx_inbox` in every function. Guards bound with
//! `let g = ...` live to the end of their block (or an explicit
//! `drop(g)`); unbound temporaries live to the end of the statement —
//! over-approximated to the end of the enclosing statement for guards
//! consumed inside `for`/`if` heads.
//!
//! Interprocedural: each function's transitive acquisition set is
//! propagated over the call graph, so holding a guard while calling a
//! function that (transitively) takes another lock creates the same
//! edge a direct acquisition would.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;

use super::{arg_range, method_call, receiver_path, RuleCtx};
use crate::lex::TokKind;
use crate::Violation;

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

const WAIT_METHODS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_while",
    "wait_timeout",
    "wait_until",
    "park_timeout",
];

/// Wait only when called with no arguments: channel `recv()` blocks, but
/// `socket.recv(mode)` / `io::Read`-style `recv(&mut buf)` are the
/// non-blocking datapath receive and must not poison the call graph.
const WAIT_METHODS_NOARG: &[&str] = &["recv", "recv_timeout", "join", "park"];

#[derive(Debug, Clone)]
struct Held {
    lock: String,
    /// Guard binding name (None = temporary).
    binding: Option<String>,
    /// Brace depth (relative to body start) the binding lives in.
    depth: i32,
}

#[derive(Debug, Default)]
struct FnLocks {
    /// Locks this fn acquires directly.
    direct: HashSet<String>,
    /// Does this fn contain a wait point?
    waits: bool,
}

pub fn run(ctx: &RuleCtx<'_>, out: &mut Vec<Violation>) {
    // Pass 1: per-fn direct acquisitions + intra-fn edges and waits.
    let mut edges: HashMap<(String, String), (String, u32)> = HashMap::new();
    let mut per_fn: Vec<FnLocks> = Vec::with_capacity(ctx.graph.fns.len());
    for id in 0..ctx.graph.fns.len() {
        per_fn.push(scan_fn(ctx, id, &mut edges, None, out));
    }

    // Transitive acquisition sets over the call graph (fixpoint).
    let mut trans: Vec<HashSet<String>> = per_fn.iter().map(|f| f.direct.clone()).collect();
    let mut trans_waits: Vec<bool> = per_fn.iter().map(|f| f.waits).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..ctx.graph.fns.len() {
            for &callee in &ctx.graph.edges[id] {
                if trans_waits[callee] && !trans_waits[id] {
                    trans_waits[id] = true;
                    changed = true;
                }
                if !trans[callee].is_subset(&trans[id]) {
                    let add: Vec<String> = trans[callee].difference(&trans[id]).cloned().collect();
                    trans[id].extend(add);
                    changed = true;
                }
            }
        }
    }

    // Pass 2: re-scan with callee summaries to add interprocedural edges
    // and held-across-waiting-callee findings.
    for id in 0..ctx.graph.fns.len() {
        scan_fn(ctx, id, &mut edges, Some((&trans, &trans_waits)), out);
    }

    // Cycle detection over the acquisition graph.
    report_cycles(&edges, out);
}

/// Scans one function. In pass 1 (`summaries == None`) records direct
/// acquisitions/waits and intra-fn findings; in pass 2 adds
/// interprocedural edges and findings only (no duplicate intra-fn ones).
fn scan_fn(
    ctx: &RuleCtx<'_>,
    id: usize,
    edges: &mut HashMap<(String, String), (String, u32)>,
    summaries: Option<(&[HashSet<String>], &[bool])>,
    out: &mut Vec<Violation>,
) -> FnLocks {
    let key = ctx.graph.fns[id];
    let file = &ctx.files[key.file];
    let f = &file.fns[key.idx];
    let mut locks = FnLocks::default();
    if !f.has_body() {
        return locks;
    }
    let tokens = &file.tokens;
    let self_type = f.impl_type.clone().unwrap_or_else(|| f.name.clone());
    let pass2 = summaries.is_some();

    let mut held: Vec<Held> = Vec::new();
    let mut depth: i32 = 0;
    // Calls in this fn, by token index, for pass-2 summary lookup.
    let call_by_tok: HashMap<usize, usize> = if pass2 {
        ctx.graph.calls[id]
            .iter()
            .enumerate()
            .map(|(si, site)| (site.tok, si))
            .collect()
    } else {
        HashMap::new()
    };

    let mut i = f.body.0;
    let end = f.body.1.min(tokens.len());
    while i < end {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            // Bound guards die when their enclosing block closes; unbound
            // temporaries die when depth returns to the level they were
            // acquired at — that `}` closes the block *statement*
            // (`if let`/`for`/`match` head) whose scrutinee produced them.
            held.retain(|h| match h.binding {
                Some(_) => h.depth <= depth,
                None => h.depth < depth,
            });
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            // Temporaries die at statement end (at their own depth).
            held.retain(|h| !(h.binding.is_none() && h.depth >= depth));
            i += 1;
            continue;
        }
        // Explicit drop(name).
        if t.is_ident("drop")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && tokens.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
            && tokens.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            let name = &tokens[i + 2].text;
            held.retain(|h| h.binding.as_deref() != Some(name.as_str()));
            i += 4;
            continue;
        }

        if t.kind == TokKind::Ident {
            let name = t.text.as_str();
            if let Some(open) = method_call(tokens, i) {
                // Blocking acquisition: `.lock()` / `.read()` / `.write()`
                // with no arguments (io::Read::read takes a buffer).
                let zero_arg = tokens.get(open + 1).is_some_and(|n| n.is_punct(')'));
                if ACQUIRE_METHODS.contains(&name) && zero_arg {
                    let (segs, _) = receiver_path(tokens, i - 1);
                    let lock = normalize(&segs, &self_type);
                    if !pass2 {
                        for h in &held {
                            record_edge(edges, &h.lock, &lock, &file.file, t.line);
                        }
                        locks.direct.insert(lock.clone());
                    }
                    // `lock.write().remove(..)` consumes the guard inside
                    // the statement: the let binding (if any) receives the
                    // chained result, not the guard. Only the std
                    // guard-producing adapters keep it alive.
                    let chained_away = tokens.get(open + 2).is_some_and(|n| n.is_punct('.'))
                        && tokens.get(open + 3).is_some_and(|n| {
                            n.kind == TokKind::Ident
                                && !matches!(
                                    n.text.as_str(),
                                    "unwrap" | "expect" | "unwrap_or_else" | "into_inner"
                                )
                        });
                    let binding = if chained_away {
                        None
                    } else {
                        let_binding(tokens, f.body.0, i)
                    };
                    held.push(Held {
                        lock,
                        binding,
                        depth,
                    });
                    i = open;
                    continue;
                }
                // Wait points.
                if WAIT_METHODS.contains(&name) || (WAIT_METHODS_NOARG.contains(&name) && zero_arg)
                {
                    if !pass2 {
                        locks.waits = true;
                        let (a0, a1) = arg_range(tokens, open);
                        let released: HashSet<&str> = tokens[a0..a1]
                            .iter()
                            .filter(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.as_str())
                            .collect();
                        let still_held: Vec<&Held> = held
                            .iter()
                            .filter(|h| {
                                h.binding
                                    .as_deref()
                                    .map(|b| !released.contains(b))
                                    .unwrap_or(true)
                            })
                            .collect();
                        if !still_held.is_empty() {
                            out.push(Violation {
                                file: PathBuf::from(&file.file),
                                line: t.line as usize,
                                rule: "lock-across-wait",
                                message: format!(
                                    "`.{name}(...)` waits while holding {} (in `{}`); \
                                     release the guard before waiting",
                                    list_locks(&still_held),
                                    f.qname
                                ),
                            });
                        }
                    }
                    i = open;
                    continue;
                }
            }
            // thread::sleep / thread::park / yield while holding a guard.
            if !pass2
                && i >= 3
                && tokens[i - 1].is_punct(':')
                && tokens[i - 2].is_punct(':')
                && tokens[i - 3].is_ident("thread")
                && (name == "sleep" || name == "park" || name == "yield_now")
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                locks.waits = true;
                if !held.is_empty() {
                    let all: Vec<&Held> = held.iter().collect();
                    out.push(Violation {
                        file: PathBuf::from(&file.file),
                        line: t.line as usize,
                        rule: "lock-across-wait",
                        message: format!(
                            "`thread::{name}` while holding {} (in `{}`); \
                             release the guard before yielding the CPU",
                            list_locks(&all),
                            f.qname
                        ),
                    });
                }
            }
            // Pass 2: interprocedural — calling a fn that (transitively)
            // acquires locks or waits while we hold a guard.
            if pass2 && !held.is_empty() {
                if let Some(&si) = call_by_tok.get(&i) {
                    let (trans, trans_waits) = summaries.unwrap();
                    let site = &ctx.graph.calls[id][si];
                    // A method invoked *on a held guard* operates on the
                    // locked data through the guard deref, not on the lock
                    // owner — it cannot re-acquire the lock it came from.
                    // Name-based resolution would otherwise link it to
                    // same-named methods on the owner type.
                    if site.is_method && i > 0 {
                        let (segs, _) = receiver_path(tokens, i - 1);
                        let on_guard = segs.first().is_some_and(|head| {
                            held.iter().any(|h| h.binding.as_deref() == Some(head))
                        });
                        if on_guard {
                            i += 1;
                            continue;
                        }
                    }
                    // Resolve via the graph edges (already deduplicated).
                    for &callee in &ctx.graph.edges[id] {
                        let cf = ctx.graph.info(ctx.files, callee);
                        if cf.name != site.name {
                            continue;
                        }
                        for lock in &trans[callee] {
                            // h.lock == lock is a self-edge: re-acquiring
                            // a held lock through a callee deadlocks.
                            for h in &held {
                                record_edge(edges, &h.lock, lock, &file.file, t.line);
                            }
                        }
                        if trans_waits[callee] {
                            let all: Vec<&Held> = held.iter().collect();
                            out.push(Violation {
                                file: PathBuf::from(&file.file),
                                line: t.line as usize,
                                rule: "lock-across-wait",
                                message: format!(
                                    "call to `{}` (which can wait) while holding {} (in `{}`)",
                                    cf.qname,
                                    list_locks(&all),
                                    f.qname
                                ),
                            });
                        }
                    }
                }
            }
        }
        i += 1;
    }
    locks
}

/// If the acquisition at token `at` is the RHS of `let [mut] NAME = ...`,
/// returns the binding name. Searches backwards to the statement start.
///
/// A `match` between the `=` and the acquisition means the guard is a
/// *scrutinee temporary*: the binding receives whatever the arms produce,
/// which is the guard itself only in the poison-recovery idiom
/// (`Err(p) => p.into_inner()` / `Ok(g) => g`). We keep the binding only
/// when the match body mentions `into_inner`; otherwise the arms computed
/// a value and the guard dies when the match closes.
fn let_binding(tokens: &[crate::lex::Token], body_start: usize, at: usize) -> Option<String> {
    let mut k = at;
    let mut via_match = false;
    loop {
        if k <= body_start {
            return None;
        }
        k -= 1;
        let t = &tokens[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.is_ident("match") {
            via_match = true;
        }
        if t.is_punct('=') {
            // `let mut? name =` directly before?
            if k >= 2
                && tokens[k - 1].kind == TokKind::Ident
                && (tokens[k - 2].is_ident("let") || tokens[k - 2].is_ident("mut"))
            {
                if via_match && !match_body_has(tokens, at, "into_inner") {
                    return None;
                }
                return Some(tokens[k - 1].text.clone());
            }
            return None;
        }
    }
}

/// Does the `match` body following the acquisition at `at` contain
/// `ident`? Scans forward to the first `{` and through its matching `}`.
fn match_body_has(tokens: &[crate::lex::Token], at: usize, ident: &str) -> bool {
    let mut j = at;
    while j < tokens.len() && !tokens[j].is_punct('{') {
        j += 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_ident(ident) {
            return true;
        }
        j += 1;
    }
    false
}

fn normalize(segs: &[String], self_type: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for (i, s) in segs.iter().enumerate() {
        if i == 0 && s == "self" {
            parts.push(self_type);
        } else {
            parts.push(s.as_str());
        }
    }
    if parts.is_empty() {
        "<expr>".to_string()
    } else {
        parts.join(".")
    }
}

fn record_edge(
    edges: &mut HashMap<(String, String), (String, u32)>,
    from: &str,
    to: &str,
    file: &str,
    line: u32,
) {
    edges
        .entry((from.to_string(), to.to_string()))
        .or_insert_with(|| (file.to_string(), line));
}

fn list_locks(held: &[&Held]) -> String {
    let names: Vec<String> = held.iter().map(|h| format!("`{}`", h.lock)).collect();
    names.join(", ")
}

/// DFS cycle detection; reports each cycle once at the edge that closes
/// it.
fn report_cycles(edges: &HashMap<(String, String), (String, u32)>, out: &mut Vec<Violation>) {
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    for v in adj.values_mut() {
        v.sort();
    }
    let mut nodes: Vec<&str> = adj.keys().copied().collect();
    nodes.sort();

    let mut reported: HashSet<Vec<String>> = HashSet::new();
    for &start in &nodes {
        // DFS looking for a path back to `start`.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        let mut on_path: HashSet<&str> = [start].into();
        while let Some(top) = stack.last_mut() {
            let node: &str = top.0;
            let succs = adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]);
            if top.1 >= succs.len() {
                on_path.remove(node);
                path.pop();
                stack.pop();
                continue;
            }
            let succ = succs[top.1];
            top.1 += 1;
            if succ == start {
                // Canonical form: rotate so the lexicographically
                // smallest lock comes first, so each cycle reports once.
                let mut cyc: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                let min_pos = cyc
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.as_str())
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                cyc.rotate_left(min_pos);
                if reported.insert(cyc.clone()) {
                    let closing = edges
                        .get(&(path[path.len() - 1].to_string(), start.to_string()))
                        .cloned()
                        .unwrap_or_default();
                    let mut display = cyc.clone();
                    display.push(cyc[0].clone());
                    out.push(Violation {
                        file: PathBuf::from(&closing.0),
                        line: closing.1 as usize,
                        rule: "lock-order-cycle",
                        message: format!(
                            "lock acquisition cycle: {}; a consistent global order is \
                             required to rule out deadlock",
                            display.join(" -> ")
                        ),
                    });
                }
                continue;
            }
            if on_path.contains(succ) {
                continue; // inner cycle; found when DFS starts there
            }
            if path.len() > 16 {
                continue; // depth bound; workspace graphs are tiny
            }
            on_path.insert(succ);
            path.push(succ);
            stack.push((succ, 0));
        }
    }
}
