//! AST-tier rules. Each sub-module implements one analysis over the
//! parsed workspace and pushes [`crate::Violation`]s:
//!
//! * [`hot_path`] — allocation / blocking / implicit-panic discipline in
//!   functions reachable from `hot-path-root` markers.
//! * [`lock_order`] — lock-acquisition ordering graph: cycles and locks
//!   held across wait points fail the build.
//! * [`slot_token`] — `SlotToken` lifecycle: a token bound outside
//!   `insane-memory` must be consumed (released, forwarded, stored or
//!   returned), never silently dropped.

pub mod hot_path;
pub mod lock_order;
pub mod slot_token;

use crate::callgraph::CallGraph;
use crate::lex::{TokKind, Token};
use crate::parse::ParsedFile;

/// Everything a rule needs about the analyzed workspace.
pub struct RuleCtx<'a> {
    pub files: &'a [ParsedFile],
    pub graph: &'a CallGraph,
    /// Per graph fn id: the root it is reachable from (None = not hot).
    pub hot: &'a [Option<usize>],
}

/// Walks backwards from the `.` at `dot` collecting the receiver as a
/// dotted path of identifiers, skipping index expressions (`[...]`) and
/// call argument lists (`(...)`) so `self.shards[i][j].scheduler` and
/// `inner().field` normalize to `self.shards.scheduler` / `.field`.
/// Returns the segments innermost-last, e.g. `["self", "shards",
/// "scheduler"]`, and the token index where the receiver starts.
pub fn receiver_path(tokens: &[Token], dot: usize) -> (Vec<String>, usize) {
    let mut segs: Vec<String> = Vec::new();
    let mut i = dot; // index of the `.` punct
    loop {
        // Before the `.` we expect a path segment end: ident, `]`, `)`,
        // or a numeric tuple index.
        if i == 0 {
            break;
        }
        let mut k = i - 1;
        // Skip balanced `[...]` / `(...)` groups backwards.
        loop {
            let t = &tokens[k];
            if t.is_punct(']') || t.is_punct(')') {
                let (open, close) = if t.is_punct(']') {
                    ('[', ']')
                } else {
                    ('(', ')')
                };
                let mut depth = 0i32;
                while k > 0 {
                    if tokens[k].is_punct(close) {
                        depth += 1;
                    } else if tokens[k].is_punct(open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k -= 1;
                }
                if k == 0 {
                    return (segs, k);
                }
                k -= 1;
            } else {
                break;
            }
        }
        let t = &tokens[k];
        if t.kind == TokKind::Ident {
            segs.insert(0, t.text.clone());
        } else if t.kind == TokKind::Num {
            // Tuple index: keep walking but don't record.
        } else {
            // Receiver starts after this token (a `(`/`=`/`;`/...).
            return (segs, k + 1);
        }
        if k == 0 {
            return (segs, 0);
        }
        // Continue only through a preceding `.`.
        if tokens[k - 1].is_punct('.') {
            i = k - 1;
        } else {
            return (segs, k);
        }
    }
    (segs, i)
}

/// Token index range of a call's argument list, given the index of the
/// opening `(`. Returns the exclusive range of tokens between the parens.
pub fn arg_range(tokens: &[Token], open: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('(') {
            depth += 1;
        } else if tokens[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return (open + 1, i);
            }
        }
        i += 1;
    }
    (open + 1, tokens.len())
}

/// Is `tokens[i]` a method call `.name(`? Returns the index of the `(`.
pub fn method_call(tokens: &[Token], i: usize) -> Option<usize> {
    let t = tokens.get(i)?;
    if t.kind != TokKind::Ident || i == 0 || !tokens[i - 1].is_punct('.') {
        return None;
    }
    // Allow a turbofish between the name and the argument list.
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct(':'))
        && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(j + 2).is_some_and(|t| t.is_punct('<'))
    {
        let mut angle = 0i32;
        j += 2;
        while j < tokens.len() {
            if tokens[j].is_punct('<') {
                angle += 1;
            } else if tokens[j].is_punct('>') {
                angle -= 1;
                if angle == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    tokens.get(j).filter(|t| t.is_punct('(')).map(|_| j)
}
