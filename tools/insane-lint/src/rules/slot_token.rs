//! Slot-token lifecycle: `SlotToken` is `Copy` and has **no** `Drop` —
//! silently letting one fall out of scope outside `insane-memory` leaks
//! its slot forever (the pool's generation check means nothing can ever
//! release it again). This rule tracks token-producing bindings per
//! function and flags paths where a token can be dropped instead of
//! being released, forwarded, stored, or returned.
//!
//! A binding is token-producing when its initializer contains
//! `.into_token()` or it carries an explicit `SlotToken` type
//! ascription; `SlotToken`-typed by-value parameters count too.
//! Consumption = any later mention of the name (a move into a struct
//! literal / call / return all qualify — the rule is deliberately
//! over-permissive about *how* a token is consumed and strict about it
//! happening at all). Additional finding: a `?` operator between the
//! binding and its first use can early-return and drop the token.
//!
//! Rule name: `slot-token-drop`. `crates/memory` (the token's home,
//! where minting and releasing live) is exempt; test code is exempt.

use std::path::PathBuf;

use super::RuleCtx;
use crate::lex::TokKind;
use crate::Violation;

pub fn run(ctx: &RuleCtx<'_>, out: &mut Vec<Violation>) {
    for (fi, file) in ctx.files.iter().enumerate() {
        if file.file.starts_with("crates/memory/") {
            continue;
        }
        for (xi, f) in file.fns.iter().enumerate() {
            if f.is_test || !f.has_body() {
                continue;
            }
            // Only non-test graph fns (cold fns still must not leak).
            if ctx.graph.id_of(fi, xi).is_none() {
                continue;
            }
            check_fn(file, f, out);
        }
    }
}

fn check_fn(file: &crate::parse::ParsedFile, f: &crate::parse::FnInfo, out: &mut Vec<Violation>) {
    let tokens = &file.tokens;

    // SlotToken-typed by-value parameters: `name: SlotToken`.
    let (s0, s1) = f.sig;
    let mut i = s0;
    while i + 2 < s1.min(tokens.len()) {
        if tokens[i].kind == TokKind::Ident
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_ident("SlotToken")
            && !(i > s0 && tokens[i - 1].is_punct('&'))
        {
            let name = tokens[i].text.clone();
            let used = tokens[f.body.0..f.body.1.min(tokens.len())]
                .iter()
                .any(|t| t.is_ident(&name));
            if !used {
                out.push(Violation {
                    file: PathBuf::from(&file.file),
                    line: tokens[i].line as usize,
                    rule: "slot-token-drop",
                    message: format!(
                        "`SlotToken` parameter `{name}` of `{}` is never consumed: the \
                         token is silently dropped and its slot leaks; release it or \
                         return it via a typed error",
                        f.qname
                    ),
                });
            }
        }
        i += 1;
    }

    // `let` bindings whose initializer produces a token.
    let end = f.body.1.min(tokens.len());
    let mut i = f.body.0;
    while i < end {
        if !tokens[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = tokens.get(j) else { break };
        let (name, discard) = if name_tok.kind == TokKind::Ident && name_tok.text != "_" {
            (name_tok.text.clone(), false)
        } else if name_tok.is_ident("_") || name_tok.is_punct('_') {
            (String::new(), true)
        } else {
            // Pattern binding (tuple/struct destructuring): skip.
            i = j;
            continue;
        };
        // Find the statement end (`;` at this nesting level).
        let mut k = j + 1;
        let mut depth = 0i32;
        let mut stmt_end = end;
        while k < end {
            let t = &tokens[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    stmt_end = k;
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                stmt_end = k;
                break;
            }
            k += 1;
        }
        let init = &tokens[j + 1..stmt_end];
        let produces_token = init
            .windows(2)
            .any(|w| w[0].is_punct('.') && w[1].is_ident("into_token"))
            || init
                .windows(2)
                .any(|w| w[0].is_punct(':') && w[1].is_ident("SlotToken"));
        if !produces_token {
            i = j;
            continue;
        }
        let line = name_tok.line;
        if discard {
            out.push(Violation {
                file: PathBuf::from(&file.file),
                line: line as usize,
                rule: "slot-token-drop",
                message: format!(
                    "`let _ = ...into_token()` in `{}` discards a `SlotToken`; the slot \
                     leaks — release it through the pool or forward it",
                    f.qname
                ),
            });
            i = stmt_end + 1;
            continue;
        }
        // First use after the binding statement.
        let first_use = tokens[stmt_end..end]
            .iter()
            .position(|t| t.is_ident(&name))
            .map(|p| stmt_end + p);
        match first_use {
            None => {
                out.push(Violation {
                    file: PathBuf::from(&file.file),
                    line: line as usize,
                    rule: "slot-token-drop",
                    message: format!(
                        "`SlotToken` bound to `{name}` in `{}` is never consumed: the \
                         token is silently dropped and its slot leaks",
                        f.qname
                    ),
                });
            }
            Some(use_idx) => {
                if let Some(q) = tokens[stmt_end..use_idx].iter().find(|t| t.is_punct('?')) {
                    out.push(Violation {
                        file: PathBuf::from(&file.file),
                        line: q.line as usize,
                        rule: "slot-token-drop",
                        message: format!(
                            "`?` can early-return before the `SlotToken` in `{name}` is \
                             consumed (in `{}`); release the token on the error path first",
                            f.qname
                        ),
                    });
                }
            }
        }
        i = stmt_end + 1;
    }
}
