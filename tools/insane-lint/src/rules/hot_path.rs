//! Hot-path discipline: functions reachable from `hot-path-root`
//! markers must not allocate, block, or carry implicit panic sites.
//!
//! Four rules, individually waivable:
//!
//! * `hot-path-alloc` — heap allocation: `Box::new`/`Arc::new`/...,
//!   growing-collection methods (`push`, `extend`, `collect`,
//!   `to_string`, ...) on receivers that are not per-shard scratch, and
//!   the `format!`/`vec!` macros. Receivers whose path mentions
//!   `scratch` (or the `out` out-parameter idiom) are exempt: reusing
//!   pre-sized scratch capacity is the sanctioned pattern (amortized
//!   allocation-free, see DESIGN.md §9).
//! * `hot-path-block` — blocking: `.lock()`, condvar/thread waits,
//!   `thread::sleep`, channel `recv`. `try_lock`/`try_read`/`try_write`
//!   are non-blocking and exempt.
//! * `hot-path-rwlock` — reader-writer locks: zero-arg `.read()`/
//!   `.write()` (so `io::Read::read(&mut buf)` is not confused with
//!   `RwLock::read()`). Split out from `hot-path-block` because the fix
//!   differs: even the *uncontended* read side is an atomic RMW on a
//!   shared cache line, so read-mostly state belongs in a
//!   `SnapshotCell` (publish-on-write, one plain atomic load per poll
//!   iteration to read — DESIGN.md §12), not behind a cheaper lock.
//! * `hot-path-panic` — implicit panics: `.unwrap()`/`.expect()`,
//!   panic-family and assert macros (`debug_assert*` excluded — it
//!   compiles out of the release hot path), indexing/slicing, and `/`
//!   or `%` with a non-literal divisor.

use std::collections::HashSet;
use std::path::PathBuf;

use super::{method_call, receiver_path, RuleCtx};
use crate::lex::TokKind;
use crate::parse::is_keyword;
use crate::Violation;

const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "extend",
    "extend_from_slice",
    "insert",
    "append",
    "reserve",
    "reserve_exact",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "into_boxed_slice",
    "split_off",
];

/// `Qualifier::name` pairs that always allocate.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Box", "new"),
    ("Box", "pin"),
    ("Arc", "new"),
    ("Rc", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("VecDeque", "with_capacity"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("HashMap", "with_capacity"),
    ("HashSet", "with_capacity"),
];

const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Blocking zero-arg methods (lock acquisition, channel receives, and
/// waits). `recv` counts only with no arguments: `socket.recv(mode)` is
/// the non-blocking datapath receive.
const BLOCK_METHODS_NOARG: &[&str] = &["lock", "park", "join", "recv", "recv_timeout"];

/// Reader-writer-lock acquisition, zero-arg only (`io::Read::read(&mut
/// buf)` and `io::Write::write(&buf)` take arguments and are exempt).
/// Reported as `hot-path-rwlock`, separate from `hot-path-block`: the
/// remedy is a snapshot cell, not a try_ variant.
const RWLOCK_METHODS_NOARG: &[&str] = &["read", "write"];

/// Blocking methods regardless of arity (condvar waits).
const BLOCK_METHODS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_while",
    "wait_timeout",
    "wait_until",
    "park_timeout",
];

/// `qualifier::name` blocking calls.
const BLOCK_PATHS: &[(&str, &str)] = &[
    ("thread", "sleep"),
    ("thread", "park"),
    ("thread", "yield_now"),
];

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

pub fn run(ctx: &RuleCtx<'_>, out: &mut Vec<Violation>) {
    for (id, prov) in ctx.hot.iter().enumerate() {
        let Some(root) = prov else { continue };
        let key = ctx.graph.fns[id];
        let file = &ctx.files[key.file];
        let f = &file.fns[key.idx];
        if !f.has_body() {
            continue;
        }
        let root_name = ctx.graph.info(ctx.files, *root).qname.clone();
        let via = if *root == id {
            format!("hot-path root `{}`", f.qname)
        } else {
            format!(
                "`{}`, reachable from hot-path root `{}`",
                f.qname, root_name
            )
        };
        check_body(file, f.body.0, f.body.1, &via, out);
    }
}

fn check_body(
    file: &crate::parse::ParsedFile,
    start: usize,
    end: usize,
    via: &str,
    out: &mut Vec<Violation>,
) {
    let tokens = &file.tokens;
    // One finding per (rule, line, detail) keeps repeated sites on a
    // line (e.g. `a[i] + b[j]`) from flooding the report.
    let mut seen: HashSet<(&'static str, u32, String)> = HashSet::new();
    let mut push = |seen: &mut HashSet<(&'static str, u32, String)>,
                    rule: &'static str,
                    line: u32,
                    what: &str,
                    hint: &str| {
        if seen.insert((rule, line, what.to_string())) {
            out.push(Violation {
                file: PathBuf::from(&file.file),
                line: line as usize,
                rule,
                message: format!("{what} in {via}; {hint}"),
            });
        }
    };

    let mut i = start;
    while i < end.min(tokens.len()) {
        let t = &tokens[i];

        // Macros.
        if t.kind == TokKind::Ident && tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            let name = t.text.as_str();
            if ALLOC_MACROS.contains(&name) {
                push(
                    &mut seen,
                    "hot-path-alloc",
                    t.line,
                    &format!("`{name}!` allocates"),
                    "build into per-shard scratch instead",
                );
            }
            if PANIC_MACROS.contains(&name) {
                push(
                    &mut seen,
                    "hot-path-panic",
                    t.line,
                    &format!("`{name}!` can panic"),
                    "return a typed error or restructure the invariant",
                );
            }
            i += 2;
            continue;
        }

        // Method calls.
        if let Some(open) = method_call(tokens, i) {
            let name = t.text.as_str();
            let zero_arg = tokens.get(open + 1).is_some_and(|n| n.is_punct(')'));
            if ALLOC_METHODS.contains(&name) {
                let (segs, _) = receiver_path(tokens, i - 1);
                let scratchy = segs.iter().any(|s| s.contains("scratch") || s == "out");
                if !scratchy {
                    push(
                        &mut seen,
                        "hot-path-alloc",
                        t.line,
                        &format!("`.{name}(...)` may (re)allocate on `{}`", segs.join(".")),
                        "route through per-shard scratch or pre-size the buffer",
                    );
                }
            }
            if (BLOCK_METHODS_NOARG.contains(&name) && zero_arg) || BLOCK_METHODS.contains(&name) {
                push(
                    &mut seen,
                    "hot-path-block",
                    t.line,
                    &format!("`.{name}(...)` can block"),
                    "use a try_ variant or move the wait off the hot path",
                );
            }
            if RWLOCK_METHODS_NOARG.contains(&name) && zero_arg {
                push(
                    &mut seen,
                    "hot-path-rwlock",
                    t.line,
                    &format!("`.{name}()` acquires a reader-writer lock"),
                    "publish the state through a SnapshotCell and read the snapshot instead",
                );
            }
            if PANIC_METHODS.contains(&name) {
                push(
                    &mut seen,
                    "hot-path-panic",
                    t.line,
                    &format!("`.{name}(...)` panics on the error path"),
                    "return a typed error",
                );
            }
            i += 1;
            continue;
        }

        // Path calls `Qualifier::name(`.
        if t.kind == TokKind::Ident
            && i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].kind == TokKind::Ident
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let q = tokens[i - 3].text.as_str();
            let name = t.text.as_str();
            if ALLOC_PATHS.contains(&(q, name)) {
                push(
                    &mut seen,
                    "hot-path-alloc",
                    t.line,
                    &format!("`{q}::{name}(...)` allocates"),
                    "hoist the allocation out of the hot path (scratch or setup time)",
                );
            }
            if BLOCK_PATHS.contains(&(q, name)) {
                push(
                    &mut seen,
                    "hot-path-block",
                    t.line,
                    &format!("`{q}::{name}(...)` blocks or yields to the OS"),
                    "hot shards must stay on-CPU; move the wait to the idle loop",
                );
            }
        }

        // Indexing / slicing: `expr[...]`.
        if t.is_punct('[') && i > start {
            let prev = &tokens[i - 1];
            let indexable = (prev.kind == TokKind::Ident && !is_keyword(&prev.text))
                || prev.is_punct(')')
                || prev.is_punct(']');
            if indexable {
                push(
                    &mut seen,
                    "hot-path-panic",
                    t.line,
                    "indexing/slicing can panic out of bounds",
                    "use get()/get_mut() or prove the bound with a guard",
                );
            }
        }

        // Division / modulo with a non-literal divisor.
        if (t.is_punct('/') || t.is_punct('%')) && i > start {
            let prev = &tokens[i - 1];
            let binary = (prev.kind == TokKind::Ident && !is_keyword(&prev.text))
                || prev.is_punct(')')
                || prev.is_punct(']')
                || prev.kind == TokKind::Num;
            if binary {
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|n| n.is_punct('=')) {
                    j += 1; // `/=` / `%=` compound assignment
                }
                let literal_divisor = tokens.get(j).is_some_and(|n| n.kind == TokKind::Num);
                if !literal_divisor {
                    push(
                        &mut seen,
                        "hot-path-panic",
                        t.line,
                        &format!("`{}` with a non-literal divisor can panic", t.text),
                        "guard the zero case or use checked_div/checked_rem",
                    );
                }
            }
        }

        i += 1;
    }
}
