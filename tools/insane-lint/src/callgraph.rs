//! Workspace-wide call graph over the parsed files.
//!
//! Resolution is name-based and deliberately over-approximate: a free or
//! path call `foo(...)` / `Type::foo(...)` links to every workspace
//! function named `foo` that the qualifier does not rule out, and a
//! method call `.foo(...)` links to every impl method named `foo`.  Two
//! guards keep the over-approximation from drowning the hot-path rules:
//!
//! * `#[cfg(test)]` functions are not graph nodes at all — calls never
//!   resolve *to* them and their bodies are never walked, so hot-path
//!   reachability provably stops at test boundaries.
//! * Method names that collide with ubiquitous std methods (`push`,
//!   `len`, `get`, ...) produce no edges; the hot queue/pool methods
//!   behind those names carry explicit `hot-path-root` markers instead.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::lex::{TokKind, Token};
use crate::parse::{is_keyword, FnInfo, ParsedFile};

/// Method names too generic to resolve through the graph: nearly every
/// call with one of these names targets std/alloc types.  Workspace hot
/// functions that happen to use such a name (e.g. `MpmcQueue::push`) are
/// annotated as hot-path roots directly.
const AMBIGUOUS_METHODS: &[&str] = &[
    "push",
    "pop",
    "len",
    "is_empty",
    "get",
    "set",
    "insert",
    "remove",
    "clear",
    "drain",
    "iter",
    "next",
    "clone",
    "take",
    "contains",
    "send",
    "recv",
    "read",
    "write",
    "lock",
    "flush",
    "poll",
    "new",
    "default",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "extend",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "start",
    "end",
    "min",
    "max",
];

/// Flat function id: index into [`CallGraph::fns`].
pub type FnId = usize;

/// A (file index, fn index) key back into the parsed files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnKey {
    pub file: usize,
    pub idx: usize,
}

/// One call site extracted from a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (last path segment / method name).
    pub name: String,
    /// Path segment directly before the name (`Type::name`), if any.
    pub qualifier: Option<String>,
    /// True for `.name(...)` receiver calls.
    pub is_method: bool,
    /// Token index of the name token (within the owning file).
    pub tok: usize,
    pub line: u32,
}

pub struct CallGraph {
    pub fns: Vec<FnKey>,
    /// Resolved workspace callees per function.
    pub edges: Vec<Vec<FnId>>,
    /// All call sites per function (resolved or not) for rule reuse.
    pub calls: Vec<Vec<CallSite>>,
    /// Maps (file, fn idx) to flat id.
    index: HashMap<(usize, usize), FnId>,
}

impl CallGraph {
    pub fn id_of(&self, file: usize, idx: usize) -> Option<FnId> {
        self.index.get(&(file, idx)).copied()
    }

    pub fn info<'a>(&self, files: &'a [ParsedFile], id: FnId) -> &'a FnInfo {
        let key = self.fns[id];
        &files[key.file].fns[key.idx]
    }
}

/// Builds the graph. Test functions are excluded entirely.
pub fn build(files: &[ParsedFile]) -> CallGraph {
    let mut fns = Vec::new();
    let mut index = HashMap::new();
    // Name -> candidate fn ids (non-test only).
    let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();

    for (fi, file) in files.iter().enumerate() {
        for (xi, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let id = fns.len();
            fns.push(FnKey { file: fi, idx: xi });
            index.insert((fi, xi), id);
            by_name.entry(f.name.as_str()).or_default().push(id);
        }
    }

    let mut edges = vec![Vec::new(); fns.len()];
    let mut calls = vec![Vec::new(); fns.len()];
    for (id, key) in fns.iter().enumerate() {
        let file = &files[key.file];
        let f = &file.fns[key.idx];
        if !f.has_body() {
            continue;
        }
        let sites = extract_calls(&file.tokens, f.body.0, f.body.1);
        let caller_crate = crate_of(&file.file);
        let mut out: Vec<FnId> = Vec::new();
        for site in &sites {
            for cand in resolve(files, &fns, &by_name, f, caller_crate, site) {
                if cand != id && !out.contains(&cand) {
                    out.push(cand);
                }
            }
        }
        edges[id] = out;
        calls[id] = sites;
    }

    CallGraph {
        fns,
        edges,
        calls,
        index,
    }
}

/// Extracts call sites from a body token range.
pub fn extract_calls(tokens: &[Token], start: usize, end: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            i += 1;
            continue;
        }
        // Macro invocation: `name!` — not a call edge (macro bodies are
        // invisible at the invocation site); rules match these directly.
        if tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            i += 2;
            continue;
        }
        // Optional turbofish between name and argument list.
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_punct(':'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(j + 2).is_some_and(|t| t.is_punct('<'))
        {
            let mut angle = 0i32;
            j += 2;
            while j < tokens.len() {
                if tokens[j].is_punct('<') {
                    angle += 1;
                } else if tokens[j].is_punct('>') {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let is_method = i >= 1 && tokens[i - 1].is_punct('.');
        let qualifier = if !is_method
            && i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].kind == TokKind::Ident
        {
            Some(tokens[i - 3].text.clone())
        } else {
            None
        };
        out.push(CallSite {
            name: t.text.clone(),
            qualifier,
            is_method,
            tok: i,
            line: t.line,
        });
        i = j;
    }
    out
}

fn resolve(
    files: &[ParsedFile],
    fns: &[FnKey],
    by_name: &HashMap<&str, Vec<FnId>>,
    caller: &FnInfo,
    caller_crate: &str,
    site: &CallSite,
) -> Vec<FnId> {
    if site.is_method && AMBIGUOUS_METHODS.contains(&site.name.as_str()) {
        return Vec::new();
    }
    let Some(cands) = by_name.get(site.name.as_str()) else {
        return Vec::new();
    };
    let info = |id: &FnId| -> &FnInfo {
        let k = fns[*id];
        &files[k.file].fns[k.idx]
    };
    if site.is_method {
        let impls: Vec<FnId> = cands
            .iter()
            .filter(|id| info(id).impl_type.is_some())
            .copied()
            .collect();
        // With many same-named impls (`snapshot`, `connect`, ...) a
        // name-only match links essentially unrelated code; degrade to
        // no edges like the fixed AMBIGUOUS_METHODS list. Hot-path
        // reachability compensates with explicit root markers.
        if impls.len() >= 4 {
            return Vec::new();
        }
        // Same-crate candidates win over cross-crate name twins
        // (`TrafficClass::value` must not drag in `json::Parser::value`).
        // Cross-crate dispatch through traits is covered by explicit
        // `hot-path-root` markers on the trait impls instead.
        let same_crate: Vec<FnId> = impls
            .iter()
            .filter(|id| crate_of(&files[fns[**id].file].file) == caller_crate)
            .copied()
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        return impls;
    }
    match &site.qualifier {
        Some(q) if q == "self" || q == "Self" => {
            let same_impl: Vec<FnId> = cands
                .iter()
                .filter(|id| info(id).impl_type == caller.impl_type)
                .copied()
                .collect();
            if same_impl.is_empty() {
                cands.clone()
            } else {
                same_impl
            }
        }
        Some(q) => {
            // `Type::name` or `module::name`: keep candidates the
            // qualifier plausibly names; if the qualifier matches nothing
            // in the workspace (std types like `Instant::now`), resolve
            // to nothing rather than over-linking.
            let matched: Vec<FnId> = cands
                .iter()
                .filter(|id| {
                    let f = info(id);
                    f.impl_type.as_deref() == Some(q.as_str())
                        || f.module.iter().any(|m| m == q)
                        || file_stem(&files[fns[**id].file].file) == q.as_str()
                })
                .copied()
                .collect();
            matched
        }
        None => {
            // Bare call: free functions only (associated fns need a path).
            let free: Vec<FnId> = cands
                .iter()
                .filter(|id| info(id).impl_type.is_none())
                .copied()
                .collect();
            free
        }
    }
}

/// Crate-identifying prefix of a repo-relative path: the first two
/// components (`crates/core`, `tools/insanectl`), or the first one for
/// top-level `src/`/`tests/`.
fn crate_of(rel: &str) -> &str {
    let mut end = 0;
    let mut slashes = 0;
    for (i, c) in rel.char_indices() {
        if c == '/' {
            slashes += 1;
            end = i;
            if slashes == 2 {
                break;
            }
        }
    }
    if slashes == 0 {
        rel
    } else {
        &rel[..end]
    }
}

fn file_stem(rel: &str) -> &str {
    let base = rel.rsplit('/').next().unwrap_or(rel);
    let stem = base.strip_suffix(".rs").unwrap_or(base);
    if stem == "mod" || stem == "lib" || stem == "main" {
        // `foo/mod.rs` — the module name is the directory.
        let mut parts = rel.rsplit('/');
        parts.next();
        parts.next().unwrap_or(stem)
    } else {
        stem
    }
}

/// BFS from every `hot-path-root` function.  Returns, per fn id, the id
/// of the root it was first reached from (`None` = not hot).  Expansion
/// stops at `cold-path` functions: they are neither included nor
/// descended into.
pub fn hot_provenance(files: &[ParsedFile], graph: &CallGraph) -> Vec<Option<FnId>> {
    let mut prov: Vec<Option<FnId>> = vec![None; graph.fns.len()];
    let mut queue = VecDeque::new();
    for (id, key) in graph.fns.iter().enumerate() {
        let f = &files[key.file].fns[key.idx];
        if f.hot_root && !f.cold {
            prov[id] = Some(id);
            queue.push_back(id);
        }
    }
    let mut seen: HashSet<FnId> = queue.iter().copied().collect();
    while let Some(id) = queue.pop_front() {
        let root = prov[id];
        for &callee in &graph.edges[id] {
            if seen.contains(&callee) {
                continue;
            }
            let f = graph.info(files, callee);
            if f.cold {
                continue;
            }
            seen.insert(callee);
            prov[callee] = root;
            queue.push_back(callee);
        }
    }
    prov
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn ws(srcs: &[(&str, &str)]) -> Vec<ParsedFile> {
        srcs.iter()
            .map(|(rel, src)| parse_file(rel, lex(src), false))
            .collect()
    }

    fn hot_names(files: &[ParsedFile]) -> Vec<String> {
        let graph = build(files);
        let prov = hot_provenance(files, &graph);
        let mut out: Vec<String> = prov
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(id, _)| graph.info(files, id).qname.clone())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn reachability_follows_free_and_method_calls() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            "// insane-lint: hot-path-root\nfn root() { helper(); S::assoc(); }\nfn helper() { leaf(); }\nfn leaf() {}\nfn unrelated() {}\nstruct S;\nimpl S { fn assoc() {} }\n",
        )]);
        assert_eq!(
            hot_names(&files),
            vec!["S::assoc", "helper", "leaf", "root"]
        );
    }

    #[test]
    fn reachability_stops_at_cfg_test_boundaries() {
        // `helper` is shared; the test-only fn that also calls it (and
        // calls `test_only_alloc`) must not appear in the graph, and hot
        // reachability must not leak through it.
        let files = ws(&[(
            "crates/a/src/lib.rs",
            "// insane-lint: hot-path-root\nfn root() { helper(); }\nfn helper() {}\nfn test_only_target() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    fn bridge() { helper(); test_only_target(); }\n    #[test]\n    fn t() { bridge(); }\n}\n",
        )]);
        let names = hot_names(&files);
        assert_eq!(names, vec!["helper", "root"]);
        // The test fns are not graph nodes at all.
        let graph = build(&files);
        for id in 0..graph.fns.len() {
            assert!(!graph.info(&files, id).is_test);
        }
    }

    #[test]
    fn reachability_stops_at_cold_path_markers() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            "// insane-lint: hot-path-root\nfn root() { control(); fast(); }\n// insane-lint: cold-path -- failover transition only\nfn control() { deep(); }\nfn deep() {}\nfn fast() {}\n",
        )]);
        assert_eq!(hot_names(&files), vec!["fast", "root"]);
    }

    #[test]
    fn ambiguous_method_names_do_not_link() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            "// insane-lint: hot-path-root\nfn root(q: Q) { q.push(1); }\nstruct Q;\nimpl Q { fn push(&self, _x: u8) { expensive(); } }\nfn expensive() {}\n",
        )]);
        // `.push(` must not link; Q::push would need its own root marker.
        assert_eq!(hot_names(&files), vec!["root"]);
    }

    #[test]
    fn qualified_calls_resolve_across_files() {
        let files = ws(&[
            (
                "crates/a/src/shard.rs",
                "pub fn shard_of_channel() { inner(); }\nfn inner() {}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "// insane-lint: hot-path-root\nfn root() { shard::shard_of_channel(); }\n",
            ),
        ]);
        let names = hot_names(&files);
        assert!(names.contains(&"shard_of_channel".to_string()));
        assert!(names.contains(&"inner".to_string()));
    }

    #[test]
    fn unknown_qualifiers_do_not_over_link() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            "// insane-lint: hot-path-root\nfn root() { Instant::now(); }\nstruct C;\nimpl C { fn now() { slow(); } }\nfn slow() {}\n",
        )]);
        assert_eq!(hot_names(&files), vec!["root"]);
    }
}
