//! Full-file lexer: turns Rust source into a flat token stream plus a
//! list of *discrete comment tokens*, each tagged with its lexical
//! position (line comment, single-line block comment, or the interior
//! line of a multi-line block comment).
//!
//! This is the foundation of the v2 analyzer: the parser
//! ([`crate::parse`]) walks the token stream to find items, and waiver /
//! marker directives are parsed **only** from `Comment` entries — never
//! from string literals and never from the interior of a multi-line
//! block comment — which closes the substring-matching hole in the v1
//! line scanner ([`crate::scan`], kept as the regex fallback tier).
//!
//! The workspace builds offline and cannot pull `syn`, so the lexer is
//! hand-rolled; it understands nested block comments, string/byte-string
//! literals with escapes, raw strings with arbitrary `#` fences, and
//! char literals vs. lifetimes (including `'\''`).

/// Token classification. Literal contents are not preserved (rules never
/// need them); identifier text is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct,
    Str,
    Char,
    Num,
    Lifetime,
}

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Identifier text, the single punctuation character, or a
    /// placeholder for literals/lifetimes.
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Where a comment sits lexically. Only `Line` and `Block` comments may
/// carry `insane-lint:` directives; `BlockInterior` lines (the middle of
/// a multi-line `/* ... */`, e.g. commented-out code) never mint waivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommentKind {
    /// `// ...`, `/// ...`, `//! ...` (text keeps the extra `/` or `!`).
    Line,
    /// A `/* ... */` that opens and closes on one line.
    Block,
    /// One physical line of a multi-line block comment.
    BlockInterior,
}

/// A discrete comment token.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment text sits on.
    pub line: u32,
    /// Comment text without the `//` / `/*` delimiters.
    pub text: String,
    pub kind: CommentKind,
    /// True when no code token precedes the comment on its line.
    pub own_line: bool,
}

/// Lexer output: the token stream and every comment, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `source`. Unterminated constructs are tolerated (the lexer is a
/// linter front-end, not a compiler): they run to end of input.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_has_code = false;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let next = chars.get(i + 1).copied();

        // Line comment.
        if c == '/' && next == Some('/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..j].iter().collect(),
                kind: CommentKind::Line,
                own_line: !line_has_code,
            });
            i = j;
            continue;
        }

        // Block comment (nesting supported).
        if c == '/' && next == Some('*') {
            let own = !line_has_code;
            let open_line = line;
            let mut depth = 1u32;
            let mut j = i + 2;
            let mut cur = String::new();
            let mut parts: Vec<(u32, String)> = Vec::new();
            let mut cur_line = line;
            while j < chars.len() && depth > 0 {
                let cj = chars[j];
                let nj = chars.get(j + 1).copied();
                if cj == '*' && nj == Some('/') {
                    depth -= 1;
                    j += 2;
                } else if cj == '/' && nj == Some('*') {
                    depth += 1;
                    j += 2;
                } else if cj == '\n' {
                    parts.push((cur_line, std::mem::take(&mut cur)));
                    line += 1;
                    cur_line = line;
                    j += 1;
                } else {
                    cur.push(cj);
                    j += 1;
                }
            }
            parts.push((cur_line, cur));
            if line == open_line {
                // Single-line `/* ... */`: one discrete comment token.
                let text = parts.pop().map(|p| p.1).unwrap_or_default();
                out.comments.push(Comment {
                    line: open_line,
                    text,
                    kind: CommentKind::Block,
                    own_line: own,
                });
            } else {
                for (idx, (ln, text)) in parts.into_iter().enumerate() {
                    out.comments.push(Comment {
                        line: ln,
                        text,
                        kind: CommentKind::BlockInterior,
                        own_line: if idx == 0 { own } else { true },
                    });
                }
                // The close line holds only the comment so far.
                line_has_code = false;
            }
            i = j;
            continue;
        }

        // Ordinary (escaped) string / byte string.
        if c == '"' {
            let mut j = i + 1;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            line_has_code = true;
            i = j;
            continue;
        }

        // Raw string / raw byte string: r"...", r#"..."#, br##"..."##.
        if (c == 'r' || c == 'b') && is_raw_string_start(&chars, i) {
            let (fence, before_quote) = raw_string_fence(&chars, i);
            let mut j = i + before_quote + 1;
            while j < chars.len() {
                if chars[j] == '"' && closes_raw_string(&chars, j, fence) {
                    j += 1 + fence as usize;
                    break;
                }
                if chars[j] == '\n' {
                    line += 1;
                }
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            line_has_code = true;
            i = j;
            continue;
        }

        // Char literal vs. lifetime/label.
        if c == '\'' {
            if next == Some('\\') {
                // Escaped char literal, e.g. '\n', '\'', '\u{7d}'. The
                // char after the backslash is always literal content, so
                // `'\''` closes at index i+3, not at the escaped quote.
                let mut j = i + 3;
                while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                    j += 1;
                }
                if chars.get(j) == Some(&'\'') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                line_has_code = true;
                i = j;
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                line_has_code = true;
                i += 3;
                continue;
            }
            // Lifetime or loop label: 'a, 'static, 'outer.
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Lifetime,
                text: chars[i + 1..j].iter().collect(),
                line,
            });
            line_has_code = true;
            i = j;
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            line_has_code = true;
            i = j;
            continue;
        }

        // Numeric literal (loose: suffixes, hex, floats, exponents).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < chars.len() {
                let cj = chars[j];
                let continues_number = cj.is_alphanumeric()
                    || cj == '_'
                    || (cj == '.'
                        && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit())
                        && chars.get(j.wrapping_sub(1)) != Some(&'.'))
                    || ((cj == '+' || cj == '-')
                        && matches!(chars.get(j.wrapping_sub(1)), Some('e') | Some('E')));
                if !continues_number {
                    break;
                }
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Num,
                text: chars[i..j].iter().collect(),
                line,
            });
            line_has_code = true;
            i = j;
            continue;
        }

        // Single-character punctuation.
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        line_has_code = true;
        i += 1;
    }
    out
}

/// Is `chars[i]` the start of `r"`, `r#"`, `b"`? (Only raw forms; plain
/// `b"` byte strings take the escaped-string path via `"` — this helper
/// requires an `r`.)
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Returns `(fence_hash_count, chars_before_opening_quote)`.
fn raw_string_fence(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    }
    let mut fence = 0u32;
    while chars.get(j) == Some(&'#') {
        fence += 1;
        j += 1;
    }
    (fence, j - i)
}

fn closes_raw_string(chars: &[char], i: usize, fence: u32) -> bool {
    (1..=fence as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_produce_no_ident_tokens() {
        let toks = idents("let s = \"unsafe panic! lock()\";");
        assert_eq!(toks, vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = idents("let p = r#\"lock() \"quoted\" \"#; call();");
        assert_eq!(toks, vec!["let", "p", "call"]);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_derail() {
        // `'\''` once tripped the v1 scanner into closing the literal at
        // the escaped quote; the lexer must treat the escape as content.
        let toks = idents("let q = '\\''; let s = \" // insane-lint: allow(x) -- y\"; f();");
        assert_eq!(toks, vec!["let", "q", "let", "s", "f"]);
        let lexed = lex("let q = '\\''; let s = \" // not a comment\";");
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(c: char) { let q = '{'; g::<'a>(); }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let braces = lexed.tokens.iter().filter(|t| t.is_punct('{')).count();
        assert_eq!(braces, 1);
    }

    #[test]
    fn comment_kinds_and_own_line() {
        let src = "// top\nlet x = 1; // trailing\n/* one-liner */\n/* multi\nline */\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 5);
        assert_eq!(lexed.comments[0].kind, CommentKind::Line);
        assert!(lexed.comments[0].own_line);
        assert_eq!(lexed.comments[1].kind, CommentKind::Line);
        assert!(!lexed.comments[1].own_line);
        assert_eq!(lexed.comments[2].kind, CommentKind::Block);
        assert_eq!(lexed.comments[3].kind, CommentKind::BlockInterior);
        assert_eq!(lexed.comments[4].kind, CommentKind::BlockInterior);
        assert!(lexed.comments[3].text.contains("multi"));
    }

    #[test]
    fn nested_block_comment_is_one_comment() {
        let lexed = lex("/* outer /* inner */ tail */ code()");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].kind, CommentKind::Block);
        assert!(lexed.comments[0].text.contains("tail"));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("code")));
    }

    #[test]
    fn line_numbers_advance_through_multiline_strings() {
        let lexed = lex("let a = \"x\ny\";\nfn b() {}\n");
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }
}
