//! `insanectl` — live introspection client for the INSANE runtime.
//!
//! Talks the one-line protocol of [`Runtime::serve_introspection`]
//! (a Unix-domain socket; request `stats` or `ping`, one JSON line
//! back) and validates the BENCH export files the bench harness
//! writes.  Subcommands:
//!
//! * `stats <socket>` — pretty-print the live runtime snapshot:
//!   per-stream latency quantiles and QoS-budget violations,
//!   per-datapath-shard counters and scheduler occupancy, pool
//!   occupancy, per-tenant quota/admission rollups, runtime counters.
//! * `raw <socket>` — dump the snapshot JSON verbatim.
//! * `ping <socket>` — liveness probe.
//! * `reload <socket> key=value ...` — hot-reload runtime tunables
//!   (e.g. `burst_max=64 idle_sleep_us=50`) through the snapshot-cell
//!   publication path: validated atomically, applied without restarting
//!   or pausing the polling shards (DESIGN.md §12).  The time-aware
//!   scheduler's timing-isolation knobs ride the same path:
//!   `tas_guard_band_ns=<ns>` re-arms the guard band preceding every
//!   gate-window edge and `tas_frame_tx_ns=<ns>` the per-frame
//!   transmission time the gates meter releases against (DESIGN.md
//!   §14); both are validated against the live gate cycle, and a
//!   rejected value leaves the running configuration untouched.
//! * `attach-probe <socket>` — probe an `insaned` control socket: sends
//!   the session protocol's `probe` request and checks the daemon
//!   answers with a compatible protocol version, without creating a
//!   session or mapping a segment.
//! * `check-bench <dir>` — validate `BENCH_latency.json`,
//!   `BENCH_throughput.json` and (when present)
//!   `BENCH_shard_throughput.json` / `BENCH_noisy_neighbor.json` /
//!   `BENCH_hotpath.json` / `BENCH_ipc.json` / `BENCH_isolation.json`
//!   in `dir` against their schemas.
//!
//! Every socket-taking subcommand also accepts the flag form
//! `insanectl --socket <path> <cmd>`, which reads better in scripts
//! that template the socket path.
//!
//! The crate is a panic-free zone under `insane-lint`: every failure
//! path reports through [`CtlError`] and a nonzero exit code.

use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::Path;

use insane_telemetry::{
    validate_bench_hotpath, validate_bench_ipc, validate_bench_isolation, validate_bench_latency,
    validate_bench_noisy_neighbor, validate_bench_throughput, Value,
};

/// Any failure: usage, I/O, JSON, schema, or endpoint-reported.
#[derive(Debug)]
struct CtlError(String);

impl std::fmt::Display for CtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<std::io::Error> for CtlError {
    fn from(e: std::io::Error) -> Self {
        CtlError(format!("io: {e}"))
    }
}

impl From<insane_telemetry::json::ParseError> for CtlError {
    fn from(e: insane_telemetry::json::ParseError) -> Self {
        CtlError(format!("malformed JSON: {e}"))
    }
}

const USAGE: &str = "usage: insanectl <stats|raw|ping|attach-probe> <socket-path>\n\
       insanectl --socket <socket-path> <stats|raw|ping|attach-probe>\n\
       insanectl reload <socket-path> <key=value>...\n\
       insanectl check-bench <dir>";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = dispatch(&args) {
        eprintln!("insanectl: {e}");
        std::process::exit(1);
    }
}

/// Rewrites the `--socket <path> <cmd> ...` flag form into the
/// positional `<cmd> <path> ...` form the matcher understands.
fn normalize(args: &[String]) -> Vec<String> {
    match args {
        [flag, path, cmd, rest @ ..] if flag == "--socket" => {
            let mut out = vec![cmd.clone(), path.clone()];
            out.extend(rest.iter().cloned());
            out
        }
        _ => args.to_vec(),
    }
}

fn dispatch(args: &[String]) -> Result<(), CtlError> {
    match &normalize(args)[..] {
        [cmd, path] if cmd == "stats" => stats(Path::new(path)),
        [cmd, path] if cmd == "raw" => raw(Path::new(path)),
        [cmd, path] if cmd == "ping" => ping(Path::new(path)),
        [cmd, path] if cmd == "attach-probe" => attach_probe(Path::new(path)),
        [cmd, dir] if cmd == "check-bench" => check_bench(Path::new(dir)),
        [cmd, path, pairs @ ..] if cmd == "reload" && !pairs.is_empty() => {
            reload(Path::new(path), pairs)
        }
        _ => Err(CtlError(USAGE.to_string())),
    }
}

/// One request/response exchange with the introspection endpoint.
fn query(socket: &Path, request: &str) -> Result<Value, CtlError> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| CtlError(format!("connect {}: {e}", socket.display())))?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{request}")?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    let doc = Value::parse(line.trim())?;
    if let Some(err) = doc.get("error").and_then(Value::as_str) {
        return Err(CtlError(format!("endpoint: {err}")));
    }
    Ok(doc)
}

fn ping(socket: &Path) -> Result<(), CtlError> {
    let doc = query(socket, "ping")?;
    if doc.get("ok").and_then(Value::as_bool) == Some(true) {
        println!("ok");
        Ok(())
    } else {
        Err(CtlError(format!("unexpected ping response: {doc}")))
    }
}

fn raw(socket: &Path) -> Result<(), CtlError> {
    println!("{}", query(socket, "stats")?);
    Ok(())
}

/// Probes an `insaned` control socket: one `probe` request on the
/// session protocol, no session created, no segment mapped.  Succeeds
/// only if the daemon is alive *and* speaks our protocol version.
fn attach_probe(socket: &Path) -> Result<(), CtlError> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| CtlError(format!("connect {}: {e}", socket.display())))?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "probe")?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    let line = line.trim();
    let expected = format!("ok probe {}", insane_ipc::proto::PROTO_VERSION);
    if line == expected {
        println!(
            "ok: {} speaks {}",
            socket.display(),
            insane_ipc::proto::PROTO_VERSION
        );
        Ok(())
    } else {
        Err(CtlError(format!(
            "daemon answered {line:?}, expected {expected:?}"
        )))
    }
}

/// Sends a `reload key=value ...` request; the endpoint validates the
/// resulting tunables as one snapshot and rejects the whole batch on
/// any bad key, value, or inconsistency.
fn reload(socket: &Path, pairs: &[String]) -> Result<(), CtlError> {
    for p in pairs {
        if !p.contains('=') {
            return Err(CtlError(format!(
                "reload arguments must be key=value, got {p:?}"
            )));
        }
    }
    let doc = query(socket, &format!("reload {}", pairs.join(" ")))?;
    match doc.get("reloaded").and_then(Value::as_str) {
        Some(summary) if doc.get("ok").and_then(Value::as_bool) == Some(true) => {
            println!("reloaded: {summary}");
            Ok(())
        }
        _ => Err(CtlError(format!("unexpected reload response: {doc}"))),
    }
}

fn u64_of(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn str_of<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key).and_then(Value::as_str).unwrap_or("?")
}

fn us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1_000.0)
}

/// Prints rows as fixed-width columns (headers first).
fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if let Some(w) = widths.get_mut(i) {
                *w = (*w).max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

fn stats(socket: &Path) -> Result<(), CtlError> {
    let doc = query(socket, "stats")?;
    let schema = str_of(&doc, "schema");
    if schema != insane_telemetry::SNAPSHOT_SCHEMA {
        return Err(CtlError(format!(
            "unexpected snapshot schema {schema:?} (want {:?})",
            insane_telemetry::SNAPSHOT_SCHEMA
        )));
    }
    let enabled = doc.get("telemetry_enabled").and_then(Value::as_bool) == Some(true);
    println!(
        "runtime {} on host {} — telemetry {}",
        u64_of(&doc, "runtime_id"),
        u64_of(&doc, "host"),
        if enabled {
            format!("enabled (1-in-{} sampling)", u64_of(&doc, "sample_every"))
        } else {
            "disabled".to_string()
        }
    );

    let streams = doc.get("streams").and_then(Value::as_array).unwrap_or(&[]);
    println!("\nstreams ({}):", streams.len());
    let mut rows = Vec::new();
    let mut violations = 0u64;
    for s in streams {
        violations += u64_of(s, "budget_violations");
        let total = s.get("total");
        let q = |key: &str| total.map(|t| us(u64_of(t, key))).unwrap_or_default();
        rows.push(vec![
            u64_of(s, "channel").to_string(),
            str_of(s, "class").to_string(),
            u64_of(s, "consumed").to_string(),
            q("p50_ns"),
            q("p90_ns"),
            q("p99_ns"),
            q("p999_ns"),
            u64_of(s, "budget_violations").to_string(),
        ]);
    }
    print_table(
        &[
            "channel",
            "class",
            "consumed",
            "p50(us)",
            "p90(us)",
            "p99(us)",
            "p99.9(us)",
            "violations",
        ],
        &rows,
    );
    if violations > 0 {
        println!("  !! {violations} QoS-budget violations");
    }

    let datapaths = doc
        .get("datapaths")
        .and_then(Value::as_array)
        .unwrap_or(&[]);
    println!("\ndatapaths ({}):", datapaths.len());
    let rows: Vec<Vec<String>> = datapaths
        .iter()
        .map(|d| {
            vec![
                str_of(d, "technology").to_string(),
                u64_of(d, "shard").to_string(),
                if d.get("down").and_then(Value::as_bool) == Some(true) {
                    "DOWN".to_string()
                } else {
                    "up".to_string()
                },
                u64_of(d, "tx_messages").to_string(),
                u64_of(d, "rx_messages").to_string(),
                u64_of(d, "scheduled").to_string(),
                u64_of(d, "queued").to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "technology",
            "shard",
            "state",
            "tx",
            "rx",
            "scheduled",
            "queued",
        ],
        &rows,
    );

    let pools = doc.get("pools").and_then(Value::as_array).unwrap_or(&[]);
    println!("\npools ({}):", pools.len());
    let rows: Vec<Vec<String>> = pools
        .iter()
        .map(|p| {
            let slots = u64_of(p, "slot_count");
            let in_use = u64_of(p, "in_use");
            vec![
                u64_of(p, "slot_size").to_string(),
                format!("{in_use}/{slots}"),
                u64_of(p, "high_water").to_string(),
                u64_of(p, "exhaustions").to_string(),
                u64_of(p, "acquires").to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "slot_size",
            "in_use",
            "high_water",
            "exhaustions",
            "acquires",
        ],
        &rows,
    );

    // The tenants table only appears on runtimes that populate the
    // rollup (older snapshots omit the key entirely).
    let tenants = doc.get("tenants").and_then(Value::as_array).unwrap_or(&[]);
    if !tenants.is_empty() {
        println!("\ntenants ({}):", tenants.len());
        let rows: Vec<Vec<String>> = tenants
            .iter()
            .map(|t| {
                vec![
                    u64_of(t, "tenant").to_string(),
                    format!("{}/{}", u64_of(t, "held"), u64_of(t, "max")),
                    u64_of(t, "reserved").to_string(),
                    u64_of(t, "admitted").to_string(),
                    u64_of(t, "rejected").to_string(),
                    u64_of(t, "shed").to_string(),
                    u64_of(t, "throttled").to_string(),
                    u64_of(t, "quota_rejections").to_string(),
                    us(u64_of(t, "p99_ns")),
                ]
            })
            .collect();
        print_table(
            &[
                "tenant",
                "slots",
                "reserved",
                "admitted",
                "rejected",
                "shed",
                "throttled",
                "quota_rej",
                "p99(us)",
            ],
            &rows,
        );
    }

    if let Some(counters) = doc.get("counters") {
        println!(
            "\ncounters: tx {} rx {} local {} drops {} control {} failovers {}",
            u64_of(counters, "tx_messages"),
            u64_of(counters, "rx_messages"),
            u64_of(counters, "local_deliveries"),
            u64_of(counters, "sink_drops"),
            u64_of(counters, "control_messages"),
            u64_of(counters, "failover_events"),
        );
    }
    Ok(())
}

fn check_bench(dir: &Path) -> Result<(), CtlError> {
    let check = |name: &str,
                 validate: fn(&Value) -> Result<(), insane_telemetry::SchemaError>|
     -> Result<(), CtlError> {
        let path = dir.join(name);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CtlError(format!("{}: {e}", path.display())))?;
        let doc = Value::parse(&text)?;
        validate(&doc).map_err(|e| CtlError(format!("{name}: {e}")))?;
        let entries = doc
            .get("entries")
            .and_then(Value::as_array)
            .map_or(0, <[Value]>::len);
        println!("{name}: ok ({entries} entries)");
        Ok(())
    };
    check("BENCH_latency.json", validate_bench_latency)?;
    check("BENCH_throughput.json", validate_bench_throughput)?;
    // The shard scale-out document is optional (the shard bench may not
    // have run), but when present it must satisfy the throughput schema.
    if dir.join("BENCH_shard_throughput.json").exists() {
        check("BENCH_shard_throughput.json", validate_bench_throughput)?;
    }
    // Same for the noisy-neighbor isolation document: optional, but a
    // present file must pass its schema, including the isolation gate.
    if dir.join("BENCH_noisy_neighbor.json").exists() {
        check("BENCH_noisy_neighbor.json", validate_bench_noisy_neighbor)?;
    }
    // And the hot-path document: optional, but a present file must pass
    // the uncontended/contended ratio gates and the reload-integrity
    // invariants.
    if dir.join("BENCH_hotpath.json").exists() {
        check("BENCH_hotpath.json", validate_bench_hotpath)?;
    }
    // And the process-split document: optional, but a present file must
    // pass the overhead bound and the crash-reclaim gates (reclaim ran,
    // zero leaked slots).
    if dir.join("BENCH_ipc.json").exists() {
        check("BENCH_ipc.json", validate_bench_ipc)?;
    }
    // And the mixed-criticality timing-isolation document: optional,
    // but a present file must pass the budget gate (zero violations at
    // every load point), the p99.9 tail bound, and the coverage checks
    // (solo baseline present, gates actually deferred frames).
    if dir.join("BENCH_isolation.json").exists() {
        check("BENCH_isolation.json", validate_bench_isolation)?;
    }
    Ok(())
}
