//! Failure injection: the middleware under loss, overrun, stale peers
//! and misuse.  INSANE assumes a best-effort network and leaves recovery
//! to applications (§5.2), so the contract under failure is: never hang,
//! never corrupt, always account.

use insane::core::runtime::poll_until_quiescent;
use insane::{
    ChannelId, ConsumeMode, EmitOutcome, Fabric, InsaneError, QosPolicy, Runtime, RuntimeConfig,
    Technology, TestbedProfile, ThreadingMode,
};

fn manual(id: u32, techs: &[Technology]) -> RuntimeConfig {
    RuntimeConfig::new(id)
        .with_technologies(techs)
        .with_threading(ThreadingMode::Manual)
}

/// A receiver ring that drops most of a burst (tiny NIC queue) loses
/// messages — datagram semantics — but the sender completes, slots
/// recycle, and later traffic flows.
#[test]
fn nic_ring_overrun_loses_but_never_wedges() {
    let mut profile = TestbedProfile::local();
    profile.rx_queue_frames = 8; // tiny NIC ring on every device
    let fabric = Fabric::new(profile);
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let rt_a = Runtime::start(manual(1, &[Technology::KernelUdp]), &fabric, a).unwrap();
    let rt_b = Runtime::start(manual(2, &[Technology::KernelUdp]), &fabric, b).unwrap();
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let sink = stream_b.create_sink(ChannelId(5)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let source = stream_a.create_source(ChannelId(5)).unwrap();

    // Blast 64 messages without letting B drain: most overrun the ring.
    let mut last = None;
    for i in 0..64u8 {
        let mut buf = source.get_buffer(1).unwrap();
        buf.copy_from_slice(&[i]);
        match source.emit(buf) {
            Ok(t) => last = Some(t),
            Err(InsaneError::Backpressure) => {
                rt_a.poll_once();
            }
            Err(e) => panic!("{e}"),
        }
        rt_a.poll_once();
    }
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    if let Some(token) = last {
        assert_ne!(
            source.emit_outcome(token),
            EmitOutcome::Pending,
            "sender must not be left pending by receiver loss"
        );
    }
    let mut delivered = 0;
    while sink.consume(ConsumeMode::NonBlocking).is_ok() {
        delivered += 1;
    }
    assert!(delivered < 64, "the tiny ring must have dropped something");
    assert!(delivered > 0, "some messages still arrive");
    assert_eq!(rt_a.slots_in_use(), 0, "lost frames release their slots");

    // The channel still works afterwards.
    let mut buf = source.get_buffer(5).unwrap();
    buf.copy_from_slice(b"after");
    source.emit(buf).unwrap();
    let msg = loop {
        rt_a.poll_once();
        rt_b.poll_once();
        match sink.consume(ConsumeMode::NonBlocking) {
            Ok(m) => break m,
            Err(InsaneError::WouldBlock) => {}
            Err(e) => panic!("{e}"),
        }
    };
    assert_eq!(&*msg, b"after");
}

/// Emitting toward a peer whose runtime disappeared behaves like a
/// datagram into the void: the send completes, nothing hangs, nothing
/// leaks.
#[test]
fn vanished_peer_is_silent_loss_not_an_error() {
    let fabric = Fabric::new(TestbedProfile::local());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let rt_a = Runtime::start(manual(1, &[Technology::KernelUdp]), &fabric, a).unwrap();
    let rt_b = Runtime::start(manual(2, &[Technology::KernelUdp]), &fabric, b).unwrap();
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    // Subscribe, then make the subscriber's runtime vanish.
    let sink = stream_b.create_sink(ChannelId(9)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let source = stream_a.create_source(ChannelId(9)).unwrap();
    drop(sink);
    drop(stream_b);
    drop(session_b);
    rt_b.shutdown();
    drop(rt_b);

    // A still believes B is subscribed (no failure detector — §5.2 leaves
    // fault tolerance to the application layer).
    let mut buf = source.get_buffer(4).unwrap();
    buf.copy_from_slice(b"void");
    let token = source.emit(buf).unwrap();
    poll_until_quiescent(&[&rt_a], 100_000);
    assert_eq!(source.emit_outcome(token), EmitOutcome::Completed);
    assert_eq!(rt_a.slots_in_use(), 0);
}

/// Back-pressure surfaces as a typed error and the rejected buffer's slot
/// is returned, never leaked.
#[test]
fn backpressure_returns_slots() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let mut config = manual(1, &[Technology::KernelUdp]);
    config.tx_queue_depth = 2; // tiny TX token queue
    let rt = Runtime::start(config, &fabric, host).unwrap();
    let session = insane::Session::connect(&rt).unwrap();
    let stream = session.create_stream(QosPolicy::slow()).unwrap();
    let _sink = stream.create_sink(ChannelId(1)).unwrap();
    let source = stream.create_source(ChannelId(1)).unwrap();

    let in_use_before = rt.slots_in_use();
    let mut backpressured = false;
    for _ in 0..16 {
        let buf = source.get_buffer(1).unwrap();
        match source.emit(buf) {
            Ok(_) => {}
            Err(InsaneError::Backpressure) => {
                backpressured = true;
                break;
            }
            Err(e) => panic!("{e}"),
        }
    }
    assert!(backpressured, "a 2-deep queue must push back");
    poll_until_quiescent(&[&rt], 100_000);
    // Everything emitted or rejected is accounted; nothing stuck.
    let _ = in_use_before;
    // Drain the sink to return delivery slots.
    while _sink.consume(ConsumeMode::NonBlocking).is_ok() {}
    assert_eq!(rt.slots_in_use(), 0);
}

/// Two runtimes with clashing `runtime_id`s on one fabric: the second
/// peer registration overwrites the first (last-writer-wins in the peer
/// table), but traffic keeps flowing somewhere — the system stays sane.
/// (Unique ids are an operator responsibility; this guards the failure
/// mode.)
#[test]
fn duplicate_runtime_ids_do_not_corrupt_routing() {
    let fabric = Fabric::new(TestbedProfile::local());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let c = fabric.add_host("c");
    let rt_a = Runtime::start(manual(1, &[Technology::KernelUdp]), &fabric, a).unwrap();
    // Both remote runtimes claim id 7.
    let rt_b = Runtime::start(manual(7, &[Technology::KernelUdp]), &fabric, b).unwrap();
    let rt_c = Runtime::start(manual(7, &[Technology::KernelUdp]), &fabric, c).unwrap();
    rt_a.add_peer(b).unwrap();
    rt_a.add_peer(c).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b, &rt_c], 200_000);

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let session_c = insane::Session::connect(&rt_c).unwrap();
    let stream_c = session_c.create_stream(QosPolicy::slow()).unwrap();
    let sink_b = stream_b.create_sink(ChannelId(3)).unwrap();
    let sink_c = stream_c.create_sink(ChannelId(3)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b, &rt_c], 200_000);

    let source = stream_a.create_source(ChannelId(3)).unwrap();
    let mut buf = source.get_buffer(2).unwrap();
    buf.copy_from_slice(b"id");
    source.emit(buf).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b, &rt_c], 300_000);
    let got_b = sink_b.consume(ConsumeMode::NonBlocking).is_ok();
    let got_c = sink_c.consume(ConsumeMode::NonBlocking).is_ok();
    assert!(
        got_b || got_c,
        "at least one of the clashing peers must receive"
    );
    assert_eq!(rt_a.slots_in_use(), 0);
}

/// Consuming from a closed sink and emitting on a closed stream are
/// clean, typed failures.
#[test]
fn closed_endpoints_fail_cleanly() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(manual(1, &[Technology::KernelUdp]), &fabric, host).unwrap();
    let session = insane::Session::connect(&rt).unwrap();
    let stream = session.create_stream(QosPolicy::slow()).unwrap();
    let sink = stream.create_sink(ChannelId(1)).unwrap();
    let source = stream.create_source(ChannelId(1)).unwrap();

    sink.close();
    stream.close();
    let buf = source.get_buffer(1);
    match buf {
        Ok(b) => assert!(matches!(source.emit(b), Err(InsaneError::Closed))),
        Err(_) => {}
    }
    assert!(matches!(
        stream.create_source(ChannelId(2)),
        Err(InsaneError::Closed)
    ));
    assert!(matches!(
        stream.create_sink(ChannelId(2)),
        Err(InsaneError::Closed)
    ));
}

/// Corrupt bytes aimed at a runtime's datapath port are discarded by the
/// packet engine without disturbing real traffic.
#[test]
fn garbage_frames_are_rejected_by_the_packet_engine() {
    use insane::fabric::devices::SimUdpSocket;
    let fabric = Fabric::new(TestbedProfile::local());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let rt_a = Runtime::start(manual(1, &[Technology::KernelUdp]), &fabric, a).unwrap();
    let rt_b = Runtime::start(manual(2, &[Technology::KernelUdp]), &fabric, b).unwrap();
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    // An attacker/stray app sprays garbage at B's INSANE UDP port (40000).
    let stray = SimUdpSocket::bind(&fabric, a, 12345).unwrap();
    for i in 0..10u8 {
        stray
            .send_to(
                &[i; 13],
                insane::fabric::Endpoint { host: b, port: 40_000 },
            )
            .unwrap();
    }
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    assert_eq!(rt_b.stats().rx_messages, 0, "garbage must not count as data");

    // Real traffic is unaffected.
    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let sink = stream_b.create_sink(ChannelId(1)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let source = stream_a.create_source(ChannelId(1)).unwrap();
    let mut buf = source.get_buffer(2).unwrap();
    buf.copy_from_slice(b"ok");
    source.emit(buf).unwrap();
    let msg = loop {
        rt_a.poll_once();
        rt_b.poll_once();
        match sink.consume(ConsumeMode::NonBlocking) {
            Ok(m) => break m,
            Err(InsaneError::WouldBlock) => {}
            Err(e) => panic!("{e}"),
        }
    };
    assert_eq!(&*msg, b"ok");
}
