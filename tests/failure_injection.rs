//! Failure injection: the middleware under loss, overrun, stale peers
//! and misuse.  INSANE assumes a best-effort network and leaves recovery
//! to applications (§5.2), so the contract under failure is: never hang,
//! never corrupt, always account.

use std::time::{Duration, Instant};

use insane::core::runtime::poll_until_quiescent;
use insane::fabric::{Endpoint, FaultPlan};
use insane::{
    ChannelId, ConsumeMode, ControlPlaneConfig, EmitOutcome, Fabric, InsaneError, QosPolicy,
    Runtime, RuntimeConfig, Technology, TestbedProfile, ThreadingMode,
};

fn manual(id: u32, techs: &[Technology]) -> RuntimeConfig {
    RuntimeConfig::new(id)
        .with_technologies(techs)
        .with_threading(ThreadingMode::Manual)
}

/// Control-plane parameters aggressive enough for tests to observe
/// retransmission, expiry and recovery within milliseconds.
fn fast_control() -> ControlPlaneConfig {
    ControlPlaneConfig {
        retransmit_timeout: Duration::from_micros(200),
        max_attempts: 32,
        heartbeat_interval: Duration::from_millis(1),
        miss_threshold: 64,
    }
}

/// Polls both runtimes, re-emitting a probe message every few rounds,
/// until the sink delivers or the deadline passes.
fn pump_until_delivery(
    rt_a: &Runtime,
    rt_b: &Runtime,
    source: &insane::Source,
    sink: &insane::Sink,
    payload: &[u8],
    deadline: Duration,
) -> Option<Vec<u8>> {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        for _ in 0..32 {
            rt_a.poll_once();
            rt_b.poll_once();
        }
        if let Ok(mut buf) = source.get_buffer(payload.len()) {
            buf.copy_from_slice(payload);
            match source.emit(buf) {
                Ok(_) | Err(InsaneError::Backpressure) => {}
                Err(e) => panic!("emit: {e}"),
            }
        }
        for _ in 0..32 {
            rt_a.poll_once();
            rt_b.poll_once();
        }
        if let Ok(msg) = sink.consume(ConsumeMode::NonBlocking) {
            return Some((*msg).to_vec());
        }
    }
    None
}

/// A receiver ring that drops most of a burst (tiny NIC queue) loses
/// messages — datagram semantics — but the sender completes, slots
/// recycle, and later traffic flows.
#[test]
fn nic_ring_overrun_loses_but_never_wedges() {
    let mut profile = TestbedProfile::local();
    profile.rx_queue_frames = 8; // tiny NIC ring on every device
    let fabric = Fabric::new(profile);
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let rt_a = Runtime::start(manual(1, &[Technology::KernelUdp]), &fabric, a).unwrap();
    let rt_b = Runtime::start(manual(2, &[Technology::KernelUdp]), &fabric, b).unwrap();
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let sink = stream_b.create_sink(ChannelId(5)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let source = stream_a.create_source(ChannelId(5)).unwrap();

    // Blast 64 messages without letting B drain: most overrun the ring.
    let mut last = None;
    for i in 0..64u8 {
        let mut buf = source.get_buffer(1).unwrap();
        buf.copy_from_slice(&[i]);
        match source.emit(buf) {
            Ok(t) => last = Some(t),
            Err(InsaneError::Backpressure) => {
                rt_a.poll_once();
            }
            Err(e) => panic!("{e}"),
        }
        rt_a.poll_once();
    }
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    if let Some(token) = last {
        assert_ne!(
            source.emit_outcome(token),
            EmitOutcome::Pending,
            "sender must not be left pending by receiver loss"
        );
    }
    let mut delivered = 0;
    while sink.consume(ConsumeMode::NonBlocking).is_ok() {
        delivered += 1;
    }
    assert!(delivered < 64, "the tiny ring must have dropped something");
    assert!(delivered > 0, "some messages still arrive");
    assert_eq!(rt_a.slots_in_use(), 0, "lost frames release their slots");

    // The channel still works afterwards.
    let mut buf = source.get_buffer(5).unwrap();
    buf.copy_from_slice(b"after");
    source.emit(buf).unwrap();
    let msg = loop {
        rt_a.poll_once();
        rt_b.poll_once();
        match sink.consume(ConsumeMode::NonBlocking) {
            Ok(m) => break m,
            Err(InsaneError::WouldBlock) => {}
            Err(e) => panic!("{e}"),
        }
    };
    assert_eq!(&*msg, b"after");
}

/// Emitting toward a peer whose runtime disappeared behaves like a
/// datagram into the void: the send completes, nothing hangs, nothing
/// leaks.
#[test]
fn vanished_peer_is_silent_loss_not_an_error() {
    let fabric = Fabric::new(TestbedProfile::local());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let rt_a = Runtime::start(manual(1, &[Technology::KernelUdp]), &fabric, a).unwrap();
    let rt_b = Runtime::start(manual(2, &[Technology::KernelUdp]), &fabric, b).unwrap();
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    // Subscribe, then make the subscriber's runtime vanish.
    let sink = stream_b.create_sink(ChannelId(9)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let source = stream_a.create_source(ChannelId(9)).unwrap();
    drop(sink);
    drop(stream_b);
    drop(session_b);
    rt_b.shutdown();
    drop(rt_b);

    // A still believes B is subscribed (no failure detector — §5.2 leaves
    // fault tolerance to the application layer).
    let mut buf = source.get_buffer(4).unwrap();
    buf.copy_from_slice(b"void");
    let token = source.emit(buf).unwrap();
    poll_until_quiescent(&[&rt_a], 100_000);
    assert_eq!(source.emit_outcome(token), EmitOutcome::Completed);
    assert_eq!(rt_a.slots_in_use(), 0);
}

/// Back-pressure surfaces as a typed error and the rejected buffer's slot
/// is returned, never leaked.
#[test]
fn backpressure_returns_slots() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let mut config = manual(1, &[Technology::KernelUdp]);
    config.tx_queue_depth = 2; // tiny TX token queue
    let rt = Runtime::start(config, &fabric, host).unwrap();
    let session = insane::Session::connect(&rt).unwrap();
    let stream = session.create_stream(QosPolicy::slow()).unwrap();
    let _sink = stream.create_sink(ChannelId(1)).unwrap();
    let source = stream.create_source(ChannelId(1)).unwrap();

    let in_use_before = rt.slots_in_use();
    let mut backpressured = false;
    for _ in 0..16 {
        let buf = source.get_buffer(1).unwrap();
        match source.emit(buf) {
            Ok(_) => {}
            Err(InsaneError::Backpressure) => {
                backpressured = true;
                break;
            }
            Err(e) => panic!("{e}"),
        }
    }
    assert!(backpressured, "a 2-deep queue must push back");
    poll_until_quiescent(&[&rt], 100_000);
    // Everything emitted or rejected is accounted; nothing stuck.
    let _ = in_use_before;
    // Drain the sink to return delivery slots.
    while _sink.consume(ConsumeMode::NonBlocking).is_ok() {}
    assert_eq!(rt.slots_in_use(), 0);
}

/// Two runtimes with clashing `runtime_id`s on one fabric: the second
/// peer registration overwrites the first (last-writer-wins in the peer
/// table), but traffic keeps flowing somewhere — the system stays sane.
/// (Unique ids are an operator responsibility; this guards the failure
/// mode.)
#[test]
fn duplicate_runtime_ids_do_not_corrupt_routing() {
    let fabric = Fabric::new(TestbedProfile::local());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let c = fabric.add_host("c");
    let rt_a = Runtime::start(manual(1, &[Technology::KernelUdp]), &fabric, a).unwrap();
    // Both remote runtimes claim id 7.
    let rt_b = Runtime::start(manual(7, &[Technology::KernelUdp]), &fabric, b).unwrap();
    let rt_c = Runtime::start(manual(7, &[Technology::KernelUdp]), &fabric, c).unwrap();
    rt_a.add_peer(b).unwrap();
    rt_a.add_peer(c).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b, &rt_c], 200_000);

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let session_c = insane::Session::connect(&rt_c).unwrap();
    let stream_c = session_c.create_stream(QosPolicy::slow()).unwrap();
    let sink_b = stream_b.create_sink(ChannelId(3)).unwrap();
    let sink_c = stream_c.create_sink(ChannelId(3)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b, &rt_c], 200_000);

    let source = stream_a.create_source(ChannelId(3)).unwrap();
    let mut buf = source.get_buffer(2).unwrap();
    buf.copy_from_slice(b"id");
    source.emit(buf).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b, &rt_c], 300_000);
    let got_b = sink_b.consume(ConsumeMode::NonBlocking).is_ok();
    let got_c = sink_c.consume(ConsumeMode::NonBlocking).is_ok();
    assert!(
        got_b || got_c,
        "at least one of the clashing peers must receive"
    );
    assert_eq!(rt_a.slots_in_use(), 0);
}

/// Consuming from a closed sink and emitting on a closed stream are
/// clean, typed failures.
#[test]
fn closed_endpoints_fail_cleanly() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(manual(1, &[Technology::KernelUdp]), &fabric, host).unwrap();
    let session = insane::Session::connect(&rt).unwrap();
    let stream = session.create_stream(QosPolicy::slow()).unwrap();
    let sink = stream.create_sink(ChannelId(1)).unwrap();
    let source = stream.create_source(ChannelId(1)).unwrap();

    sink.close();
    stream.close();
    let buf = source.get_buffer(1);
    if let Ok(b) = buf {
        assert!(matches!(source.emit(b), Err(InsaneError::Closed)))
    }
    assert!(matches!(
        stream.create_source(ChannelId(2)),
        Err(InsaneError::Closed)
    ));
    assert!(matches!(
        stream.create_sink(ChannelId(2)),
        Err(InsaneError::Closed)
    ));
}

/// Corrupt bytes aimed at a runtime's datapath port are discarded by the
/// packet engine without disturbing real traffic.
#[test]
fn garbage_frames_are_rejected_by_the_packet_engine() {
    use insane::fabric::devices::SimUdpSocket;
    let fabric = Fabric::new(TestbedProfile::local());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let rt_a = Runtime::start(manual(1, &[Technology::KernelUdp]), &fabric, a).unwrap();
    let rt_b = Runtime::start(manual(2, &[Technology::KernelUdp]), &fabric, b).unwrap();
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    // An attacker/stray app sprays garbage at B's INSANE UDP port (40000).
    let stray = SimUdpSocket::bind(&fabric, a, 12345).unwrap();
    for i in 0..10u8 {
        stray
            .send_to(
                &[i; 13],
                insane::fabric::Endpoint {
                    host: b,
                    port: 40_000,
                },
            )
            .unwrap();
    }
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    assert_eq!(
        rt_b.stats().rx_messages,
        0,
        "garbage must not count as data"
    );

    // Real traffic is unaffected.
    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let sink = stream_b.create_sink(ChannelId(1)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let source = stream_a.create_source(ChannelId(1)).unwrap();
    let mut buf = source.get_buffer(2).unwrap();
    buf.copy_from_slice(b"ok");
    source.emit(buf).unwrap();
    let msg = loop {
        rt_a.poll_once();
        rt_b.poll_once();
        match sink.consume(ConsumeMode::NonBlocking) {
            Ok(m) => break m,
            Err(InsaneError::WouldBlock) => {}
            Err(e) => panic!("{e}"),
        }
    };
    assert_eq!(&*msg, b"ok");
}

/// Under 30% seeded control-plane loss, Hello/Subscribe retransmission
/// still converges peering and subscriptions, and traffic flows.
#[test]
fn control_plane_converges_under_seeded_loss() {
    let fabric = Fabric::new(TestbedProfile::local());
    let faults = fabric.faults();
    faults.seed(0xDEC0DE);
    faults.set_default_plan(FaultPlan::lossy(0.3));
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let rt_a = Runtime::start(
        manual(1, &[Technology::KernelUdp]).with_control(fast_control()),
        &fabric,
        a,
    )
    .unwrap();
    let rt_b = Runtime::start(
        manual(2, &[Technology::KernelUdp]).with_control(fast_control()),
        &fabric,
        b,
    )
    .unwrap();
    rt_a.add_peer(b).unwrap();

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let sink = stream_b.create_sink(ChannelId(11)).unwrap();
    let source = stream_a.create_source(ChannelId(11)).unwrap();

    let got = pump_until_delivery(
        &rt_a,
        &rt_b,
        &source,
        &sink,
        b"loss",
        Duration::from_secs(20),
    );
    assert_eq!(
        got.as_deref(),
        Some(&b"loss"[..]),
        "subscription must converge despite 30% control loss"
    );
    assert!(
        faults.stats().injected_drops > 0,
        "the plan must actually have dropped frames"
    );
    let retransmits = rt_a.stats().control_retransmits + rt_b.stats().control_retransmits;
    assert!(
        retransmits > 0,
        "convergence under loss must have used retransmission"
    );
}

/// Killing an accelerated device fails its traffic over to kernel UDP
/// (QoS demoted, nothing lost from the scheduler), and restoring it
/// migrates traffic back — with warnings and counters on every step.
#[test]
fn datapath_failure_fails_over_and_recovers() {
    let warnings: std::sync::Arc<std::sync::Mutex<Vec<String>>> = Default::default();
    {
        let sink = std::sync::Arc::clone(&warnings);
        insane::set_warning_hook(move |msg| sink.lock().unwrap().push(msg.to_string()));
    }

    let fabric = Fabric::new(TestbedProfile::local());
    let faults = fabric.faults();
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let techs = [Technology::KernelUdp, Technology::Dpdk];
    let rt_a = Runtime::start(manual(1, &techs).with_control(fast_control()), &fabric, a).unwrap();
    let rt_b = Runtime::start(manual(2, &techs).with_control(fast_control()), &fabric, b).unwrap();
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    // fast() maps to DPDK here (the best accelerated option present).
    let stream_a = session_a.create_stream(QosPolicy::fast()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::fast()).unwrap();
    let sink = stream_b.create_sink(ChannelId(4)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let source = stream_a.create_source(ChannelId(4)).unwrap();

    // Healthy: traffic flows over the accelerated datapath.
    let got = pump_until_delivery(&rt_a, &rt_b, &source, &sink, b"pre", Duration::from_secs(5));
    assert_eq!(got.as_deref(), Some(&b"pre"[..]));
    assert_eq!(rt_a.stats().failover_events, 0);

    // Kill A's DPDK device (port_base 40000 + offset 2 for DPDK).
    let dpdk_ep = Endpoint {
        host: a,
        port: 40_002,
    };
    faults.fail_device(dpdk_ep);
    let got = pump_until_delivery(
        &rt_a,
        &rt_b,
        &source,
        &sink,
        b"over",
        Duration::from_secs(10),
    );
    assert_eq!(
        got.as_deref(),
        Some(&b"over"[..]),
        "traffic must keep flowing over the kernel-UDP fallback"
    );
    let stats = rt_a.stats();
    assert_eq!(stats.failover_events, 1, "one down transition observed");
    assert!(stats.failover_messages > 0, "rerouted messages are counted");

    // Restore the device: traffic migrates back.
    faults.restore_device(dpdk_ep);
    let got = pump_until_delivery(
        &rt_a,
        &rt_b,
        &source,
        &sink,
        b"back",
        Duration::from_secs(10),
    );
    assert_eq!(got.as_deref(), Some(&b"back"[..]));
    assert_eq!(rt_a.stats().failback_events, 1, "one recovery observed");

    let warned = warnings.lock().unwrap().join("\n");
    insane::clear_warning_hook();
    assert!(
        warned.contains("failing over to kernel UDP"),
        "failover must warn; got: {warned:?}"
    );
    assert!(
        warned.contains("recovered — migrating traffic back"),
        "failback must warn; got: {warned:?}"
    );
    // Drain the probe backlog; nothing may leak on the sender.
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    while sink.consume(ConsumeMode::NonBlocking).is_ok() {}
    assert_eq!(rt_a.slots_in_use(), 0, "failover must not leak slots");
}

/// A host that goes dark is expired after missing heartbeats (its
/// subscriptions dropped), kept on probation, and re-peered — with its
/// subscriptions re-announced — the moment it answers again.
#[test]
fn silent_peer_is_expired_then_repeered_on_recovery() {
    let fabric = Fabric::new(TestbedProfile::local());
    let faults = fabric.faults();
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let ctl = ControlPlaneConfig {
        retransmit_timeout: Duration::from_micros(500),
        max_attempts: 8,
        heartbeat_interval: Duration::from_millis(1),
        miss_threshold: 3,
    };
    let rt_a = Runtime::start(
        manual(1, &[Technology::KernelUdp]).with_control(ctl),
        &fabric,
        a,
    )
    .unwrap();
    let rt_b = Runtime::start(
        manual(2, &[Technology::KernelUdp]).with_control(ctl),
        &fabric,
        b,
    )
    .unwrap();
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let sink = stream_b.create_sink(ChannelId(8)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let source = stream_a.create_source(ChannelId(8)).unwrap();
    let got = pump_until_delivery(
        &rt_a,
        &rt_b,
        &source,
        &sink,
        b"alive",
        Duration::from_secs(5),
    );
    assert_eq!(got.as_deref(), Some(&b"alive"[..]));

    // B's host goes completely dark; A keeps polling and must expire it.
    faults.set_host_down(b, true);
    let deadline = Instant::now() + Duration::from_secs(10);
    while rt_a.stats().peer_expiries == 0 && Instant::now() < deadline {
        rt_a.poll_once();
        rt_b.poll_once();
    }
    assert!(
        rt_a.stats().peer_expiries >= 1,
        "a silent peer must be expired after missed heartbeats"
    );

    // The host comes back: dormant-peer probing re-peers it and the
    // subscription is re-announced, so traffic flows again.
    faults.set_host_down(b, false);
    let got = pump_until_delivery(
        &rt_a,
        &rt_b,
        &source,
        &sink,
        b"again",
        Duration::from_secs(20),
    );
    assert_eq!(
        got.as_deref(),
        Some(&b"again"[..]),
        "recovered peer must receive again after re-announce"
    );
    assert!(
        rt_a.stats().peers_recovered + rt_b.stats().peers_recovered >= 1,
        "recovery must be observed and counted"
    );
}
