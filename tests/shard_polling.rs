//! The sharded polling engine: TX drain fairness, stream→shard
//! assignment, per-stream ordering across shards, and failover when a
//! datapath runs more than one shard.

use std::time::Duration;

use insane::core::runtime::poll_until_quiescent;
use insane::fabric::Endpoint;
use insane::{
    ChannelId, ConsumeMode, ControlPlaneConfig, EmitOutcome, Fabric, InsaneError, QosPolicy,
    Runtime, RuntimeConfig, Technology, TestbedProfile, ThreadingMode,
};
use proptest::prelude::*;

fn manual(id: u32, techs: &[Technology]) -> RuntimeConfig {
    RuntimeConfig::new(id)
        .with_technologies(techs)
        .with_threading(ThreadingMode::Manual)
}

fn fast_control() -> ControlPlaneConfig {
    ControlPlaneConfig {
        retransmit_timeout: Duration::from_micros(200),
        max_attempts: 32,
        heartbeat_interval: Duration::from_millis(1),
        miss_threshold: 64,
    }
}

/// Regression test for the TX drain starvation bug: the old drain loop
/// always started at snapshot index 0, so one saturating stream that
/// filled the whole burst on every poll starved every stream after it
/// indefinitely.  The rotating per-shard cursor guarantees each stream
/// is visited within one rotation.
#[test]
fn saturating_stream_cannot_starve_its_neighbors() {
    let fabric = Fabric::new(TestbedProfile::local());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    // A tiny burst and shallow TX queues make saturation cheap to hold.
    let config = |id| {
        let mut c = manual(id, &[Technology::KernelUdp]);
        c.burst = 4;
        c.tx_queue_depth = 16;
        c
    };
    let rt_a = Runtime::start(config(1), &fabric, a).unwrap();
    let rt_b = Runtime::start(config(2), &fabric, b).unwrap();
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    // The saturator is created first so it sits at snapshot index 0 —
    // the position the pre-fix drain loop always serviced first.
    let saturator_stream = session_a.create_stream(QosPolicy::slow()).unwrap();
    let victim_stream = session_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let _sat_sink = stream_b.create_sink(ChannelId(1)).unwrap();
    let _victim_sink = stream_b.create_sink(ChannelId(2)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let saturator = saturator_stream.create_source(ChannelId(1)).unwrap();
    let victim = victim_stream.create_source(ChannelId(2)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    // Fill the saturator's TX queue to the brim.
    let top_up = |rt: &Runtime| loop {
        match saturator.get_buffer(8) {
            Ok(mut buf) => {
                buf.copy_from_slice(b"saturate");
                match saturator.emit(buf) {
                    Ok(_) => {}
                    Err(InsaneError::Backpressure) => break,
                    Err(e) => panic!("saturator emit: {e}"),
                }
            }
            Err(InsaneError::Memory(_)) => {
                // Pool pressure: flush a burst so slots recycle, then
                // keep topping up.
                rt.poll_transmit(Technology::KernelUdp);
            }
            Err(e) => panic!("saturator get_buffer: {e}"),
        }
    };
    top_up(&rt_a);

    // One message on the victim stream, queued behind the saturation.
    let mut buf = victim.get_buffer(6).unwrap();
    buf.copy_from_slice(b"victim");
    let token = victim.emit(buf).unwrap();

    // Drive only the TX path, refilling the saturator before every poll
    // so its queue never dips below a full burst.  Pre-fix this loop
    // never completed the victim's emit; the rotating cursor services
    // it within a handful of polls.
    let mut completed = false;
    for _ in 0..200 {
        top_up(&rt_a);
        rt_a.poll_transmit(Technology::KernelUdp);
        if victim.emit_outcome(token) != EmitOutcome::Pending {
            completed = true;
            break;
        }
    }
    assert!(
        completed,
        "victim stream starved: its lone message never left the TX queue \
         while a neighboring stream kept the burst saturated"
    );
    assert_ne!(victim.emit_outcome(token), EmitOutcome::Failed);
}

proptest! {
    /// Every stream id maps to exactly one in-range shard, and the
    /// assignment is a pure function of (id, shard count): recomputing
    /// it — as the runtime does on every snapshot refresh and every
    /// restart — always lands on the same shard.
    #[test]
    fn stream_assignment_is_total_stable_and_exclusive(
        id in any::<u64>(),
        shards in 1usize..65,
    ) {
        let owner = insane::shard_of_stream(id, shards);
        prop_assert!(owner < shards);
        prop_assert_eq!(owner, insane::shard_of_stream(id, shards));
        // Exclusivity: the stream belongs to shard k iff k is the owner.
        let owners = (0..shards)
            .filter(|&k| insane::shard_of_stream(id, shards) == k)
            .count();
        prop_assert_eq!(owners, 1);
        // A single-shard engine degenerates to the unsharded layout.
        prop_assert_eq!(insane::shard_of_stream(id, 1), 0);
    }

    /// RX fan-out obeys the same contract on channel ids.
    #[test]
    fn channel_assignment_is_total_and_stable(
        channel in any::<u32>(),
        shards in 1usize..65,
    ) {
        let owner = insane::shard_of_channel(channel, shards);
        prop_assert!(owner < shards);
        prop_assert_eq!(owner, insane::shard_of_channel(channel, shards));
        prop_assert_eq!(insane::shard_of_channel(channel, 1), 0);
    }
}

/// A 2-shard engine distributes streams across both shards while every
/// stream's messages still arrive complete and in emit order.
#[test]
fn two_shards_preserve_per_stream_ordering() {
    const STREAMS: usize = 8;
    const MSGS: u32 = 40;

    let fabric = Fabric::new(TestbedProfile::local());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let config = |id| manual(id, &[Technology::KernelUdp]).with_shards_per_datapath(2);
    let rt_a = Runtime::start(config(1), &fabric, a).unwrap();
    let rt_b = Runtime::start(config(2), &fabric, b).unwrap();
    assert_eq!(rt_a.shards_per_datapath(), 2);
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let sinks: Vec<_> = (0..STREAMS)
        .map(|i| stream_b.create_sink(ChannelId(i as u32)).unwrap())
        .collect();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let sources: Vec<_> = (0..STREAMS)
        .map(|i| {
            let stream = session_a.create_stream(QosPolicy::slow()).unwrap();
            stream.create_source(ChannelId(i as u32)).unwrap()
        })
        .collect();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    // Emit interleaved across streams, draining as we go; each payload
    // carries (stream, seq) so the sink side can replay the order.
    let mut shard_did_work = [false; 2];
    let mut received: Vec<Vec<u32>> = vec![Vec::new(); STREAMS];
    let drain = |shard_did_work: &mut [bool; 2], received: &mut Vec<Vec<u32>>| {
        for (shard, did) in shard_did_work.iter_mut().enumerate() {
            if rt_a.poll_technology_shard(Technology::KernelUdp, shard) {
                *did = true;
            }
        }
        rt_b.poll_once();
        for (i, sink) in sinks.iter().enumerate() {
            while let Ok(msg) = sink.consume(ConsumeMode::NonBlocking) {
                assert_eq!(msg.len(), 8, "payload shape");
                let stream = u32::from_le_bytes(msg[0..4].try_into().unwrap());
                let seq = u32::from_le_bytes(msg[4..8].try_into().unwrap());
                assert_eq!(stream as usize, i, "message routed to wrong sink");
                received[i].push(seq);
            }
        }
    };
    for seq in 0..MSGS {
        for (i, source) in sources.iter().enumerate() {
            let payload: Vec<u8> = (i as u32)
                .to_le_bytes()
                .into_iter()
                .chain(seq.to_le_bytes())
                .collect();
            loop {
                match source.get_buffer(payload.len()) {
                    Ok(mut buf) => {
                        buf.copy_from_slice(&payload);
                        match source.emit(buf) {
                            Ok(_) => break,
                            Err(InsaneError::Backpressure) => {
                                drain(&mut shard_did_work, &mut received)
                            }
                            Err(e) => panic!("emit: {e}"),
                        }
                    }
                    Err(InsaneError::Memory(_)) => drain(&mut shard_did_work, &mut received),
                    Err(e) => panic!("get_buffer: {e}"),
                }
            }
        }
        drain(&mut shard_did_work, &mut received);
    }
    let mut spins = 0u32;
    while received.iter().any(|r| r.len() < MSGS as usize) {
        drain(&mut shard_did_work, &mut received);
        spins += 1;
        assert!(
            spins < 2_000_000,
            "messages never all arrived: {received:?}"
        );
    }

    for (i, seqs) in received.iter().enumerate() {
        let expected: Vec<u32> = (0..MSGS).collect();
        assert_eq!(
            seqs, &expected,
            "stream {i} must deliver every message in emit order"
        );
    }
    assert!(
        shard_did_work[0] && shard_did_work[1],
        "both shards must carry traffic with {STREAMS} streams: {shard_did_work:?}"
    );
}

/// The threaded path: `ThreadingMode::PerDatapath` with 2 shards spawns
/// one polling thread per (datapath, shard), traffic flows end to end
/// over blocking consumes on several streams, and dropping the runtimes
/// winds the shard threads down cleanly.
#[test]
fn threaded_mode_runs_one_thread_per_shard() {
    const STREAMS: usize = 4;

    let fabric = Fabric::new(TestbedProfile::local());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let config = |id| {
        RuntimeConfig::new(id)
            .with_technologies(&[Technology::KernelUdp])
            .with_shards_per_datapath(2)
    };
    let rt_a = Runtime::start(config(1), &fabric, a).unwrap();
    let rt_b = Runtime::start(config(2), &fabric, b).unwrap();
    rt_a.add_peer(b).unwrap();

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let sinks: Vec<_> = (0..STREAMS)
        .map(|i| stream_b.create_sink(ChannelId(i as u32)).unwrap())
        .collect();
    // Give the announcements a moment; the polling threads drive the
    // control plane on their own.
    std::thread::sleep(Duration::from_millis(50));
    let sources: Vec<_> = (0..STREAMS)
        .map(|i| {
            let stream = session_a.create_stream(QosPolicy::slow()).unwrap();
            stream.create_source(ChannelId(i as u32)).unwrap()
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    for round in 0..3u8 {
        for (i, source) in sources.iter().enumerate() {
            let payload = [round, i as u8];
            loop {
                match source.get_buffer(2) {
                    Ok(mut buf) => {
                        buf.copy_from_slice(&payload);
                        match source.emit(buf) {
                            Ok(_) => break,
                            Err(InsaneError::Backpressure) => std::thread::yield_now(),
                            Err(e) => panic!("emit: {e}"),
                        }
                    }
                    Err(InsaneError::Memory(_)) => std::thread::yield_now(),
                    Err(e) => panic!("get_buffer: {e}"),
                }
            }
        }
        for (i, sink) in sinks.iter().enumerate() {
            let msg = sink.consume(ConsumeMode::Blocking).unwrap();
            assert_eq!(&*msg, &[round, i as u8], "stream {i} round {round}");
        }
    }

    // Shutdown joins every shard thread (a hang here fails the test via
    // the harness timeout rather than leaking busy-polling threads).
    rt_a.shutdown();
    rt_b.shutdown();
}

/// Killing an accelerated device with `shards_per_datapath > 1` drains
/// *every* shard's scheduler onto the kernel-UDP fallback: traffic on
/// all streams keeps flowing, whatever shard they were pinned to.
#[test]
fn failover_evacuates_every_shard() {
    const STREAMS: usize = 4;

    let fabric = Fabric::new(TestbedProfile::local());
    let faults = fabric.faults();
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let techs = [Technology::KernelUdp, Technology::Dpdk];
    let config = |id| {
        manual(id, &techs)
            .with_control(fast_control())
            .with_shards_per_datapath(2)
    };
    let rt_a = Runtime::start(config(1), &fabric, a).unwrap();
    let rt_b = Runtime::start(config(2), &fabric, b).unwrap();
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::fast()).unwrap();
    let sinks: Vec<_> = (0..STREAMS)
        .map(|i| stream_b.create_sink(ChannelId(i as u32)).unwrap())
        .collect();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let sources: Vec<_> = (0..STREAMS)
        .map(|i| {
            let stream = session_a.create_stream(QosPolicy::fast()).unwrap();
            assert_eq!(stream.technology(), Technology::Dpdk);
            stream.create_source(ChannelId(i as u32)).unwrap()
        })
        .collect();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let deliver_on_all = |tag: u8| {
        let mut got = vec![false; STREAMS];
        for _ in 0..2_000_000 {
            for (i, source) in sources.iter().enumerate() {
                if !got[i] {
                    if let Ok(mut buf) = source.get_buffer(2) {
                        buf.copy_from_slice(&[tag, i as u8]);
                        match source.emit(buf) {
                            Ok(_) | Err(InsaneError::Backpressure) => {}
                            Err(e) => panic!("emit: {e}"),
                        }
                    }
                }
            }
            for _ in 0..16 {
                rt_a.poll_once();
                rt_b.poll_once();
            }
            for (i, sink) in sinks.iter().enumerate() {
                while let Ok(msg) = sink.consume(ConsumeMode::NonBlocking) {
                    if msg.first() == Some(&tag) {
                        got[i] = true;
                    }
                }
            }
            if got.iter().all(|&g| g) {
                return;
            }
        }
        panic!("streams never all delivered tag {tag}: {got:?}");
    };

    // Healthy: every stream flows over DPDK (both shards).
    deliver_on_all(1);
    assert_eq!(rt_a.stats().failover_events, 0);

    // Kill A's DPDK device (port_base 40000 + offset 2 for DPDK).
    faults.fail_device(Endpoint {
        host: a,
        port: 40_002,
    });
    deliver_on_all(2);
    let stats = rt_a.stats();
    assert_eq!(stats.failover_events, 1, "one down transition observed");
    assert!(
        stats.failover_messages > 0,
        "diverted messages from the shards' schedulers are counted"
    );

    // Restore and drain: nothing may leak on the sender whatever shard
    // a message was queued on when the device died.
    faults.restore_device(Endpoint {
        host: a,
        port: 40_002,
    });
    deliver_on_all(3);
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    for sink in &sinks {
        while sink.consume(ConsumeMode::NonBlocking).is_ok() {}
    }
    assert_eq!(rt_a.slots_in_use(), 0, "failover must not leak slots");
}
