//! End-to-end multi-tenant isolation: an over-quota tenant receives
//! typed rejections while a second tenant's stream completes
//! unaffected, on one shared runtime pair.

use insane::core::runtime::poll_until_quiescent;
use insane::memory::MemoryError;
use insane::{
    ChannelId, ConsumeMode, Fabric, InsaneError, QosPolicy, Runtime, RuntimeConfig, Session,
    SessionConfig, Technology, TenantQuota, TenantRate, TenantSpec, TestbedProfile, ThreadingMode,
};

const GREEDY: u16 = 1;
const POLITE: u16 = 2;

/// Two manually-driven runtimes with both tenants registered: the
/// greedy tenant capped at 4 slots, the polite tenant comfortably
/// provisioned.
fn tenant_pair() -> (Fabric, Runtime, Runtime) {
    let fabric = Fabric::new(TestbedProfile::local());
    let host_a = fabric.add_host("node-a");
    let host_b = fabric.add_host("node-b");
    let config = |id: u32| {
        RuntimeConfig::new(id)
            .with_technologies(&[Technology::KernelUdp, Technology::Dpdk])
            .with_threading(ThreadingMode::Manual)
            .with_tenant(TenantSpec::new(GREEDY, TenantQuota::new(2, 4)))
            .with_tenant(TenantSpec::new(POLITE, TenantQuota::new(4, 16)).with_weight(4))
    };
    let rt_a = Runtime::start(config(1), &fabric, host_a).expect("runtime a");
    let rt_b = Runtime::start(config(2), &fabric, host_b).expect("runtime b");
    rt_a.add_peer(host_b).expect("peer");
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    (fabric, rt_a, rt_b)
}

#[test]
fn over_quota_tenant_gets_typed_rejections_while_neighbor_completes() {
    let (_fabric, rt_a, rt_b) = tenant_pair();

    // Greedy tenant hoards buffers without emitting until its 4-slot
    // quota is exhausted.
    let greedy = Session::connect_with(&rt_a, SessionConfig::for_tenant(GREEDY)).expect("session");
    let greedy_stream = greedy.create_stream(QosPolicy::fast()).expect("stream");
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let greedy_source = greedy_stream
        .create_source(ChannelId(30))
        .expect("greedy source");
    let mut hoard = Vec::new();
    let rejection = loop {
        match greedy_source.get_buffer(64) {
            Ok(buf) => hoard.push(buf),
            Err(e) => break e,
        }
        assert!(hoard.len() <= 4, "quota cap of 4 slots never enforced");
    };
    assert_eq!(hoard.len(), 4, "the full quota is usable before refusal");
    assert!(
        matches!(
            rejection,
            InsaneError::Memory(MemoryError::QuotaExceeded { tenant: GREEDY, .. })
        ),
        "over-quota lend must fail with the typed quota error, got: {rejection}"
    );

    // The polite tenant's round trip completes while the neighbor is
    // pinned at its cap.
    let polite_a =
        Session::connect_with(&rt_a, SessionConfig::for_tenant(POLITE)).expect("session");
    let polite_b =
        Session::connect_with(&rt_b, SessionConfig::for_tenant(POLITE)).expect("session");
    let stream_a = polite_a.create_stream(QosPolicy::fast()).expect("stream");
    let stream_b = polite_b.create_stream(QosPolicy::fast()).expect("stream");
    let sink = stream_b.create_sink(ChannelId(31)).expect("sink");
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let source = stream_a.create_source(ChannelId(31)).expect("source");
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let mut buf = source.get_buffer(8).expect("polite tenant's lend succeeds");
    buf.copy_from_slice(b"isolated");
    source.emit(buf).expect("emit");
    let msg = loop {
        rt_a.poll_once();
        rt_b.poll_once();
        match sink.consume(ConsumeMode::NonBlocking) {
            Ok(m) => break m,
            Err(InsaneError::WouldBlock) => {}
            Err(e) => panic!("polite tenant must be unaffected, got: {e}"),
        }
    };
    assert_eq!(&*msg, b"isolated");

    // Releasing the hoard restores the greedy tenant's budget.
    hoard.clear();
    let buf = greedy_source
        .get_buffer(64)
        .expect("released slots re-lend");
    drop(buf);
}

#[test]
fn rate_limited_tenant_is_refused_without_draining_its_neighbor() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host_a = fabric.add_host("node-a");
    let host_b = fabric.add_host("node-b");
    let config = |id: u32| {
        RuntimeConfig::new(id)
            .with_technologies(&[Technology::KernelUdp])
            .with_threading(ThreadingMode::Manual)
            .with_tenant(
                TenantSpec::new(GREEDY, TenantQuota::new(2, 8)).with_rate(TenantRate::new(1, 2)),
            )
            .with_tenant(TenantSpec::new(POLITE, TenantQuota::new(2, 8)))
    };
    let rt_a = Runtime::start(config(1), &fabric, host_a).expect("runtime a");
    let rt_b = Runtime::start(config(2), &fabric, host_b).expect("runtime b");
    rt_a.add_peer(host_b).expect("peer");
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let greedy = Session::connect_with(&rt_a, SessionConfig::for_tenant(GREEDY)).expect("session");
    let stream = greedy.create_stream(QosPolicy::slow()).expect("stream");
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let source = stream.create_source(ChannelId(40)).expect("source");

    // Burst of 2 admitted, then the 1 msg/sec bucket runs dry.
    let mut rejected = 0;
    for _ in 0..8 {
        match source.get_buffer(16) {
            Ok(buf) => drop(buf),
            Err(InsaneError::AdmissionRejected { tenant }) => {
                assert_eq!(tenant, GREEDY);
                rejected += 1;
            }
            Err(e) => panic!("only typed admission rejections expected, got: {e}"),
        }
    }
    assert!(
        rejected >= 6,
        "the empty bucket must refuse, got {rejected}"
    );

    // The unlimited neighbor on the same runtime still lends freely.
    let polite = Session::connect_with(&rt_a, SessionConfig::for_tenant(POLITE)).expect("session");
    let polite_stream = polite.create_stream(QosPolicy::slow()).expect("stream");
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let polite_source = polite_stream.create_source(ChannelId(41)).expect("source");
    for _ in 0..8 {
        let buf = polite_source
            .get_buffer(16)
            .expect("neighbor keeps its own admission budget");
        drop(buf);
    }
}
