//! Property-based end-to-end tests: arbitrary payloads through the whole
//! middleware stack, over every datapath technology.

use std::time::{Duration, Instant};

use insane::core::runtime::poll_until_quiescent;
use insane::fabric::FaultPlan;
use insane::{
    ChannelId, ConsumeMode, ControlPlaneConfig, Fabric, InsaneError, QosPolicy, Runtime,
    RuntimeConfig, Technology, TestbedProfile, ThreadingMode,
};
use proptest::prelude::*;

fn pair(techs: &[Technology]) -> (Fabric, Runtime, Runtime) {
    let fabric = Fabric::new(TestbedProfile::local());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let config = |id| {
        RuntimeConfig::new(id)
            .with_technologies(techs)
            .with_threading(ThreadingMode::Manual)
    };
    let rt_a = Runtime::start(config(1), &fabric, a).unwrap();
    let rt_b = Runtime::start(config(2), &fabric, b).unwrap();
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    (fabric, rt_a, rt_b)
}

/// Messages of arbitrary content and size arrive intact and in per-stream
/// order over each technology.
fn roundtrip_property(
    techs: &[Technology],
    qos: QosPolicy,
    payloads: Vec<Vec<u8>>,
) -> Result<(), TestCaseError> {
    let (_fabric, rt_a, rt_b) = pair(techs);
    let session_a = insane::Session::connect(&rt_a).unwrap();
    let session_b = insane::Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(qos).unwrap();
    let stream_b = session_b.create_stream(qos).unwrap();
    let sink = stream_b.create_sink(ChannelId(77)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);
    let source = stream_a.create_source(ChannelId(77)).unwrap();

    for payload in &payloads {
        // Emit (with back-pressure handling).
        loop {
            match source.get_buffer(payload.len()) {
                Ok(mut buf) => {
                    buf.copy_from_slice(payload);
                    match source.emit(buf) {
                        Ok(_) => break,
                        Err(InsaneError::Backpressure) => {
                            rt_a.poll_once();
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("emit: {e}"))),
                    }
                }
                Err(InsaneError::Memory(_)) => {
                    rt_a.poll_once();
                    rt_b.poll_once();
                }
                Err(e) => return Err(TestCaseError::fail(format!("get_buffer: {e}"))),
            }
        }
    }
    // Drain everything and verify content + order + sequence numbers.
    let mut received = Vec::new();
    let mut spins = 0u64;
    while received.len() < payloads.len() {
        rt_a.poll_once();
        rt_b.poll_once();
        match sink.consume(ConsumeMode::NonBlocking) {
            Ok(msg) => {
                received.push((msg.meta().seq, msg.to_vec()));
                spins = 0;
            }
            Err(InsaneError::WouldBlock) => {
                spins += 1;
                prop_assert!(spins < 3_000_000, "messages lost in transit");
            }
            Err(e) => return Err(TestCaseError::fail(format!("consume: {e}"))),
        }
    }
    for (i, ((seq, bytes), expected)) in received.iter().zip(&payloads).enumerate() {
        prop_assert_eq!(*seq, i as u64, "per-stream sequence order");
        prop_assert_eq!(bytes, expected, "payload integrity at index {}", i);
    }
    prop_assert_eq!(rt_a.slots_in_use(), 0, "sender slots all returned");
    Ok(())
}

trait MsgToVec {
    fn to_vec(&self) -> Vec<u8>;
}

impl MsgToVec for insane::IncomingMessage {
    fn to_vec(&self) -> Vec<u8> {
        (**self).to_vec()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case builds a full two-node deployment
        ..ProptestConfig::default()
    })]

    #[test]
    fn udp_roundtrips_arbitrary_payloads(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..2000), 1..12)
    ) {
        roundtrip_property(&[Technology::KernelUdp], QosPolicy::slow(), payloads)?;
    }

    #[test]
    fn dpdk_roundtrips_arbitrary_payloads(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8000), 1..12)
    ) {
        roundtrip_property(
            &[Technology::KernelUdp, Technology::Dpdk],
            QosPolicy::fast(),
            payloads,
        )?;
    }

    #[test]
    fn xdp_roundtrips_arbitrary_payloads(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..3000), 1..12)
    ) {
        roundtrip_property(
            &[Technology::KernelUdp, Technology::Xdp],
            QosPolicy::frugal(),
            payloads,
        )?;
    }

    #[test]
    fn rdma_roundtrips_arbitrary_payloads(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..10_000), 1..12)
    ) {
        roundtrip_property(
            &[Technology::KernelUdp, Technology::Rdma],
            QosPolicy::fast(),
            payloads,
        )?;
    }

    /// The mapping never picks an unavailable technology, never falls
    /// back when acceleration is available, and is deterministic.
    #[test]
    fn qos_mapping_is_total_and_sound(
        accel in any::<bool>(),
        frugal in any::<bool>(),
        has_xdp in any::<bool>(),
        has_dpdk in any::<bool>(),
        has_rdma in any::<bool>(),
    ) {
        use insane::core::qos::{DefaultMapping, MappingStrategy};
        let policy = QosPolicy {
            acceleration: if accel {
                insane::Acceleration::Preferred
            } else {
                insane::Acceleration::None
            },
            resource_usage: if frugal {
                insane::ResourceUsage::Constrained
            } else {
                insane::ResourceUsage::Unconstrained
            },
            time_sensitivity: insane::TimeSensitivity::BestEffort,
        };
        let mut available = vec![Technology::KernelUdp];
        if has_xdp { available.push(Technology::Xdp); }
        if has_dpdk { available.push(Technology::Dpdk); }
        if has_rdma { available.push(Technology::Rdma); }

        let mapped = DefaultMapping.map(&policy, &available);
        prop_assert!(available.contains(&mapped.technology), "must pick an available tech");
        prop_assert_eq!(mapped, DefaultMapping.map(&policy, &available), "deterministic");
        if !accel {
            prop_assert_eq!(mapped.technology, Technology::KernelUdp);
            prop_assert!(!mapped.fallback);
        } else {
            let any_accel = has_xdp || has_dpdk || has_rdma;
            prop_assert_eq!(mapped.fallback, !any_accel, "fallback iff nothing accelerated");
            if has_rdma {
                prop_assert_eq!(mapped.technology, Technology::Rdma, "RDMA always preferred");
            }
        }
    }

    /// For any fault seed and any loss rate up to 35%, the self-healing
    /// control plane converges peering + subscriptions: a message
    /// eventually round-trips between two fresh runtimes.
    #[test]
    fn control_plane_converges_for_any_seed(
        seed in any::<u64>(),
        loss_pct in 0u32..35,
    ) {
        let loss = f64::from(loss_pct) / 100.0;
        let fabric = Fabric::new(TestbedProfile::local());
        let faults = fabric.faults();
        faults.seed(seed);
        faults.set_default_plan(FaultPlan::lossy(loss));
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let ctl = ControlPlaneConfig {
            retransmit_timeout: Duration::from_micros(200),
            max_attempts: 64,
            heartbeat_interval: Duration::from_millis(1),
            miss_threshold: 64,
        };
        let config = |id| {
            RuntimeConfig::new(id)
                .with_technologies(&[Technology::KernelUdp])
                .with_threading(ThreadingMode::Manual)
                .with_control(ctl)
        };
        let rt_a = Runtime::start(config(1), &fabric, a).unwrap();
        let rt_b = Runtime::start(config(2), &fabric, b).unwrap();
        rt_a.add_peer(b).unwrap();

        let session_a = insane::Session::connect(&rt_a).unwrap();
        let session_b = insane::Session::connect(&rt_b).unwrap();
        let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
        let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
        let sink = stream_b.create_sink(ChannelId(13)).unwrap();
        let source = stream_a.create_source(ChannelId(13)).unwrap();

        let until = Instant::now() + Duration::from_secs(20);
        let mut converged = false;
        while Instant::now() < until {
            for _ in 0..32 {
                rt_a.poll_once();
                rt_b.poll_once();
            }
            if let Ok(mut buf) = source.get_buffer(4) {
                buf.copy_from_slice(b"conv");
                match source.emit(buf) {
                    Ok(_) | Err(InsaneError::Backpressure) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("emit: {e}"))),
                }
            }
            for _ in 0..32 {
                rt_a.poll_once();
                rt_b.poll_once();
            }
            if let Ok(msg) = sink.consume(ConsumeMode::NonBlocking) {
                prop_assert_eq!(&*msg, &b"conv"[..]);
                converged = true;
                break;
            }
        }
        prop_assert!(converged, "no convergence for seed {} at loss {}", seed, loss);
    }
}
