//! The edge-cloud stories of §2/§8: components migrating between
//! heterogeneous nodes at runtime, and applications dynamically
//! (re)attaching to a host's runtime — Network Acceleration as a Service.

use insane::core::runtime::poll_until_quiescent;
use insane::{
    ChannelId, ConsumeMode, Fabric, InsaneError, QosPolicy, Runtime, RuntimeConfig, Technology,
    TestbedProfile, ThreadingMode,
};

fn manual(id: u32, techs: &[Technology]) -> RuntimeConfig {
    RuntimeConfig::new(id)
        .with_technologies(techs)
        .with_threading(ThreadingMode::Manual)
}

fn drive(runtimes: &[&Runtime]) {
    for rt in runtimes {
        rt.poll_once();
    }
}

fn consume_one(runtimes: &[&Runtime], sink: &insane::Sink) -> insane::IncomingMessage {
    for _ in 0..2_000_000 {
        drive(runtimes);
        match sink.consume(ConsumeMode::NonBlocking) {
            Ok(m) => return m,
            Err(InsaneError::WouldBlock) => {}
            Err(e) => panic!("{e}"),
        }
    }
    panic!("message never arrived");
}

/// A consumer component migrates from a DPDK-equipped node to a
/// kernel-only node.  The producer's code never changes; the
/// subscription control plane re-routes traffic, and the consumer's QoS
/// falls back transparently on the weaker node.
#[test]
fn consumer_migrates_across_heterogeneous_nodes() {
    let fabric = Fabric::new(TestbedProfile::local());
    let producer_host = fabric.add_host("producer");
    let strong_host = fabric.add_host("edge-strong"); // has DPDK
    let weak_host = fabric.add_host("edge-weak"); // kernel only

    let rt_prod = Runtime::start(
        manual(1, &[Technology::KernelUdp, Technology::Dpdk]),
        &fabric,
        producer_host,
    )
    .unwrap();
    let rt_strong = Runtime::start(
        manual(2, &[Technology::KernelUdp, Technology::Dpdk]),
        &fabric,
        strong_host,
    )
    .unwrap();
    let rt_weak = Runtime::start(manual(3, &[Technology::KernelUdp]), &fabric, weak_host).unwrap();
    rt_prod.add_peer(strong_host).unwrap();
    rt_prod.add_peer(weak_host).unwrap();
    rt_strong.add_peer(weak_host).unwrap();
    let all = [&rt_prod, &rt_strong, &rt_weak];
    poll_until_quiescent(&all, 300_000);

    // Producer: the application asks for acceleration; the code below
    // stays identical for the component on either consumer node.
    let producer_session = insane::Session::connect(&rt_prod).unwrap();
    let producer_stream = producer_session.create_stream(QosPolicy::fast()).unwrap();

    // Phase 1: the consumer component runs on the strong node.
    let consumer_session = insane::Session::connect(&rt_strong).unwrap();
    let consumer_stream = consumer_session.create_stream(QosPolicy::fast()).unwrap();
    assert_eq!(consumer_stream.technology(), Technology::Dpdk);
    assert!(!consumer_stream.is_fallback());
    let sink = consumer_stream.create_sink(ChannelId(40)).unwrap();
    poll_until_quiescent(&all, 300_000);

    let source = producer_stream.create_source(ChannelId(40)).unwrap();
    let mut buf = source.get_buffer(7).unwrap();
    buf.copy_from_slice(b"phase-1");
    source.emit(buf).unwrap();
    assert_eq!(&*consume_one(&all, &sink), b"phase-1");

    // Phase 2: migrate — tear down on the strong node, come up on the
    // weak one.  Same component code; only the hosting runtime differs.
    drop(sink);
    consumer_session.close();
    poll_until_quiescent(&all, 300_000);

    let consumer_session = insane::Session::connect(&rt_weak).unwrap();
    let consumer_stream = consumer_session.create_stream(QosPolicy::fast()).unwrap();
    assert_eq!(consumer_stream.technology(), Technology::KernelUdp);
    assert!(
        consumer_stream.is_fallback(),
        "weak node warns about fallback"
    );
    let sink = consumer_stream.create_sink(ChannelId(40)).unwrap();
    poll_until_quiescent(&all, 300_000);

    let strong_rx_before = rt_strong.stats().rx_messages;
    let mut buf = source.get_buffer(7).unwrap();
    buf.copy_from_slice(b"phase-2");
    source.emit(buf).unwrap();
    assert_eq!(&*consume_one(&all, &sink), b"phase-2");
    poll_until_quiescent(&all, 300_000);
    assert_eq!(
        rt_strong.stats().rx_messages,
        strong_rx_before,
        "the departed node no longer receives the channel"
    );
}

/// Applications detach from and re-attach to a running runtime without
/// restarting it: acceleration as a host service (§8).
#[test]
fn applications_reattach_to_a_long_lived_runtime() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("service-node");
    let rt = Runtime::start(
        manual(1, &[Technology::KernelUdp, Technology::Dpdk]),
        &fabric,
        host,
    )
    .unwrap();

    for generation in 0..5u8 {
        // A fresh application generation attaches...
        let session = insane::Session::connect(&rt).unwrap();
        let stream = session.create_stream(QosPolicy::fast()).unwrap();
        let source = stream.create_source(ChannelId(60)).unwrap();
        let sink = stream.create_sink(ChannelId(60)).unwrap();
        let mut buf = source.get_buffer(1).unwrap();
        buf.copy_from_slice(&[generation]);
        source.emit(buf).unwrap();
        let msg = consume_one(&[&rt], &sink);
        assert_eq!(&*msg, &[generation]);
        drop(msg);
        // ...and detaches cleanly.
        session.close();
        poll_until_quiescent(&[&rt], 100_000);
        assert_eq!(rt.slots_in_use(), 0, "generation {generation} leaked slots");
    }
}

/// Two independent applications share one runtime and one channel — the
/// multi-app sharing the paper's centralized design enables (§4).
#[test]
fn independent_applications_share_one_runtime() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("shared");
    let rt = Runtime::start(manual(1, &[Technology::KernelUdp]), &fabric, host).unwrap();

    let app_a = insane::Session::connect(&rt).unwrap();
    let app_b = insane::Session::connect(&rt).unwrap();
    let stream_a = app_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = app_b.create_stream(QosPolicy::slow()).unwrap();

    // App B listens; app A publishes; each app also has private traffic.
    let shared_sink = stream_b.create_sink(ChannelId(70)).unwrap();
    let private_sink_a = stream_a.create_sink(ChannelId(71)).unwrap();
    let source_a = stream_a.create_source(ChannelId(70)).unwrap();
    let private_source_a = stream_a.create_source(ChannelId(71)).unwrap();

    let mut buf = source_a.get_buffer(6).unwrap();
    buf.copy_from_slice(b"shared");
    source_a.emit(buf).unwrap();
    let mut buf = private_source_a.get_buffer(7).unwrap();
    buf.copy_from_slice(b"private");
    private_source_a.emit(buf).unwrap();

    assert_eq!(&*consume_one(&[&rt], &shared_sink), b"shared");
    assert_eq!(&*consume_one(&[&rt], &private_sink_a), b"private");
    // No cross-talk.
    assert!(matches!(
        shared_sink.consume(ConsumeMode::NonBlocking),
        Err(InsaneError::WouldBlock)
    ));
}
