//! Threaded soak: real polling threads, several concurrent applications,
//! sustained churn — the configuration a deployment actually runs.
//! Asserts message conservation and zero slot leaks at the end.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use insane::{
    ChannelId, ConsumeMode, Fabric, InsaneError, QosPolicy, Runtime, RuntimeConfig, Technology,
    TestbedProfile,
};

#[test]
fn threaded_soak_conserves_messages_and_slots() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host_a = fabric.add_host("a");
    let host_b = fabric.add_host("b");
    let config =
        |id| RuntimeConfig::new(id).with_technologies(&[Technology::KernelUdp, Technology::Dpdk]);
    let rt_a = Runtime::start(config(1), &fabric, host_a).expect("runtime a");
    let rt_b = Runtime::start(config(2), &fabric, host_b).expect("runtime b");
    rt_a.add_peer(host_b).expect("peer");
    std::thread::sleep(Duration::from_millis(100));

    // Receiver side: two applications, one per QoS lane, counting via
    // callbacks (runs on the runtime's polling threads).
    let session_rx = insane::Session::connect(&rt_b).expect("rx session");
    let fast_rx = session_rx
        .create_stream(QosPolicy::fast())
        .expect("fast stream");
    let slow_rx = session_rx
        .create_stream(QosPolicy::slow())
        .expect("slow stream");
    let fast_count = Arc::new(AtomicU64::new(0));
    let slow_count = Arc::new(AtomicU64::new(0));
    let fast_bytes = Arc::new(AtomicU64::new(0));
    let fc = Arc::clone(&fast_count);
    let fb = Arc::clone(&fast_bytes);
    let _fast_sink = fast_rx
        .create_sink_with_callback(ChannelId(1), move |msg| {
            fb.fetch_add(msg.len() as u64, Ordering::Relaxed);
            fc.fetch_add(1, Ordering::Relaxed);
        })
        .expect("fast sink");
    let sc = Arc::clone(&slow_count);
    let slow_sink = slow_rx.create_sink(ChannelId(2)).expect("slow sink");
    std::thread::sleep(Duration::from_millis(100));

    // Sender side: two producer threads, one per lane.
    let session_tx = insane::Session::connect(&rt_a).expect("tx session");
    let fast_tx = session_tx
        .create_stream(QosPolicy::fast())
        .expect("fast stream");
    let slow_tx = session_tx
        .create_stream(QosPolicy::slow())
        .expect("slow stream");
    let fast_source = fast_tx.create_source(ChannelId(1)).expect("fast source");
    let slow_source = slow_tx.create_source(ChannelId(2)).expect("slow source");

    const PER_LANE: u64 = 400;
    let producer_fast = std::thread::spawn(move || {
        let mut sent = 0u64;
        while sent < PER_LANE {
            match fast_source.get_buffer(256) {
                Ok(mut buf) => {
                    buf[..8].copy_from_slice(&sent.to_le_bytes());
                    match fast_source.emit(buf) {
                        Ok(_) => sent += 1,
                        Err(InsaneError::Backpressure) => std::thread::yield_now(),
                        Err(e) => panic!("fast emit: {e}"),
                    }
                }
                Err(InsaneError::Memory(_)) => std::thread::yield_now(),
                Err(e) => panic!("fast get_buffer: {e}"),
            }
        }
    });
    // The slow lane consumer polls explicitly from this test thread.
    let consumer_slow = std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(30);
        while sc.load(Ordering::Relaxed) < PER_LANE {
            match slow_sink.consume(ConsumeMode::Blocking) {
                Ok(msg) => {
                    drop(msg);
                    sc.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => panic!("slow consume: {e}"),
            }
            assert!(Instant::now() < deadline, "slow lane stalled");
        }
    });
    let producer_slow = std::thread::spawn(move || {
        let mut sent = 0u64;
        while sent < PER_LANE {
            match slow_source.get_buffer(64) {
                Ok(mut buf) => {
                    buf[..8].copy_from_slice(&sent.to_le_bytes());
                    match slow_source.emit(buf) {
                        Ok(_) => sent += 1,
                        Err(InsaneError::Backpressure) => std::thread::yield_now(),
                        Err(e) => panic!("slow emit: {e}"),
                    }
                }
                Err(InsaneError::Memory(_)) => std::thread::yield_now(),
                Err(e) => panic!("slow get_buffer: {e}"),
            }
        }
    });

    producer_fast.join().expect("fast producer");
    producer_slow.join().expect("slow producer");
    consumer_slow.join().expect("slow consumer");

    // Wait for the fast lane's callbacks to account for everything.
    let deadline = Instant::now() + Duration::from_secs(30);
    while fast_count.load(Ordering::Relaxed) < PER_LANE {
        assert!(Instant::now() < deadline, "fast lane stalled");
        std::thread::sleep(Duration::from_millis(10));
    }

    assert_eq!(fast_count.load(Ordering::Relaxed), PER_LANE);
    assert_eq!(fast_bytes.load(Ordering::Relaxed), PER_LANE * 256);
    assert_eq!(slow_count.load(Ordering::Relaxed), PER_LANE);
    assert_eq!(rt_b.stats().rx_messages, PER_LANE * 2);
    assert_eq!(rt_b.stats().sink_drops, 0, "queues were deep enough");

    rt_a.shutdown();
    rt_b.shutdown();
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(rt_a.slots_in_use(), 0, "sender leaked slots");
}
