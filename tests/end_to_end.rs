//! Cross-crate integration tests: the whole stack, from the facade crate
//! down to the simulated devices, exercised the way a deployment would.

use insane::core::runtime::poll_until_quiescent;
use insane::lunar::streaming::{LunarStreamClient, LunarStreamServer};
use insane::lunar::LunarMom;
use insane::{
    ChannelId, ConsumeMode, Fabric, InsaneError, QosPolicy, Runtime, RuntimeConfig, Technology,
    TestbedProfile, ThreadingMode,
};

fn manual(id: u32, techs: &[Technology]) -> RuntimeConfig {
    RuntimeConfig::new(id)
        .with_technologies(techs)
        .with_threading(ThreadingMode::Manual)
}

/// Builds an n-node mesh (every runtime peered with every other).
fn mesh(n: u32, techs: &[Technology]) -> (Fabric, Vec<Runtime>) {
    let fabric = Fabric::new(TestbedProfile::local());
    let hosts: Vec<_> = (0..n)
        .map(|i| fabric.add_host(&format!("node-{i}")))
        .collect();
    let runtimes: Vec<_> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| Runtime::start(manual(i as u32 + 1, techs), &fabric, h).expect("runtime"))
        .collect();
    for (i, rt) in runtimes.iter().enumerate() {
        for (j, _) in runtimes.iter().enumerate() {
            if i != j {
                rt.add_peer(hosts[j]).expect("peer");
            }
        }
    }
    let refs: Vec<&Runtime> = runtimes.iter().collect();
    poll_until_quiescent(&refs, 200_000);
    (fabric, runtimes)
}

fn drive_all(runtimes: &[Runtime]) {
    for rt in runtimes {
        rt.poll_once();
    }
}

#[test]
fn three_node_mesh_broadcasts_to_all_subscribers() {
    let (_fabric, runtimes) = mesh(3, &[Technology::KernelUdp, Technology::Dpdk]);
    let sessions: Vec<_> = runtimes
        .iter()
        .map(|rt| insane::Session::connect(rt).expect("session"))
        .collect();
    let streams: Vec<_> = sessions
        .iter()
        .map(|s| s.create_stream(QosPolicy::fast()).expect("stream"))
        .collect();
    // Sinks on node 1 and node 2; source on node 0.
    let sink_1 = streams[1].create_sink(ChannelId(10)).expect("sink 1");
    let sink_2 = streams[2].create_sink(ChannelId(10)).expect("sink 2");
    let refs: Vec<&Runtime> = runtimes.iter().collect();
    poll_until_quiescent(&refs, 200_000);

    let source = streams[0].create_source(ChannelId(10)).expect("source");
    let mut buf = source.get_buffer(9).expect("buffer");
    buf.copy_from_slice(b"broadcast");
    source.emit(buf).expect("emit");

    for sink in [&sink_1, &sink_2] {
        let msg = loop {
            drive_all(&runtimes);
            match sink.consume(ConsumeMode::NonBlocking) {
                Ok(m) => break m,
                Err(InsaneError::WouldBlock) => {}
                Err(e) => panic!("{e}"),
            }
        };
        assert_eq!(&*msg, b"broadcast");
        assert_eq!(msg.meta().src_runtime, 1);
    }
    // Exactly one wire message per subscribed peer.
    assert_eq!(runtimes[0].stats().tx_messages, 2);
}

#[test]
fn mixed_qos_streams_share_one_runtime() {
    let (_fabric, runtimes) = mesh(
        2,
        &[Technology::KernelUdp, Technology::Xdp, Technology::Dpdk],
    );
    let session_a = insane::Session::connect(&runtimes[0]).expect("session");
    let session_b = insane::Session::connect(&runtimes[1]).expect("session");

    // Three streams with three policies on the same runtime pair.
    let configs = [
        (QosPolicy::slow(), Technology::KernelUdp, ChannelId(21)),
        (QosPolicy::frugal(), Technology::Xdp, ChannelId(22)),
        (QosPolicy::fast(), Technology::Dpdk, ChannelId(23)),
    ];
    let mut lanes = Vec::new();
    for (qos, expected, channel) in configs {
        let stream_a = session_a.create_stream(qos).expect("stream a");
        let stream_b = session_b.create_stream(qos).expect("stream b");
        assert_eq!(stream_a.technology(), expected);
        let sink = stream_b.create_sink(channel).expect("sink");
        lanes.push((stream_a, channel, sink));
    }
    let refs: Vec<&Runtime> = runtimes.iter().collect();
    poll_until_quiescent(&refs, 200_000);

    for (stream_a, channel, _) in &lanes {
        let source = stream_a.create_source(*channel).expect("source");
        let mut buf = source.get_buffer(4).expect("buffer");
        buf.copy_from_slice(&channel.0.to_le_bytes());
        source.emit(buf).expect("emit");
    }
    for (_, channel, sink) in &lanes {
        let msg = loop {
            drive_all(&runtimes);
            match sink.consume(ConsumeMode::NonBlocking) {
                Ok(m) => break m,
                Err(InsaneError::WouldBlock) => {}
                Err(e) => panic!("{e}"),
            }
        };
        assert_eq!(&*msg, &channel.0.to_le_bytes());
    }
}

#[test]
fn mom_and_streaming_coexist_on_shared_runtimes() {
    let (_fabric, runtimes) = mesh(2, &[Technology::KernelUdp, Technology::Dpdk]);
    let refs: Vec<&Runtime> = runtimes.iter().collect();

    // LunarMoM on the fast path and Lunar Streaming on the slow path,
    // sharing the two runtimes.
    let mom_pub = LunarMom::connect(&runtimes[0], QosPolicy::fast()).expect("mom pub");
    let mom_sub = LunarMom::connect(&runtimes[1], QosPolicy::fast()).expect("mom sub");
    let subscriber = mom_sub.subscriber("alerts").expect("subscriber");
    let mut stream_client =
        LunarStreamClient::connect(&runtimes[1], QosPolicy::slow(), ChannelId(900))
            .expect("stream client");
    poll_until_quiescent(&refs, 200_000);
    let mut stream_server =
        LunarStreamServer::open(&runtimes[0], QosPolicy::slow(), ChannelId(900))
            .expect("stream server");
    poll_until_quiescent(&refs, 200_000);

    mom_pub.publish("alerts", b"overheat").expect("publish");
    let frame: Vec<u8> = (0..50_000u32).map(|i| i as u8).collect();
    stream_server
        .send_frame_with(&frame, || drive_all(&runtimes))
        .expect("send frame");

    let alert = loop {
        drive_all(&runtimes);
        match subscriber.try_next() {
            Ok(m) => break m,
            Err(insane::lunar::LunarError::WouldBlock) => {}
            Err(e) => panic!("{e}"),
        }
    };
    assert_eq!(&*alert, b"overheat");

    let mut frames = Vec::new();
    while frames.is_empty() {
        drive_all(&runtimes);
        frames = stream_client.poll_frames().expect("poll frames");
    }
    assert_eq!(frames[0].data, frame);
}

#[test]
fn sink_queue_overflow_drops_are_counted_not_fatal() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let mut config = manual(1, &[Technology::KernelUdp]);
    config.sink_queue_depth = 4; // tiny: force overflow
    let rt = Runtime::start(config, &fabric, host).expect("runtime");
    let session = insane::Session::connect(&rt).expect("session");
    let stream = session.create_stream(QosPolicy::slow()).expect("stream");
    let sink = stream.create_sink(ChannelId(1)).expect("sink");
    let source = stream.create_source(ChannelId(1)).expect("source");

    for i in 0..20u8 {
        let mut buf = source.get_buffer(1).expect("buffer");
        buf.copy_from_slice(&[i]);
        source.emit(buf).expect("emit");
        rt.poll_once();
    }
    poll_until_quiescent(&[&rt], 100_000);
    let stats = sink.stats();
    assert!(stats.dropped > 0, "overflow must be observable");
    assert!(stats.received >= 4, "queue capacity still delivered");
    assert_eq!(rt.stats().sink_drops, stats.dropped);
    // The system keeps working afterwards.
    let mut consumed = 0;
    while sink.consume(ConsumeMode::NonBlocking).is_ok() {
        consumed += 1;
    }
    assert_eq!(consumed as u64, stats.received);
    assert_eq!(rt.slots_in_use(), 0, "dropped deliveries release slots");
}

#[test]
fn runtime_shutdown_is_clean_and_final() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(RuntimeConfig::new(1), &fabric, host).expect("runtime");
    assert!(rt.is_started());
    let session = insane::Session::connect(&rt).expect("session");
    let stream = session.create_stream(QosPolicy::slow()).expect("stream");
    let source = stream.create_source(ChannelId(1)).expect("source");
    rt.shutdown();
    assert!(!rt.is_started());
    let result = source.get_buffer(1).map(|b| source.emit(b));
    match result {
        Ok(Err(InsaneError::Closed)) | Err(_) => {}
        other => panic!("emit after shutdown must fail, got {other:?}"),
    }
    assert!(matches!(
        insane::Session::connect(&rt),
        Err(InsaneError::Closed)
    ));
}

#[test]
fn demikernel_and_insane_share_a_fabric() {
    // The baseline and the middleware can coexist on the same simulated
    // testbed without port collisions (distinct port spaces).
    use insane::demikernel::{Backend, DemiEvent, Demikernel};
    let fabric = Fabric::new(TestbedProfile::local());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let rt_a = Runtime::start(manual(1, &[Technology::KernelUdp]), &fabric, a).expect("rt a");
    let rt_b = Runtime::start(manual(2, &[Technology::KernelUdp]), &fabric, b).expect("rt b");
    rt_a.add_peer(b).expect("peer");
    poll_until_quiescent(&[&rt_a, &rt_b], 200_000);

    let mut da = Demikernel::new(Backend::Catnap, &fabric, a).expect("demi a");
    let mut db = Demikernel::new(Backend::Catnap, &fabric, b).expect("demi b");
    let qa = da.socket().expect("qd");
    let qb = db.socket().expect("qd");
    da.bind(qa, 7777).expect("bind");
    db.bind(qb, 7777).expect("bind");
    da.push_to(
        qa,
        b"side-by-side",
        insane::fabric::Endpoint {
            host: b,
            port: 7777,
        },
    )
    .expect("push");
    let pop = db.pop(qb).expect("pop");
    match db
        .wait(pop, Some(std::time::Duration::from_secs(1)))
        .expect("wait")
    {
        DemiEvent::Popped { bytes, .. } => assert_eq!(bytes, b"side-by-side"),
        DemiEvent::Pushed => unreachable!(),
    }
}
