//! Facade crate for the INSANE middleware reproduction.
//!
//! Re-exports the whole workspace under one roof so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`core`] — the middleware itself (API, QoS, runtime);
//! * [`fabric`] — the simulated edge-cloud testbeds and devices;
//! * [`lunar`] — the LunarMoM and Lunar Streaming applications;
//! * [`demikernel`] / [`baselines`] — the evaluation's reference systems;
//! * [`memory`], [`queues`], [`netstack`], [`tsn`] — the substrates;
//! * [`ipc`] — the client/runtime process split (`insaned` daemon, thin
//!   client library, shared-memory datapath).
//!
//! The most common items are additionally re-exported at the top level.
//!
//! # Example
//!
//! ```
//! use insane::{ChannelId, ConsumeMode, Fabric, QosPolicy, Runtime, RuntimeConfig,
//!              Session, TestbedProfile};
//!
//! let fabric = Fabric::new(TestbedProfile::local());
//! let node = fabric.add_host("edge-node");
//! let runtime = Runtime::start(RuntimeConfig::new(1), &fabric, node)?;
//! let session = Session::connect(&runtime)?;
//! let stream = session.create_stream(QosPolicy::fast())?;
//! let source = stream.create_source(ChannelId(1))?;
//! let sink = stream.create_sink(ChannelId(1))?;
//! let mut buf = source.get_buffer(2)?;
//! buf.copy_from_slice(b"hi");
//! source.emit(buf)?;
//! let msg = sink.consume(ConsumeMode::Blocking)?;
//! assert_eq!(&*msg, b"hi");
//! # Ok::<(), insane::InsaneError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use insane_baselines as baselines;
pub use insane_core as core;
pub use insane_demikernel as demikernel;
pub use insane_fabric as fabric;
pub use insane_ipc as ipc;
pub use insane_memory as memory;
pub use insane_netstack as netstack;
pub use insane_queues as queues;
pub use insane_tsn as tsn;
pub use lunar;

pub use insane_core::{
    clear_warning_hook, set_warning_hook, shard_of_channel, shard_of_stream, Acceleration,
    ChannelId, ConsumeMode, ControlPlaneConfig, EmitOutcome, IncomingMessage, InsaneError,
    MessageBuffer, OverloadPolicy, QosPolicy, ResourceUsage, Runtime, RuntimeConfig,
    SchedulerChoice, Session, SessionConfig, Sink, Source, Stream, Technology, TelemetryConfig,
    TenantId, TenantQuota, TenantRate, TenantSpec, ThreadingMode, TimeSensitivity,
};
pub use insane_fabric::{Fabric, HostId, TestbedProfile};
pub use lunar::{LunarMom, LunarStreamClient, LunarStreamServer};
