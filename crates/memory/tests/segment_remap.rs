//! Position-independence of the pool layout: the same pool bytes must be
//! valid at *different* base addresses, because each process maps the
//! shared segment wherever `mmap` puts it.  Heap segments cannot be
//! literally remapped, so these tests (a) host the pool at a non-zero
//! offset inside a larger backing and (b) byte-copy a quiescent pool
//! into a second allocation and attach there — if any absolute pointer
//! had leaked into the segment, the copy would explode.  Runs under
//! Miri (strict provenance) in CI.

#![cfg(not(loom))]

use insane_memory::{MemoryError, PoolConfig, SlotPool};

#[test]
fn pool_works_at_a_nonzero_segment_offset() {
    let config = PoolConfig::new(4, 64, 8);
    let len = SlotPool::required_segment_len(&config).unwrap();
    // Host the pool in a window starting 256 bytes into the backing:
    // every derived pointer must be window-relative, not backing-relative.
    let backing = insane_memory::Segment::heap(len + 256);
    let window = backing.slice(256, len).unwrap();
    let pool = SlotPool::create_in_segment(config, window.clone()).unwrap();
    let mut g = pool.acquire(5).unwrap();
    g.copy_from_slice(b"shift");
    let t = g.into_token();

    // A second attach through an equivalent window sees the same state.
    let other = SlotPool::attach_segment(backing.slice(256, len).unwrap()).unwrap();
    let v = other.view(t).unwrap();
    assert_eq!(&*v, b"shift");
    assert!(window.contains_ptr(v.as_ptr()));
    drop(v);
    assert_eq!(pool.free_slots(), 8);
}

#[test]
fn pool_bytes_copied_to_a_second_allocation_stay_valid() {
    let config = PoolConfig::new(9, 32, 4);
    let len = SlotPool::required_segment_len(&config).unwrap();
    let seg_a = insane_memory::Segment::heap(len);
    let pool_a = SlotPool::create_in_segment(config, seg_a.clone()).unwrap();

    // Leave two checkouts outstanding, with known payloads.
    let mut g = pool_a.acquire(3).unwrap();
    g.copy_from_slice(b"one");
    let t1 = g.into_token();
    let mut g = pool_a.acquire(3).unwrap();
    g.copy_from_slice(b"two");
    let t2 = g.into_token();
    assert_eq!(pool_a.stats().in_use, 2);

    // "Remap": byte-copy the quiescent pool into a fresh allocation at a
    // different address (and a different offset, for good measure).
    let seg_b_backing = insane_memory::Segment::heap(len + 1024);
    let seg_b = seg_b_backing.slice(1024, len).unwrap();
    assert_ne!(seg_a.base_ptr(), seg_b.base_ptr());
    // SAFETY: both regions are live, disjoint allocations of `len`
    // bytes; no other thread touches them during the copy.
    unsafe { core::ptr::copy_nonoverlapping(seg_a.base_ptr(), seg_b.base_ptr(), len) };

    let pool_b = SlotPool::attach_segment(seg_b.clone()).unwrap();
    assert_eq!(pool_b.pool_id(), 9);
    assert_eq!(pool_b.stats().in_use, 2);
    assert_eq!(pool_b.free_slots(), 2);

    // Tokens minted against mapping A resolve against mapping B, and the
    // bytes they point at live inside B's window, not A's.
    let v1 = pool_b.view(t1).unwrap();
    let v2 = pool_b.view(t2).unwrap();
    assert_eq!(&*v1, b"one");
    assert_eq!(&*v2, b"two");
    assert!(seg_b.contains_ptr(v1.as_ptr()));
    assert!(!seg_a.contains_ptr(v1.as_ptr()));
    // Dropping the views returns both checkouts (full release discipline
    // works in the copy).
    drop(v1);
    drop(v2);
    assert_eq!(pool_b.free_slots(), 4);
    assert_eq!(pool_b.stats().in_use, 0);
    // And the copied pool is independent: mapping A is untouched.
    assert_eq!(pool_a.stats().in_use, 2);

    // The copy keeps working through fresh acquire/release cycles.
    let t3 = pool_b.acquire(2).unwrap().into_token();
    pool_b.release(t3).unwrap();
    assert!(matches!(pool_b.view(t3), Err(MemoryError::StaleToken)));
}
