//! Loom model-checking suite for the slot pool's packed-state protocol.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p insane-memory --release
//! --test loom`.  The pool's generation/refcount word and counters go
//! through the `insane_queues::sync` shim, so loom explores the ownership
//! transitions themselves (payload bytes are exercised by Miri and the
//! sanitizer jobs instead; see DESIGN.md §7).
#![cfg(loom)]

use insane_memory::{MemoryError, PoolConfig, SlotPool};
use loom::thread;

fn pool(slots: usize) -> SlotPool {
    SlotPool::new(PoolConfig::new(7, 64, slots)).expect("pool config is valid")
}

/// The paper's lend → emit → release cycle across two threads: the
/// producer acquires and emits a token; the consumer views, releases, and
/// thereby bumps the generation so the producer's retained copy goes
/// stale.  Accounting must return to zero.
#[test]
fn lend_emit_release_bumps_generation() {
    loom::model(|| {
        let p = pool(2);
        let guard = p.acquire(8).expect("fresh pool has free slots");
        let token = guard.into_token();
        let consumer = {
            let p = p.clone();
            thread::spawn(move || {
                let view = p.view(token).expect("token is live until released");
                drop(view); // drop releases the checkout
            })
        };
        consumer.join().unwrap();
        // The consumer's release bumped the generation: every retained
        // copy of the token is now stale, never a silent alias.
        assert_eq!(p.view(token).err(), Some(MemoryError::StaleToken));
        assert_eq!(p.release(token).err(), Some(MemoryError::StaleToken));
        let stats = p.stats();
        assert_eq!(stats.in_use, 0, "slot leaked through the emit cycle");
        assert_eq!(p.free_slots(), 2);
    });
}

/// Two threads race to release the same token: exactly one must win, the
/// loser must get `StaleToken` (not a panic, not a refcount underflow),
/// and the slot must be freed exactly once.
#[test]
fn racing_double_release_has_exactly_one_winner() {
    loom::model(|| {
        let p = pool(1);
        let token = p
            .acquire(4)
            .expect("fresh pool has a free slot")
            .into_token();
        let racer = {
            let p = p.clone();
            thread::spawn(move || p.release(token).is_ok())
        };
        let local_won = p.release(token).is_ok();
        let racer_won = racer.join().unwrap();
        assert!(
            local_won ^ racer_won,
            "racing releases: expected exactly one winner, got local={local_won} racer={racer_won}"
        );
        let stats = p.stats();
        assert_eq!(stats.in_use, 0);
        assert_eq!(
            stats.misuse_rejections, 1,
            "the losing release must be counted"
        );
        // Freed exactly once: the slot is reusable and the pool is not
        // over-freed (a second pop from a corrupted free list would panic
        // or alias).
        let again = p.acquire(4).expect("slot must be reusable after release");
        assert_eq!(p.stats().in_use, 1);
        drop(again);
        assert_eq!(p.stats().in_use, 0);
    });
}

/// Multi-sink sharing (`clone_ref`, Fig. 8b): two views of one slot drop
/// on different threads.  The refcount must pass 2 → 1 → 0 with the
/// generation bump fused to the final decrement — the slot is freed
/// exactly once and only after the last reader is gone.
#[test]
fn concurrent_view_drops_free_the_slot_exactly_once() {
    loom::model(|| {
        let p = pool(1);
        let token = p
            .acquire(4)
            .expect("fresh pool has a free slot")
            .into_token();
        let v1 = p.view(token).expect("token is live");
        let v2 = v1.clone_ref();
        assert_eq!(p.stats().in_use, 1);
        let t1 = thread::spawn(move || drop(v1));
        let t2 = thread::spawn(move || drop(v2));
        t1.join().unwrap();
        t2.join().unwrap();
        let stats = p.stats();
        assert_eq!(stats.in_use, 0, "last drop must return the slot");
        assert_eq!(stats.misuse_rejections, 0, "both drops were legitimate");
        assert_eq!(p.free_slots(), 1, "slot must end up free exactly once");
        // The final decrement bumped the generation: the original token
        // (and any copy of it) is stale, never an alias of the next owner.
        assert_eq!(p.view(token).err(), Some(MemoryError::StaleToken));
    });
}
