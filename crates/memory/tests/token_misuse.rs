//! Token-misuse semantics: every ownership-discipline violation must come
//! back as a typed [`MemoryError`] — never a panic, never silent aliasing
//! of a slot that has moved on to a new owner — and must be visible in
//! [`PoolStats::misuse_rejections`].
//!
//! The proptest at the bottom hammers concurrent lend/release cycles and
//! cross-checks the pool's accounting counters against ground truth.

use std::thread;

use insane_memory::{MemoryError, PoolConfig, SlotPool};
use proptest::prelude::*;

fn pool(id: u16, slots: usize) -> SlotPool {
    SlotPool::new(PoolConfig::new(id, 256, slots)).expect("valid config")
}

#[test]
fn double_release_is_a_typed_error() {
    let p = pool(1, 4);
    let token = p.acquire(16).unwrap().into_token();
    assert_eq!(p.release(token), Ok(()));
    assert_eq!(p.release(token), Err(MemoryError::StaleToken));
    let stats = p.stats();
    assert_eq!(stats.in_use, 0);
    assert_eq!(stats.misuse_rejections, 1);
}

#[test]
fn stale_generation_cannot_touch_the_slots_new_owner() {
    let p = pool(1, 1);
    let old = p.acquire(8).unwrap().into_token();
    p.release(old).unwrap();

    // The same physical slot is re-lent to a new owner...
    let current = p.acquire(8).unwrap();
    let current_token = current.token();
    assert_eq!(
        old.index(),
        current_token.index(),
        "single-slot pool must reuse the slot"
    );

    // ...and every operation through the stale token is rejected.
    assert_eq!(p.view(old).err(), Some(MemoryError::StaleToken));
    assert_eq!(p.redeem(old).err(), Some(MemoryError::StaleToken));
    assert_eq!(p.release(old).err(), Some(MemoryError::StaleToken));

    // The new owner's checkout is untouched by the three rejections.
    let stats = p.stats();
    assert_eq!(stats.in_use, 1);
    assert_eq!(stats.misuse_rejections, 3);
    drop(current);
    assert_eq!(p.stats().in_use, 0);
}

#[test]
fn cross_pool_tokens_are_invalid_not_stale() {
    let a = pool(1, 2);
    let b = pool(2, 2);
    let token = a.acquire(4).unwrap().into_token();
    assert_eq!(b.release(token), Err(MemoryError::InvalidToken));
    assert_eq!(b.view(token).err(), Some(MemoryError::InvalidToken));
    assert_eq!(b.stats().misuse_rejections, 2);
    // Pool A's checkout is unaffected by pool B's rejections.
    assert_eq!(a.stats().in_use, 1);
    assert_eq!(a.release(token), Ok(()));
}

#[test]
fn releasing_through_a_copied_token_makes_the_guard_drop_inert() {
    let p = pool(1, 2);
    let guard = p.acquire(8).unwrap();
    let token = guard.token();
    // Misuse: releasing via the copied token while the guard is alive.
    assert_eq!(p.release(token), Ok(()));
    assert_eq!(p.stats().in_use, 0);
    // The guard's own drop finds its generation retired: it must be a
    // counted no-op, not an underflow or a second free-list push.
    drop(guard);
    let stats = p.stats();
    assert_eq!(stats.in_use, 0);
    assert_eq!(stats.misuse_rejections, 1);
    // Both slots are individually acquirable: the free list holds no
    // duplicate entry for the doubly-released slot.
    let g1 = p.acquire(1).unwrap();
    let g2 = p.acquire(1).unwrap();
    assert_ne!(g1.token().index(), g2.token().index());
    assert!(matches!(
        p.acquire(1),
        Err(MemoryError::PoolExhausted { .. })
    ));
}

#[test]
fn shared_views_keep_the_slot_live_until_the_last_reader() {
    let p = pool(1, 1);
    let token = p.acquire(4).unwrap().into_token();
    let v1 = p.view(token).unwrap();
    let v2 = v1.clone_ref();
    drop(v1);
    // Still checked out by v2: the slot cannot be re-lent.
    assert!(matches!(
        p.acquire(1),
        Err(MemoryError::PoolExhausted { .. })
    ));
    drop(v2);
    assert_eq!(p.stats().in_use, 0);
    assert!(p.acquire(1).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Concurrent lend/release churn with deliberate double releases mixed
    /// in: afterwards the counters must reconcile exactly — no lost slots,
    /// no phantom checkouts, every misuse counted.
    #[test]
    fn concurrent_churn_reconciles_pool_stats(
        threads in 2usize..5,
        rounds in 1usize..40,
        slots in 1usize..8,
        double_release_every in 1u32..8,
    ) {
        let p = pool(9, slots);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let p = p.clone();
                thread::spawn(move || {
                    let mut acquired = 0u64;
                    let mut misuses = 0u64;
                    for r in 0..rounds {
                        match p.acquire(32) {
                            Ok(guard) => {
                                acquired += 1;
                                let token = guard.into_token();
                                p.release(token).expect("sole owner releases once");
                                if (t as u32 + r as u32).is_multiple_of(double_release_every) {
                                    // Deliberate misuse: the token is stale.
                                    if p.release(token).is_err() {
                                        misuses += 1;
                                    }
                                }
                            }
                            Err(MemoryError::PoolExhausted { .. }) => thread::yield_now(),
                            Err(other) => panic!("unexpected acquire error: {other:?}"),
                        }
                    }
                    (acquired, misuses)
                })
            })
            .collect();

        let mut total_acquired = 0u64;
        let mut total_misuses = 0u64;
        for h in handles {
            let (a, m) = h.join().expect("worker must not panic");
            total_acquired += a;
            total_misuses += m;
        }

        let stats = p.stats();
        prop_assert_eq!(stats.in_use, 0, "all checkouts were returned");
        prop_assert_eq!(stats.acquires, total_acquired);
        prop_assert_eq!(stats.misuse_rejections, total_misuses);
        prop_assert!(stats.high_water <= slots, "high_water {} > slot count {}", stats.high_water, slots);
        prop_assert!(
            total_acquired == 0 || stats.high_water >= 1,
            "slots were lent but high_water stayed 0"
        );
        // Every slot is individually re-acquirable: the free list was not
        // corrupted by the deliberate double releases.
        let guards: Vec<_> = (0..slots).map(|_| p.acquire(1).expect("slot recoverable")).collect();
        prop_assert!(matches!(p.acquire(1), Err(MemoryError::PoolExhausted { .. })));
        drop(guards);
        prop_assert_eq!(p.stats().in_use, 0);
    }
}
