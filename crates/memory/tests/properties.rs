//! Property-based tests for the slot-pool invariants.

use insane_memory::{
    MemoryError, PoolConfig, PoolSetBuilder, SlotPool, SlotToken, TenantId, TenantQuota,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Acquire(u8),
    ReleaseHeld(usize),
    ViewHeld(usize),
    DoubleRelease(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..=64).prop_map(Op::Acquire),
        (0usize..8).prop_map(Op::ReleaseHeld),
        (0usize..8).prop_map(Op::ViewHeld),
        (0usize..8).prop_map(Op::DoubleRelease),
    ]
}

proptest! {
    /// Under any sequence of acquire/release/view/double-release the pool
    /// never loses slots, never double-lends, and always detects stale
    /// tokens.
    #[test]
    fn pool_accounting_is_exact(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let pool = SlotPool::new(PoolConfig::new(0, 64, 8)).unwrap();
        let mut held: Vec<SlotToken> = Vec::new();
        let mut released: Vec<SlotToken> = Vec::new();
        for op in ops {
            match op {
                Op::Acquire(len) => match pool.acquire(len as usize) {
                    Ok(mut g) => {
                        for b in g.iter_mut() {
                            *b = len;
                        }
                        held.push(g.into_token());
                    }
                    Err(MemoryError::PoolExhausted { .. }) => prop_assert_eq!(held.len(), 8),
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected {e}"))),
                },
                Op::ReleaseHeld(i) if !held.is_empty() => {
                    let t = held.swap_remove(i % held.len());
                    pool.release(t).unwrap();
                    released.push(t);
                }
                Op::ViewHeld(i) if !held.is_empty() => {
                    let t = held[i % held.len()];
                    let v = pool.view(t).unwrap();
                    prop_assert_eq!(v.len(), t.len());
                    // Contents are what the acquirer wrote.
                    prop_assert!(v.iter().all(|&b| b as usize == t.len()));
                    let _ = v.into_token(); // keep checked out
                }
                Op::DoubleRelease(i) if !released.is_empty() => {
                    let t = released[i % released.len()];
                    prop_assert_eq!(pool.release(t), Err(MemoryError::StaleToken));
                }
                _ => {}
            }
            prop_assert_eq!(pool.stats().in_use, held.len());
            prop_assert_eq!(pool.free_slots(), 8 - held.len());
        }
    }

    /// PoolSet routes any acquired token back to the pool that minted it,
    /// for arbitrary size-class layouts and request sizes.
    #[test]
    fn pool_set_routing_is_consistent(sizes in proptest::collection::vec(1usize..512, 1..4),
                                      reqs in proptest::collection::vec(0usize..600, 1..50)) {
        let mut b = PoolSetBuilder::new();
        for &s in &sizes {
            b = b.pool(s, 4);
        }
        let set = b.build().unwrap();
        let max = *sizes.iter().max().unwrap();
        for req in reqs {
            match set.acquire(req) {
                Ok(g) => {
                    let t = g.into_token();
                    let owner = set.pool_of(t).unwrap();
                    prop_assert!(owner.slot_size() >= req);
                    set.release(t).unwrap();
                }
                Err(MemoryError::RequestTooLarge { requested, max: m }) => {
                    prop_assert!(req > max);
                    prop_assert_eq!(requested, req);
                    prop_assert_eq!(m, max);
                }
                Err(MemoryError::PoolExhausted { .. }) => {}
                Err(e) => return Err(TestCaseError::fail(format!("unexpected {e}"))),
            }
        }
        prop_assert_eq!(set.total_in_use(), 0);
    }

    /// Quota accounting is exact under arbitrary lend/release interleavings:
    /// a tenant's slots-held never exceeds its quota max, rejections are
    /// typed (`QuotaExceeded`, never a global exhaustion while its neighbor's
    /// reservation would still fit), and the per-tenant holds reconcile with
    /// the pool-level `PoolStats` occupancy at every step.
    #[test]
    fn tenant_quota_accounting_is_exact(
        ops in proptest::collection::vec((0u8..3, 0usize..16), 1..300)
    ) {
        const QUOTAS: [(TenantId, TenantQuota); 2] = [
            (1, TenantQuota { reserved: 2, max: 5 }),
            (2, TenantQuota { reserved: 3, max: 12 }),
        ];
        let set = PoolSetBuilder::new()
            .pool(64, 8)
            .pool(256, 4)
            .tenant(QUOTAS[0].0, QUOTAS[0].1)
            .tenant(QUOTAS[1].0, QUOTAS[1].1)
            .build()
            .unwrap();
        let mut held: [Vec<insane_memory::SlotGuard>; 2] = [Vec::new(), Vec::new()];
        for (op, arg) in ops {
            let who = arg % 2;
            let (tenant, quota) = QUOTAS[who];
            match op {
                // Lend for one of the two tenants.
                0 | 1 => match set.lend(tenant, 48) {
                    Ok(guard) => held[who].push(guard),
                    Err(MemoryError::QuotaExceeded { tenant: t, held: h, max }) => {
                        prop_assert_eq!(t, tenant);
                        prop_assert_eq!(h, quota.max);
                        prop_assert_eq!(max, quota.max);
                        prop_assert_eq!(held[who].len(), quota.max);
                    }
                    Err(MemoryError::PoolExhausted { .. }) => {
                        // Legal only when the supply is genuinely gone for
                        // this tenant: every slot is out, or only other
                        // tenants' reservations remain.
                        prop_assert!(held[0].len() + held[1].len() >= 7);
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected {e}"))),
                },
                // Release one held slot.
                _ => {
                    if !held[who].is_empty() {
                        let idx = arg % held[who].len();
                        drop(held[who].swap_remove(idx));
                    }
                }
            }
            // Invariants after every operation.
            for (who, (tenant, quota)) in QUOTAS.iter().enumerate() {
                prop_assert_eq!(set.tenant_held(*tenant), held[who].len());
                prop_assert!(held[who].len() <= quota.max);
            }
            // Per-tenant holds reconcile with pool-level stats.
            prop_assert_eq!(set.total_in_use(), held[0].len() + held[1].len());
        }
        drop(held);
        prop_assert_eq!(set.total_in_use(), 0);
        prop_assert_eq!(set.tenant_held(1), 0);
        prop_assert_eq!(set.tenant_held(2), 0);
    }
}
