//! Per-tenant slot quotas: the accounting layer behind multi-tenant
//! isolation in the memory manager.
//!
//! The runtime is a *shared per-host service* (paper §4): many
//! applications — tenants — multiplex one `PoolSet`.  Without quotas a
//! single saturating tenant exhausts the global free lists and every
//! other application sees [`MemoryError::PoolExhausted`].  The
//! [`QuotaLedger`] bounds each tenant with a *reservation + max* model:
//!
//! * up to `reserved` slots are guaranteed — other tenants' spill can
//!   never take them, because everyone else's draw from the *shared
//!   headroom* is capped at `total_slots − Σ reserved`;
//! * between `reserved` and `max` a tenant draws from the shared
//!   headroom on a first-come basis;
//! * beyond `max` the tenant gets a typed
//!   [`MemoryError::QuotaExceeded`] — back-pressure lands on the tenant
//!   that caused it, never on its neighbors.
//!
//! ## Accounting mechanism
//!
//! The ledger owns one *charge word* per slot (flat-indexed across all
//! pools of the set).  A successful charge writes
//! `(entry_index + 1) | SHARED_BIT?` into the slot's word; the release
//! hook in `SlotPool::release_checkout` swaps the word back to zero and
//! credits the recorded entry.  The classification (reserved vs shared
//! draw) travels *with the slot*, so charges and credits always balance
//! even when guards are dropped far from the `PoolSet` that lent them.
//! A word of zero means "untracked" — charging is skipped entirely when
//! no tenants are registered, so single-tenant deployments pay nothing.
//!
//! The credit runs *before* the slot re-enters the free list, and the
//! free list's push/pop pair orders it before the next charge of the
//! same slot, so all ledger atomics can be `Relaxed`.

use insane_queues::sync::{AtomicU32, AtomicU64, Ordering};

use crate::MemoryError;

/// Identifier of a tenant (an application sharing the per-host runtime).
pub type TenantId = u16;

/// The tenant id used when no tenant was specified: runtime-internal
/// traffic (control messages) and single-tenant deployments.
pub const DEFAULT_TENANT: TenantId = 0;

/// Slot-quota configuration for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Slots guaranteed to this tenant: the shared headroom other
    /// tenants draw from excludes them.
    pub reserved: usize,
    /// Hard cap on simultaneously-held slots; beyond it the tenant gets
    /// [`MemoryError::QuotaExceeded`].
    pub max: usize,
}

impl TenantQuota {
    /// Convenience constructor.
    pub fn new(reserved: usize, max: usize) -> Self {
        Self { reserved, max }
    }
}

/// Live usage snapshot for one tenant, for telemetry rollups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantUsage {
    /// The tenant.
    pub tenant: TenantId,
    /// Configured reservation (0 for the anonymous catch-all entry).
    pub reserved: usize,
    /// Configured max (`usize::MAX` when unlimited).
    pub max: usize,
    /// Slots currently held.
    pub held: usize,
    /// Lends rejected with [`MemoryError::QuotaExceeded`] so far.
    pub quota_rejections: u64,
}

/// Charge word: `0` = untracked, else `(entry_index + 1) | SHARED_BIT?`.
const SHARED_BIT: u32 = 1 << 31;

/// CAS-increments `counter` unless it already reached `cap`; returns the
/// previous value on success, `None` when the cap was hit.  (A hand
/// CAS loop instead of `fetch_update`: the loom shim's atomics expose
/// only the core RMW set.)
fn bounded_increment(counter: &AtomicU32, cap: u32) -> Option<u32> {
    let mut current = counter.load(Ordering::Relaxed);
    loop {
        if current >= cap {
            return None;
        }
        match counter.compare_exchange_weak(
            current,
            current + 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(prev) => return Some(prev),
            Err(actual) => current = actual,
        }
    }
}

struct TenantEntry {
    tenant: TenantId,
    reserved: u32,
    max: u32,
    held: AtomicU32,
    quota_rejections: AtomicU64,
}

/// Per-tenant slot accounting over one `PoolSet` (see module docs).
pub struct QuotaLedger {
    /// Entry 0 is the anonymous catch-all for unregistered tenants
    /// (reserved 0, max unlimited, shared-headroom only); registered
    /// tenants follow in registration order.
    entries: Vec<TenantEntry>,
    /// One charge word per slot, flat-indexed across the set's pools.
    charges: Box<[AtomicU32]>,
    /// Slots currently drawn from the shared headroom.
    shared_held: AtomicU32,
    /// `total_slots − Σ reserved`.
    shared_cap: u32,
}

impl core::fmt::Debug for QuotaLedger {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("QuotaLedger")
            .field("tenants", &(self.entries.len() - 1))
            .field("slots", &self.charges.len())
            .field("shared_cap", &self.shared_cap)
            .finish()
    }
}

impl QuotaLedger {
    /// Builds a ledger for `total_slots` slots and the given quotas.
    ///
    /// # Errors
    ///
    /// [`MemoryError::BadConfig`] when a quota is self-inconsistent
    /// (`reserved > max`, zero `max`), a tenant is registered twice, or
    /// the reservations oversubscribe the slot supply.
    pub fn new(
        total_slots: usize,
        quotas: &[(TenantId, TenantQuota)],
    ) -> Result<Self, MemoryError> {
        let mut entries = Vec::with_capacity(quotas.len() + 1);
        entries.push(TenantEntry {
            tenant: DEFAULT_TENANT,
            reserved: 0,
            max: u32::MAX,
            held: AtomicU32::new(0),
            quota_rejections: AtomicU64::new(0),
        });
        let mut reserved_total: usize = 0;
        for &(tenant, quota) in quotas {
            if quota.max == 0 {
                return Err(MemoryError::BadConfig("tenant quota max must be non-zero"));
            }
            if quota.reserved > quota.max {
                return Err(MemoryError::BadConfig(
                    "tenant quota reserved exceeds its max",
                ));
            }
            if entries.iter().any(|e| e.tenant == tenant) {
                return Err(MemoryError::BadConfig("tenant registered twice"));
            }
            reserved_total += quota.reserved;
            entries.push(TenantEntry {
                tenant,
                reserved: quota.reserved.min(u32::MAX as usize) as u32,
                max: quota.max.min(u32::MAX as usize) as u32,
                held: AtomicU32::new(0),
                quota_rejections: AtomicU64::new(0),
            });
        }
        if reserved_total > total_slots {
            return Err(MemoryError::BadConfig(
                "tenant reservations oversubscribe the slot supply",
            ));
        }
        let charges = (0..total_slots)
            .map(|_| AtomicU32::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ok(Self {
            entries,
            charges,
            shared_held: AtomicU32::new(0),
            shared_cap: (total_slots - reserved_total).min(u32::MAX as usize) as u32,
        })
    }

    /// Entry index for `tenant`; unregistered tenants land on the
    /// anonymous entry 0.  Linear scan: tenant counts are small and the
    /// hot path must not allocate.
    fn entry_index(&self, tenant: TenantId) -> usize {
        self.entries
            .iter()
            .skip(1)
            .position(|e| e.tenant == tenant)
            .map(|p| p + 1)
            .unwrap_or(0)
    }

    /// Charges `tenant` for the slot at `flat_index`.
    ///
    /// Returns `Ok(())` and tags the slot's charge word on success.  The
    /// caller must hold exclusive ownership of the slot (a fresh
    /// `SlotGuard`) so that no concurrent release can observe the word
    /// mid-update.
    ///
    /// # Errors
    ///
    /// * [`MemoryError::QuotaExceeded`] when the tenant already holds
    ///   its `max`.
    /// * [`MemoryError::PoolExhausted`] (zeroed diagnostics — the caller
    ///   refines them) when the shared headroom is fully drawn: a free
    ///   slot exists but belongs to other tenants' reservations.
    pub fn charge(&self, tenant: TenantId, flat_index: usize) -> Result<(), MemoryError> {
        let entry_idx = self.entry_index(tenant);
        let entry = &self.entries[entry_idx];
        let prev = match bounded_increment(&entry.held, entry.max) {
            Some(prev) => prev,
            None => {
                entry.quota_rejections.fetch_add(1, Ordering::Relaxed);
                return Err(MemoryError::QuotaExceeded {
                    tenant,
                    held: entry.held.load(Ordering::Relaxed) as usize,
                    max: entry.max as usize,
                });
            }
        };
        // Slots beyond the reservation draw from the shared headroom.
        let shared = prev >= entry.reserved;
        if shared && bounded_increment(&self.shared_held, self.shared_cap).is_none() {
            entry.held.fetch_sub(1, Ordering::Relaxed);
            // The free slot we popped is spoken for by reservations.
            return Err(MemoryError::PoolExhausted {
                slot_size: 0,
                requested: 0,
                in_use: 0,
                slot_count: 0,
            });
        }
        let word = (entry_idx as u32 + 1) | if shared { SHARED_BIT } else { 0 };
        if let Some(charge) = self.charges.get(flat_index) {
            charge.store(word, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Credits whatever tenant the slot at `flat_index` was charged to.
    /// Called by `SlotPool::release_checkout` just before the slot
    /// re-enters the free list; a zero charge word is a no-op.
    pub(crate) fn credit(&self, flat_index: usize) {
        let Some(charge) = self.charges.get(flat_index) else {
            return;
        };
        let word = charge.swap(0, Ordering::Relaxed);
        if word == 0 {
            return;
        }
        let entry_idx = (word & !SHARED_BIT) as usize - 1;
        if let Some(entry) = self.entries.get(entry_idx) {
            entry.held.fetch_sub(1, Ordering::Relaxed);
        }
        if word & SHARED_BIT != 0 {
            self.shared_held.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Slots currently held by `tenant` (0 for unregistered tenants —
    /// their draw is pooled on the anonymous entry).
    pub fn held(&self, tenant: TenantId) -> usize {
        let idx = self.entry_index(tenant);
        self.entries[idx].held.load(Ordering::Relaxed) as usize
    }

    /// Usage snapshot of every registered tenant plus the anonymous
    /// catch-all entry (reported as [`DEFAULT_TENANT`], first).
    pub fn usage(&self) -> Vec<TenantUsage> {
        self.entries
            .iter()
            .map(|e| TenantUsage {
                tenant: e.tenant,
                reserved: e.reserved as usize,
                max: if e.max == u32::MAX {
                    usize::MAX
                } else {
                    e.max as usize
                },
                held: e.held.load(Ordering::Relaxed) as usize,
                quota_rejections: e.quota_rejections.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Slots currently drawn from the shared headroom.
    pub fn shared_held(&self) -> usize {
        self.shared_held.load(Ordering::Relaxed) as usize
    }

    /// Size of the shared headroom (`total_slots − Σ reserved`).
    pub fn shared_cap(&self) -> usize {
        self.shared_cap as usize
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn ledger() -> QuotaLedger {
        QuotaLedger::new(
            8,
            &[(1, TenantQuota::new(2, 4)), (2, TenantQuota::new(2, 8))],
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(matches!(
            QuotaLedger::new(8, &[(1, TenantQuota::new(4, 2))]),
            Err(MemoryError::BadConfig(_))
        ));
        assert!(matches!(
            QuotaLedger::new(8, &[(1, TenantQuota::new(0, 0))]),
            Err(MemoryError::BadConfig(_))
        ));
        assert!(matches!(
            QuotaLedger::new(
                8,
                &[(1, TenantQuota::new(1, 2)), (1, TenantQuota::new(1, 2))]
            ),
            Err(MemoryError::BadConfig(_))
        ));
        assert!(matches!(
            QuotaLedger::new(
                3,
                &[(1, TenantQuota::new(2, 2)), (2, TenantQuota::new(2, 2))]
            ),
            Err(MemoryError::BadConfig(_))
        ));
    }

    #[test]
    fn max_is_enforced_with_typed_rejection() {
        let l = ledger();
        for i in 0..4 {
            l.charge(1, i).unwrap();
        }
        assert_eq!(
            l.charge(1, 4),
            Err(MemoryError::QuotaExceeded {
                tenant: 1,
                held: 4,
                max: 4
            })
        );
        assert_eq!(l.held(1), 4);
        let usage = l.usage();
        let t1 = usage.iter().find(|u| u.tenant == 1).unwrap();
        assert_eq!(t1.quota_rejections, 1);
    }

    #[test]
    fn reservations_survive_a_greedy_neighbor() {
        // Tenant 2 (max 8 > supply) grabs everything it can; tenant 1's
        // reservation of 2 must still be honored afterwards.
        let l = ledger();
        let mut got = 0;
        for i in 0..8 {
            if l.charge(2, i).is_ok() {
                got += 1;
            }
        }
        // 2 reserved + 4 shared (cap = 8 − 2 − 2): 6 slots, not 8.
        assert_eq!(got, 6);
        assert_eq!(l.shared_held(), 4);
        l.charge(1, 6).unwrap();
        l.charge(1, 7).unwrap();
        assert_eq!(l.held(1), 2);
    }

    #[test]
    fn credit_balances_charges() {
        let l = ledger();
        for i in 0..4 {
            l.charge(1, i).unwrap();
        }
        for i in 0..4 {
            l.credit(i);
        }
        assert_eq!(l.held(1), 0);
        assert_eq!(l.shared_held(), 0);
        // Crediting an untracked slot is a no-op.
        l.credit(5);
        assert_eq!(l.shared_held(), 0);
    }

    #[test]
    fn unregistered_tenants_pool_on_anonymous_entry() {
        let l = ledger();
        l.charge(99, 0).unwrap();
        l.charge(77, 1).unwrap();
        let usage = l.usage();
        assert_eq!(usage[0].tenant, DEFAULT_TENANT);
        assert_eq!(usage[0].held, 2);
        assert_eq!(l.shared_held(), 2, "anonymous draw is shared-only");
        l.credit(0);
        l.credit(1);
        assert_eq!(usage.len(), 3);
    }
}
