//! The segment abstraction: a contiguous byte region a [`SlotPool`]
//! lays its entire state out in — header, counters, free list, state
//! words, length words, and slot bytes — addressed exclusively by
//! offsets from the segment base.
//!
//! Base-relative addressing is the property the cross-process datapath
//! depends on: the same segment (a memfd-backed file mapping) is mapped
//! at *different* virtual addresses by the runtime daemon and by each
//! client, so no absolute pointer may ever be stored inside it.  Every
//! pointer is derived on demand as `segment base + offset`, and every
//! transferable handle ([`SlotToken`](crate::SlotToken)) carries only
//! `(pool, index, generation)` — all position independent.
//!
//! Two backings exist:
//!
//! * [`Segment::heap`] — a process-private zeroed allocation.  This is
//!   what [`SlotPool::new`](crate::SlotPool::new) uses and what every
//!   in-process component sees; it is also the backing unit tests and
//!   Miri exercise.
//! * [`Segment::from_raw`] — an externally owned mapping (`insane-ipc`
//!   wraps `mmap` regions this way).  The caller proves validity and
//!   supplies a keep-alive object that owns the mapping.
//!
//! Atomics inside a segment are plain `core::sync::atomic` types: a
//! shared file mapping cannot hold loom-instrumented cells, so the
//! model-checked variant of the pool (`cfg(loom)`) keeps its original
//! boxed layout instead (see `pool.rs`).

use core::sync::atomic::{AtomicU32, AtomicU64};
use std::sync::Arc;

use crate::MemoryError;

/// One cache line of interior-mutable bytes.  Heap backings are built
/// from these so the segment base is 64-byte aligned — the layout puts
/// atomics on cache-line boundaries and an `AtomicU64` reference at a
/// misaligned address is undefined behavior (mmap'd backings are page
/// aligned for free).
#[repr(align(64))]
struct Chunk(
    // Accessed exclusively through raw pointers derived from the slice
    // base, so the field never appears "read" to rustc.
    #[allow(dead_code)] [core::cell::UnsafeCell<u8>; 64],
);

/// Backing storage for a [`Segment`].
enum Backing {
    /// Process-private zeroed allocation.
    Heap(Box<[Chunk]>),
    /// Externally owned region (e.g. an `mmap` of a memfd).  `_keep`
    /// owns the mapping and releases it when the last segment handle
    /// drops.
    Raw {
        base: *mut u8,
        _keep: Box<dyn core::any::Any + Send + Sync>,
    },
}

// SAFETY: the bytes behind a segment are only ever accessed through the
// slot-pool/ring ownership protocols layered on top (state-word CAS,
// ring head/tail publication), which serialize all access; the segment
// itself hands out raw pointers and atomic references, never `&mut`.
unsafe impl Send for Backing {}
// SAFETY: as above — shared handles expose no unsynchronized mutation.
unsafe impl Sync for Backing {}

impl Backing {
    fn base(&self) -> *mut u8 {
        match self {
            // The pointer is derived from the slice base so its
            // provenance spans the whole allocation (required under
            // Miri's strict provenance; see `SlotPool::slot_ptr`).  The
            // bytes sit inside `UnsafeCell`s, so writing through this
            // pointer is sound even though it derives from a shared
            // reference.
            Backing::Heap(chunks) => chunks.as_ptr().cast::<u8>().cast_mut(),
            Backing::Raw { base, .. } => *base,
        }
    }
}

/// A contiguous byte region addressed by base-relative offsets.
///
/// Cloning a `Segment` clones a handle to the same region (the backing
/// is shared behind an `Arc`); [`Segment::slice`] narrows a handle to a
/// sub-range so one mapping can host a pool and several rings.
#[derive(Clone)]
pub struct Segment {
    backing: Arc<Backing>,
    /// Offset of this handle's window within the backing.
    start: usize,
    /// Length of this handle's window.
    len: usize,
}

impl core::fmt::Debug for Segment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Segment")
            .field("start", &self.start)
            .field("len", &self.len)
            .field(
                "backing",
                match &*self.backing {
                    Backing::Heap(_) => &"heap",
                    Backing::Raw { .. } => &"raw",
                },
            )
            .finish()
    }
}

impl Segment {
    /// Allocates a zeroed, 64-byte-aligned process-private segment of
    /// `len` bytes (rounded up to whole cache lines internally).
    pub fn heap(len: usize) -> Self {
        let chunks = (0..len.div_ceil(64))
            .map(|_| Chunk(core::array::from_fn(|_| core::cell::UnsafeCell::new(0u8))))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            backing: Arc::new(Backing::Heap(chunks)),
            start: 0,
            len,
        }
    }

    /// Wraps an externally owned region.
    ///
    /// # Safety
    ///
    /// `base` must point to `len` readable+writable bytes that remain
    /// valid (and are not moved, shrunk, or unmapped) for as long as
    /// `keep` is alive; `keep` must own the mapping so that dropping
    /// the last segment handle releases it.  The region must not be
    /// accessed by this process through any other alias while pool or
    /// ring protocols run over it.
    // SAFETY: callers uphold the `# Safety` contract above.
    pub unsafe fn from_raw(
        base: *mut u8,
        len: usize,
        keep: Box<dyn core::any::Any + Send + Sync>,
    ) -> Self {
        Self {
            backing: Arc::new(Backing::Raw { base, _keep: keep }),
            start: 0,
            len,
        }
    }

    /// Length of this handle's window in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base pointer of this handle's window.
    ///
    /// The pointer is recomputed from the backing on every call — it is
    /// never stored inside the segment — so tokens and descriptors stay
    /// valid when the same bytes are mapped elsewhere.
    pub fn base_ptr(&self) -> *mut u8 {
        // SAFETY: `start` was bounds-checked against the backing when
        // this handle was created (`heap`/`from_raw` use 0, `slice`
        // checks explicitly), so the offset stays in-bounds.
        unsafe { self.backing.base().add(self.start) }
    }

    /// Narrows the handle to `[offset, offset + len)` of its window.
    ///
    /// # Errors
    ///
    /// [`MemoryError::BadConfig`] if the range leaves the window.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Segment, MemoryError> {
        let end = offset
            .checked_add(len)
            .ok_or(MemoryError::BadConfig("segment slice overflows"))?;
        if end > self.len {
            return Err(MemoryError::BadConfig(
                "segment slice exceeds the segment length",
            ));
        }
        Ok(Segment {
            backing: Arc::clone(&self.backing),
            start: self.start + offset,
            len,
        })
    }

    /// Whether `ptr` points into this segment's window (used by tests
    /// and the IPC layer to assert zero-copy delivery).
    pub fn contains_ptr(&self, ptr: *const u8) -> bool {
        let base = self.base_ptr() as usize;
        let p = ptr as usize;
        p >= base && p < base + self.len
    }

    /// Returns the `AtomicU64` living at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is unaligned or out of bounds — segment
    /// layouts are computed once at construction, so a panic here is a
    /// layout bug, not a runtime condition.
    // insane-lint: allow-fn(hot-path-panic) -- the assert is the documented bounds/alignment proof; every offset is a compile-time layout constant
    pub fn atomic_u64(&self, offset: usize) -> &AtomicU64 {
        assert!(
            (self.start + offset).is_multiple_of(core::mem::align_of::<AtomicU64>())
                && offset + 8 <= self.len,
            "misaligned or out-of-bounds atomic_u64 offset {offset}"
        );
        // SAFETY: the offset is in bounds and aligned (asserted above);
        // the bytes live behind interior-mutability backing and all
        // concurrent access goes through atomic operations.
        unsafe { &*(self.base_ptr().add(offset) as *const AtomicU64) }
    }

    /// Returns the `AtomicU32` living at `offset`.
    ///
    /// # Panics
    ///
    /// As [`Segment::atomic_u64`].
    // insane-lint: allow-fn(hot-path-panic) -- the assert is the documented bounds/alignment proof; every offset is a compile-time layout constant
    pub fn atomic_u32(&self, offset: usize) -> &AtomicU32 {
        assert!(
            (self.start + offset).is_multiple_of(core::mem::align_of::<AtomicU32>())
                && offset + 4 <= self.len,
            "misaligned or out-of-bounds atomic_u32 offset {offset}"
        );
        // SAFETY: as in `atomic_u64`.
        unsafe { &*(self.base_ptr().add(offset) as *const AtomicU32) }
    }

    /// Zeroes `[offset, offset + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the window (layout bug).
    pub fn zero(&self, offset: usize, len: usize) {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "out-of-bounds zero range"
        );
        // SAFETY: range is in bounds; exclusive use during
        // initialization is the caller's contract (pools zero their
        // regions before publishing the ready flag).
        unsafe { core::ptr::write_bytes(self.base_ptr().add(offset), 0, len) };
    }
}

/// Rounds `off` up to the next multiple of `align` (a power of two).
pub(crate) const fn align_up(off: usize, align: usize) -> usize {
    (off + align - 1) & !(align - 1)
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use core::sync::atomic::Ordering;

    #[test]
    fn heap_segment_is_zeroed_and_sized() {
        let seg = Segment::heap(256);
        assert_eq!(seg.len(), 256);
        assert!(!seg.is_empty());
        assert_eq!(seg.atomic_u64(0).load(Ordering::Relaxed), 0);
        assert_eq!(seg.atomic_u64(248).load(Ordering::Relaxed), 0);
    }

    #[test]
    fn slices_share_the_backing() {
        let seg = Segment::heap(128);
        let a = seg.slice(0, 64).unwrap();
        let b = seg.slice(64, 64).unwrap();
        a.atomic_u64(8).store(7, Ordering::Relaxed);
        b.atomic_u64(8).store(9, Ordering::Relaxed);
        assert_eq!(seg.atomic_u64(8).load(Ordering::Relaxed), 7);
        assert_eq!(seg.atomic_u64(72).load(Ordering::Relaxed), 9);
        assert!(seg.contains_ptr(b.base_ptr()));
        assert!(!b.contains_ptr(a.base_ptr()));
    }

    #[test]
    fn out_of_range_slice_is_rejected() {
        let seg = Segment::heap(64);
        assert!(matches!(seg.slice(32, 64), Err(MemoryError::BadConfig(_))));
        assert!(matches!(
            seg.slice(usize::MAX, 2),
            Err(MemoryError::BadConfig(_))
        ));
    }

    #[test]
    fn align_up_rounds_to_powers_of_two() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 8), 72);
    }

    #[test]
    #[should_panic(expected = "atomic_u64")]
    fn misaligned_atomic_offset_panics() {
        let seg = Segment::heap(64);
        let _ = seg.atomic_u64(4);
    }
}
