//! Size-class selection over several [`SlotPool`]s.
//!
//! The INSANE runtime reserves more than one pool at startup: small slots
//! for ordinary packets and jumbo slots for large payloads (the paper uses
//! jumbo frames above 1.5 KB, §6.2).  `PoolSet` picks the smallest class
//! that fits a request and routes token operations back to the owning pool.

use std::collections::HashMap;
use std::fmt;

use insane_queues::sync::Arc;

use crate::pool::{PoolConfig, SlotGuard, SlotPool, SlotToken, SlotView};
use crate::quota::QuotaLedger;
use crate::{MemoryError, PoolId, TenantId, TenantQuota, TenantUsage, DEFAULT_TENANT};

/// An ordered collection of pools acting as size classes.
///
/// # Examples
///
/// ```
/// use insane_memory::PoolSetBuilder;
///
/// let pools = PoolSetBuilder::new()
///     .pool(2048, 128)   // packet class
///     .pool(9216, 16)    // jumbo class
///     .build()?;
/// let small = pools.acquire(100)?;   // lands in the 2 KB class
/// let big = pools.acquire(4000)?;    // lands in the jumbo class
/// assert_ne!(small.token().pool_id(), big.token().pool_id());
/// # Ok::<(), insane_memory::MemoryError>(())
/// ```
#[derive(Clone)]
pub struct PoolSet {
    /// Sorted ascending by slot size.
    classes: Vec<SlotPool>,
    by_id: HashMap<PoolId, usize>,
    /// Tenant-quota accounting; present only when tenants registered.
    ledger: Option<Arc<QuotaLedger>>,
}

impl fmt::Debug for PoolSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolSet")
            .field("classes", &self.classes)
            .finish()
    }
}

/// Builder for [`PoolSet`]; pool ids are assigned in insertion order.
#[derive(Debug, Default)]
pub struct PoolSetBuilder {
    configs: Vec<(usize, usize)>,
    quotas: Vec<(TenantId, TenantQuota)>,
}

impl PoolSetBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a size class of `slot_count` slots of `slot_size` bytes.
    pub fn pool(mut self, slot_size: usize, slot_count: usize) -> Self {
        self.configs.push((slot_size, slot_count));
        self
    }

    /// Registers a per-tenant slot quota (reservation + max, enforced at
    /// [`PoolSet::lend`] time).  With at least one registration the set
    /// carries a [`QuotaLedger`]; unregistered tenants then share an
    /// anonymous unreserved entry.  With none, lending is unmetered.
    pub fn tenant(mut self, tenant: TenantId, quota: TenantQuota) -> Self {
        self.quotas.push((tenant, quota));
        self
    }

    /// Builds the set.
    ///
    /// # Errors
    ///
    /// * [`MemoryError::BadConfig`] if no class was added, any class has a
    ///   zero dimension, or the tenant quotas are inconsistent (see
    ///   [`QuotaLedger::new`]).
    pub fn build(self) -> Result<PoolSet, MemoryError> {
        if self.configs.is_empty() {
            return Err(MemoryError::BadConfig("pool set needs at least one class"));
        }
        let total_slots: usize = self.configs.iter().map(|&(_, count)| count).sum();
        let ledger = if self.quotas.is_empty() {
            None
        } else {
            Some(Arc::new(QuotaLedger::new(total_slots, &self.quotas)?))
        };
        let mut classes = Vec::with_capacity(self.configs.len());
        let mut base = 0usize;
        for (id, (slot_size, slot_count)) in self.configs.into_iter().enumerate() {
            classes.push(SlotPool::with_ledger(
                PoolConfig::new(id as PoolId, slot_size, slot_count),
                ledger.as_ref().map(|l| (Arc::clone(l), base)),
            )?);
            base += slot_count;
        }
        classes.sort_by_key(|p| p.slot_size());
        let by_id = classes
            .iter()
            .enumerate()
            .map(|(pos, p)| (p.pool_id(), pos))
            .collect();
        Ok(PoolSet {
            classes,
            by_id,
            ledger,
        })
    }
}

impl PoolSet {
    /// A reasonable default for the middleware runtime: a packet class
    /// sized for standard frames and a jumbo class for large payloads.
    pub fn default_runtime_set() -> Result<Self, MemoryError> {
        PoolSetBuilder::new()
            .pool(2048, 4096)
            .pool(16 * 1024, 512)
            .build()
    }

    /// Acquires a slot from the smallest class that fits `len` bytes,
    /// falling back to larger classes when the preferred one is exhausted.
    ///
    /// Equivalent to [`PoolSet::lend`] on behalf of [`DEFAULT_TENANT`].
    ///
    /// # Errors
    ///
    /// As [`PoolSet::lend`].
    pub fn acquire(&self, len: usize) -> Result<SlotGuard, MemoryError> {
        self.lend(DEFAULT_TENANT, len)
    }

    /// Lends a slot to `tenant` from the smallest class that fits `len`
    /// bytes, falling back to larger classes when the preferred one is
    /// exhausted.  With tenants registered (see
    /// [`PoolSetBuilder::tenant`]) the lend is charged against the
    /// tenant's quota; the charge is credited back automatically when
    /// the slot's last guard/view/token is released, wherever that
    /// happens.
    ///
    /// # Errors
    ///
    /// * [`MemoryError::RequestTooLarge`] if no class is big enough.
    /// * [`MemoryError::QuotaExceeded`] if the tenant already holds its
    ///   quota max — reported *before* global exhaustion, so an
    ///   over-quota tenant can never present as a full pool.
    /// * [`MemoryError::PoolExhausted`] if every fitting class is empty
    ///   (or only reservation-backed slots remain and `tenant` has used
    ///   up its own reservation); carries the occupancy of the smallest
    ///   fitting class.
    pub fn lend(&self, tenant: TenantId, len: usize) -> Result<SlotGuard, MemoryError> {
        let mut first_dry: Option<MemoryError> = None;
        for pool in &self.classes {
            if pool.slot_size() >= len {
                match pool.acquire(len) {
                    Ok(guard) => {
                        match pool.charge_tenant(tenant, guard.token().index()) {
                            Ok(()) => return Ok(guard),
                            // Over-max is over-max in every class: stop
                            // instead of spilling (dropping the guard
                            // returns the uncharged slot).
                            Err(e @ MemoryError::QuotaExceeded { .. }) => return Err(e),
                            // Shared headroom dry: a free slot exists but
                            // is spoken for by reservations.  That holds
                            // in every class (the headroom is global), so
                            // report it with this class's occupancy.
                            Err(MemoryError::PoolExhausted { .. }) => {
                                return Err(pool.exhausted(len));
                            }
                            Err(other) => return Err(other),
                        }
                    }
                    Err(e @ MemoryError::PoolExhausted { .. }) => {
                        first_dry.get_or_insert(e);
                    }
                    Err(other) => return Err(other),
                }
            }
        }
        match first_dry {
            Some(e) => Err(e),
            None => Err(MemoryError::RequestTooLarge {
                requested: len,
                max: self.max_slot_size(),
            }),
        }
    }

    /// Largest slot size any class offers.
    pub fn max_slot_size(&self) -> usize {
        self.classes.last().map(|p| p.slot_size()).unwrap_or(0)
    }

    /// The pool a token belongs to.
    ///
    /// # Errors
    ///
    /// [`MemoryError::InvalidToken`] if the pool id is unknown.
    pub fn pool_of(&self, token: SlotToken) -> Result<&SlotPool, MemoryError> {
        self.by_id
            .get(&token.pool_id())
            // insane-lint: allow(hot-path-panic) -- by_id positions are built from classes at construction
            .map(|&pos| &self.classes[pos])
            .ok_or(MemoryError::InvalidToken)
    }

    /// Read-only view of a token's message (routed to the owning pool).
    ///
    /// # Errors
    ///
    /// As [`SlotPool::view`], plus [`MemoryError::InvalidToken`] for an
    /// unknown pool id.
    pub fn view(&self, token: SlotToken) -> Result<SlotView, MemoryError> {
        self.pool_of(token)?.view(token)
    }

    /// Unique write access for a token's slot (routed to the owning pool).
    ///
    /// # Errors
    ///
    /// As [`SlotPool::redeem`].
    pub fn redeem(&self, token: SlotToken) -> Result<SlotGuard, MemoryError> {
        self.pool_of(token)?.redeem(token)
    }

    /// Releases a token's slot (routed to the owning pool).
    ///
    /// # Errors
    ///
    /// As [`SlotPool::release`].
    pub fn release(&self, token: SlotToken) -> Result<(), MemoryError> {
        self.pool_of(token)?.release(token)
    }

    /// Iterates over the size classes, smallest first.
    pub fn classes(&self) -> impl Iterator<Item = &SlotPool> {
        self.classes.iter()
    }

    /// Total slots currently lent out across all classes.
    pub fn total_in_use(&self) -> usize {
        self.classes.iter().map(|p| p.stats().in_use).sum()
    }

    /// Whether tenant quotas are being enforced on this set.
    pub fn has_tenants(&self) -> bool {
        self.ledger.is_some()
    }

    /// Slots currently held by `tenant` (always 0 without a ledger).
    pub fn tenant_held(&self, tenant: TenantId) -> usize {
        self.ledger.as_ref().map_or(0, |l| l.held(tenant))
    }

    /// Per-tenant usage rollup for telemetry (the anonymous catch-all
    /// entry first); empty without a ledger.
    pub fn tenant_usage(&self) -> Vec<TenantUsage> {
        self.ledger.as_ref().map_or_else(Vec::new, |l| l.usage())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> PoolSet {
        PoolSetBuilder::new()
            .pool(64, 2)
            .pool(1024, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_builder_is_rejected() {
        assert!(matches!(
            PoolSetBuilder::new().build(),
            Err(MemoryError::BadConfig(_))
        ));
    }

    #[test]
    fn picks_smallest_fitting_class() {
        let s = set();
        let small = s.acquire(64).unwrap();
        let large = s.acquire(65).unwrap();
        assert_eq!(s.pool_of(small.token()).unwrap().slot_size(), 64);
        assert_eq!(s.pool_of(large.token()).unwrap().slot_size(), 1024);
    }

    #[test]
    fn falls_back_to_bigger_class_when_exhausted() {
        let s = set();
        let _a = s.acquire(10).unwrap();
        let _b = s.acquire(10).unwrap();
        // Small class is now empty; the request spills into the 1 KB class.
        let c = s.acquire(10).unwrap();
        assert_eq!(s.pool_of(c.token()).unwrap().slot_size(), 1024);
    }

    #[test]
    fn too_large_reports_max_class() {
        let s = set();
        assert_eq!(
            s.acquire(4096).err(),
            Some(MemoryError::RequestTooLarge {
                requested: 4096,
                max: 1024
            })
        );
    }

    #[test]
    fn exhausted_when_all_fitting_classes_empty() {
        let s = set();
        let guards: Vec<_> = (0..4).map(|_| s.acquire(10).unwrap()).collect();
        // The error reports the smallest fitting class's occupancy.
        assert_eq!(
            s.acquire(10).err(),
            Some(MemoryError::PoolExhausted {
                slot_size: 64,
                requested: 10,
                in_use: 2,
                slot_count: 2
            })
        );
        drop(guards);
        assert_eq!(s.total_in_use(), 0);
    }

    #[test]
    fn lend_enforces_tenant_max_with_typed_rejection() {
        let s = PoolSetBuilder::new()
            .pool(64, 4)
            .tenant(7, TenantQuota::new(1, 2))
            .build()
            .unwrap();
        let _a = s.lend(7, 10).unwrap();
        let _b = s.lend(7, 10).unwrap();
        assert_eq!(
            s.lend(7, 10).err(),
            Some(MemoryError::QuotaExceeded {
                tenant: 7,
                held: 2,
                max: 2
            })
        );
        assert_eq!(s.tenant_held(7), 2);
        // Another tenant is unaffected by 7's rejection.
        let _c = s.lend(8, 10).unwrap();
    }

    #[test]
    fn reservation_survives_anonymous_pressure() {
        let s = PoolSetBuilder::new()
            .pool(64, 4)
            .tenant(1, TenantQuota::new(2, 4))
            .build()
            .unwrap();
        // Anonymous tenants can draw only the 2-slot shared headroom.
        let x = s.lend(50, 10).unwrap();
        let y = s.lend(50, 10).unwrap();
        assert!(matches!(
            s.lend(50, 10),
            Err(MemoryError::PoolExhausted { .. })
        ));
        // Tenant 1's reservation is intact.
        let _a = s.lend(1, 10).unwrap();
        let _b = s.lend(1, 10).unwrap();
        drop((x, y));
        assert_eq!(s.tenant_held(1), 2);
        assert_eq!(s.tenant_held(50), 0, "anonymous draw pools on entry 0");
    }

    #[test]
    fn released_slots_credit_the_ledger_through_any_path() {
        let s = PoolSetBuilder::new()
            .pool(64, 4)
            .tenant(3, TenantQuota::new(0, 2))
            .build()
            .unwrap();
        assert!(s.has_tenants());
        // Guard drop.
        drop(s.lend(3, 8).unwrap());
        // Token release through the set.
        let t = s.lend(3, 8).unwrap().into_token();
        s.release(t).unwrap();
        // View drop.
        let t = s.lend(3, 8).unwrap().into_token();
        drop(s.view(t).unwrap());
        assert_eq!(s.tenant_held(3), 0);
        let usage = s.tenant_usage();
        let t3 = usage.iter().find(|u| u.tenant == 3).unwrap();
        assert_eq!(t3.held, 0);
        assert_eq!(t3.max, 2);
    }

    #[test]
    fn token_round_trips_through_set() {
        let s = set();
        let mut g = s.acquire(4).unwrap();
        g.copy_from_slice(b"abcd");
        let t = g.into_token();
        assert_eq!(&*s.view(t).unwrap(), b"abcd");
        // view drop released it; acquire twice to prove slot returned
        let _x = s.acquire(64).unwrap();
        let _y = s.acquire(64).unwrap();
    }

    #[test]
    fn default_runtime_set_has_two_classes() {
        let s = PoolSet::default_runtime_set().unwrap();
        let sizes: Vec<_> = s.classes().map(|p| p.slot_size()).collect();
        assert_eq!(sizes.len(), 2);
        assert!(sizes[0] < sizes[1]);
        assert!(s.max_slot_size() >= 9216, "jumbo frames must fit");
    }

    #[test]
    fn release_routes_to_owning_pool() {
        let s = set();
        let t = s.acquire(900).unwrap().into_token();
        s.release(t).unwrap();
        assert_eq!(s.release(t), Err(MemoryError::StaleToken));
    }
}
