//! Zero-copy slot pools — the mechanism behind the INSANE memory manager.
//!
//! The paper's runtime (§5.3) reserves *memory pools* at startup, divides
//! them into *slots* uniquely identified by a *slot id*, and lets the client
//! library and the runtime exchange those ids instead of payload bytes.
//! This crate provides that mechanism:
//!
//! * [`SlotPool`] — a contiguous, fixed-slot-size arena with a lock-free
//!   free list and generation-tagged slot handles that catch double-release
//!   and use-after-release at the API boundary.
//! * [`SlotToken`] — the transferable slot id (what travels on the TX/RX
//!   token queues in Figure 4 of the paper).
//! * [`SlotGuard`] — unique, RAII-owned access to a slot's bytes while an
//!   application is writing or reading a message.
//! * [`PoolSet`] — size-class selection over several pools (small packet
//!   slots vs jumbo-frame slots), which is what the runtime instantiates.
//!
//! The paper maps the pool into each application's address space with shared
//! memory; in this reproduction every component lives in one process, so the
//! "mapping" is an `Arc` and the slot-id discipline is identical.
//!
//! # Examples
//!
//! ```
//! use insane_memory::{PoolConfig, SlotPool};
//!
//! let pool = SlotPool::new(PoolConfig::new(0, 2048, 64))?;
//! let mut guard = pool.acquire(11)?;
//! guard.copy_from_slice(b"hello world");
//! let token = guard.into_token();         // ship the id, not the bytes
//! let view = pool.view(token)?;           // receiver side
//! assert_eq!(&*view, b"hello world");
//! view.release();                          // slot returns to the free list
//! # Ok::<(), insane_memory::MemoryError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod pool;
mod pool_set;
mod quota;
#[cfg(not(loom))]
mod segment;

#[cfg(not(loom))]
pub use pool::PoolLayout;
pub use pool::{PoolConfig, PoolStats, SlotGuard, SlotPool, SlotToken, SlotView};
pub use pool_set::{PoolSet, PoolSetBuilder};
pub use quota::{QuotaLedger, TenantId, TenantQuota, TenantUsage, DEFAULT_TENANT};
#[cfg(not(loom))]
pub use segment::Segment;

use core::fmt;

/// Identifier of a pool within a [`PoolSet`] (and within [`SlotToken`]s).
pub type PoolId = u16;

/// Errors produced by the slot-pool layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// No free slot is available in any fitting class (back-pressure
    /// condition: the caller should release buffers or retry later).
    /// Carries the occupancy of the class that ran dry so callers can
    /// tell *which* pool is the bottleneck.
    PoolExhausted {
        /// Slot size (bytes) of the exhausted class — the smallest class
        /// that fit the request (0 when unknown).
        slot_size: usize,
        /// Bytes the failing caller asked for.
        requested: usize,
        /// Slots of that class checked out when the acquire failed.
        in_use: usize,
        /// Total slots that class owns.
        slot_count: usize,
    },
    /// The tenant already holds its quota `max`; the lend was refused
    /// without touching the shared pools.  Back-pressure lands on the
    /// tenant that caused it, never on its neighbors.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: TenantId,
        /// Slots the tenant held when the lend was refused.
        held: usize,
        /// The tenant's configured maximum.
        max: usize,
    },
    /// The requested length does not fit in any configured slot size.
    RequestTooLarge {
        /// Bytes the caller asked for.
        requested: usize,
        /// Largest slot size any pool offers.
        max: usize,
    },
    /// The token's generation does not match the slot's current generation:
    /// the token was already released (double release) or retained across a
    /// release (use-after-release).
    StaleToken,
    /// The token names a pool or slot index that does not exist.
    InvalidToken,
    /// A pool with this id already exists in the set.
    DuplicatePool(PoolId),
    /// Invalid construction parameters (zero slots or zero slot size).
    BadConfig(&'static str),
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::PoolExhausted {
                slot_size,
                requested,
                in_use,
                slot_count,
            } => {
                if *slot_count == 0 {
                    write!(f, "no free slot available in the pool")
                } else {
                    write!(
                        f,
                        "no free slot for a {requested}-byte request: \
                         {slot_size}-byte class has {in_use}/{slot_count} slots in use"
                    )
                }
            }
            MemoryError::QuotaExceeded { tenant, held, max } => write!(
                f,
                "tenant {tenant} exceeded its slot quota ({held} held, max {max})"
            ),
            MemoryError::RequestTooLarge { requested, max } => {
                write!(
                    f,
                    "requested {requested} bytes but the largest slot is {max} bytes"
                )
            }
            MemoryError::StaleToken => write!(f, "slot token is stale (released or duplicated)"),
            MemoryError::InvalidToken => write!(f, "slot token does not name a valid slot"),
            MemoryError::DuplicatePool(id) => write!(f, "pool id {id} already registered"),
            MemoryError::BadConfig(why) => write!(f, "invalid pool configuration: {why}"),
        }
    }
}

impl std::error::Error for MemoryError {}
