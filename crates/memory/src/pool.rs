//! The slot pool: a fixed-size arena with generation-tagged slot handles.
//!
//! Concurrency protocol: each slot owns one packed state word (high 32
//! bits generation, low 32 bits reference count).  Every ownership
//! transition — lend (`acquire`), share (`clone_ref`), return
//! (`release`/drop) — is a single CAS on that word, so misuse such as two
//! threads racing to release the same token resolves to exactly one
//! winner; the loser gets a typed [`MemoryError`], never a corrupted
//! refcount.
//!
//! # Storage model
//!
//! In regular builds the pool's *entire* state — config header, usage
//! counters, Treiber free list, state words, length words, and the slot
//! bytes themselves — lives inside one [`Segment`] and is addressed
//! strictly by base-relative offsets (`PoolLayout`).  That is what lets
//! the exact same bytes be mapped at different virtual addresses by
//! different processes: the runtime daemon creates a pool in a
//! memfd-backed segment ([`SlotPool::create_in_segment`]) and each
//! client attaches to the received mapping
//! ([`SlotPool::attach_segment`]); the packed generation+refcount CAS
//! protocol then *is* the cross-process ownership story, and
//! [`SlotPool::force_reclaim`] is how the daemon retires a crashed
//! client's outstanding checkouts.
//!
//! Under `cfg(loom)` the pool keeps its original boxed layout (shared
//! mappings cannot hold loom-instrumented cells); the ownership
//! protocol itself is identical, so the loom suite still model checks
//! the state-word transitions (`tests/loom.rs`, DESIGN.md §7).

use core::fmt;

use insane_queues::sync::{Arc, AtomicU32, AtomicU64, Ordering};

use crate::quota::QuotaLedger;
use crate::{MemoryError, PoolId, TenantId};

#[cfg(not(loom))]
use crate::segment::{align_up, Segment};

/// Construction parameters for a [`SlotPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Identifier embedded in every token minted by this pool.
    pub pool_id: PoolId,
    /// Size of each slot in bytes (the largest message the pool can carry).
    pub slot_size: usize,
    /// Number of slots reserved at startup.
    pub slot_count: usize,
}

impl PoolConfig {
    /// Convenience constructor.
    pub fn new(pool_id: PoolId, slot_size: usize, slot_count: usize) -> Self {
        Self {
            pool_id,
            slot_size,
            slot_count,
        }
    }

    fn validate(&self) -> Result<(), MemoryError> {
        if self.slot_size == 0 {
            return Err(MemoryError::BadConfig("slot_size must be non-zero"));
        }
        if self.slot_count == 0 {
            return Err(MemoryError::BadConfig("slot_count must be non-zero"));
        }
        if self.slot_count as u64 >= u32::MAX as u64 {
            return Err(MemoryError::BadConfig("slot_count exceeds u32 indexing"));
        }
        Ok(())
    }
}

/// Counters describing pool usage; useful for back-pressure diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Slots currently lent out.
    pub in_use: usize,
    /// Highest simultaneous `in_use` observed.
    pub high_water: usize,
    /// `acquire` calls rejected because the pool was empty.
    pub exhaustions: u64,
    /// Total successful acquires since startup.
    pub acquires: u64,
    /// Token operations rejected as stale or invalid (double release,
    /// use-after-release, cross-pool tokens).  A non-zero value means some
    /// component violated the linear-ownership discipline and was caught.
    pub misuse_rejections: u64,
}

/// The transferable slot id: what the client library and the runtime push
/// on their token queues instead of payload bytes (paper Fig. 4).
///
/// A token is `Copy` for queue ergonomics, but the middleware treats it
/// linearly: exactly one component owns it at a time.  The generation tag
/// lets the pool reject stale copies at the first misuse.  Tokens carry
/// only offsets and tags — never addresses — so they stay valid across
/// processes that map the pool's segment at different base addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotToken {
    pool: PoolId,
    index: u32,
    generation: u32,
    len: u32,
}

impl SlotToken {
    /// Pool that minted this token.
    pub fn pool_id(&self) -> PoolId {
        self.pool
    }

    /// Slot index within the pool.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Generation tag the token was minted on.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Message length stored in the slot, in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the message length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a copy of this token with an adjusted length.
    ///
    /// The runtime uses this when a datapath writes fewer bytes than the
    /// slot capacity (e.g. after protocol-header stripping).
    pub fn with_len(mut self, len: usize) -> Self {
        self.len = len as u32;
        self
    }

    /// Reassembles a token from its wire encoding (see
    /// [`SlotToken::to_wire`]).  The pool still validates generation and
    /// bounds on first use, so a corrupted wire word yields a typed
    /// error, never an invalid access.
    pub fn from_wire(pool: PoolId, word0: u64, word1: u64) -> Self {
        Self {
            pool,
            index: word0 as u32,
            generation: (word0 >> 32) as u32,
            len: word1 as u32,
        }
    }

    /// Encodes the position-independent part of the token as two words
    /// for descriptor rings: `word0 = generation << 32 | index`, and the
    /// low half of `word1` is the length (the high half is left for the
    /// transport's own use, e.g. a stream id).
    pub fn to_wire(&self) -> (u64, u64) {
        (
            ((self.generation as u64) << 32) | self.index as u64,
            self.len as u64,
        )
    }
}

/// Packs a generation tag and a reference count into one state word.
const fn pack_state(generation: u32, refs: u32) -> u64 {
    ((generation as u64) << 32) | refs as u64
}

/// Splits a state word into `(generation, refs)`.
const fn unpack_state(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

// ---------------------------------------------------------------------------
// Segment layout (regular builds)
// ---------------------------------------------------------------------------

/// Offsets of a pool laid out inside a segment.  Everything is derived
/// from `(slot_size, slot_count)`, so two processes that agree on the
/// config agree on the layout; the header repeats the config so an
/// attaching process can also recover it from the bytes alone.
#[cfg(not(loom))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolLayout {
    /// Free-list `next` array offset (`slot_count` × u32).
    pub free_next_off: usize,
    /// Packed state-word array offset (`slot_count` × u64).
    pub states_off: usize,
    /// Message-length array offset (`slot_count` × u32).
    pub lens_off: usize,
    /// Slot byte area offset (`slot_count` × `slot_size`).
    pub bytes_off: usize,
    /// Total bytes the pool needs, 64-byte aligned.
    pub total: usize,
}

#[cfg(not(loom))]
mod hdr {
    //! Header word offsets (all `AtomicU64`).  The header occupies the
    //! first two cache lines; the free-list head gets its own line so
    //! acquire/release traffic does not false-share with the counters.

    pub const MAGIC: usize = 0;
    pub const VERSION: usize = 8;
    pub const POOL_ID: usize = 16;
    pub const SLOT_SIZE: usize = 24;
    pub const SLOT_COUNT: usize = 32;
    pub const READY: usize = 40;
    pub const IN_USE: usize = 48;
    pub const HIGH_WATER: usize = 56;
    pub const EXHAUSTIONS: usize = 64;
    pub const ACQUIRES: usize = 72;
    pub const MISUSE: usize = 80;
    pub const FREE_LEN: usize = 88;
    /// ABA-tagged free-list head, alone on its cache line.
    pub const FREE_HEAD: usize = 128;
    /// First byte past the fixed header region.
    pub const END: usize = 192;

    /// `b"INSANEPL"` as a little-endian word.
    pub const MAGIC_WORD: u64 = u64::from_le_bytes(*b"INSANEPL");
    /// Bumped whenever the layout or the state-word protocol changes.
    pub const VERSION_WORD: u64 = 1;
}

#[cfg(not(loom))]
impl PoolLayout {
    /// Computes the layout for a pool configuration.
    ///
    /// # Errors
    ///
    /// [`MemoryError::BadConfig`] on zero sizes or arithmetic overflow.
    pub fn for_config(config: &PoolConfig) -> Result<Self, MemoryError> {
        config.validate()?;
        let overflow = MemoryError::BadConfig("pool layout overflows usize");
        let n = config.slot_count;
        let free_next_off = hdr::END;
        let states_off = align_up(
            free_next_off
                .checked_add(n.checked_mul(4).ok_or(overflow)?)
                .ok_or(overflow)?,
            64,
        );
        let lens_off = align_up(
            states_off
                .checked_add(n.checked_mul(8).ok_or(overflow)?)
                .ok_or(overflow)?,
            64,
        );
        let bytes_off = align_up(
            lens_off
                .checked_add(n.checked_mul(4).ok_or(overflow)?)
                .ok_or(overflow)?,
            64,
        );
        let total = align_up(
            bytes_off
                .checked_add(n.checked_mul(config.slot_size).ok_or(overflow)?)
                .ok_or(overflow)?,
            64,
        );
        Ok(Self {
            free_next_off,
            states_off,
            lens_off,
            bytes_off,
            total,
        })
    }
}

const NIL: u32 = u32::MAX;

/// Storage backend of a pool: segment-offset-addressed in regular
/// builds.  All methods take indices already validated against
/// `slot_count` (the public API bounds-checks before calling in).
#[cfg(not(loom))]
struct Store {
    segment: Segment,
    layout: PoolLayout,
    slot_size: usize,
}

#[cfg(not(loom))]
impl Store {
    fn state(&self, index: u32) -> &AtomicU64 {
        self.segment
            .atomic_u64(self.layout.states_off + index as usize * 8)
    }

    fn len_word(&self, index: u32) -> &AtomicU32 {
        self.segment
            .atomic_u32(self.layout.lens_off + index as usize * 4)
    }

    fn slot_ptr(&self, index: u32) -> *mut u8 {
        let offset = self.layout.bytes_off + index as usize * self.slot_size;
        debug_assert!(offset + self.slot_size <= self.segment.len());
        // SAFETY: `offset` is in bounds for the segment (`index` was
        // bounds-checked when the guard/view was created and the layout
        // is fixed).  The pointer is derived from the segment base on
        // every call — never cached — so it is correct for *this*
        // process's mapping of the shared bytes, and its provenance
        // spans the whole backing allocation.
        unsafe { self.segment.base_ptr().add(offset) }
    }

    fn free_next(&self, index: u32) -> &AtomicU32 {
        self.segment
            .atomic_u32(self.layout.free_next_off + index as usize * 4)
    }

    /// Treiber push with an ABA tag in the high half of the head word
    /// (same scheme as `insane_queues::FreeStack`, laid out in shared
    /// memory so any attached process can release).
    fn free_push(&self, index: u32) {
        let head = self.segment.atomic_u64(hdr::FREE_HEAD);
        let mut cur = head.load(Ordering::Acquire);
        loop {
            let (tag, top) = unpack_state(cur);
            self.free_next(index).store(top, Ordering::Relaxed);
            let new = pack_state(tag.wrapping_add(1), index);
            match head.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.segment
                        .atomic_u64(hdr::FREE_LEN)
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn free_pop(&self) -> Option<u32> {
        let head = self.segment.atomic_u64(hdr::FREE_HEAD);
        let mut cur = head.load(Ordering::Acquire);
        loop {
            let (tag, top) = unpack_state(cur);
            if top == NIL {
                return None;
            }
            let below = self.free_next(top).load(Ordering::Relaxed);
            let new = pack_state(tag.wrapping_add(1), below);
            match head.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.segment
                        .atomic_u64(hdr::FREE_LEN)
                        .fetch_sub(1, Ordering::Relaxed);
                    return Some(top);
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn free_len(&self) -> usize {
        self.segment
            .atomic_u64(hdr::FREE_LEN)
            .load(Ordering::Relaxed) as usize
    }

    fn counter(&self, off: usize) -> &AtomicU64 {
        self.segment.atomic_u64(off)
    }

    fn in_use_add(&self) -> u64 {
        self.counter(hdr::IN_USE).fetch_add(1, Ordering::Relaxed) + 1
    }

    fn in_use_sub(&self) {
        self.counter(hdr::IN_USE).fetch_sub(1, Ordering::Relaxed);
    }

    fn high_water_max(&self, v: u64) {
        self.counter(hdr::HIGH_WATER)
            .fetch_max(v, Ordering::Relaxed);
    }

    fn bump(&self, off: usize) {
        self.counter(off).fetch_add(1, Ordering::Relaxed);
    }

    fn load(&self, off: usize) -> u64 {
        self.counter(off).load(Ordering::Relaxed)
    }
}

/// Storage backend of a pool under loom: the original boxed layout, so
/// every state word stays a loom-instrumented atomic the model checker
/// can permute.
#[cfg(loom)]
struct Store {
    backing: Box<[core::cell::UnsafeCell<u8>]>,
    free: insane_queues::FreeStack,
    states: Box<[AtomicU64]>,
    lens: Box<[AtomicU32]>,
    in_use: AtomicU64,
    high_water: AtomicU64,
    exhaustions: AtomicU64,
    acquires: AtomicU64,
    misuse: AtomicU64,
    slot_size: usize,
}

#[cfg(loom)]
mod hdr {
    //! Counter selectors for the loom store (mirror the segment header
    //! offsets so call sites are identical in both builds).
    pub const IN_USE: usize = 48;
    pub const HIGH_WATER: usize = 56;
    pub const EXHAUSTIONS: usize = 64;
    pub const ACQUIRES: usize = 72;
    pub const MISUSE: usize = 80;
}

#[cfg(loom)]
impl Store {
    fn new(config: &PoolConfig) -> Self {
        Self {
            backing: (0..config.slot_size * config.slot_count)
                .map(|_| core::cell::UnsafeCell::new(0u8))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            free: insane_queues::FreeStack::full(config.slot_count),
            states: (0..config.slot_count)
                .map(|_| AtomicU64::new(pack_state(0, 0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            lens: (0..config.slot_count)
                .map(|_| AtomicU32::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            in_use: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
            exhaustions: AtomicU64::new(0),
            acquires: AtomicU64::new(0),
            misuse: AtomicU64::new(0),
            slot_size: config.slot_size,
        }
    }

    // insane-lint: allow-fn(hot-path-panic) -- every index comes from the free list or a generation-validated token, both bounded by slot_count
    fn state(&self, index: u32) -> &AtomicU64 {
        &self.states[index as usize]
    }

    // insane-lint: allow-fn(hot-path-panic) -- every index comes from the free list or a generation-validated token, both bounded by slot_count
    fn len_word(&self, index: u32) -> &AtomicU32 {
        &self.lens[index as usize]
    }

    fn slot_ptr(&self, index: u32) -> *mut u8 {
        let offset = index as usize * self.slot_size;
        debug_assert!(offset + self.slot_size <= self.backing.len());
        // SAFETY: `offset` is in bounds for the backing slice; the
        // pointer is derived from the slice base so its provenance spans
        // the whole allocation.
        unsafe { core::cell::UnsafeCell::raw_get(self.backing.as_ptr().add(offset)) }
    }

    // insane-lint: allow-fn(hot-path-alloc) -- FreeStack is fixed-capacity; push never allocates
    fn free_push(&self, index: u32) {
        self.free.push(index);
    }

    fn free_pop(&self) -> Option<u32> {
        self.free.pop()
    }

    fn free_len(&self) -> usize {
        self.free.len()
    }

    fn counter(&self, off: usize) -> &AtomicU64 {
        match off {
            hdr::IN_USE => &self.in_use,
            hdr::HIGH_WATER => &self.high_water,
            hdr::EXHAUSTIONS => &self.exhaustions,
            hdr::ACQUIRES => &self.acquires,
            _ => &self.misuse,
        }
    }

    fn in_use_add(&self) -> u64 {
        self.counter(hdr::IN_USE).fetch_add(1, Ordering::Relaxed) + 1
    }

    fn in_use_sub(&self) {
        self.counter(hdr::IN_USE).fetch_sub(1, Ordering::Relaxed);
    }

    fn high_water_max(&self, v: u64) {
        self.counter(hdr::HIGH_WATER)
            .fetch_max(v, Ordering::Relaxed);
    }

    fn bump(&self, off: usize) {
        self.counter(off).fetch_add(1, Ordering::Relaxed);
    }

    fn load(&self, off: usize) -> u64 {
        self.counter(off).load(Ordering::Relaxed)
    }
}

struct PoolInner {
    config: PoolConfig,
    store: Store,
    /// Tenant-quota hook: `(ledger, flat-index base of this pool)`.
    /// Present only when the owning `PoolSet` registered tenants; the
    /// release path credits the ledger here because `SlotGuard`/
    /// `SlotView` drops release directly into the pool, bypassing the
    /// set.  `None` costs one branch per release.  Ledgers are
    /// process-local (heap) state: segment-attached pools never carry
    /// one.
    ledger: Option<(Arc<QuotaLedger>, usize)>,
}

// SAFETY: slot bytes are only reachable through a `SlotGuard`/`SlotView`
// whose unique ownership is enforced by the state-word (generation +
// refcount) and free-list discipline; transfer between threads happens
// through queues that provide the necessary ordering.
unsafe impl Send for PoolInner {}
// SAFETY: as above — shared references only expose slot bytes behind the
// state-word checkout protocol.
unsafe impl Sync for PoolInner {}

/// A fixed-size pool of equally-sized, zero-copy message slots.
///
/// Cloning a `SlotPool` clones a handle to the same shared arena — the
/// in-process analogue of an application mapping the runtime's shared
/// memory into its own address space (paper §5.3).  The cross-process
/// version is real: [`SlotPool::create_in_segment`] lays the pool out in
/// a shared segment and [`SlotPool::attach_segment`] joins it from
/// another mapping of the same bytes.
#[derive(Clone)]
pub struct SlotPool {
    inner: Arc<PoolInner>,
}

impl fmt::Debug for SlotPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotPool")
            .field("pool_id", &self.inner.config.pool_id)
            .field("slot_size", &self.inner.config.slot_size)
            .field("slot_count", &self.inner.config.slot_count)
            .field("stats", &self.stats())
            .finish()
    }
}

impl SlotPool {
    /// Reserves a process-private backing area and initializes the free
    /// list.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::BadConfig`] if `slot_size` or `slot_count` is
    /// zero.
    pub fn new(config: PoolConfig) -> Result<Self, MemoryError> {
        Self::with_ledger(config, None)
    }

    /// As [`SlotPool::new`], wiring the pool's releases into a tenant
    /// [`QuotaLedger`] (`base` is this pool's flat-index offset within
    /// the ledger's charge table).
    #[cfg(not(loom))]
    pub(crate) fn with_ledger(
        config: PoolConfig,
        ledger: Option<(Arc<QuotaLedger>, usize)>,
    ) -> Result<Self, MemoryError> {
        let layout = PoolLayout::for_config(&config)?;
        let segment = Segment::heap(layout.total);
        Self::init_in_segment(config, segment, ledger)
    }

    #[cfg(loom)]
    pub(crate) fn with_ledger(
        config: PoolConfig,
        ledger: Option<(Arc<QuotaLedger>, usize)>,
    ) -> Result<Self, MemoryError> {
        config.validate()?;
        Ok(Self {
            inner: Arc::new(PoolInner {
                store: Store::new(&config),
                config,
                ledger,
            }),
        })
    }

    /// Bytes a segment must provide to host a pool with `config`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::BadConfig`] on invalid configs.
    #[cfg(not(loom))]
    pub fn required_segment_len(config: &PoolConfig) -> Result<usize, MemoryError> {
        Ok(PoolLayout::for_config(config)?.total)
    }

    /// Lays a fresh pool out in `segment` (offset 0) and initializes
    /// every structure: header, counters, free list, state words.  The
    /// creating process becomes the first attached process; others join
    /// with [`SlotPool::attach_segment`] once the segment is shared.
    ///
    /// # Errors
    ///
    /// [`MemoryError::BadConfig`] if the config is invalid or the
    /// segment is too small.
    #[cfg(not(loom))]
    pub fn create_in_segment(config: PoolConfig, segment: Segment) -> Result<Self, MemoryError> {
        Self::init_in_segment(config, segment, None)
    }

    #[cfg(not(loom))]
    fn init_in_segment(
        config: PoolConfig,
        segment: Segment,
        ledger: Option<(Arc<QuotaLedger>, usize)>,
    ) -> Result<Self, MemoryError> {
        let layout = PoolLayout::for_config(&config)?;
        if segment.len() < layout.total {
            return Err(MemoryError::BadConfig("segment too small for pool layout"));
        }
        // A recycled segment may hold stale bytes; clear the control
        // regions before building the free list (slot bytes need no
        // clearing — they are always written before they are read).
        segment.zero(0, layout.bytes_off.min(segment.len()));
        let store = Store {
            segment,
            layout,
            slot_size: config.slot_size,
        };
        store
            .segment
            .atomic_u64(hdr::FREE_HEAD)
            .store(pack_state(0, NIL), Ordering::Relaxed);
        // Push in reverse so slot 0 pops first (matches FreeStack::full).
        for i in (0..config.slot_count as u32).rev() {
            store.free_push(i);
        }
        let seg = &store.segment;
        seg.atomic_u64(hdr::VERSION)
            .store(hdr::VERSION_WORD, Ordering::Relaxed);
        seg.atomic_u64(hdr::POOL_ID)
            .store(config.pool_id as u64, Ordering::Relaxed);
        seg.atomic_u64(hdr::SLOT_SIZE)
            .store(config.slot_size as u64, Ordering::Relaxed);
        seg.atomic_u64(hdr::SLOT_COUNT)
            .store(config.slot_count as u64, Ordering::Relaxed);
        seg.atomic_u64(hdr::MAGIC)
            .store(hdr::MAGIC_WORD, Ordering::Relaxed);
        // The ready flag is the publication point: an attaching process
        // acquire-loads it and must then observe the fully built free
        // list and header.
        seg.atomic_u64(hdr::READY).store(1, Ordering::Release);
        Ok(Self {
            inner: Arc::new(PoolInner {
                config,
                store,
                ledger,
            }),
        })
    }

    /// Attaches to a pool another process (or another mapping) already
    /// created in `segment` with [`SlotPool::create_in_segment`].  The
    /// header is validated — magic, protocol version, ready flag, and
    /// that the recovered layout fits the segment — before any slot
    /// state is trusted.
    ///
    /// # Errors
    ///
    /// [`MemoryError::BadConfig`] if the segment does not hold a ready,
    /// version-compatible pool of a size the segment can contain.
    #[cfg(not(loom))]
    pub fn attach_segment(segment: Segment) -> Result<Self, MemoryError> {
        if segment.len() < hdr::END {
            return Err(MemoryError::BadConfig("segment smaller than pool header"));
        }
        if segment.atomic_u64(hdr::MAGIC).load(Ordering::Relaxed) != hdr::MAGIC_WORD {
            return Err(MemoryError::BadConfig("segment holds no pool (bad magic)"));
        }
        if segment.atomic_u64(hdr::READY).load(Ordering::Acquire) != 1 {
            return Err(MemoryError::BadConfig("pool segment not initialized"));
        }
        if segment.atomic_u64(hdr::VERSION).load(Ordering::Relaxed) != hdr::VERSION_WORD {
            return Err(MemoryError::BadConfig("pool layout version mismatch"));
        }
        let config = PoolConfig {
            pool_id: segment.atomic_u64(hdr::POOL_ID).load(Ordering::Relaxed) as PoolId,
            slot_size: segment.atomic_u64(hdr::SLOT_SIZE).load(Ordering::Relaxed) as usize,
            slot_count: segment.atomic_u64(hdr::SLOT_COUNT).load(Ordering::Relaxed) as usize,
        };
        let layout = PoolLayout::for_config(&config)?;
        if segment.len() < layout.total {
            return Err(MemoryError::BadConfig(
                "segment too small for the pool it claims to hold",
            ));
        }
        Ok(Self {
            inner: Arc::new(PoolInner {
                config,
                store: Store {
                    segment,
                    layout,
                    slot_size: config.slot_size,
                },
                ledger: None,
            }),
        })
    }

    /// The segment this pool lives in (for address-range assertions in
    /// zero-copy tests and the IPC layer).
    #[cfg(not(loom))]
    pub fn segment(&self) -> &Segment {
        &self.inner.store.segment
    }

    /// Force-reclaims every outstanding checkout: for each slot with a
    /// live refcount the generation is bumped and the count zeroed in
    /// one CAS, staling every token copy in flight, and the slot
    /// returns to the free list.  Returns how many slots were
    /// reclaimed.
    ///
    /// This is the daemon's crash-recovery path: when a client process
    /// dies (`kill -9`) its guards and views never drop, so the daemon
    /// walks the state words and retires the dead process's checkouts.
    /// The caller must ensure no *live* process still uses the pool's
    /// slots (the dead client can't, and the daemon drops its own
    /// references first).
    #[cfg(not(loom))]
    pub fn force_reclaim(&self) -> usize {
        let mut reclaimed = 0;
        for index in 0..self.inner.config.slot_count as u32 {
            let state = self.inner.store.state(index);
            let mut current = state.load(Ordering::Acquire);
            loop {
                let (generation, refs) = unpack_state(current);
                if refs == 0 {
                    break;
                }
                let next = pack_state(generation.wrapping_add(1), 0);
                match state.compare_exchange(current, next, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => {
                        if let Some((ledger, base)) = &self.inner.ledger {
                            ledger.credit(base + index as usize);
                        }
                        self.inner.store.in_use_sub();
                        self.inner.store.free_push(index);
                        reclaimed += 1;
                        break;
                    }
                    Err(actual) => current = actual,
                }
            }
        }
        reclaimed
    }

    /// Pool identifier.
    pub fn pool_id(&self) -> PoolId {
        self.inner.config.pool_id
    }

    /// Size in bytes of each slot.
    pub fn slot_size(&self) -> usize {
        self.inner.config.slot_size
    }

    /// Number of slots in the pool.
    pub fn slot_count(&self) -> usize {
        self.inner.config.slot_count
    }

    /// Number of slots currently free.
    pub fn free_slots(&self) -> usize {
        self.inner.store.free_len()
    }

    /// Usage statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        let s = &self.inner.store;
        PoolStats {
            in_use: s.load(hdr::IN_USE) as usize,
            high_water: s.load(hdr::HIGH_WATER) as usize,
            exhaustions: s.load(hdr::EXHAUSTIONS),
            acquires: s.load(hdr::ACQUIRES),
            misuse_rejections: s.load(hdr::MISUSE),
        }
    }

    fn count_misuse(&self) {
        self.inner.store.bump(hdr::MISUSE);
    }

    /// Lends out a free slot for writing a message of `len` bytes.
    ///
    /// This is the mechanism behind `get_buffer` in the paper's API.
    ///
    /// # Errors
    ///
    /// * [`MemoryError::RequestTooLarge`] if `len` exceeds the slot size.
    /// * [`MemoryError::PoolExhausted`] if no slot is free.
    pub fn acquire(&self, len: usize) -> Result<SlotGuard, MemoryError> {
        if len > self.inner.config.slot_size {
            return Err(MemoryError::RequestTooLarge {
                requested: len,
                max: self.inner.config.slot_size,
            });
        }
        let index = self.inner.store.free_pop().ok_or_else(|| {
            self.inner.store.bump(hdr::EXHAUSTIONS);
            self.exhausted(len)
        })?;
        self.inner.store.bump(hdr::ACQUIRES);
        let in_use = self.inner.store.in_use_add();
        self.inner.store.high_water_max(in_use);
        // Popping the free list gave us exclusive ownership of the slot
        // (refcount is 0 and no token can match its generation), so a plain
        // load + store cannot race with any other state transition.
        let state = self.inner.store.state(index);
        let (generation, refs) = unpack_state(state.load(Ordering::Acquire));
        debug_assert_eq!(refs, 0, "slot on the free list with live references");
        state.store(pack_state(generation, 1), Ordering::Release);
        self.inner
            .store
            .len_word(index)
            .store(len as u32, Ordering::Relaxed);
        Ok(SlotGuard {
            pool: self.clone(),
            index,
            generation,
            len,
        })
    }

    /// The exhaustion error for a `len`-byte request against this pool's
    /// current occupancy.
    pub(crate) fn exhausted(&self, len: usize) -> MemoryError {
        MemoryError::PoolExhausted {
            slot_size: self.inner.config.slot_size,
            requested: len,
            in_use: self.inner.store.load(hdr::IN_USE) as usize,
            slot_count: self.inner.config.slot_count,
        }
    }

    /// Charges `tenant` for a freshly-acquired slot.  A quota-less pool
    /// accepts unconditionally.  On failure the caller still owns the
    /// guard (no charge word was written), so dropping it releases the
    /// slot without a ledger credit.
    pub(crate) fn charge_tenant(&self, tenant: TenantId, index: u32) -> Result<(), MemoryError> {
        match &self.inner.ledger {
            None => Ok(()),
            Some((ledger, base)) => ledger.charge(tenant, base + index as usize),
        }
    }

    /// Re-materializes unique write access from a token, e.g. on the
    /// receive path where a datapath filled the slot and handed the token
    /// over a queue.
    ///
    /// # Errors
    ///
    /// [`MemoryError::InvalidToken`] / [`MemoryError::StaleToken`] under the
    /// same conditions as [`SlotPool::view`].
    pub fn redeem(&self, token: SlotToken) -> Result<SlotGuard, MemoryError> {
        self.validate(token)?;
        Ok(SlotGuard {
            pool: self.clone(),
            index: token.index,
            generation: token.generation,
            len: token.len(),
        })
    }

    /// Produces a read-only view of the message a token refers to.
    ///
    /// # Errors
    ///
    /// * [`MemoryError::InvalidToken`] if the token names another pool or an
    ///   out-of-range slot.
    /// * [`MemoryError::StaleToken`] if the slot was released since the
    ///   token was minted (double release / use-after-release).
    pub fn view(&self, token: SlotToken) -> Result<SlotView, MemoryError> {
        self.validate(token)?;
        Ok(SlotView {
            pool: self.clone(),
            index: token.index,
            generation: token.generation,
            len: token.len(),
        })
    }

    /// Releases the slot a token refers to back to the free list.
    ///
    /// This is `release_buffer` in the paper's API.  The slot's generation
    /// is bumped (atomically with the refcount reaching zero) so that any
    /// copy of the token still in flight becomes stale.
    ///
    /// # Errors
    ///
    /// * [`MemoryError::InvalidToken`] if the token names another pool or an
    ///   out-of-range slot.
    /// * [`MemoryError::StaleToken`] on a double release — including two
    ///   threads racing to release the same token: exactly one wins.
    pub fn release(&self, token: SlotToken) -> Result<(), MemoryError> {
        self.check_addressable(token)?;
        self.release_checkout(token.index, token.generation)
            .inspect_err(|_| {
                self.count_misuse();
            })
    }

    /// Returns one unit of checkout for `index`, provided the slot is still
    /// on generation `expected_generation` with a live refcount.
    ///
    /// The whole transition is one CAS on the packed state word: when the
    /// last reference goes away the generation bump, the count reaching
    /// zero, and the staleness of every outstanding token copy all become
    /// visible atomically.  Exactly one of N racing releases of the same
    /// checkout succeeds.
    fn release_checkout(&self, index: u32, expected_generation: u32) -> Result<(), MemoryError> {
        let state = self.inner.store.state(index);
        let mut current = state.load(Ordering::Acquire);
        loop {
            let (generation, refs) = unpack_state(current);
            if generation != expected_generation || refs == 0 {
                return Err(MemoryError::StaleToken);
            }
            let next = if refs == 1 {
                pack_state(generation.wrapping_add(1), 0)
            } else {
                pack_state(generation, refs - 1)
            };
            match state.compare_exchange_weak(current, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    if refs == 1 {
                        // Credit the tenant ledger BEFORE the slot
                        // re-enters the free list: the free list's
                        // push/pop pair orders this ahead of the next
                        // charge of the same slot, so the ledger's
                        // Relaxed atomics suffice.
                        if let Some((ledger, base)) = &self.inner.ledger {
                            ledger.credit(base + index as usize);
                        }
                        self.inner.store.in_use_sub();
                        self.inner.store.free_push(index);
                    }
                    return Ok(());
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Adds one unit of checkout for `index` on generation
    /// `expected_generation`; fails if that checkout is no longer live.
    fn retain_checkout(&self, index: u32, expected_generation: u32) -> Result<(), MemoryError> {
        let state = self.inner.store.state(index);
        let mut current = state.load(Ordering::Acquire);
        loop {
            let (generation, refs) = unpack_state(current);
            if generation != expected_generation || refs == 0 {
                return Err(MemoryError::StaleToken);
            }
            let next = pack_state(generation, refs + 1);
            match state.compare_exchange_weak(current, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// Bounds/pool-id check only (no generation check).
    fn check_addressable(&self, token: SlotToken) -> Result<(), MemoryError> {
        if token.pool != self.inner.config.pool_id
            || token.index as usize >= self.inner.config.slot_count
        {
            self.count_misuse();
            return Err(MemoryError::InvalidToken);
        }
        Ok(())
    }

    fn validate(&self, token: SlotToken) -> Result<(), MemoryError> {
        self.check_addressable(token)?;
        let state = self.inner.store.state(token.index);
        let (generation, refs) = unpack_state(state.load(Ordering::Acquire));
        if generation != token.generation || refs == 0 {
            self.count_misuse();
            return Err(MemoryError::StaleToken);
        }
        Ok(())
    }

    fn token_for(&self, index: u32, generation: u32, len: usize) -> SlotToken {
        SlotToken {
            pool: self.inner.config.pool_id,
            index,
            generation,
            len: len as u32,
        }
    }

    fn slot_ptr(&self, index: u32) -> *mut u8 {
        self.inner.store.slot_ptr(index)
    }
}

/// Unique, writable access to one slot, returned by [`SlotPool::acquire`].
///
/// Dropping the guard without [`SlotGuard::into_token`] returns the slot to
/// the pool (no leak on early error paths).
pub struct SlotGuard {
    pool: SlotPool,
    index: u32,
    /// Generation at checkout time; drops and tokens are pinned to it so a
    /// stale guard can never release someone else's checkout.
    generation: u32,
    len: usize,
}

impl fmt::Debug for SlotGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotGuard")
            .field("pool", &self.pool.pool_id())
            .field("index", &self.index)
            .field("len", &self.len)
            .finish()
    }
}

impl SlotGuard {
    /// Message length this guard was acquired for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the message length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shrinks or grows the valid message length (bounded by slot size).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the pool's slot size.
    pub fn set_len(&mut self, len: usize) {
        assert!(
            len <= self.pool.slot_size(),
            "len {} exceeds slot size {}",
            len,
            self.pool.slot_size()
        );
        self.len = len;
        self.pool
            .inner
            .store
            .len_word(self.index)
            .store(len as u32, Ordering::Relaxed);
    }

    /// Converts the guard into a transferable token, *without* releasing
    /// the slot: ownership moves to whoever receives the token.
    ///
    /// This is the moment `emit_data` hands the slot id to the runtime.
    // The forget IS the ownership transfer: the checkout deliberately
    // outlives the guard because the token now owns it.
    #[allow(clippy::mem_forget)]
    pub fn into_token(self) -> SlotToken {
        let token = self.pool.token_for(self.index, self.generation, self.len);
        core::mem::forget(self);
        token
    }

    /// The token this guard would produce, without consuming the guard.
    pub fn token(&self) -> SlotToken {
        self.pool.token_for(self.index, self.generation, self.len)
    }
}

impl core::ops::Deref for SlotGuard {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the guard uniquely owns the slot (free-list discipline),
        // `slot_ptr` has provenance for the full slot, and `len` is bounded
        // by the slot size.
        unsafe { core::slice::from_raw_parts(self.pool.slot_ptr(self.index), self.len) }
    }
}

impl core::ops::DerefMut for SlotGuard {
    fn deref_mut(&mut self) -> &mut [u8] {
        // SAFETY: as above, plus `&mut self` guarantees no aliasing view.
        unsafe { core::slice::from_raw_parts_mut(self.pool.slot_ptr(self.index), self.len) }
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        // A failure means this guard's checkout was already retired through
        // a copied token (ownership-discipline misuse).  The generation
        // check above guarantees we did not touch the slot's new owner;
        // record the rejection instead of corrupting state.
        if self
            .pool
            .release_checkout(self.index, self.generation)
            .is_err()
        {
            self.pool.count_misuse();
        }
    }
}

/// Read-only access to the message a received token refers to.
///
/// The paper's zero-copy receive path returns the application "a pointer to
/// a memory area borrowed from the runtime"; `SlotView` is that borrow.
/// Dropping the view (or calling [`SlotView::release`]) returns the slot.
pub struct SlotView {
    pool: SlotPool,
    index: u32,
    /// Generation at checkout time (see [`SlotGuard::generation`]).
    generation: u32,
    len: usize,
}

impl fmt::Debug for SlotView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotView")
            .field("pool", &self.pool.pool_id())
            .field("index", &self.index)
            .field("len", &self.len)
            .finish()
    }
}

impl SlotView {
    /// Message length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the message length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Explicitly returns the slot to the pool (equivalent to drop, but
    /// reads better at call sites that mirror the paper's
    /// `release_buffer`).
    pub fn release(self) {}

    /// Keeps the slot checked out and returns the token, so the view can be
    /// forwarded without copying (e.g. a local sink handing the message to
    /// another component).
    // The forget IS the ownership transfer: the checkout deliberately
    // outlives the view because the token now owns it.
    #[allow(clippy::mem_forget)]
    pub fn into_token(self) -> SlotToken {
        let token = self.pool.token_for(self.index, self.generation, self.len);
        core::mem::forget(self);
        token
    }

    /// Creates a second zero-copy reference to the same slot.
    ///
    /// The slot returns to the free list only when every reference has
    /// been dropped/released.  The INSANE runtime uses this to deliver one
    /// received message to several co-located sinks without copying
    /// (the multi-sink experiment of Fig. 8b).
    pub fn clone_ref(&self) -> SlotView {
        // This view holds a live checkout, so the retain can only fail if
        // some other component double-released our checkout out from under
        // us (misuse).  The clone still hands back a view pinned to our
        // generation: its eventual drop fails the generation check and is
        // counted, rather than disturbing the slot's next owner.
        if self
            .pool
            .retain_checkout(self.index, self.generation)
            .is_err()
        {
            self.pool.count_misuse();
        }
        SlotView {
            pool: self.pool.clone(),
            index: self.index,
            generation: self.generation,
            len: self.len,
        }
    }
}

impl core::ops::Deref for SlotView {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the view owns one unit of checkout; writers cannot exist
        // because ownership is linear (the guard was consumed to produce
        // the token that produced this view), and `slot_ptr` has
        // provenance for the full slot.
        unsafe { core::slice::from_raw_parts(self.pool.slot_ptr(self.index), self.len) }
    }
}

impl Drop for SlotView {
    fn drop(&mut self) {
        // See `SlotGuard::drop`: a failed release means our checkout was
        // already retired via a copied token; count it, don't corrupt.
        if self
            .pool
            .release_checkout(self.index, self.generation)
            .is_err()
        {
            self.pool.count_misuse();
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn pool() -> SlotPool {
        SlotPool::new(PoolConfig::new(3, 128, 4)).unwrap()
    }

    #[test]
    fn rejects_zero_configs() {
        assert!(matches!(
            SlotPool::new(PoolConfig::new(0, 0, 4)),
            Err(MemoryError::BadConfig(_))
        ));
        assert!(matches!(
            SlotPool::new(PoolConfig::new(0, 16, 0)),
            Err(MemoryError::BadConfig(_))
        ));
    }

    #[test]
    fn acquire_write_transfer_view_release() {
        let p = pool();
        let mut g = p.acquire(5).unwrap();
        g.copy_from_slice(b"hello");
        let t = g.into_token();
        assert_eq!(t.len(), 5);
        assert_eq!(p.free_slots(), 3);
        let v = p.view(t).unwrap();
        assert_eq!(&*v, b"hello");
        drop(v);
        assert_eq!(p.free_slots(), 4);
    }

    #[test]
    fn acquire_too_large_is_rejected() {
        let p = pool();
        assert_eq!(
            p.acquire(129).err(),
            Some(MemoryError::RequestTooLarge {
                requested: 129,
                max: 128
            })
        );
    }

    #[test]
    fn exhaustion_and_stat_counters() {
        let p = pool();
        let guards: Vec<_> = (0..4).map(|_| p.acquire(1).unwrap()).collect();
        assert_eq!(
            p.acquire(1).err(),
            Some(MemoryError::PoolExhausted {
                slot_size: 128,
                requested: 1,
                in_use: 4,
                slot_count: 4
            })
        );
        let stats = p.stats();
        assert_eq!(stats.in_use, 4);
        assert_eq!(stats.high_water, 4);
        assert_eq!(stats.exhaustions, 1);
        assert_eq!(stats.acquires, 4);
        assert_eq!(stats.misuse_rejections, 0);
        drop(guards);
        assert_eq!(p.stats().in_use, 0);
        assert_eq!(p.free_slots(), 4);
    }

    #[test]
    fn double_release_is_detected() {
        let p = pool();
        let t = p.acquire(1).unwrap().into_token();
        p.release(t).unwrap();
        assert_eq!(p.release(t), Err(MemoryError::StaleToken));
        assert_eq!(p.stats().misuse_rejections, 1);
    }

    #[test]
    fn stale_view_after_release_is_detected() {
        let p = pool();
        let t = p.acquire(1).unwrap().into_token();
        p.release(t).unwrap();
        assert!(matches!(p.view(t), Err(MemoryError::StaleToken)));
    }

    #[test]
    fn token_from_wrong_pool_is_invalid() {
        let a = SlotPool::new(PoolConfig::new(1, 64, 2)).unwrap();
        let b = SlotPool::new(PoolConfig::new(2, 64, 2)).unwrap();
        let t = a.acquire(1).unwrap().into_token();
        assert!(matches!(b.view(t), Err(MemoryError::InvalidToken)));
        assert_eq!(b.stats().misuse_rejections, 1);
        a.release(t).unwrap();
    }

    #[test]
    fn dropped_guard_returns_slot() {
        let p = pool();
        {
            let _g = p.acquire(10).unwrap();
            assert_eq!(p.free_slots(), 3);
        }
        assert_eq!(p.free_slots(), 4);
    }

    #[test]
    fn redeem_allows_rewriting_received_slot() {
        let p = pool();
        let mut g = p.acquire(3).unwrap();
        g.copy_from_slice(b"abc");
        let t = g.into_token();
        let mut again = p.redeem(t).unwrap();
        again[0] = b'x';
        let t2 = again.into_token();
        let v = p.view(t2).unwrap();
        assert_eq!(&*v, b"xbc");
    }

    #[test]
    fn set_len_adjusts_visible_bytes() {
        let p = pool();
        let mut g = p.acquire(8).unwrap();
        g.copy_from_slice(b"12345678");
        g.set_len(4);
        let t = g.into_token();
        assert_eq!(t.len(), 4);
        let v = p.view(t).unwrap();
        assert_eq!(&*v, b"1234");
    }

    #[test]
    #[should_panic(expected = "exceeds slot size")]
    fn set_len_beyond_slot_panics() {
        let p = pool();
        let mut g = p.acquire(8).unwrap();
        g.set_len(4096);
    }

    #[test]
    fn slots_do_not_alias() {
        let p = pool();
        let mut a = p.acquire(4).unwrap();
        let mut b = p.acquire(4).unwrap();
        a.copy_from_slice(b"aaaa");
        b.copy_from_slice(b"bbbb");
        assert_eq!(&*a, b"aaaa");
        assert_eq!(&*b, b"bbbb");
    }

    #[test]
    fn forwarding_view_as_token_keeps_slot_checked_out() {
        let p = pool();
        let t = p.acquire(2).unwrap().into_token();
        let v = p.view(t).unwrap();
        let t2 = v.into_token();
        assert_eq!(p.free_slots(), 3);
        p.release(t2).unwrap();
        assert_eq!(p.free_slots(), 4);
    }

    #[test]
    fn clone_ref_keeps_slot_alive_until_last_drop() {
        let p = pool();
        let mut g = p.acquire(3).unwrap();
        g.copy_from_slice(b"abc");
        let t = g.into_token();
        let v1 = p.view(t).unwrap();
        let v2 = v1.clone_ref();
        let v3 = v2.clone_ref();
        drop(v1);
        assert_eq!(p.free_slots(), 3, "two refs still out");
        assert_eq!(&*v2, b"abc");
        drop(v2);
        assert_eq!(&*v3, b"abc");
        drop(v3);
        assert_eq!(p.free_slots(), 4);
        // Token is stale once the last ref went away.
        assert!(matches!(p.view(t), Err(MemoryError::StaleToken)));
    }

    #[test]
    fn reacquired_slot_starts_with_fresh_refcount() {
        let p = SlotPool::new(PoolConfig::new(0, 16, 1)).unwrap();
        let t = p.acquire(1).unwrap().into_token();
        let v = p.view(t).unwrap();
        let v2 = v.clone_ref();
        drop(v);
        drop(v2);
        // Slot free again; a second acquire/release cycle must behave.
        let t2 = p.acquire(1).unwrap().into_token();
        p.release(t2).unwrap();
        assert_eq!(p.free_slots(), 1);
    }

    #[test]
    fn stale_guard_drop_cannot_release_new_owner() {
        let p = SlotPool::new(PoolConfig::new(0, 16, 1)).unwrap();
        let g = p.acquire(1).unwrap();
        let t = g.token(); // non-consuming copy of the checkout
        p.release(t).unwrap(); // misuse: releases while the guard lives
        let g2 = p.acquire(2).unwrap(); // new checkout, new generation
        drop(g); // stale guard must NOT free the new checkout
        assert_eq!(p.free_slots(), 0);
        assert_eq!(p.stats().in_use, 1);
        assert!(p.stats().misuse_rejections >= 1);
        drop(g2);
        assert_eq!(p.free_slots(), 1);
        assert_eq!(p.stats().in_use, 0);
    }

    #[test]
    fn concurrent_acquire_release_is_balanced() {
        use std::sync::Arc;
        const ROUNDS: u32 = if cfg!(miri) { 100 } else { 5_000 };
        let p = Arc::new(SlotPool::new(PoolConfig::new(9, 64, 32)).unwrap());
        let mut handles = Vec::new();
        for t in 0..8 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    match p.acquire(8) {
                        Ok(mut g) => {
                            g.copy_from_slice(&(t as u64 * 31 + i as u64).to_le_bytes());
                            let token = g.into_token();
                            let view = p.view(token).unwrap();
                            assert_eq!(view.len(), 8);
                            view.release();
                        }
                        Err(MemoryError::PoolExhausted { .. }) => std::hint::spin_loop(),
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.free_slots(), 32);
        assert_eq!(p.stats().in_use, 0);
    }

    #[test]
    fn wire_encoding_round_trips() {
        let p = pool();
        let t = p.acquire(7).unwrap().into_token();
        let (w0, w1) = t.to_wire();
        let back = SlotToken::from_wire(t.pool_id(), w0, w1);
        assert_eq!(back, t);
        p.release(back).unwrap();
    }

    #[test]
    fn create_and_attach_share_one_segment() {
        let config = PoolConfig::new(7, 64, 8);
        let len = SlotPool::required_segment_len(&config).unwrap();
        let segment = crate::Segment::heap(len);
        let creator = SlotPool::create_in_segment(config, segment.clone()).unwrap();
        let attached = SlotPool::attach_segment(segment).unwrap();
        assert_eq!(attached.pool_id(), 7);
        assert_eq!(attached.slot_size(), 64);
        assert_eq!(attached.slot_count(), 8);
        // A token minted through one handle is redeemable through the
        // other: all state lives in the shared segment.
        let mut g = creator.acquire(4).unwrap();
        g.copy_from_slice(b"ping");
        let t = g.into_token();
        assert_eq!(attached.stats().in_use, 1);
        let v = attached.view(t).unwrap();
        assert_eq!(&*v, b"ping");
        drop(v);
        assert_eq!(creator.free_slots(), 8);
        assert_eq!(creator.stats().in_use, 0);
    }

    #[test]
    fn attach_rejects_garbage_segments() {
        // Too small for even a header.
        assert!(SlotPool::attach_segment(crate::Segment::heap(64)).is_err());
        // Large enough but holds no pool.
        assert!(SlotPool::attach_segment(crate::Segment::heap(4096)).is_err());
        // Valid header claiming more slots than the segment holds.
        let config = PoolConfig::new(1, 64, 8);
        let len = SlotPool::required_segment_len(&config).unwrap();
        let segment = crate::Segment::heap(len);
        let _pool = SlotPool::create_in_segment(config, segment.clone()).unwrap();
        let truncated = segment.slice(0, len - 64).unwrap();
        assert!(SlotPool::attach_segment(truncated).is_err());
    }

    #[test]
    fn force_reclaim_retires_outstanding_checkouts() {
        let config = PoolConfig::new(2, 32, 4);
        let len = SlotPool::required_segment_len(&config).unwrap();
        let segment = crate::Segment::heap(len);
        let p = SlotPool::create_in_segment(config, segment).unwrap();
        // Simulate a crashed client: three checkouts that will never be
        // dropped (tokens forgotten, as a killed process forgets them).
        let t1 = p.acquire(1).unwrap().into_token();
        let _t2 = p.acquire(2).unwrap().into_token();
        let _t3 = p.acquire(3).unwrap().into_token();
        assert_eq!(p.stats().in_use, 3);
        assert_eq!(p.force_reclaim(), 3);
        assert_eq!(p.stats().in_use, 0);
        assert_eq!(p.free_slots(), 4);
        // Every stale token is now typed-invalid, not a corruption.
        assert!(matches!(p.view(t1), Err(MemoryError::StaleToken)));
        // And the pool is fully usable again.
        let all: Vec<_> = (0..4).map(|_| p.acquire(1).unwrap()).collect();
        assert_eq!(p.stats().in_use, 4);
        drop(all);
        assert_eq!(p.free_slots(), 4);
    }

    #[test]
    fn force_reclaim_on_quiet_pool_is_a_noop() {
        let p = pool();
        assert_eq!(p.force_reclaim(), 0);
        assert_eq!(p.free_slots(), 4);
    }
}
