//! The slot pool: a fixed-size arena with generation-tagged slot handles.
//!
//! Concurrency protocol: each slot owns one packed state word (high 32
//! bits generation, low 32 bits reference count).  Every ownership
//! transition — lend (`acquire`), share (`clone_ref`), return
//! (`release`/drop) — is a single CAS on that word, so misuse such as two
//! threads racing to release the same token resolves to exactly one
//! winner; the loser gets a typed [`MemoryError`], never a corrupted
//! refcount.  All atomics go through the `insane-queues` sync shim so the
//! protocol is model checked under loom (`tests/loom.rs`, DESIGN.md §7).

use core::fmt;

use insane_queues::sync::{Arc, AtomicU32, AtomicU64, Ordering};
use insane_queues::FreeStack;

use crate::quota::QuotaLedger;
use crate::{MemoryError, PoolId, TenantId};

/// Construction parameters for a [`SlotPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Identifier embedded in every token minted by this pool.
    pub pool_id: PoolId,
    /// Size of each slot in bytes (the largest message the pool can carry).
    pub slot_size: usize,
    /// Number of slots reserved at startup.
    pub slot_count: usize,
}

impl PoolConfig {
    /// Convenience constructor.
    pub fn new(pool_id: PoolId, slot_size: usize, slot_count: usize) -> Self {
        Self {
            pool_id,
            slot_size,
            slot_count,
        }
    }
}

/// Counters describing pool usage; useful for back-pressure diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Slots currently lent out.
    pub in_use: usize,
    /// Highest simultaneous `in_use` observed.
    pub high_water: usize,
    /// `acquire` calls rejected because the pool was empty.
    pub exhaustions: u64,
    /// Total successful acquires since startup.
    pub acquires: u64,
    /// Token operations rejected as stale or invalid (double release,
    /// use-after-release, cross-pool tokens).  A non-zero value means some
    /// component violated the linear-ownership discipline and was caught.
    pub misuse_rejections: u64,
}

/// The transferable slot id: what the client library and the runtime push
/// on their token queues instead of payload bytes (paper Fig. 4).
///
/// A token is `Copy` for queue ergonomics, but the middleware treats it
/// linearly: exactly one component owns it at a time.  The generation tag
/// lets the pool reject stale copies at the first misuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotToken {
    pool: PoolId,
    index: u32,
    generation: u32,
    len: u32,
}

impl SlotToken {
    /// Pool that minted this token.
    pub fn pool_id(&self) -> PoolId {
        self.pool
    }

    /// Slot index within the pool.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Message length stored in the slot, in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the message length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a copy of this token with an adjusted length.
    ///
    /// The runtime uses this when a datapath writes fewer bytes than the
    /// slot capacity (e.g. after protocol-header stripping).
    pub fn with_len(mut self, len: usize) -> Self {
        self.len = len as u32;
        self
    }
}

/// Packs a generation tag and a reference count into one state word.
const fn pack_state(generation: u32, refs: u32) -> u64 {
    ((generation as u64) << 32) | refs as u64
}

/// Splits a state word into `(generation, refs)`.
const fn unpack_state(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

struct PoolInner {
    config: PoolConfig,
    /// One contiguous backing area, like the DMA-registered region the
    /// paper's memory manager reserves at startup.  Deliberately a plain
    /// `core::cell::UnsafeCell` rather than the loom-instrumented shim:
    /// byte-granular instrumentation would swamp the model checker, and
    /// the bytes are protected by the (instrumented) state-word protocol.
    backing: Box<[core::cell::UnsafeCell<u8>]>,
    free: FreeStack,
    /// Per-slot packed `(generation, refcount)` word; see module docs.
    /// Generation and count live in ONE atomic so that validate + retire
    /// is a single CAS — with separate arrays, two racing releases of the
    /// same token could both pass validation and underflow the count.
    states: Box<[AtomicU64]>,
    /// Per-slot message length; written by the owner before transfer.
    lens: Box<[AtomicU32]>,
    in_use: AtomicU32,
    high_water: AtomicU32,
    exhaustions: AtomicU64,
    acquires: AtomicU64,
    misuse_rejections: AtomicU64,
    /// Tenant-quota hook: `(ledger, flat-index base of this pool)`.
    /// Present only when the owning `PoolSet` registered tenants; the
    /// release path credits the ledger here because `SlotGuard`/
    /// `SlotView` drops release directly into the pool, bypassing the
    /// set.  `None` costs one branch per release.
    ledger: Option<(Arc<QuotaLedger>, usize)>,
}

// SAFETY: slot bytes are only reachable through a `SlotGuard`/`SlotView`
// whose unique ownership is enforced by the state-word (generation +
// refcount) and free-list discipline; transfer between threads happens
// through queues that provide the necessary ordering.
unsafe impl Send for PoolInner {}
// SAFETY: as above — shared references only expose slot bytes behind the
// state-word checkout protocol.
unsafe impl Sync for PoolInner {}

/// A fixed-size pool of equally-sized, zero-copy message slots.
///
/// Cloning a `SlotPool` clones a handle to the same shared arena — this is
/// the in-process analogue of an application mapping the runtime's shared
/// memory into its own address space (paper §5.3).
#[derive(Clone)]
pub struct SlotPool {
    inner: Arc<PoolInner>,
}

impl fmt::Debug for SlotPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotPool")
            .field("pool_id", &self.inner.config.pool_id)
            .field("slot_size", &self.inner.config.slot_size)
            .field("slot_count", &self.inner.config.slot_count)
            .field("stats", &self.stats())
            .finish()
    }
}

impl SlotPool {
    /// Reserves the backing area and initializes the free list.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::BadConfig`] if `slot_size` or `slot_count` is
    /// zero.
    pub fn new(config: PoolConfig) -> Result<Self, MemoryError> {
        Self::with_ledger(config, None)
    }

    /// As [`SlotPool::new`], wiring the pool's releases into a tenant
    /// [`QuotaLedger`] (`base` is this pool's flat-index offset within
    /// the ledger's charge table).
    pub(crate) fn with_ledger(
        config: PoolConfig,
        ledger: Option<(Arc<QuotaLedger>, usize)>,
    ) -> Result<Self, MemoryError> {
        if config.slot_size == 0 {
            return Err(MemoryError::BadConfig("slot_size must be non-zero"));
        }
        if config.slot_count == 0 {
            return Err(MemoryError::BadConfig("slot_count must be non-zero"));
        }
        let backing = (0..config.slot_size * config.slot_count)
            .map(|_| core::cell::UnsafeCell::new(0u8))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let states = (0..config.slot_count)
            .map(|_| AtomicU64::new(pack_state(0, 0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let lens = (0..config.slot_count)
            .map(|_| AtomicU32::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ok(Self {
            inner: Arc::new(PoolInner {
                free: FreeStack::full(config.slot_count),
                config,
                backing,
                states,
                lens,
                in_use: AtomicU32::new(0),
                high_water: AtomicU32::new(0),
                exhaustions: AtomicU64::new(0),
                acquires: AtomicU64::new(0),
                misuse_rejections: AtomicU64::new(0),
                ledger,
            }),
        })
    }

    /// Pool identifier.
    pub fn pool_id(&self) -> PoolId {
        self.inner.config.pool_id
    }

    /// Size in bytes of each slot.
    pub fn slot_size(&self) -> usize {
        self.inner.config.slot_size
    }

    /// Number of slots in the pool.
    pub fn slot_count(&self) -> usize {
        self.inner.config.slot_count
    }

    /// Number of slots currently free.
    pub fn free_slots(&self) -> usize {
        self.inner.free.len()
    }

    /// Usage statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            in_use: self.inner.in_use.load(Ordering::Relaxed) as usize,
            high_water: self.inner.high_water.load(Ordering::Relaxed) as usize,
            exhaustions: self.inner.exhaustions.load(Ordering::Relaxed),
            acquires: self.inner.acquires.load(Ordering::Relaxed),
            misuse_rejections: self.inner.misuse_rejections.load(Ordering::Relaxed),
        }
    }

    /// Lends out a free slot for writing a message of `len` bytes.
    ///
    /// This is the mechanism behind `get_buffer` in the paper's API.
    ///
    /// # Errors
    ///
    /// * [`MemoryError::RequestTooLarge`] if `len` exceeds the slot size.
    /// * [`MemoryError::PoolExhausted`] if no slot is free.
    pub fn acquire(&self, len: usize) -> Result<SlotGuard, MemoryError> {
        if len > self.inner.config.slot_size {
            return Err(MemoryError::RequestTooLarge {
                requested: len,
                max: self.inner.config.slot_size,
            });
        }
        let index = self.inner.free.pop().ok_or_else(|| {
            self.inner.exhaustions.fetch_add(1, Ordering::Relaxed);
            self.exhausted(len)
        })?;
        self.inner.acquires.fetch_add(1, Ordering::Relaxed);
        let in_use = self.inner.in_use.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.high_water.fetch_max(in_use, Ordering::Relaxed);
        // Popping the free list gave us exclusive ownership of the slot
        // (refcount is 0 and no token can match its generation), so a plain
        // load + store cannot race with any other state transition.
        // insane-lint: allow(hot-path-panic) -- free-list indices are seeded from 0..slot_count at construction
        let state = &self.inner.states[index as usize];
        let (generation, refs) = unpack_state(state.load(Ordering::Acquire));
        debug_assert_eq!(refs, 0, "slot on the free list with live references");
        state.store(pack_state(generation, 1), Ordering::Release);
        // insane-lint: allow(hot-path-panic) -- same free-list index bound as above
        self.inner.lens[index as usize].store(len as u32, Ordering::Relaxed);
        Ok(SlotGuard {
            pool: self.clone(),
            index,
            generation,
            len,
        })
    }

    /// The exhaustion error for a `len`-byte request against this pool's
    /// current occupancy.
    pub(crate) fn exhausted(&self, len: usize) -> MemoryError {
        MemoryError::PoolExhausted {
            slot_size: self.inner.config.slot_size,
            requested: len,
            in_use: self.inner.in_use.load(Ordering::Relaxed) as usize,
            slot_count: self.inner.config.slot_count,
        }
    }

    /// Charges `tenant` for a freshly-acquired slot.  A quota-less pool
    /// accepts unconditionally.  On failure the caller still owns the
    /// guard (no charge word was written), so dropping it releases the
    /// slot without a ledger credit.
    pub(crate) fn charge_tenant(&self, tenant: TenantId, index: u32) -> Result<(), MemoryError> {
        match &self.inner.ledger {
            None => Ok(()),
            Some((ledger, base)) => ledger.charge(tenant, base + index as usize),
        }
    }

    /// Re-materializes unique write access from a token, e.g. on the
    /// receive path where a datapath filled the slot and handed the token
    /// over a queue.
    ///
    /// # Errors
    ///
    /// [`MemoryError::InvalidToken`] / [`MemoryError::StaleToken`] under the
    /// same conditions as [`SlotPool::view`].
    pub fn redeem(&self, token: SlotToken) -> Result<SlotGuard, MemoryError> {
        self.validate(token)?;
        Ok(SlotGuard {
            pool: self.clone(),
            index: token.index,
            generation: token.generation,
            len: token.len(),
        })
    }

    /// Produces a read-only view of the message a token refers to.
    ///
    /// # Errors
    ///
    /// * [`MemoryError::InvalidToken`] if the token names another pool or an
    ///   out-of-range slot.
    /// * [`MemoryError::StaleToken`] if the slot was released since the
    ///   token was minted (double release / use-after-release).
    pub fn view(&self, token: SlotToken) -> Result<SlotView, MemoryError> {
        self.validate(token)?;
        Ok(SlotView {
            pool: self.clone(),
            index: token.index,
            generation: token.generation,
            len: token.len(),
        })
    }

    /// Releases the slot a token refers to back to the free list.
    ///
    /// This is `release_buffer` in the paper's API.  The slot's generation
    /// is bumped (atomically with the refcount reaching zero) so that any
    /// copy of the token still in flight becomes stale.
    ///
    /// # Errors
    ///
    /// * [`MemoryError::InvalidToken`] if the token names another pool or an
    ///   out-of-range slot.
    /// * [`MemoryError::StaleToken`] on a double release — including two
    ///   threads racing to release the same token: exactly one wins.
    pub fn release(&self, token: SlotToken) -> Result<(), MemoryError> {
        self.check_addressable(token)?;
        self.release_checkout(token.index, token.generation)
            .inspect_err(|_| {
                self.inner.misuse_rejections.fetch_add(1, Ordering::Relaxed);
            })
    }

    /// Returns one unit of checkout for `index`, provided the slot is still
    /// on generation `expected_generation` with a live refcount.
    ///
    /// The whole transition is one CAS on the packed state word: when the
    /// last reference goes away the generation bump, the count reaching
    /// zero, and the staleness of every outstanding token copy all become
    /// visible atomically.  Exactly one of N racing releases of the same
    /// checkout succeeds.
    fn release_checkout(&self, index: u32, expected_generation: u32) -> Result<(), MemoryError> {
        let state = &self.inner.states[index as usize];
        let mut current = state.load(Ordering::Acquire);
        loop {
            let (generation, refs) = unpack_state(current);
            if generation != expected_generation || refs == 0 {
                return Err(MemoryError::StaleToken);
            }
            let next = if refs == 1 {
                pack_state(generation.wrapping_add(1), 0)
            } else {
                pack_state(generation, refs - 1)
            };
            match state.compare_exchange_weak(current, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    if refs == 1 {
                        // Credit the tenant ledger BEFORE the slot
                        // re-enters the free list: the free list's
                        // push/pop pair orders this ahead of the next
                        // charge of the same slot, so the ledger's
                        // Relaxed atomics suffice.
                        if let Some((ledger, base)) = &self.inner.ledger {
                            ledger.credit(base + index as usize);
                        }
                        self.inner.in_use.fetch_sub(1, Ordering::Relaxed);
                        self.inner.free.push(index);
                    }
                    return Ok(());
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Adds one unit of checkout for `index` on generation
    /// `expected_generation`; fails if that checkout is no longer live.
    fn retain_checkout(&self, index: u32, expected_generation: u32) -> Result<(), MemoryError> {
        // insane-lint: allow(hot-path-panic) -- index comes from a live guard/view, already bounds-checked at token validation
        let state = &self.inner.states[index as usize];
        let mut current = state.load(Ordering::Acquire);
        loop {
            let (generation, refs) = unpack_state(current);
            if generation != expected_generation || refs == 0 {
                return Err(MemoryError::StaleToken);
            }
            let next = pack_state(generation, refs + 1);
            match state.compare_exchange_weak(current, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// Bounds/pool-id check only (no generation check).
    fn check_addressable(&self, token: SlotToken) -> Result<(), MemoryError> {
        if token.pool != self.inner.config.pool_id
            || token.index as usize >= self.inner.config.slot_count
        {
            self.inner.misuse_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(MemoryError::InvalidToken);
        }
        Ok(())
    }

    fn validate(&self, token: SlotToken) -> Result<(), MemoryError> {
        self.check_addressable(token)?;
        // insane-lint: allow(hot-path-panic) -- check_addressable above proved index < slot_count
        let state = &self.inner.states[token.index as usize];
        let (generation, refs) = unpack_state(state.load(Ordering::Acquire));
        if generation != token.generation || refs == 0 {
            self.inner.misuse_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(MemoryError::StaleToken);
        }
        Ok(())
    }

    fn token_for(&self, index: u32, generation: u32, len: usize) -> SlotToken {
        SlotToken {
            pool: self.inner.config.pool_id,
            index,
            generation,
            len: len as u32,
        }
    }

    fn slot_ptr(&self, index: u32) -> *mut u8 {
        let offset = index as usize * self.inner.config.slot_size;
        debug_assert!(offset + self.inner.config.slot_size <= self.inner.backing.len());
        // SAFETY: `offset` is in bounds for the backing slice (`index` was
        // bounds-checked when the guard/view was created and the arena is
        // never resized).  The pointer is derived from the slice base, not
        // from a single-element borrow, so its provenance spans the whole
        // backing allocation and callers may form `slot_size`-byte slices
        // from it (a `&backing[offset]` reborrow would carry one-byte
        // provenance — undefined behavior under Miri's aliasing models).
        unsafe { core::cell::UnsafeCell::raw_get(self.inner.backing.as_ptr().add(offset)) }
    }
}

/// Unique, writable access to one slot, returned by [`SlotPool::acquire`].
///
/// Dropping the guard without [`SlotGuard::into_token`] returns the slot to
/// the pool (no leak on early error paths).
pub struct SlotGuard {
    pool: SlotPool,
    index: u32,
    /// Generation at checkout time; drops and tokens are pinned to it so a
    /// stale guard can never release someone else's checkout.
    generation: u32,
    len: usize,
}

impl fmt::Debug for SlotGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotGuard")
            .field("pool", &self.pool.pool_id())
            .field("index", &self.index)
            .field("len", &self.len)
            .finish()
    }
}

impl SlotGuard {
    /// Message length this guard was acquired for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the message length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shrinks or grows the valid message length (bounded by slot size).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the pool's slot size.
    pub fn set_len(&mut self, len: usize) {
        assert!(
            len <= self.pool.slot_size(),
            "len {} exceeds slot size {}",
            len,
            self.pool.slot_size()
        );
        self.len = len;
        self.pool.inner.lens[self.index as usize].store(len as u32, Ordering::Relaxed);
    }

    /// Converts the guard into a transferable token, *without* releasing
    /// the slot: ownership moves to whoever receives the token.
    ///
    /// This is the moment `emit_data` hands the slot id to the runtime.
    // The forget IS the ownership transfer: the checkout deliberately
    // outlives the guard because the token now owns it.
    #[allow(clippy::mem_forget)]
    pub fn into_token(self) -> SlotToken {
        let token = self.pool.token_for(self.index, self.generation, self.len);
        core::mem::forget(self);
        token
    }

    /// The token this guard would produce, without consuming the guard.
    pub fn token(&self) -> SlotToken {
        self.pool.token_for(self.index, self.generation, self.len)
    }
}

impl core::ops::Deref for SlotGuard {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the guard uniquely owns the slot (free-list discipline),
        // `slot_ptr` has provenance for the full slot, and `len` is bounded
        // by the slot size.
        unsafe { core::slice::from_raw_parts(self.pool.slot_ptr(self.index), self.len) }
    }
}

impl core::ops::DerefMut for SlotGuard {
    fn deref_mut(&mut self) -> &mut [u8] {
        // SAFETY: as above, plus `&mut self` guarantees no aliasing view.
        unsafe { core::slice::from_raw_parts_mut(self.pool.slot_ptr(self.index), self.len) }
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        // A failure means this guard's checkout was already retired through
        // a copied token (ownership-discipline misuse).  The generation
        // check above guarantees we did not touch the slot's new owner;
        // record the rejection instead of corrupting state.
        if self
            .pool
            .release_checkout(self.index, self.generation)
            .is_err()
        {
            self.pool
                .inner
                .misuse_rejections
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Read-only access to the message a received token refers to.
///
/// The paper's zero-copy receive path returns the application "a pointer to
/// a memory area borrowed from the runtime"; `SlotView` is that borrow.
/// Dropping the view (or calling [`SlotView::release`]) returns the slot.
pub struct SlotView {
    pool: SlotPool,
    index: u32,
    /// Generation at checkout time (see [`SlotGuard::generation`]).
    generation: u32,
    len: usize,
}

impl fmt::Debug for SlotView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotView")
            .field("pool", &self.pool.pool_id())
            .field("index", &self.index)
            .field("len", &self.len)
            .finish()
    }
}

impl SlotView {
    /// Message length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the message length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Explicitly returns the slot to the pool (equivalent to drop, but
    /// reads better at call sites that mirror the paper's
    /// `release_buffer`).
    pub fn release(self) {}

    /// Keeps the slot checked out and returns the token, so the view can be
    /// forwarded without copying (e.g. a local sink handing the message to
    /// another component).
    // The forget IS the ownership transfer: the checkout deliberately
    // outlives the view because the token now owns it.
    #[allow(clippy::mem_forget)]
    pub fn into_token(self) -> SlotToken {
        let token = self.pool.token_for(self.index, self.generation, self.len);
        core::mem::forget(self);
        token
    }

    /// Creates a second zero-copy reference to the same slot.
    ///
    /// The slot returns to the free list only when every reference has
    /// been dropped/released.  The INSANE runtime uses this to deliver one
    /// received message to several co-located sinks without copying
    /// (the multi-sink experiment of Fig. 8b).
    pub fn clone_ref(&self) -> SlotView {
        // This view holds a live checkout, so the retain can only fail if
        // some other component double-released our checkout out from under
        // us (misuse).  The clone still hands back a view pinned to our
        // generation: its eventual drop fails the generation check and is
        // counted, rather than disturbing the slot's next owner.
        if self
            .pool
            .retain_checkout(self.index, self.generation)
            .is_err()
        {
            self.pool
                .inner
                .misuse_rejections
                .fetch_add(1, Ordering::Relaxed);
        }
        SlotView {
            pool: self.pool.clone(),
            index: self.index,
            generation: self.generation,
            len: self.len,
        }
    }
}

impl core::ops::Deref for SlotView {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the view owns one unit of checkout; writers cannot exist
        // because ownership is linear (the guard was consumed to produce
        // the token that produced this view), and `slot_ptr` has
        // provenance for the full slot.
        unsafe { core::slice::from_raw_parts(self.pool.slot_ptr(self.index), self.len) }
    }
}

impl Drop for SlotView {
    fn drop(&mut self) {
        // See `SlotGuard::drop`: a failed release means our checkout was
        // already retired via a copied token; count it, don't corrupt.
        if self
            .pool
            .release_checkout(self.index, self.generation)
            .is_err()
        {
            self.pool
                .inner
                .misuse_rejections
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn pool() -> SlotPool {
        SlotPool::new(PoolConfig::new(3, 128, 4)).unwrap()
    }

    #[test]
    fn rejects_zero_configs() {
        assert!(matches!(
            SlotPool::new(PoolConfig::new(0, 0, 4)),
            Err(MemoryError::BadConfig(_))
        ));
        assert!(matches!(
            SlotPool::new(PoolConfig::new(0, 16, 0)),
            Err(MemoryError::BadConfig(_))
        ));
    }

    #[test]
    fn acquire_write_transfer_view_release() {
        let p = pool();
        let mut g = p.acquire(5).unwrap();
        g.copy_from_slice(b"hello");
        let t = g.into_token();
        assert_eq!(t.len(), 5);
        assert_eq!(p.free_slots(), 3);
        let v = p.view(t).unwrap();
        assert_eq!(&*v, b"hello");
        drop(v);
        assert_eq!(p.free_slots(), 4);
    }

    #[test]
    fn acquire_too_large_is_rejected() {
        let p = pool();
        assert_eq!(
            p.acquire(129).err(),
            Some(MemoryError::RequestTooLarge {
                requested: 129,
                max: 128
            })
        );
    }

    #[test]
    fn exhaustion_and_stat_counters() {
        let p = pool();
        let guards: Vec<_> = (0..4).map(|_| p.acquire(1).unwrap()).collect();
        assert_eq!(
            p.acquire(1).err(),
            Some(MemoryError::PoolExhausted {
                slot_size: 128,
                requested: 1,
                in_use: 4,
                slot_count: 4
            })
        );
        let stats = p.stats();
        assert_eq!(stats.in_use, 4);
        assert_eq!(stats.high_water, 4);
        assert_eq!(stats.exhaustions, 1);
        assert_eq!(stats.acquires, 4);
        assert_eq!(stats.misuse_rejections, 0);
        drop(guards);
        assert_eq!(p.stats().in_use, 0);
        assert_eq!(p.free_slots(), 4);
    }

    #[test]
    fn double_release_is_detected() {
        let p = pool();
        let t = p.acquire(1).unwrap().into_token();
        p.release(t).unwrap();
        assert_eq!(p.release(t), Err(MemoryError::StaleToken));
        assert_eq!(p.stats().misuse_rejections, 1);
    }

    #[test]
    fn stale_view_after_release_is_detected() {
        let p = pool();
        let t = p.acquire(1).unwrap().into_token();
        p.release(t).unwrap();
        assert!(matches!(p.view(t), Err(MemoryError::StaleToken)));
    }

    #[test]
    fn token_from_wrong_pool_is_invalid() {
        let a = SlotPool::new(PoolConfig::new(1, 64, 2)).unwrap();
        let b = SlotPool::new(PoolConfig::new(2, 64, 2)).unwrap();
        let t = a.acquire(1).unwrap().into_token();
        assert!(matches!(b.view(t), Err(MemoryError::InvalidToken)));
        assert_eq!(b.stats().misuse_rejections, 1);
        a.release(t).unwrap();
    }

    #[test]
    fn dropped_guard_returns_slot() {
        let p = pool();
        {
            let _g = p.acquire(10).unwrap();
            assert_eq!(p.free_slots(), 3);
        }
        assert_eq!(p.free_slots(), 4);
    }

    #[test]
    fn redeem_allows_rewriting_received_slot() {
        let p = pool();
        let mut g = p.acquire(3).unwrap();
        g.copy_from_slice(b"abc");
        let t = g.into_token();
        let mut again = p.redeem(t).unwrap();
        again[0] = b'x';
        let t2 = again.into_token();
        let v = p.view(t2).unwrap();
        assert_eq!(&*v, b"xbc");
    }

    #[test]
    fn set_len_adjusts_visible_bytes() {
        let p = pool();
        let mut g = p.acquire(8).unwrap();
        g.copy_from_slice(b"12345678");
        g.set_len(4);
        let t = g.into_token();
        assert_eq!(t.len(), 4);
        let v = p.view(t).unwrap();
        assert_eq!(&*v, b"1234");
    }

    #[test]
    #[should_panic(expected = "exceeds slot size")]
    fn set_len_beyond_slot_panics() {
        let p = pool();
        let mut g = p.acquire(8).unwrap();
        g.set_len(4096);
    }

    #[test]
    fn slots_do_not_alias() {
        let p = pool();
        let mut a = p.acquire(4).unwrap();
        let mut b = p.acquire(4).unwrap();
        a.copy_from_slice(b"aaaa");
        b.copy_from_slice(b"bbbb");
        assert_eq!(&*a, b"aaaa");
        assert_eq!(&*b, b"bbbb");
    }

    #[test]
    fn forwarding_view_as_token_keeps_slot_checked_out() {
        let p = pool();
        let t = p.acquire(2).unwrap().into_token();
        let v = p.view(t).unwrap();
        let t2 = v.into_token();
        assert_eq!(p.free_slots(), 3);
        p.release(t2).unwrap();
        assert_eq!(p.free_slots(), 4);
    }

    #[test]
    fn clone_ref_keeps_slot_alive_until_last_drop() {
        let p = pool();
        let mut g = p.acquire(3).unwrap();
        g.copy_from_slice(b"abc");
        let t = g.into_token();
        let v1 = p.view(t).unwrap();
        let v2 = v1.clone_ref();
        let v3 = v2.clone_ref();
        drop(v1);
        assert_eq!(p.free_slots(), 3, "two refs still out");
        assert_eq!(&*v2, b"abc");
        drop(v2);
        assert_eq!(&*v3, b"abc");
        drop(v3);
        assert_eq!(p.free_slots(), 4);
        // Token is stale once the last ref went away.
        assert!(matches!(p.view(t), Err(MemoryError::StaleToken)));
    }

    #[test]
    fn reacquired_slot_starts_with_fresh_refcount() {
        let p = SlotPool::new(PoolConfig::new(0, 16, 1)).unwrap();
        let t = p.acquire(1).unwrap().into_token();
        let v = p.view(t).unwrap();
        let v2 = v.clone_ref();
        drop(v);
        drop(v2);
        // Slot free again; a second acquire/release cycle must behave.
        let t2 = p.acquire(1).unwrap().into_token();
        p.release(t2).unwrap();
        assert_eq!(p.free_slots(), 1);
    }

    #[test]
    fn stale_guard_drop_cannot_release_new_owner() {
        let p = SlotPool::new(PoolConfig::new(0, 16, 1)).unwrap();
        let g = p.acquire(1).unwrap();
        let t = g.token(); // non-consuming copy of the checkout
        p.release(t).unwrap(); // misuse: releases while the guard lives
        let g2 = p.acquire(2).unwrap(); // new checkout, new generation
        drop(g); // stale guard must NOT free the new checkout
        assert_eq!(p.free_slots(), 0);
        assert_eq!(p.stats().in_use, 1);
        assert!(p.stats().misuse_rejections >= 1);
        drop(g2);
        assert_eq!(p.free_slots(), 1);
        assert_eq!(p.stats().in_use, 0);
    }

    #[test]
    fn concurrent_acquire_release_is_balanced() {
        use std::sync::Arc;
        const ROUNDS: u32 = if cfg!(miri) { 100 } else { 5_000 };
        let p = Arc::new(SlotPool::new(PoolConfig::new(9, 64, 32)).unwrap());
        let mut handles = Vec::new();
        for t in 0..8 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    match p.acquire(8) {
                        Ok(mut g) => {
                            g.copy_from_slice(&(t as u64 * 31 + i as u64).to_le_bytes());
                            let token = g.into_token();
                            let view = p.view(token).unwrap();
                            assert_eq!(view.len(), 8);
                            view.release();
                        }
                        Err(MemoryError::PoolExhausted { .. }) => std::hint::spin_loop(),
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.free_slots(), 32);
        assert_eq!(p.stats().in_use, 0);
    }
}
