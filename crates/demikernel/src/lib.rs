//! A Demikernel-style library OS baseline.
//!
//! The INSANE paper compares against Demikernel (SOSP '21), "the most
//! complete and state-of-the-art alternative option to transparently
//! access kernel-bypassing technologies" (§6).  Demikernel is a *library*
//! OS: a set of userspace libraries compiled into the application, each
//! specialized for one I/O technology, exposing a qd/qtoken-based
//! asynchronous API.  Two of its libraries appear in the evaluation:
//!
//! * **Catnap** — maps operations to kernel sockets (the analogue of
//!   INSANE *slow*);
//! * **Catnip** — maps operations to DPDK (the analogue of INSANE
//!   *fast*), optimized for latency: it sends **one packet per push**,
//!   never batching — the reason Fig. 8a shows it well below INSANE's
//!   throughput.
//!
//! Two structural differences against INSANE matter for the results and
//! are reproduced here:
//!
//! 1. no runtime process: the library executes in the application thread
//!    (push/pop/wait drive the device inline), so there is no IPC hop —
//!    Demikernel's latency sits closer to the raw technology;
//! 2. the technology is chosen **statically** (pick Catnap or Catnip at
//!    build/config time); there is no QoS mapping and no multi-app
//!    sharing.
//!
//! # Examples
//!
//! ```
//! use insane_demikernel::{Backend, Demikernel, DemiEvent};
//! use insane_fabric::{Endpoint, Fabric, TestbedProfile};
//!
//! let fabric = Fabric::new(TestbedProfile::local());
//! let a = fabric.add_host("a");
//! let b = fabric.add_host("b");
//! let mut libos_a = Demikernel::new(Backend::Catnap, &fabric, a)?;
//! let mut libos_b = Demikernel::new(Backend::Catnap, &fabric, b)?;
//! let qa = libos_a.socket()?;
//! let qb = libos_b.socket()?;
//! libos_a.bind(qa, 9000)?;
//! libos_b.bind(qb, 9000)?;
//!
//! let push = libos_a.push_to(qa, b"ping", Endpoint { host: b, port: 9000 })?;
//! libos_a.wait(push, None)?;
//! let pop = libos_b.pop(qb)?;
//! match libos_b.wait(pop, None)? {
//!     DemiEvent::Popped { bytes, .. } => assert_eq!(bytes, b"ping"),
//!     other => panic!("unexpected {other:?}"),
//! }
//! # Ok::<(), insane_demikernel::DemiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::fmt;
use std::time::{Duration, Instant};

use insane_fabric::devices::{DpdkPort, RecvMode, SimUdpSocket};
use insane_fabric::time::{scale_ns, spin_for_ns};
use insane_fabric::{Endpoint, Fabric, FabricError, HostId};

/// Which Demikernel library backs the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Kernel sockets (the paper's INSANE-slow counterpart).
    Catnap,
    /// DPDK, one packet per push (the paper's INSANE-fast counterpart).
    Catnip,
}

impl Backend {
    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Catnap => "Catnap",
            Backend::Catnip => "Catnip",
        }
    }
}

/// Queue descriptor.
pub type Qd = u32;

/// Handle for an asynchronous operation, redeemed via
/// [`Demikernel::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QToken {
    qd: Qd,
    kind: TokenKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokenKind {
    Push,
    Pop,
}

/// Completion of a waited operation.
#[derive(Debug)]
pub enum DemiEvent {
    /// A push finished; the buffer is reusable.
    Pushed,
    /// A pop completed with data.
    Popped {
        /// Received payload.
        bytes: Vec<u8>,
        /// Sender address.
        from: Endpoint,
        /// Wire time of the datagram, nanoseconds.
        wire_ns: u64,
    },
}

/// Errors from the library OS.
#[derive(Debug)]
pub enum DemiError {
    /// Unknown or unbound queue descriptor.
    BadQd(Qd),
    /// The socket was not bound before use.
    NotBound(Qd),
    /// `wait` hit its timeout.
    Timeout,
    /// Underlying device failure.
    Fabric(FabricError),
    /// No default destination: use `push_to` or `connect` first.
    NoDestination,
}

impl fmt::Display for DemiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemiError::BadQd(qd) => write!(f, "unknown queue descriptor {qd}"),
            DemiError::NotBound(qd) => write!(f, "queue descriptor {qd} is not bound"),
            DemiError::Timeout => write!(f, "wait timed out"),
            DemiError::Fabric(e) => write!(f, "device error: {e}"),
            DemiError::NoDestination => write!(f, "socket has no destination; connect it first"),
        }
    }
}

impl std::error::Error for DemiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DemiError::Fabric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FabricError> for DemiError {
    fn from(e: FabricError) -> Self {
        DemiError::Fabric(e)
    }
}

enum Device {
    Unbound,
    Catnap(SimUdpSocket),
    Catnip(DpdkPort),
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Device::Unbound => f.write_str("Unbound"),
            Device::Catnap(_) => f.write_str("Catnap"),
            Device::Catnip(_) => f.write_str("Catnip"),
        }
    }
}

#[derive(Debug)]
struct Queue {
    device: Device,
    peer: Option<Endpoint>,
    /// Packets popped from the device but not yet waited for.
    staged: VecDeque<(Vec<u8>, Endpoint, u64)>,
}

/// One Demikernel library-OS instance, bound to one host and one backend.
#[derive(Debug)]
pub struct Demikernel {
    backend: Backend,
    fabric: Fabric,
    host: HostId,
    queues: Vec<Queue>,
    /// Per-operation library overhead: qd table lookups, qtoken
    /// bookkeeping, scheduler hop.  Calibrated so that Catnap adds
    /// ≈0.4 µs and Catnip ≈0.4 µs per direction over the raw technology
    /// (paper Fig. 7a: +0.76 µs and +0.82 µs RTT respectively).
    libos_ns: u64,
    /// Link rate used for Catnip's no-pipelining push completion.
    link_gbps: f64,
}

impl Demikernel {
    const LIBOS_NS: u64 = 180;

    /// Creates a library-OS instance on `host`.
    ///
    /// # Errors
    ///
    /// Currently infallible (devices bind per-socket); kept fallible for
    /// API stability.
    pub fn new(backend: Backend, fabric: &Fabric, host: HostId) -> Result<Self, DemiError> {
        Ok(Self {
            backend,
            fabric: fabric.clone(),
            host,
            queues: Vec::new(),
            libos_ns: scale_ns(Self::LIBOS_NS, fabric.profile().cpu_scale_pct),
            link_gbps: fabric.profile().link.bandwidth_gbps,
        })
    }

    /// The backing library.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    fn charge(&self) {
        spin_for_ns(self.libos_ns);
    }

    fn queue_mut(&mut self, qd: Qd) -> Result<&mut Queue, DemiError> {
        self.queues.get_mut(qd as usize).ok_or(DemiError::BadQd(qd))
    }

    /// Allocates a queue descriptor (`demi_socket`).
    ///
    /// # Errors
    ///
    /// Currently infallible; fallible for API stability.
    pub fn socket(&mut self) -> Result<Qd, DemiError> {
        self.queues.push(Queue {
            device: Device::Unbound,
            peer: None,
            staged: VecDeque::new(),
        });
        Ok((self.queues.len() - 1) as Qd)
    }

    /// Binds a descriptor to a local port (`demi_bind`).
    ///
    /// # Errors
    ///
    /// [`DemiError::Fabric`] on port collisions.
    pub fn bind(&mut self, qd: Qd, port: u16) -> Result<(), DemiError> {
        let backend = self.backend;
        let fabric = self.fabric.clone();
        let host = self.host;
        let queue = self.queue_mut(qd)?;
        queue.device = match backend {
            Backend::Catnap => {
                let socket = SimUdpSocket::bind(&fabric, host, port)?;
                socket.set_mtu(SimUdpSocket::JUMBO_MTU);
                Device::Catnap(socket)
            }
            Backend::Catnip => Device::Catnip(DpdkPort::open(&fabric, host, port, 1024)?),
        };
        Ok(())
    }

    /// Sets the default destination (`demi_connect`; UDP-style).
    ///
    /// # Errors
    ///
    /// [`DemiError::BadQd`] for an unknown descriptor.
    pub fn connect(&mut self, qd: Qd, peer: Endpoint) -> Result<(), DemiError> {
        self.queue_mut(qd)?.peer = Some(peer);
        Ok(())
    }

    /// Asynchronously sends to the connected destination (`demi_push`).
    ///
    /// # Errors
    ///
    /// [`DemiError::NoDestination`] before [`Demikernel::connect`].
    pub fn push(&mut self, qd: Qd, bytes: &[u8]) -> Result<QToken, DemiError> {
        let peer = self.queue_mut(qd)?.peer.ok_or(DemiError::NoDestination)?;
        self.push_to(qd, bytes, peer)
    }

    /// Asynchronously sends to an explicit destination (`demi_pushto`).
    ///
    /// Catnip deliberately transmits one packet per call — the library is
    /// optimized for latency, not batching (§6.2).
    ///
    /// # Errors
    ///
    /// * [`DemiError::NotBound`] before [`Demikernel::bind`].
    /// * [`DemiError::Fabric`] for MTU violations and device errors.
    pub fn push_to(&mut self, qd: Qd, bytes: &[u8], dst: Endpoint) -> Result<QToken, DemiError> {
        self.charge();
        let queue = self.queue_mut(qd)?;
        match &queue.device {
            Device::Unbound => Err(DemiError::NotBound(qd)),
            Device::Catnap(socket) => {
                socket.send_to(bytes, dst)?;
                Ok(QToken {
                    qd,
                    kind: TokenKind::Push,
                })
            }
            Device::Catnip(port) => {
                let mut mbuf = port.alloc_mbuf(bytes.len())?;
                mbuf.copy_from_slice(bytes);
                port.tx_burst(dst, [mbuf])?;
                // Catnip is latency-optimized: it puts "one packet per
                // time on the network" (§6.2) — no wire pipelining.  The
                // push completes only once the NIC has serialized the
                // frame, which is what caps its throughput in Fig. 8a.
                let wire_bits = (bytes.len() + 42) as f64 * 8.0;
                spin_for_ns((wire_bits / self.link_gbps) as u64);
                Ok(QToken {
                    qd,
                    kind: TokenKind::Push,
                })
            }
        }
    }

    /// Registers interest in the next datagram (`demi_pop`).
    ///
    /// # Errors
    ///
    /// [`DemiError::BadQd`] for an unknown descriptor.
    pub fn pop(&mut self, qd: Qd) -> Result<QToken, DemiError> {
        self.charge();
        self.queue_mut(qd)?;
        Ok(QToken {
            qd,
            kind: TokenKind::Pop,
        })
    }

    fn try_pop_device(queue: &mut Queue) -> Option<(Vec<u8>, Endpoint, u64)> {
        if let Some(staged) = queue.staged.pop_front() {
            return Some(staged);
        }
        match &queue.device {
            Device::Unbound => None,
            Device::Catnap(socket) => match socket.recv(RecvMode::NonBlocking) {
                Ok(dgram) => Some((dgram.payload, dgram.from, dgram.wire_ns)),
                Err(_) => None,
            },
            Device::Catnip(port) => {
                let mut out = Vec::new();
                if port.rx_burst(&mut out, 1) > 0 {
                    let pkt = out.remove(0);
                    // The library copies into an application sgarray.
                    Some((pkt.payload.to_vec(), pkt.src, pkt.wire_ns))
                } else {
                    None
                }
            }
        }
    }

    /// Blocks (by polling the device inline — Demikernel runs in the
    /// application thread) until the operation completes (`demi_wait`).
    ///
    /// # Errors
    ///
    /// * [`DemiError::Timeout`] when `timeout` elapses first.
    /// * [`DemiError::BadQd`] for a token of an unknown descriptor.
    pub fn wait(
        &mut self,
        token: QToken,
        timeout: Option<Duration>,
    ) -> Result<DemiEvent, DemiError> {
        self.charge();
        match token.kind {
            TokenKind::Push => Ok(DemiEvent::Pushed),
            TokenKind::Pop => {
                let deadline = timeout.map(|t| Instant::now() + t);
                loop {
                    let queue = self.queue_mut(token.qd)?;
                    if let Some((bytes, from, wire_ns)) = Self::try_pop_device(queue) {
                        return Ok(DemiEvent::Popped {
                            bytes,
                            from,
                            wire_ns,
                        });
                    }
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            return Err(DemiError::Timeout);
                        }
                    }
                    core::hint::spin_loop();
                }
            }
        }
    }

    /// Non-blocking completion check: returns `None` when the operation
    /// has not completed yet.
    ///
    /// # Errors
    ///
    /// [`DemiError::BadQd`] for a token of an unknown descriptor.
    pub fn try_wait(&mut self, token: QToken) -> Result<Option<DemiEvent>, DemiError> {
        match token.kind {
            TokenKind::Push => Ok(Some(DemiEvent::Pushed)),
            TokenKind::Pop => {
                let queue = self.queue_mut(token.qd)?;
                Ok(
                    Self::try_pop_device(queue).map(|(bytes, from, wire_ns)| DemiEvent::Popped {
                        bytes,
                        from,
                        wire_ns,
                    }),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insane_fabric::TestbedProfile;

    fn pair(backend: Backend) -> (Fabric, Demikernel, Demikernel, Endpoint, Endpoint) {
        let fabric = Fabric::new(TestbedProfile::local());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let mut da = Demikernel::new(backend, &fabric, a).unwrap();
        let mut db = Demikernel::new(backend, &fabric, b).unwrap();
        let qa = da.socket().unwrap();
        let qb = db.socket().unwrap();
        da.bind(qa, 7000).unwrap();
        db.bind(qb, 7000).unwrap();
        let ea = Endpoint {
            host: a,
            port: 7000,
        };
        let eb = Endpoint {
            host: b,
            port: 7000,
        };
        (fabric, da, db, ea, eb)
    }

    #[test]
    fn catnap_roundtrip() {
        let (_f, mut da, mut db, _ea, eb) = pair(Backend::Catnap);
        let push = da.push_to(0, b"catnap!", eb).unwrap();
        assert!(matches!(da.wait(push, None).unwrap(), DemiEvent::Pushed));
        let pop = db.pop(0).unwrap();
        match db.wait(pop, Some(Duration::from_secs(1))).unwrap() {
            DemiEvent::Popped { bytes, wire_ns, .. } => {
                assert_eq!(bytes, b"catnap!");
                assert!(wire_ns > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn catnip_roundtrip() {
        let (_f, mut da, mut db, _ea, eb) = pair(Backend::Catnip);
        let push = da.push_to(0, b"catnip!", eb).unwrap();
        assert!(matches!(da.wait(push, None).unwrap(), DemiEvent::Pushed));
        let pop = db.pop(0).unwrap();
        match db.wait(pop, Some(Duration::from_secs(1))).unwrap() {
            DemiEvent::Popped { bytes, .. } => assert_eq!(bytes, b"catnip!"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn connect_sets_default_destination() {
        let (_f, mut da, mut db, _ea, eb) = pair(Backend::Catnap);
        assert!(matches!(da.push(0, b"x"), Err(DemiError::NoDestination)));
        da.connect(0, eb).unwrap();
        da.push(0, b"x").unwrap();
        let pop = db.pop(0).unwrap();
        assert!(matches!(
            db.wait(pop, Some(Duration::from_secs(1))).unwrap(),
            DemiEvent::Popped { .. }
        ));
    }

    #[test]
    fn unbound_and_unknown_descriptors_error() {
        let fabric = Fabric::new(TestbedProfile::local());
        let a = fabric.add_host("a");
        let mut d = Demikernel::new(Backend::Catnap, &fabric, a).unwrap();
        let qd = d.socket().unwrap();
        assert!(matches!(
            d.push_to(qd, b"x", Endpoint { host: a, port: 1 }),
            Err(DemiError::NotBound(0))
        ));
        assert!(matches!(d.pop(99), Err(DemiError::BadQd(99))));
    }

    #[test]
    fn wait_timeout_fires() {
        let (_f, _da, mut db, _ea, _eb) = pair(Backend::Catnap);
        let pop = db.pop(0).unwrap();
        let t0 = Instant::now();
        assert!(matches!(
            db.wait(pop, Some(Duration::from_millis(5))),
            Err(DemiError::Timeout)
        ));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn try_wait_is_nonblocking() {
        let (_f, mut da, mut db, _ea, eb) = pair(Backend::Catnap);
        let pop = db.pop(0).unwrap();
        assert!(db.try_wait(pop).unwrap().is_none());
        da.push_to(0, b"later", eb).unwrap();
        // Poll until delivery (wire time must elapse).
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            if let Some(DemiEvent::Popped { bytes, .. }) = db.try_wait(pop).unwrap() {
                assert_eq!(bytes, b"later");
                break;
            }
            assert!(Instant::now() < deadline, "never delivered");
        }
    }

    #[test]
    fn catnip_is_faster_than_catnap() {
        fn rtt(backend: Backend) -> u64 {
            let (_f, mut da, mut db, ea, eb) = pair(backend);
            let mut best = u64::MAX;
            for _ in 0..30 {
                let t0 = Instant::now();
                da.push_to(0, &[1u8; 64], eb).unwrap();
                let pop = db.pop(0).unwrap();
                let DemiEvent::Popped { bytes, .. } =
                    db.wait(pop, Some(Duration::from_secs(1))).unwrap()
                else {
                    panic!("expected pop completion")
                };
                db.push_to(0, &bytes, ea).unwrap();
                let pop = da.pop(0).unwrap();
                da.wait(pop, Some(Duration::from_secs(1))).unwrap();
                best = best.min(t0.elapsed().as_nanos() as u64);
            }
            best
        }
        let catnap = rtt(Backend::Catnap);
        let catnip = rtt(Backend::Catnip);
        assert!(
            catnip < catnap,
            "Catnip ({catnip} ns) must beat Catnap ({catnap} ns)"
        );
    }
}
