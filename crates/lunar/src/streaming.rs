//! Lunar Streaming: real-time transfer of large frames over INSANE
//! (§7.2, Fig. 10).
//!
//! The server pulls frames from a [`FrameSource`] (the paper's
//! `get_frame`/`wait_next` interface), fragments each frame at the
//! *application* level — INSANE deliberately refuses in-stack IP
//! fragmentation to stay zero-copy (§8) — and emits the fragments with
//! the middleware's fragment metadata.  The client reassembles and
//! reports per-frame latency (fragmentation → reassembly), the metric of
//! Fig. 11b; frame throughput gives the FPS of Fig. 11a.

use insane_core::stats::LatencyBreakdown;
use insane_core::{
    ChannelId, ConsumeMode, InsaneError, QosPolicy, Runtime, Session, Sink, Source, Stream,
};
use insane_netstack::fragment::{plan, MessageKey, Reassembler};

use crate::LunarError;

/// Supplies frames to a streaming server — the paper's server-side
/// interface: `get_frame` produces the next frame, `wait_next` blocks
/// until one is due (pacing).
pub trait FrameSource {
    /// Returns the next frame, or `None` when the stream ends.
    fn get_frame(&mut self) -> Option<Vec<u8>>;

    /// Waits until the next frame should be sent (default: no pacing).
    fn wait_next(&mut self) {}
}

/// A streaming server bound to one channel (`lnr_s_open_server`).
#[derive(Debug)]
pub struct LunarStreamServer {
    _session: Session,
    _stream: Stream,
    source: Source,
    next_frame_id: u64,
    max_fragment: usize,
}

impl LunarStreamServer {
    /// Largest frame the framework will fragment (u16 fragment indices).
    pub const MAX_FRAME: usize = 256 * 1024 * 1024;

    /// Opens a server on `channel` with the given QoS.
    ///
    /// # Errors
    ///
    /// Propagates middleware failures.
    pub fn open(runtime: &Runtime, qos: QosPolicy, channel: ChannelId) -> Result<Self, LunarError> {
        let session = Session::connect(runtime)?;
        let stream = session.create_stream(qos)?;
        let source = stream.create_source(channel)?;
        let max_fragment = source.max_payload();
        Ok(Self {
            _session: session,
            _stream: stream,
            source,
            next_frame_id: 0,
            max_fragment,
        })
    }

    /// Fragment size used on this stream's datapath.
    pub fn max_fragment(&self) -> usize {
        self.max_fragment
    }

    /// Fragments and emits one frame; returns its frame id.
    ///
    /// # Errors
    ///
    /// * [`LunarError::FrameTooLarge`] beyond fragmentation limits.
    /// * Propagated emit failures (back-pressure is retried internally a
    ///   bounded number of times).
    pub fn send_frame(&mut self, frame: &[u8]) -> Result<u64, LunarError> {
        self.send_frame_with(frame, || {})
    }

    /// As [`LunarStreamServer::send_frame`], invoking `progress` after
    /// every emitted fragment and while waiting out back-pressure.
    ///
    /// Single-threaded drivers (tests, the benchmark harness on a
    /// one-core host) use the hook to run the runtimes' polling work and
    /// drain the consumer while a large frame is still being emitted —
    /// the inline equivalent of the concurrency a real deployment gets
    /// from its polling threads.
    ///
    /// # Errors
    ///
    /// As [`LunarStreamServer::send_frame`].
    pub fn send_frame_with(
        &mut self,
        frame: &[u8],
        mut progress: impl FnMut(),
    ) -> Result<u64, LunarError> {
        if frame.len() > Self::MAX_FRAME {
            return Err(LunarError::FrameTooLarge {
                len: frame.len(),
                max: Self::MAX_FRAME,
            });
        }
        let frame_id = self.next_frame_id;
        self.next_frame_id += 1;
        let fragments =
            plan(frame.len(), self.max_fragment).map_err(|_| LunarError::FrameTooLarge {
                len: frame.len(),
                max: self.max_fragment * u16::MAX as usize,
            })?;
        for frag in fragments {
            let chunk = &frame[frag.offset..frag.offset + frag.len];
            // Bounded retry under back-pressure: the producer outrunning
            // the runtime is normal when frames are large.
            let mut attempts = 0;
            loop {
                let mut buf = match self.source.get_buffer(chunk.len()) {
                    Ok(b) => b,
                    Err(InsaneError::Memory(insane_core::MemoryError::PoolExhausted {
                        ..
                    })) if attempts < 1_000_000 => {
                        // Pool back-pressure: every slot is in flight.
                        attempts += 1;
                        progress();
                        std::hint::spin_loop();
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                };
                buf.copy_from_slice(chunk);
                match self.source.emit_fragment(
                    buf,
                    frag.index,
                    frag.count,
                    frame.len() as u32,
                    frame_id,
                ) {
                    Ok(_) => {
                        progress();
                        break;
                    }
                    Err(InsaneError::Backpressure) if attempts < 1_000_000 => {
                        attempts += 1;
                        progress();
                        std::hint::spin_loop();
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
        Ok(frame_id)
    }

    /// Runs the paper's server loop (`lnr_s_loop`): request a frame,
    /// fragment and send it, wait for the next — until the source ends.
    /// Returns the number of frames streamed.
    ///
    /// # Errors
    ///
    /// Propagates send failures.
    pub fn stream_loop(&mut self, source: &mut dyn FrameSource) -> Result<u64, LunarError> {
        let mut frames = 0;
        while let Some(frame) = source.get_frame() {
            self.send_frame(&frame)?;
            frames += 1;
            source.wait_next();
        }
        Ok(frames)
    }
}

/// A frame delivered by [`LunarStreamClient`].
#[derive(Debug)]
pub struct ReceivedFrame {
    /// Reassembled frame bytes.
    pub data: Vec<u8>,
    /// Server-assigned frame id.
    pub frame_id: u64,
    /// End-to-end latency: first fragment's emit to reassembly
    /// completion (Fig. 11b's metric), nanoseconds.
    pub latency_ns: u64,
    /// Latency breakdown of the whole frame: the completing fragment's
    /// pipeline components, with the wait for sibling fragments
    /// attributed to `reassembly_ns`, so `breakdown.total_ns()` equals
    /// [`ReceivedFrame::latency_ns`].  (The reassembly wait used to be
    /// dropped on the floor — per-fragment breakdowns only covered
    /// their own trip, so per-frame totals under-reported the measured
    /// frame latency.)
    pub breakdown: LatencyBreakdown,
}

/// A streaming client bound to one channel (`lnr_s_connect`).
#[derive(Debug)]
pub struct LunarStreamClient {
    _session: Session,
    _stream: Stream,
    sink: Sink,
    reassembler: Reassembler,
    /// Earliest emit timestamp seen per in-flight frame.
    first_emit: std::collections::HashMap<u64, u64>,
}

impl LunarStreamClient {
    /// Connects a client to `channel` with the given QoS.
    ///
    /// # Errors
    ///
    /// Propagates middleware failures.
    pub fn connect(
        runtime: &Runtime,
        qos: QosPolicy,
        channel: ChannelId,
    ) -> Result<Self, LunarError> {
        let session = Session::connect(runtime)?;
        let stream = session.create_stream(qos)?;
        let sink = stream.create_sink(channel)?;
        Ok(Self {
            _session: session,
            _stream: stream,
            sink,
            reassembler: Reassembler::new(16),
            first_emit: std::collections::HashMap::new(),
        })
    }

    /// Processes every queued fragment without blocking; returns the
    /// frames completed by them.
    ///
    /// # Errors
    ///
    /// [`LunarError::BadFragment`] on inconsistent fragment metadata.
    pub fn poll_frames(&mut self) -> Result<Vec<ReceivedFrame>, LunarError> {
        let mut done = Vec::new();
        loop {
            let msg = match self.sink.consume(ConsumeMode::NonBlocking) {
                Ok(m) => m,
                Err(InsaneError::WouldBlock) => break,
                Err(e) => return Err(e.into()),
            };
            let meta = *msg.meta();
            let (index, count, total_len) = meta.frag;
            let key = MessageKey {
                src_runtime: meta.src_runtime,
                channel: meta.channel,
                seq: meta.seq,
            };
            let frag_breakdown = msg.breakdown();
            let entry = self.first_emit.entry(meta.seq).or_insert(meta.emit_ns);
            *entry = (*entry).min(meta.emit_ns);
            // Every fragment but the last carries the same length, so its
            // index and length locate it; the last sits at the tail.
            let offset = if index + 1 == count {
                total_len as usize - msg.len()
            } else {
                index as usize * msg.len()
            };
            let complete = self
                .reassembler
                .offer(key, index, count, total_len as usize, offset, &msg)
                .map_err(|_| LunarError::BadFragment)?;
            if let Some(data) = complete {
                let emit = self.first_emit.remove(&meta.seq).unwrap_or(meta.emit_ns);
                let completed_ns = insane_core::timestamp_ns();
                // The completing fragment's pipeline components, with
                // the wait for sibling fragments (first emit → this
                // fragment's trip) attributed as the reassembly
                // residue, so the breakdown total equals the measured
                // frame latency.
                let mut breakdown = frag_breakdown;
                breakdown.attribute_reassembly(emit, completed_ns);
                done.push(ReceivedFrame {
                    data,
                    frame_id: meta.seq,
                    latency_ns: completed_ns.saturating_sub(emit),
                    breakdown,
                });
            }
        }
        Ok(done)
    }

    /// Fragments dropped because the sink queue overflowed (frames these
    /// belonged to will never complete — the eviction path bounds the
    /// reassembler).
    pub fn dropped_fragments(&self) -> u64 {
        self.sink.stats().dropped
    }

    /// Incomplete frames currently buffered.
    pub fn frames_pending(&self) -> usize {
        self.reassembler.pending()
    }
}
