//! LUNAR: the two INSANE-based edge applications of the paper's §7.
//!
//! * [`mom`] — **LunarMoM**, a decentralized Message-oriented Middleware:
//!   publish/subscribe over topics, mapped straight onto INSANE channels
//!   (topic name → hashed channel id).  The paper builds it in 135 lines
//!   of C to demonstrate how thin the layer over the INSANE API is.
//! * [`streaming`] — **Lunar Streaming**, a client-server framework for
//!   real-time transfer of large frames (raw camera images): the server
//!   fragments each frame at the application level and the client
//!   reassembles, with FPS and per-frame latency accounting.
//!
//! Both applications are *portable by construction*: the same code runs
//! over kernel UDP, XDP, DPDK or RDMA depending only on the
//! [`insane_core::QosPolicy`] handed to them — the paper's "fast" and
//! "slow" variants are one constructor argument apart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod mom;
pub mod streaming;

pub use mom::{LunarMom, Publisher, Subscriber};
pub use streaming::{FrameSource, LunarStreamClient, LunarStreamServer, ReceivedFrame};

use core::fmt;

/// Errors surfaced by the LUNAR applications.
#[derive(Debug)]
pub enum LunarError {
    /// Underlying middleware failure.
    Insane(insane_core::InsaneError),
    /// A frame exceeded the framework's fragmentation limits.
    FrameTooLarge {
        /// Frame size in bytes.
        len: usize,
        /// Largest supported frame.
        max: usize,
    },
    /// Non-blocking receive found nothing.
    WouldBlock,
    /// A malformed or inconsistent fragment arrived.
    BadFragment,
}

impl fmt::Display for LunarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LunarError::Insane(e) => write!(f, "middleware error: {e}"),
            LunarError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the maximum of {max}")
            }
            LunarError::WouldBlock => write!(f, "no data available"),
            LunarError::BadFragment => write!(f, "inconsistent fragment"),
        }
    }
}

impl std::error::Error for LunarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LunarError::Insane(e) => Some(e),
            _ => None,
        }
    }
}

impl From<insane_core::InsaneError> for LunarError {
    fn from(e: insane_core::InsaneError) -> Self {
        LunarError::Insane(e)
    }
}

/// Hashes a topic name to an INSANE channel id (FNV-1a, as a stand-in for
/// the paper's "topic name is hashed to obtain the topic id").
pub fn topic_to_channel(topic: &str) -> insane_core::ChannelId {
    let mut hash: u32 = 0x811C_9DC5;
    for b in topic.as_bytes() {
        hash ^= u32::from(*b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    insane_core::ChannelId(hash)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_hash_is_stable_and_collision_free_for_distinct_names() {
        assert_eq!(
            topic_to_channel("sensors/temp"),
            topic_to_channel("sensors/temp")
        );
        assert_ne!(
            topic_to_channel("sensors/temp"),
            topic_to_channel("sensors/rpm")
        );
        assert_ne!(topic_to_channel("a"), topic_to_channel("b"));
    }
}
