//! LunarMoM: a decentralized publish/subscribe MoM over INSANE (§7.1).
//!
//! Topics are "abstract named queues"; LunarMoM hashes each topic name to
//! an INSANE channel id, so publishing is `get_buffer` + fill + `emit`
//! and subscribing is a sink — the middleware's subscription control
//! plane takes care of forwarding only to interested runtimes.

use std::collections::HashMap;

use insane_core::{
    ConsumeMode, IncomingMessage, InsaneError, QosPolicy, Runtime, Session, Sink, Source, Stream,
};
use parking_lot::Mutex;

use crate::{topic_to_channel, LunarError};

/// A LunarMoM endpoint: one session with the local INSANE runtime, one
/// stream carrying all of this process's topics at a common QoS.
#[derive(Debug)]
pub struct LunarMom {
    session: Session,
    stream: Stream,
    /// Cached sources, one per published topic (the paper opens "an
    /// INSANE source if this is the first publication for that topic").
    sources: Mutex<HashMap<u32, Source>>,
}

impl LunarMom {
    /// Connects to the local runtime with the given QoS policy — the
    /// paper's *fast* MoM is `QosPolicy::fast()`, the *slow* one
    /// `QosPolicy::slow()`.
    ///
    /// # Errors
    ///
    /// Propagates session/stream creation failures.
    pub fn connect(runtime: &Runtime, qos: QosPolicy) -> Result<Self, LunarError> {
        let session = Session::connect(runtime)?;
        let stream = session.create_stream(qos)?;
        Ok(Self {
            session,
            stream,
            sources: Mutex::new(HashMap::new()),
        })
    }

    /// The technology this MoM instance was mapped to.
    pub fn technology(&self) -> insane_fabric::Technology {
        self.stream.technology()
    }

    /// Publishes `payload` on `topic` (`lunar_publish` with a pre-built
    /// buffer).
    ///
    /// # Errors
    ///
    /// Propagates emit failures (back-pressure, pool exhaustion).
    pub fn publish(&self, topic: &str, payload: &[u8]) -> Result<(), LunarError> {
        self.publish_with(topic, payload.len(), |buf| buf.copy_from_slice(payload))
    }

    /// Publishes by filling the zero-copy buffer in place: `fill` runs on
    /// the slot itself, exactly the paper's callback-to-fill pattern.
    ///
    /// # Errors
    ///
    /// Propagates emit failures.
    pub fn publish_with(
        &self,
        topic: &str,
        len: usize,
        fill: impl FnOnce(&mut [u8]),
    ) -> Result<(), LunarError> {
        let channel = topic_to_channel(topic);
        let mut sources = self.sources.lock();
        let source = match sources.get(&channel.0) {
            Some(s) => s,
            None => {
                let created = self.stream.create_source(channel)?;
                sources.entry(channel.0).or_insert(created)
            }
        };
        let mut buf = source.get_buffer(len)?;
        fill(&mut buf);
        source.emit(buf)?;
        Ok(())
    }

    /// Creates a polling subscriber for `topic` (`lunar_subscribe`).
    ///
    /// # Errors
    ///
    /// Propagates sink creation failures.
    pub fn subscriber(&self, topic: &str) -> Result<Subscriber, LunarError> {
        let sink = self.stream.create_sink(topic_to_channel(topic))?;
        Ok(Subscriber {
            topic: topic.to_owned(),
            sink,
        })
    }

    /// Registers a callback invoked for every message on `topic`.
    ///
    /// # Errors
    ///
    /// Propagates sink creation failures.
    pub fn subscribe<F>(&self, topic: &str, callback: F) -> Result<Subscriber, LunarError>
    where
        F: Fn(IncomingMessage) + Send + Sync + 'static,
    {
        let sink = self
            .stream
            .create_sink_with_callback(topic_to_channel(topic), callback)?;
        Ok(Subscriber {
            topic: topic.to_owned(),
            sink,
        })
    }

    /// Dedicated publisher handle for one topic (avoids the topic-map
    /// lookup per publish on hot paths).
    ///
    /// # Errors
    ///
    /// Propagates source creation failures.
    pub fn publisher(&self, topic: &str) -> Result<Publisher, LunarError> {
        let source = self.stream.create_source(topic_to_channel(topic))?;
        Ok(Publisher {
            topic: topic.to_owned(),
            source,
        })
    }

    /// Closes the MoM session.
    pub fn close(&self) {
        self.session.close();
    }
}

/// A per-topic publishing handle.
#[derive(Debug)]
pub struct Publisher {
    topic: String,
    source: Source,
}

impl Publisher {
    /// The topic this publisher produces on.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Publishes a payload.
    ///
    /// # Errors
    ///
    /// Propagates emit failures.
    pub fn publish(&self, payload: &[u8]) -> Result<(), LunarError> {
        let mut buf = self.source.get_buffer(payload.len())?;
        buf.copy_from_slice(payload);
        self.source.emit(buf)?;
        Ok(())
    }

    /// Publishes by filling the buffer in place (zero-copy).
    ///
    /// # Errors
    ///
    /// Propagates emit failures.
    pub fn publish_with(&self, len: usize, fill: impl FnOnce(&mut [u8])) -> Result<(), LunarError> {
        let mut buf = self.source.get_buffer(len)?;
        fill(&mut buf);
        self.source.emit(buf)?;
        Ok(())
    }

    /// Messages published so far.
    pub fn published(&self) -> u64 {
        self.source.emitted()
    }
}

/// A per-topic subscription handle.
#[derive(Debug)]
pub struct Subscriber {
    topic: String,
    sink: Sink,
}

impl Subscriber {
    /// The subscribed topic.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`LunarError::WouldBlock`] when no message is queued.
    pub fn try_next(&self) -> Result<IncomingMessage, LunarError> {
        match self.sink.consume(ConsumeMode::NonBlocking) {
            Ok(msg) => Ok(msg),
            Err(InsaneError::WouldBlock) => Err(LunarError::WouldBlock),
            Err(e) => Err(e.into()),
        }
    }

    /// Blocking receive (requires a started runtime).
    ///
    /// # Errors
    ///
    /// Propagates consume failures.
    pub fn next_blocking(&self) -> Result<IncomingMessage, LunarError> {
        Ok(self.sink.consume(ConsumeMode::Blocking)?)
    }

    /// Whether a message is ready.
    pub fn data_available(&self) -> bool {
        self.sink.data_available()
    }

    /// Messages delivered and dropped for this subscription.
    pub fn stats(&self) -> insane_core::SinkStats {
        self.sink.stats()
    }
}
