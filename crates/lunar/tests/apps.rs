//! End-to-end tests of LunarMoM and Lunar Streaming over two simulated
//! edge nodes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use insane_core::runtime::poll_until_quiescent;
use insane_core::{ChannelId, QosPolicy, Runtime, RuntimeConfig, ThreadingMode};
use insane_fabric::{Fabric, Technology, TestbedProfile};
use lunar::streaming::{FrameSource, LunarStreamClient, LunarStreamServer};
use lunar::{LunarError, LunarMom};

fn two_nodes(techs: &[Technology]) -> (Fabric, Runtime, Runtime) {
    let fabric = Fabric::new(TestbedProfile::local());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let rt_a = Runtime::start(
        RuntimeConfig::new(1)
            .with_technologies(techs)
            .with_threading(ThreadingMode::Manual),
        &fabric,
        a,
    )
    .unwrap();
    let rt_b = Runtime::start(
        RuntimeConfig::new(2)
            .with_technologies(techs)
            .with_threading(ThreadingMode::Manual),
        &fabric,
        b,
    )
    .unwrap();
    rt_a.add_peer(b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    (fabric, rt_a, rt_b)
}

#[test]
fn mom_publish_subscribe_across_nodes() {
    let (_f, rt_a, rt_b) = two_nodes(&[Technology::KernelUdp, Technology::Dpdk]);
    let mom_pub = LunarMom::connect(&rt_a, QosPolicy::fast()).unwrap();
    let mom_sub = LunarMom::connect(&rt_b, QosPolicy::fast()).unwrap();
    assert_eq!(mom_pub.technology(), Technology::Dpdk);

    let sub = mom_sub.subscriber("factory/line1/temp").unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    mom_pub.publish("factory/line1/temp", b"23.4C").unwrap();
    let msg = loop {
        rt_a.poll_once();
        rt_b.poll_once();
        match sub.try_next() {
            Ok(m) => break m,
            Err(LunarError::WouldBlock) => {}
            Err(e) => panic!("{e}"),
        }
    };
    assert_eq!(&*msg, b"23.4C");
}

#[test]
fn mom_topics_do_not_cross_talk() {
    let (_f, rt_a, rt_b) = two_nodes(&[Technology::KernelUdp]);
    let mom_pub = LunarMom::connect(&rt_a, QosPolicy::slow()).unwrap();
    let mom_sub = LunarMom::connect(&rt_b, QosPolicy::slow()).unwrap();
    let sub_temp = mom_sub.subscriber("temp").unwrap();
    let sub_rpm = mom_sub.subscriber("rpm").unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    mom_pub.publish("temp", b"t").unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 20_000);
    assert!(sub_temp.data_available());
    assert!(!sub_rpm.data_available());
    assert_eq!(&*sub_temp.try_next().unwrap(), b"t");
}

#[test]
fn mom_callback_subscription_and_local_delivery() {
    // Publisher and subscriber co-located: pure shared-memory path.
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(
        RuntimeConfig::new(1).with_threading(ThreadingMode::Manual),
        &fabric,
        host,
    )
    .unwrap();
    let mom = LunarMom::connect(&rt, QosPolicy::slow()).unwrap();
    let hits = Arc::new(AtomicUsize::new(0));
    let hits_cb = Arc::clone(&hits);
    let _sub = mom
        .subscribe("local/topic", move |msg| {
            assert_eq!(&*msg, b"local");
            hits_cb.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    for _ in 0..3 {
        mom.publish("local/topic", b"local").unwrap();
    }
    poll_until_quiescent(&[&rt], 10_000);
    assert_eq!(hits.load(Ordering::SeqCst), 3);
    assert_eq!(rt.stats().local_deliveries, 3);
    assert_eq!(rt.stats().tx_messages, 0);
}

#[test]
fn mom_publisher_handle_and_fill_callback() {
    let (_f, rt_a, rt_b) = two_nodes(&[Technology::KernelUdp]);
    let mom_pub = LunarMom::connect(&rt_a, QosPolicy::slow()).unwrap();
    let mom_sub = LunarMom::connect(&rt_b, QosPolicy::slow()).unwrap();
    let sub = mom_sub.subscriber("images").unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    let publisher = mom_pub.publisher("images").unwrap();
    publisher
        .publish_with(4, |buf| buf.copy_from_slice(b"fill"))
        .unwrap();
    assert_eq!(publisher.published(), 1);
    let msg = loop {
        rt_a.poll_once();
        rt_b.poll_once();
        match sub.try_next() {
            Ok(m) => break m,
            Err(LunarError::WouldBlock) => {}
            Err(e) => panic!("{e}"),
        }
    };
    assert_eq!(&*msg, b"fill");
}

struct CountingSource {
    frames: Vec<Vec<u8>>,
    next: usize,
}

impl FrameSource for CountingSource {
    fn get_frame(&mut self) -> Option<Vec<u8>> {
        let frame = self.frames.get(self.next).cloned();
        self.next += 1;
        frame
    }
}

fn stream_frames(
    techs: &[Technology],
    qos: QosPolicy,
    frames: Vec<Vec<u8>>,
) -> Vec<lunar::ReceivedFrame> {
    let (_f, rt_a, rt_b) = two_nodes(techs);
    let mut client = LunarStreamClient::connect(&rt_b, qos, ChannelId(500)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    let mut server = LunarStreamServer::open(&rt_a, qos, ChannelId(500)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    let expected = frames.len();
    let mut source = CountingSource { frames, next: 0 };
    let mut received = Vec::new();
    // Drive server and client interleaved (single-core friendly): send
    // one frame, then drain.
    while let Some(frame) = source.get_frame() {
        server.send_frame(&frame).unwrap();
        for _ in 0..400_000 {
            rt_a.poll_once();
            rt_b.poll_once();
            received.extend(client.poll_frames().unwrap());
            if received.len() > expected - source.next.min(expected) {
                break;
            }
        }
    }
    for _ in 0..200_000 {
        if received.len() >= expected {
            break;
        }
        rt_a.poll_once();
        rt_b.poll_once();
        received.extend(client.poll_frames().unwrap());
    }
    received
}

#[test]
fn streaming_small_frame_single_fragment() {
    let frames = vec![vec![7u8; 900]];
    let got = stream_frames(
        &[Technology::KernelUdp, Technology::Dpdk],
        QosPolicy::fast(),
        frames,
    );
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].data, vec![7u8; 900]);
    assert!(got[0].latency_ns > 0);
}

#[test]
fn streaming_large_frame_fragments_and_reassembles() {
    // ~1 MB frame: dozens of jumbo fragments over DPDK.
    let frame: Vec<u8> = (0..1_000_000u32)
        .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
        .collect();
    let got = stream_frames(
        &[Technology::KernelUdp, Technology::Dpdk],
        QosPolicy::fast(),
        vec![frame.clone()],
    );
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].data.len(), frame.len());
    assert_eq!(got[0].data, frame, "byte-exact reassembly");
}

#[test]
fn streaming_breakdown_attributes_reassembly_to_the_parent_frame() {
    // Regression: per-fragment breakdowns only covered their own trip,
    // so for fragmented frames the wait for sibling fragments was in no
    // component and the per-frame total under-reported the measured
    // frame latency.  Now the frame breakdown carries the completing
    // fragment's pipeline components plus a reassembly residue, and its
    // total equals the whole first-emit → reassembly-complete window.
    let frame: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    let got = stream_frames(
        &[Technology::KernelUdp, Technology::Dpdk],
        QosPolicy::fast(),
        vec![frame.clone()],
    );
    assert_eq!(got.len(), 1);
    let b = &got[0].breakdown;
    assert!(
        b.send_ns + b.network_ns + b.receive_ns + b.processing_ns > 0,
        "pipeline components must be carried over from the fragments: {b:?}"
    );
    assert!(
        b.reassembly_ns > 0,
        "a multi-fragment frame waits on its slower siblings: {b:?}"
    );
    assert_eq!(
        b.total_ns(),
        got[0].latency_ns,
        "the reassembly residue must close the breakdown total to the \
         measured frame latency: {b:?}"
    );
    assert!(got[0].latency_ns > 0);
}

#[test]
fn streaming_single_fragment_frame_breakdown_still_closes() {
    let got = stream_frames(
        &[Technology::KernelUdp, Technology::Dpdk],
        QosPolicy::fast(),
        vec![vec![3u8; 500]],
    );
    assert_eq!(got.len(), 1);
    let b = &got[0].breakdown;
    assert_eq!(b.total_ns(), got[0].latency_ns);
    assert!(b.send_ns + b.network_ns + b.receive_ns + b.processing_ns > 0);
}

#[test]
fn streaming_multiple_frames_in_order_ids() {
    let frames: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 40_000]).collect();
    let got = stream_frames(
        &[Technology::KernelUdp, Technology::Dpdk],
        QosPolicy::fast(),
        frames,
    );
    assert_eq!(got.len(), 5);
    for frame in &got {
        assert_eq!(frame.data, vec![frame.frame_id as u8; 40_000]);
    }
}

#[test]
fn streaming_works_on_the_slow_path_too() {
    let frame = vec![42u8; 30_000];
    let got = stream_frames(
        &[Technology::KernelUdp],
        QosPolicy::slow(),
        vec![frame.clone()],
    );
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].data, frame);
}

#[test]
fn stream_loop_counts_frames() {
    let (_f, rt_a, rt_b) = two_nodes(&[Technology::KernelUdp]);
    let mut client = LunarStreamClient::connect(&rt_b, QosPolicy::slow(), ChannelId(9)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    let mut server = LunarStreamServer::open(&rt_a, QosPolicy::slow(), ChannelId(9)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    let mut source = CountingSource {
        frames: vec![vec![1u8; 100], vec![2u8; 100]],
        next: 0,
    };
    assert_eq!(server.stream_loop(&mut source).unwrap(), 2);
    let mut got = Vec::new();
    for _ in 0..200_000 {
        rt_a.poll_once();
        rt_b.poll_once();
        got.extend(client.poll_frames().unwrap());
        if got.len() == 2 {
            break;
        }
    }
    assert_eq!(got.len(), 2);
    assert_eq!(client.frames_pending(), 0);
}
