//! Log-bucketed, HDR-style latency histograms.
//!
//! Values (nanoseconds) are binned into buckets whose width grows
//! geometrically: each power-of-two magnitude is split into
//! `2^SUB_BITS` linear sub-buckets, bounding the relative quantile
//! error at `2^-SUB_BITS` (6.25%) while covering the full `u64` range
//! with under a thousand buckets. Recording is a single relaxed
//! `fetch_add` on an atomic bucket counter — no locks, no allocation —
//! so polling threads can record from the datapath hot loop.
//!
//! [`ShardedHistogram`] spreads recorders across a small set of
//! [`LogHistogram`] shards (one picked per thread) so concurrent
//! polling threads do not contend on the same cache lines; snapshots
//! merge the shards back into one distribution.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Linear sub-buckets per power-of-two magnitude, as a bit count.
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two magnitude.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: one linear group
/// for values below [`SUB_BUCKETS`], then one group of [`SUB_BUCKETS`]
/// sub-buckets per magnitude `SUB_BITS..=63`.
pub const BUCKETS: usize = (65 - SUB_BITS as usize) * SUB_BUCKETS;

/// Number of shards in a [`ShardedHistogram`].
pub const SHARDS: usize = 4;

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let group = msb - SUB_BITS as u64 + 1;
    let sub = (v >> (msb - SUB_BITS as u64)) & (SUB_BUCKETS as u64 - 1);
    let idx = group as usize * SUB_BUCKETS + sub as usize;
    if idx < BUCKETS {
        idx
    } else {
        BUCKETS - 1
    }
}

/// Inclusive lower bound and exclusive upper bound of a bucket.
///
/// Bounds are returned as `u128` because the top bucket's upper bound
/// is `2^64`, one past `u64::MAX`.
fn bucket_bounds(idx: usize) -> (u128, u128) {
    if idx < SUB_BUCKETS {
        return (idx as u128, idx as u128 + 1);
    }
    let group = (idx / SUB_BUCKETS) as u32;
    let sub = (idx % SUB_BUCKETS) as u128;
    let shift = group - 1;
    let low = (SUB_BUCKETS as u128 + sub) << shift;
    (low, low + (1u128 << shift))
}

/// Midpoint of a bucket, clamped to `u64`; used as the reported value
/// for quantiles falling inside the bucket.
fn bucket_mid(idx: usize) -> u64 {
    let (low, high) = bucket_bounds(idx);
    let mid = low + (high - low - 1) / 2;
    if mid > u64::MAX as u128 {
        u64::MAX
    } else {
        mid as u64
    }
}

/// A single lock-free histogram: fixed atomic bucket array plus exact
/// count / sum / max side-channels.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram (allocates its bucket array once).
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, AtomicU64::default);
        Self {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free and allocation-free.
    pub fn record(&self, v: u64) {
        if let Some(b) = self.buckets.get(bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copies the current state into a plain-data snapshot.
    ///
    /// Concurrent recorders may land between the bucket reads and the
    /// side-channel reads; the snapshot reconciles by trusting the
    /// bucket sum for quantile ranks.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Round-robin thread-to-shard assignment, fixed per thread on first
/// use so a polling thread always hits the same shard.
fn shard_of_thread() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A histogram split into per-thread shards to avoid cross-core cache
/// contention when several polling threads record concurrently.
#[derive(Debug)]
pub struct ShardedHistogram {
    shards: [LogHistogram; SHARDS],
}

impl Default for ShardedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedHistogram {
    /// Creates an empty sharded histogram.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| LogHistogram::new()),
        }
    }

    /// Records one value into the calling thread's shard.
    pub fn record(&self, v: u64) {
        if let Some(shard) = self.shards.get(shard_of_thread()) {
            shard.record(v);
        }
    }

    /// Per-shard snapshots (exposed for shard-merge testing).
    pub fn shard_snapshots(&self) -> Vec<HistogramSnapshot> {
        self.shards.iter().map(LogHistogram::snapshot).collect()
    }

    /// Snapshot of the merged distribution across all shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for shard in &self.shards {
            merged.merge(&shard.snapshot());
        }
        merged
    }
}

/// Plain-data copy of a histogram; supports merging and quantile
/// extraction without touching the live atomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (length [`BUCKETS`]).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values (for the exact mean).
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (merge identity).
    pub fn empty() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Folds another snapshot into this one.
    pub fn merge(&mut self, other: &Self) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        // `sum` wraps on overflow, matching the atomic `fetch_add` on
        // the live histogram (2^64 ns ≈ 584 years — unreachable for
        // real latency sums).
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` (`0.0..=1.0`): the midpoint of the bucket
    /// holding the rank-`ceil(q * count)` observation. Returns 0 for an
    /// empty snapshot; the result is within `2^-SUB_BITS` relative
    /// error of the true quantile (exact for values below
    /// [`SUB_BUCKETS`] and saturating at the top bucket).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let mut rank = (q * self.count as f64).ceil() as u64;
        if rank == 0 {
            rank = 1;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(idx);
            }
        }
        self.max
    }

    /// Exact arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Condenses the snapshot into the fixed quantile set reported by
    /// snapshots and the BENCH exporter.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
            mean_ns: self.mean(),
            max_ns: self.max,
        }
    }
}

/// Fixed quantile summary of one histogram (what snapshots ship).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Total observations behind the quantiles.
    pub count: u64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Exact arithmetic mean.
    pub mean_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..SUB_BUCKETS {
            assert_eq!(snap.counts[v], 1, "bucket {v}");
        }
        // Quantile 0 maps to rank 1 → the smallest value.
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(1.0), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn bucket_index_is_monotonic_and_contiguous() {
        let mut last = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for probe in [v, v + (v >> 1), v.saturating_mul(2).saturating_sub(1)] {
                let idx = bucket_index(probe);
                assert!(idx >= last, "index went backwards at {probe}");
                assert!(idx < BUCKETS);
                let (low, high) = bucket_bounds(idx);
                assert!(
                    (low..high).contains(&(probe as u128)),
                    "{probe} outside bucket [{low},{high})"
                );
                last = idx;
            }
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let h = LogHistogram::new();
        // A known distribution: 1..=10_000.
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let approx = snap.quantile(q);
            let err = approx.abs_diff(exact) as f64 / exact as f64;
            assert!(
                err <= 1.0 / SUB_BUCKETS as f64,
                "q={q}: {approx} vs {exact}"
            );
        }
        assert_eq!(snap.mean(), 5_000); // mean of 1..=10_000 truncated
        assert_eq!(snap.max, 10_000);
    }

    #[test]
    fn extreme_values_saturate_in_top_bucket() {
        let h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, u64::MAX);
        // Both land in the final bucket; the quantile stays in range.
        assert_eq!(snap.counts[BUCKETS - 1], 2);
        assert!(snap.quantile(0.5) >= snap.quantile(0.0));
        let (low, high) = bucket_bounds(BUCKETS - 1);
        assert!(low <= u64::MAX as u128 && high > u64::MAX as u128);
    }

    #[test]
    fn sharded_histogram_merges_all_threads() {
        let h = std::sync::Arc::new(ShardedHistogram::new());
        let mut joins = Vec::new();
        for t in 0..8u64 {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    h.record(t * 1_000 + i);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8_000);
        assert_eq!(snap.max, 7_999);
    }
}
