//! Minimal dependency-free JSON document model.
//!
//! The workspace builds fully offline, so telemetry ships its own
//! small JSON writer/parser instead of pulling in serde: snapshots and
//! BENCH exports are written through [`Value::to_string`], and
//! `insanectl` parses endpoint responses and validates BENCH files
//! through [`Value::parse`]. The subset is complete for round-tripping
//! the documents this workspace produces (objects, arrays, strings,
//! non-negative integers, floats, bools, null).

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact (telemetry counters are u64).
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<'a>(pairs: impl IntoIterator<Item = (&'a str, Value)>) -> Self {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object (None for other node kinds).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is one (or an integral float).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(ParseError::at("trailing data", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                for nibble in [b >> 4, b & 0xf] {
                    out.push(char::from_digit(nibble, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let mut buf = [0u8; 20];
            out.push_str(fmt_u64(*n, &mut buf));
        }
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // `{}` prints integral floats without a decimal point;
                // keep them recognisable as floats.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

/// Formats a u64 into a stack buffer (avoids a String allocation per
/// integer while serialising large snapshots).
fn fmt_u64(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).unwrap_or("0")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self);
        f.write_str(&out)
    }
}

/// Error from [`Value::parse`], with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl ParseError {
    fn at(message: &str, offset: usize) -> Self {
        Self {
            message: message.to_string(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::at("unexpected character", self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(v)
        } else {
            Err(ParseError::at("invalid literal", self.pos))
        }
    }

    // insane-lint: cold-path -- BENCH-import tooling, never on a datapath
    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(ParseError::at("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(ParseError::at("expected a value", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(ParseError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => return Err(ParseError::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(ParseError::at("unterminated string", self.pos)),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(ParseError::at("invalid escape", self.pos)),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode a multi-byte UTF-8 sequence from the
                    // original input (it was valid UTF-8 as a &str).
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    match self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                    {
                        Some(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        None => return Err(ParseError::at("invalid utf-8", start)),
                    }
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: consume the mandatory low-surrogate pair.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(ParseError::at("lone surrogate", self.pos));
            }
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(ParseError::at("invalid surrogate pair", self.pos));
            }
            0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| ParseError::at("invalid code point", self.pos))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(ParseError::at("invalid hex digit", self.pos)),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|s| std::str::from_utf8(s).ok())
            .unwrap_or("");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Value::Float(v)),
            Err(_) => Err(ParseError::at("invalid number", start)),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        let doc = Value::object([
            ("schema", Value::from("insane-telemetry-v1")),
            ("count", Value::from(42u64)),
            ("ratio", Value::from(0.5f64)),
            ("big", Value::from(u64::MAX)),
            ("flag", Value::Bool(true)),
            ("none", Value::Null),
            (
                "items",
                Value::Array(vec![Value::from(1u64), Value::from("two")]),
            ),
        ]);
        let text = doc.to_string();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("big").and_then(Value::as_u64), Some(u64::MAX));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v =
            Value::parse(" { \"a\\n\\\"b\" : [ 1 , 2.5 , \"\\u0041\\uD83D\\uDE00\" ] } ").unwrap();
        let arr = v.get("a\n\"b").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("A😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::Str("a\u{1}b\tc".to_string());
        let text = v.to_string();
        assert_eq!(text, "\"a\\u0001b\\tc\"");
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = Value::Float(3.0).to_string();
        assert_eq!(text, "3.0");
    }

    #[test]
    fn non_ascii_round_trip() {
        let v = Value::Str("héllo wörld — ok".to_string());
        assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
    }
}
