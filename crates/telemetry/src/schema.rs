//! Schema validation for the BENCH export documents.
//!
//! `crates/bench` writes `BENCH_latency.json` / `BENCH_throughput.json`
//! and `insanectl check-bench` (plus the CI bench-smoke job) re-reads
//! them; both sides share these validators so the producer and the
//! consumer cannot drift apart.

use crate::json::Value;
use crate::{
    BENCH_HOTPATH_SCHEMA, BENCH_IPC_SCHEMA, BENCH_ISOLATION_SCHEMA, BENCH_LATENCY_SCHEMA,
    BENCH_NOISY_NEIGHBOR_SCHEMA, BENCH_THROUGHPUT_SCHEMA,
};

/// Why a BENCH document failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    what: String,
}

impl SchemaError {
    fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.what)
    }
}

impl std::error::Error for SchemaError {}

fn expect_schema(doc: &Value, want: &str) -> Result<(), SchemaError> {
    match doc.get("schema").and_then(Value::as_str) {
        Some(got) if got == want => Ok(()),
        Some(got) => Err(SchemaError::new(format!(
            "schema mismatch: expected {want:?}, found {got:?}"
        ))),
        None => Err(SchemaError::new("missing string key \"schema\"")),
    }
}

fn entries(doc: &Value) -> Result<&[Value], SchemaError> {
    doc.get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| SchemaError::new("missing array key \"entries\""))
}

fn u64_field(entry: &Value, key: &str, i: usize) -> Result<u64, SchemaError> {
    entry
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| SchemaError::new(format!("entry {i}: missing integer key {key:?}")))
}

fn str_field(entry: &Value, key: &str, i: usize) -> Result<(), SchemaError> {
    entry
        .get(key)
        .and_then(Value::as_str)
        .map(|_| ())
        .ok_or_else(|| SchemaError::new(format!("entry {i}: missing string key {key:?}")))
}

/// Validates a `BENCH_latency.json` document.
///
/// Requires the [`BENCH_LATENCY_SCHEMA`] marker and, per entry: string
/// `system`/`testbed`, integer `payload_bytes`/`samples`, and a
/// monotone p50 ≤ p90 ≤ p99 ≤ p99.9 ≤ max quantile ladder.
///
/// # Errors
///
/// Describes the first missing key, type mismatch, or quantile
/// inversion found.
pub fn validate_bench_latency(doc: &Value) -> Result<(), SchemaError> {
    expect_schema(doc, BENCH_LATENCY_SCHEMA)?;
    for (i, entry) in entries(doc)?.iter().enumerate() {
        str_field(entry, "system", i)?;
        str_field(entry, "testbed", i)?;
        u64_field(entry, "payload_bytes", i)?;
        let samples = u64_field(entry, "samples", i)?;
        if samples == 0 {
            return Err(SchemaError::new(format!("entry {i}: zero samples")));
        }
        let p50 = u64_field(entry, "p50_ns", i)?;
        let p90 = u64_field(entry, "p90_ns", i)?;
        let p99 = u64_field(entry, "p99_ns", i)?;
        let p999 = u64_field(entry, "p999_ns", i)?;
        let max = u64_field(entry, "max_ns", i)?;
        u64_field(entry, "min_ns", i)?;
        if entry.get("mean_ns").and_then(Value::as_f64).is_none() {
            return Err(SchemaError::new(format!(
                "entry {i}: missing numeric key \"mean_ns\""
            )));
        }
        if !(p50 <= p90 && p90 <= p99 && p99 <= p999 && p999 <= max) {
            return Err(SchemaError::new(format!(
                "entry {i}: quantile ladder not monotone \
                 (p50 {p50} / p90 {p90} / p99 {p99} / p99.9 {p999} / max {max})"
            )));
        }
    }
    Ok(())
}

/// Validates a `BENCH_throughput.json` document.
///
/// Requires the [`BENCH_THROUGHPUT_SCHEMA`] marker and, per entry:
/// string `system`/`testbed`, integer `payload_bytes`/`messages`, and a
/// finite positive `goodput_gbps`.
///
/// # Errors
///
/// Describes the first missing key, type mismatch, or non-positive
/// goodput found.
pub fn validate_bench_throughput(doc: &Value) -> Result<(), SchemaError> {
    expect_schema(doc, BENCH_THROUGHPUT_SCHEMA)?;
    for (i, entry) in entries(doc)?.iter().enumerate() {
        str_field(entry, "system", i)?;
        str_field(entry, "testbed", i)?;
        u64_field(entry, "payload_bytes", i)?;
        u64_field(entry, "messages", i)?;
        let gbps = entry
            .get("goodput_gbps")
            .and_then(Value::as_f64)
            .ok_or_else(|| {
                SchemaError::new(format!("entry {i}: missing numeric key \"goodput_gbps\""))
            })?;
        if !gbps.is_finite() || gbps <= 0.0 {
            return Err(SchemaError::new(format!(
                "entry {i}: goodput must be finite and positive, got {gbps}"
            )));
        }
    }
    Ok(())
}

/// Validates a `BENCH_noisy_neighbor.json` document.
///
/// Requires the [`BENCH_NOISY_NEIGHBOR_SCHEMA`] marker and, per entry:
/// string `system`/`testbed`, integer `payload_bytes`, positive
/// `samples`, positive victim p99s (`solo_p99_ns`, `contended_p99_ns`),
/// and the isolation gate in fixed-point thousandths:
/// `isolation_ratio_x1000 <= bound_x1000` (the ISSUE's 2x criterion,
/// re-checked by every consumer, not just the producing bench run).
/// The noisy tenant must have seen at least one typed admission or
/// quota rejection (`bulk_rejections >= 1` — it saturated its limits)
/// while the victim saw none (`victim_rejections == 0`).
///
/// # Errors
///
/// Describes the first missing key, type mismatch, violated isolation
/// bound, or rejection-count anomaly found.
pub fn validate_bench_noisy_neighbor(doc: &Value) -> Result<(), SchemaError> {
    expect_schema(doc, BENCH_NOISY_NEIGHBOR_SCHEMA)?;
    for (i, entry) in entries(doc)?.iter().enumerate() {
        str_field(entry, "system", i)?;
        str_field(entry, "testbed", i)?;
        u64_field(entry, "payload_bytes", i)?;
        let samples = u64_field(entry, "samples", i)?;
        if samples == 0 {
            return Err(SchemaError::new(format!("entry {i}: zero samples")));
        }
        let solo = u64_field(entry, "solo_p99_ns", i)?;
        let contended = u64_field(entry, "contended_p99_ns", i)?;
        if solo == 0 || contended == 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: p99 must be positive (solo {solo} / contended {contended})"
            )));
        }
        let ratio = u64_field(entry, "isolation_ratio_x1000", i)?;
        let bound = u64_field(entry, "bound_x1000", i)?;
        if bound == 0 {
            return Err(SchemaError::new(format!("entry {i}: zero isolation bound")));
        }
        if ratio > bound {
            return Err(SchemaError::new(format!(
                "entry {i}: isolation violated: contended/solo p99 ratio \
                 {ratio}/1000 exceeds the bound {bound}/1000"
            )));
        }
        let bulk = u64_field(entry, "bulk_rejections", i)?;
        if bulk == 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: the noisy tenant saturated its limits but saw \
                 no typed rejections"
            )));
        }
        let victim = u64_field(entry, "victim_rejections", i)?;
        if victim != 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: the well-behaved tenant was rejected {victim} \
                 times; isolation must not punish in-quota tenants"
            )));
        }
    }
    Ok(())
}

/// Validates a `BENCH_isolation.json` document (the mixed-criticality
/// timing-isolation experiment, DESIGN.md §14).
///
/// Requires the [`BENCH_ISOLATION_SCHEMA`] marker and, per entry:
/// string `system`/`testbed`, positive `samples`, the bulk load point
/// (`bulk_burst`, zero for the solo baseline), positive critical-flow
/// quantiles (`p50_ns`/`p99_ns`/`p999_ns`), and a positive per-message
/// latency budget (`budget_ns`).  Three gates are enforced:
///
/// * **budget**: `budget_violations == 0` at *every* load point — a
///   time-critical message that was delivered must have been delivered
///   inside its budget, bulk saturation or not;
/// * **tail isolation**: `ratio_x1000` (this load point's p99.9 over
///   the solo baseline's `solo_p999_ns`, fixed-point thousandths) must
///   not exceed `bound_x1000`;
/// * **coverage**: the document must contain a solo baseline
///   (`bulk_burst == 0`) and at least one gate deferral summed across
///   entries — a run in which the time-aware gates never held a frame
///   back did not exercise the machinery it claims to measure.
///
/// `lost`, `bulk_rejections`, `injected_drops`, and `reorders` are
/// required integers (the seeded fault record) but carry no bound:
/// losses under injected faults are expected and reported, not failed.
///
/// # Errors
///
/// Describes the first missing key, type mismatch, or violated gate
/// found.
pub fn validate_bench_isolation(doc: &Value) -> Result<(), SchemaError> {
    expect_schema(doc, BENCH_ISOLATION_SCHEMA)?;
    let mut has_solo = false;
    let mut deferrals_total = 0u64;
    let all = entries(doc)?;
    if all.is_empty() {
        return Err(SchemaError::new("no load points recorded"));
    }
    for (i, entry) in all.iter().enumerate() {
        str_field(entry, "system", i)?;
        str_field(entry, "testbed", i)?;
        let samples = u64_field(entry, "samples", i)?;
        if samples == 0 {
            return Err(SchemaError::new(format!("entry {i}: zero samples")));
        }
        let bulk_burst = u64_field(entry, "bulk_burst", i)?;
        has_solo |= bulk_burst == 0;
        for key in ["p50_ns", "p99_ns", "p999_ns", "solo_p999_ns", "budget_ns"] {
            if u64_field(entry, key, i)? == 0 {
                return Err(SchemaError::new(format!(
                    "entry {i}: {key} must be positive"
                )));
            }
        }
        let violations = u64_field(entry, "budget_violations", i)?;
        if violations != 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: {violations} critical message(s) missed their \
                 latency budget at bulk_burst {bulk_burst}"
            )));
        }
        let ratio = u64_field(entry, "ratio_x1000", i)?;
        let bound = u64_field(entry, "bound_x1000", i)?;
        if bound == 0 {
            return Err(SchemaError::new(format!("entry {i}: zero tail bound")));
        }
        if ratio > bound {
            return Err(SchemaError::new(format!(
                "entry {i}: tail isolation violated: critical p99.9 ratio \
                 {ratio}/1000 over solo exceeds the bound {bound}/1000 at \
                 bulk_burst {bulk_burst}"
            )));
        }
        deferrals_total += u64_field(entry, "gate_deferrals", i)?;
        u64_field(entry, "lost", i)?;
        u64_field(entry, "bulk_rejections", i)?;
        u64_field(entry, "injected_drops", i)?;
        u64_field(entry, "reorders", i)?;
    }
    if !has_solo {
        return Err(SchemaError::new(
            "no solo baseline (bulk_burst == 0) load point recorded",
        ));
    }
    if deferrals_total == 0 {
        return Err(SchemaError::new(
            "no gate deferrals recorded at any load point: the time-aware \
             gates never held a frame, so the run measured nothing",
        ));
    }
    Ok(())
}

/// Validates a `BENCH_hotpath.json` document.
///
/// Requires the [`BENCH_HOTPATH_SCHEMA`] marker and, per entry: string
/// `system`/`testbed`, positive `samples`, positive per-read timings
/// (`locked_read_ns_x1000`, `snapshot_read_ns_x1000`) and contended
/// p99s (`locked_p99_ns`, `snapshot_p99_ns`), plus three gates:
///
/// * **uncontended**: `uncontended_ratio_x1000` (snapshot/locked,
///   fixed-point thousandths) must not exceed
///   `uncontended_bound_x1000` — the snapshot read may not be
///   meaningfully slower than the lock it replaced when nobody
///   contends;
/// * **contended**: `contended_ratio_x1000` (snapshot p99 / locked p99)
///   must not exceed `contended_bound_x1000` — under a live writer the
///   snapshot reader's tail must not regress past the lock's tail;
/// * **reload-under-load**: `reloads >= 1` (at least one live
///   republication actually happened) while `dropped == 0` and
///   `reordered == 0` — a hot reload must never lose or reorder
///   traffic.
///
/// # Errors
///
/// Describes the first missing key, type mismatch, or violated gate
/// found.
pub fn validate_bench_hotpath(doc: &Value) -> Result<(), SchemaError> {
    expect_schema(doc, BENCH_HOTPATH_SCHEMA)?;
    for (i, entry) in entries(doc)?.iter().enumerate() {
        str_field(entry, "system", i)?;
        str_field(entry, "testbed", i)?;
        let samples = u64_field(entry, "samples", i)?;
        if samples == 0 {
            return Err(SchemaError::new(format!("entry {i}: zero samples")));
        }
        let locked = u64_field(entry, "locked_read_ns_x1000", i)?;
        let snapshot = u64_field(entry, "snapshot_read_ns_x1000", i)?;
        if locked == 0 || snapshot == 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: per-read timings must be positive \
                 (locked {locked} / snapshot {snapshot})"
            )));
        }
        let ratio = u64_field(entry, "uncontended_ratio_x1000", i)?;
        let bound = u64_field(entry, "uncontended_bound_x1000", i)?;
        if bound == 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: zero uncontended bound"
            )));
        }
        if ratio > bound {
            return Err(SchemaError::new(format!(
                "entry {i}: uncontended regression: snapshot/locked read ratio \
                 {ratio}/1000 exceeds the bound {bound}/1000"
            )));
        }
        let locked_p99 = u64_field(entry, "locked_p99_ns", i)?;
        let snapshot_p99 = u64_field(entry, "snapshot_p99_ns", i)?;
        if locked_p99 == 0 || snapshot_p99 == 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: contended p99 must be positive \
                 (locked {locked_p99} / snapshot {snapshot_p99})"
            )));
        }
        let cratio = u64_field(entry, "contended_ratio_x1000", i)?;
        let cbound = u64_field(entry, "contended_bound_x1000", i)?;
        if cbound == 0 {
            return Err(SchemaError::new(format!("entry {i}: zero contended bound")));
        }
        if cratio > cbound {
            return Err(SchemaError::new(format!(
                "entry {i}: contended tail regression: snapshot/locked p99 ratio \
                 {cratio}/1000 exceeds the bound {cbound}/1000"
            )));
        }
        let reloads = u64_field(entry, "reloads", i)?;
        if reloads == 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: the reload-under-load phase performed no reloads"
            )));
        }
        let dropped = u64_field(entry, "dropped", i)?;
        if dropped != 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: {dropped} message(s) dropped across a live reload"
            )));
        }
        let reordered = u64_field(entry, "reordered", i)?;
        if reordered != 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: {reordered} message(s) reordered across a live reload"
            )));
        }
    }
    Ok(())
}

/// Validates a `BENCH_ipc.json` document.
///
/// Requires the [`BENCH_IPC_SCHEMA`] marker and, per entry: string
/// `system`/`testbed`, positive `messages`, positive round-trip
/// percentiles for both deployments (`in_process_p50_ns`,
/// `in_process_p99_ns`, `cross_process_p50_ns`, `cross_process_p99_ns`,
/// each pair with p50 ≤ p99), positive `attach_ns`, plus three gates:
///
/// * **process-split overhead**: `ratio_x1000` (cross-process p99 /
///   in-process p99, fixed-point thousandths) must not exceed
///   `bound_x1000` — crossing the OS process boundary may not cost more
///   than the declared multiple of the in-process datapath;
/// * **crash reclaim ran**: `reclaimed_slots >= 1` and
///   `reclaim_ns > 0` — the bench's kill-a-client phase actually
///   exercised force-reclaim and measured its latency;
/// * **no leaks**: `leaked_slots == 0` — every slot the crashed client
///   held came back to the pool.
///
/// # Errors
///
/// Describes the first missing key, type mismatch, or violated gate
/// found.
pub fn validate_bench_ipc(doc: &Value) -> Result<(), SchemaError> {
    expect_schema(doc, BENCH_IPC_SCHEMA)?;
    for (i, entry) in entries(doc)?.iter().enumerate() {
        str_field(entry, "system", i)?;
        str_field(entry, "testbed", i)?;
        let messages = u64_field(entry, "messages", i)?;
        if messages == 0 {
            return Err(SchemaError::new(format!("entry {i}: zero messages")));
        }
        for deployment in ["in_process", "cross_process"] {
            let p50 = u64_field(entry, &format!("{deployment}_p50_ns"), i)?;
            let p99 = u64_field(entry, &format!("{deployment}_p99_ns"), i)?;
            if p50 == 0 || p99 == 0 {
                return Err(SchemaError::new(format!(
                    "entry {i}: {deployment} round-trip percentiles must be \
                     positive (p50 {p50} / p99 {p99})"
                )));
            }
            if p50 > p99 {
                return Err(SchemaError::new(format!(
                    "entry {i}: {deployment} p50 {p50} exceeds p99 {p99}"
                )));
            }
        }
        let ratio = u64_field(entry, "ratio_x1000", i)?;
        let bound = u64_field(entry, "bound_x1000", i)?;
        if bound == 0 {
            return Err(SchemaError::new(format!("entry {i}: zero overhead bound")));
        }
        if ratio > bound {
            return Err(SchemaError::new(format!(
                "entry {i}: process-split overhead: cross/in-process p99 ratio \
                 {ratio}/1000 exceeds the bound {bound}/1000"
            )));
        }
        let attach = u64_field(entry, "attach_ns", i)?;
        if attach == 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: attach latency must be positive"
            )));
        }
        let reclaimed = u64_field(entry, "reclaimed_slots", i)?;
        if reclaimed == 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: the crash phase reclaimed no slots — \
                 force-reclaim was not exercised"
            )));
        }
        let reclaim_ns = u64_field(entry, "reclaim_ns", i)?;
        if reclaim_ns == 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: reclaim latency not recorded"
            )));
        }
        let leaked = u64_field(entry, "leaked_slots", i)?;
        if leaked != 0 {
            return Err(SchemaError::new(format!(
                "entry {i}: {leaked} slot(s) leaked after a client crash"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency_entry() -> Value {
        Value::object([
            ("system", "INSANE fast".into()),
            ("testbed", "Local".into()),
            ("payload_bytes", 64u64.into()),
            ("samples", 300u64.into()),
            ("p50_ns", 1000u64.into()),
            ("p90_ns", 1500u64.into()),
            ("p99_ns", 2000u64.into()),
            ("p999_ns", 2500u64.into()),
            ("mean_ns", 1100.5f64.into()),
            ("min_ns", 900u64.into()),
            ("max_ns", 3000u64.into()),
        ])
    }

    #[test]
    fn valid_latency_doc_passes() {
        let doc = Value::object([
            ("schema", BENCH_LATENCY_SCHEMA.into()),
            ("factor", 1.0f64.into()),
            ("entries", Value::Array(vec![latency_entry()])),
        ]);
        assert_eq!(validate_bench_latency(&doc), Ok(()));
    }

    #[test]
    fn wrong_schema_marker_is_rejected() {
        let doc = Value::object([
            ("schema", "something-else".into()),
            ("entries", Value::Array(vec![])),
        ]);
        let err = validate_bench_latency(&doc).unwrap_err();
        assert!(err.to_string().contains("schema mismatch"), "{err}");
    }

    #[test]
    fn quantile_inversion_is_rejected() {
        let mut entry = latency_entry();
        if let Value::Object(pairs) = &mut entry {
            for (k, v) in pairs.iter_mut() {
                if k == "p90_ns" {
                    *v = Value::Int(5000); // above p99
                }
            }
        }
        let doc = Value::object([
            ("schema", BENCH_LATENCY_SCHEMA.into()),
            ("entries", Value::Array(vec![entry])),
        ]);
        let err = validate_bench_latency(&doc).unwrap_err();
        assert!(err.to_string().contains("not monotone"), "{err}");
    }

    #[test]
    fn valid_throughput_doc_passes() {
        let doc = Value::object([
            ("schema", BENCH_THROUGHPUT_SCHEMA.into()),
            (
                "entries",
                Value::Array(vec![Value::object([
                    ("system", "INSANE fast".into()),
                    ("testbed", "Local".into()),
                    ("payload_bytes", 1024u64.into()),
                    ("messages", 6000u64.into()),
                    ("goodput_gbps", 12.5f64.into()),
                ])]),
            ),
        ]);
        assert_eq!(validate_bench_throughput(&doc), Ok(()));
    }

    #[test]
    fn non_positive_goodput_is_rejected() {
        let doc = Value::object([
            ("schema", BENCH_THROUGHPUT_SCHEMA.into()),
            (
                "entries",
                Value::Array(vec![Value::object([
                    ("system", "udp".into()),
                    ("testbed", "Local".into()),
                    ("payload_bytes", 64u64.into()),
                    ("messages", 10u64.into()),
                    ("goodput_gbps", 0.0f64.into()),
                ])]),
            ),
        ]);
        assert!(validate_bench_throughput(&doc).is_err());
    }

    fn noisy_entry() -> Value {
        Value::object([
            ("system", "INSANE multi-tenant".into()),
            ("testbed", "Local".into()),
            ("payload_bytes", 64u64.into()),
            ("samples", 200u64.into()),
            ("solo_p99_ns", 10_000u64.into()),
            ("contended_p99_ns", 15_000u64.into()),
            ("isolation_ratio_x1000", 1_500u64.into()),
            ("bound_x1000", 2_000u64.into()),
            ("bulk_rejections", 12u64.into()),
            ("victim_rejections", 0u64.into()),
        ])
    }

    fn noisy_doc(entry: Value) -> Value {
        Value::object([
            ("schema", BENCH_NOISY_NEIGHBOR_SCHEMA.into()),
            ("entries", Value::Array(vec![entry])),
        ])
    }

    fn set_field(entry: &mut Value, key: &str, v: u64) {
        if let Value::Object(pairs) = entry {
            for (k, val) in pairs.iter_mut() {
                if k == key {
                    *val = Value::Int(v);
                }
            }
        }
    }

    #[test]
    fn valid_noisy_neighbor_doc_passes() {
        assert_eq!(
            validate_bench_noisy_neighbor(&noisy_doc(noisy_entry())),
            Ok(())
        );
    }

    #[test]
    fn violated_isolation_bound_is_rejected() {
        let mut entry = noisy_entry();
        set_field(&mut entry, "isolation_ratio_x1000", 2_400);
        let err = validate_bench_noisy_neighbor(&noisy_doc(entry)).unwrap_err();
        assert!(err.to_string().contains("isolation violated"), "{err}");
    }

    #[test]
    fn noisy_tenant_without_rejections_is_rejected() {
        let mut entry = noisy_entry();
        set_field(&mut entry, "bulk_rejections", 0);
        let err = validate_bench_noisy_neighbor(&noisy_doc(entry)).unwrap_err();
        assert!(err.to_string().contains("no typed rejections"), "{err}");
    }

    #[test]
    fn punished_victim_is_rejected() {
        let mut entry = noisy_entry();
        set_field(&mut entry, "victim_rejections", 3);
        let err = validate_bench_noisy_neighbor(&noisy_doc(entry)).unwrap_err();
        assert!(err.to_string().contains("in-quota"), "{err}");
    }

    fn isolation_entry(bulk_burst: u64) -> Value {
        Value::object([
            ("system", "INSANE tas".into()),
            ("testbed", "Local".into()),
            ("samples", 200u64.into()),
            ("bulk_burst", bulk_burst.into()),
            ("p50_ns", 400_000u64.into()),
            ("p99_ns", 780_000u64.into()),
            ("p999_ns", 820_000u64.into()),
            ("solo_p999_ns", 800_000u64.into()),
            ("budget_ns", 25_000_000u64.into()),
            ("budget_violations", 0u64.into()),
            ("ratio_x1000", 1_025u64.into()),
            ("bound_x1000", 2_000u64.into()),
            ("gate_deferrals", 40u64.into()),
            ("lost", 1u64.into()),
            ("bulk_rejections", 12u64.into()),
            ("injected_drops", 1u64.into()),
            ("reorders", 3u64.into()),
        ])
    }

    fn isolation_doc(entries: Vec<Value>) -> Value {
        Value::object([
            ("schema", BENCH_ISOLATION_SCHEMA.into()),
            ("entries", Value::Array(entries)),
        ])
    }

    #[test]
    fn valid_isolation_doc_passes() {
        let doc = isolation_doc(vec![isolation_entry(0), isolation_entry(16)]);
        assert_eq!(validate_bench_isolation(&doc), Ok(()));
    }

    #[test]
    fn isolation_budget_violation_is_rejected() {
        let mut contended = isolation_entry(16);
        set_field(&mut contended, "budget_violations", 2);
        let doc = isolation_doc(vec![isolation_entry(0), contended]);
        let err = validate_bench_isolation(&doc).unwrap_err();
        assert!(err.to_string().contains("latency budget"), "{err}");
    }

    #[test]
    fn isolation_tail_ratio_over_bound_is_rejected() {
        let mut contended = isolation_entry(16);
        set_field(&mut contended, "ratio_x1000", 2_400);
        let doc = isolation_doc(vec![isolation_entry(0), contended]);
        let err = validate_bench_isolation(&doc).unwrap_err();
        assert!(err.to_string().contains("tail isolation violated"), "{err}");
    }

    #[test]
    fn isolation_without_solo_baseline_is_rejected() {
        let doc = isolation_doc(vec![isolation_entry(8), isolation_entry(16)]);
        let err = validate_bench_isolation(&doc).unwrap_err();
        assert!(err.to_string().contains("solo baseline"), "{err}");
    }

    #[test]
    fn isolation_without_any_gate_deferral_is_rejected() {
        let mut solo = isolation_entry(0);
        let mut contended = isolation_entry(16);
        set_field(&mut solo, "gate_deferrals", 0);
        set_field(&mut contended, "gate_deferrals", 0);
        let doc = isolation_doc(vec![solo, contended]);
        let err = validate_bench_isolation(&doc).unwrap_err();
        assert!(err.to_string().contains("never held a frame"), "{err}");
    }

    fn hotpath_entry() -> Value {
        Value::object([
            ("system", "INSANE hot path".into()),
            ("testbed", "Local".into()),
            ("samples", 100_000u64.into()),
            ("locked_read_ns_x1000", 18_000u64.into()),
            ("snapshot_read_ns_x1000", 6_000u64.into()),
            ("uncontended_ratio_x1000", 333u64.into()),
            ("uncontended_bound_x1000", 1_100u64.into()),
            ("locked_p99_ns", 40_000u64.into()),
            ("snapshot_p99_ns", 9_000u64.into()),
            ("contended_ratio_x1000", 225u64.into()),
            ("contended_bound_x1000", 1_100u64.into()),
            ("reloads", 4u64.into()),
            ("dropped", 0u64.into()),
            ("reordered", 0u64.into()),
        ])
    }

    fn hotpath_doc(entry: Value) -> Value {
        Value::object([
            ("schema", BENCH_HOTPATH_SCHEMA.into()),
            ("entries", Value::Array(vec![entry])),
        ])
    }

    #[test]
    fn valid_hotpath_doc_passes() {
        assert_eq!(
            validate_bench_hotpath(&hotpath_doc(hotpath_entry())),
            Ok(())
        );
    }

    #[test]
    fn uncontended_regression_is_rejected() {
        let mut entry = hotpath_entry();
        set_field(&mut entry, "uncontended_ratio_x1000", 1_400);
        let err = validate_bench_hotpath(&hotpath_doc(entry)).unwrap_err();
        assert!(err.to_string().contains("uncontended regression"), "{err}");
    }

    #[test]
    fn contended_tail_regression_is_rejected() {
        let mut entry = hotpath_entry();
        set_field(&mut entry, "contended_ratio_x1000", 2_000);
        let err = validate_bench_hotpath(&hotpath_doc(entry)).unwrap_err();
        assert!(err.to_string().contains("tail regression"), "{err}");
    }

    #[test]
    fn reload_without_reloads_is_rejected() {
        let mut entry = hotpath_entry();
        set_field(&mut entry, "reloads", 0);
        let err = validate_bench_hotpath(&hotpath_doc(entry)).unwrap_err();
        assert!(err.to_string().contains("no reloads"), "{err}");
    }

    #[test]
    fn dropped_or_reordered_messages_are_rejected() {
        let mut entry = hotpath_entry();
        set_field(&mut entry, "dropped", 2);
        let err = validate_bench_hotpath(&hotpath_doc(entry)).unwrap_err();
        assert!(err.to_string().contains("dropped"), "{err}");

        let mut entry = hotpath_entry();
        set_field(&mut entry, "reordered", 1);
        let err = validate_bench_hotpath(&hotpath_doc(entry)).unwrap_err();
        assert!(err.to_string().contains("reordered"), "{err}");
    }

    fn ipc_entry() -> Value {
        Value::object([
            ("system", "INSANE process split".into()),
            ("testbed", "Local".into()),
            ("messages", 100_000u64.into()),
            ("in_process_p50_ns", 600u64.into()),
            ("in_process_p99_ns", 2_000u64.into()),
            ("cross_process_p50_ns", 900u64.into()),
            ("cross_process_p99_ns", 3_000u64.into()),
            ("ratio_x1000", 1_500u64.into()),
            ("bound_x1000", 2_000u64.into()),
            ("attach_ns", 250_000u64.into()),
            ("reclaim_ns", 80_000u64.into()),
            ("reclaimed_slots", 12u64.into()),
            ("leaked_slots", 0u64.into()),
        ])
    }

    fn ipc_doc(entry: Value) -> Value {
        Value::object([
            ("schema", BENCH_IPC_SCHEMA.into()),
            ("entries", Value::Array(vec![entry])),
        ])
    }

    #[test]
    fn valid_ipc_doc_passes() {
        assert_eq!(validate_bench_ipc(&ipc_doc(ipc_entry())), Ok(()));
    }

    #[test]
    fn ipc_overhead_past_the_bound_is_rejected() {
        let mut entry = ipc_entry();
        set_field(&mut entry, "ratio_x1000", 2_400);
        let err = validate_bench_ipc(&ipc_doc(entry)).unwrap_err();
        assert!(err.to_string().contains("process-split overhead"), "{err}");
    }

    #[test]
    fn ipc_leaked_slots_are_rejected() {
        let mut entry = ipc_entry();
        set_field(&mut entry, "leaked_slots", 3);
        let err = validate_bench_ipc(&ipc_doc(entry)).unwrap_err();
        assert!(err.to_string().contains("leaked"), "{err}");
    }

    #[test]
    fn ipc_without_a_reclaim_phase_is_rejected() {
        let mut entry = ipc_entry();
        set_field(&mut entry, "reclaimed_slots", 0);
        let err = validate_bench_ipc(&ipc_doc(entry)).unwrap_err();
        assert!(err.to_string().contains("force-reclaim"), "{err}");
    }

    #[test]
    fn ipc_inverted_percentiles_are_rejected() {
        let mut entry = ipc_entry();
        set_field(&mut entry, "cross_process_p50_ns", 5_000);
        let err = validate_bench_ipc(&ipc_doc(entry)).unwrap_err();
        assert!(err.to_string().contains("exceeds p99"), "{err}");
    }

    #[test]
    fn missing_entry_key_is_named_in_the_error() {
        let mut entry = latency_entry();
        if let Value::Object(pairs) = &mut entry {
            pairs.retain(|(k, _)| k != "p999_ns");
        }
        let doc = Value::object([
            ("schema", BENCH_LATENCY_SCHEMA.into()),
            ("entries", Value::Array(vec![entry])),
        ]);
        let err = validate_bench_latency(&doc).unwrap_err();
        assert!(err.to_string().contains("p999_ns"), "{err}");
    }
}
