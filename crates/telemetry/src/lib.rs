//! # insane-telemetry
//!
//! Low-overhead observability for the INSANE runtime.
//!
//! The paper's evaluation (§5, Figs. 5–9) is entirely latency and
//! throughput measurement, so observability is a first-class runtime
//! subsystem here rather than a bench-only afterthought:
//!
//! * [`recorder`] — lock-free scalar recorders (counters, gauges) and
//!   the deterministic 1-in-N [`recorder::Sampler`] that keeps the
//!   record path branch-cheap.
//! * [`hist`] — log-bucketed HDR-style latency histograms with
//!   p50/p90/p99/p99.9 extraction, sharded per thread so concurrent
//!   polling threads never contend.
//! * [`registry`] — the per-runtime tree of per-stream and
//!   per-datapath recorder bundles, snapshotted into plain data.
//! * [`json`] — a dependency-free JSON writer/parser used by the
//!   introspection endpoint, `insanectl`, and the BENCH exporters.
//! * [`schema`] — validators for the BENCH export documents, shared by
//!   the producer (`crates/bench`) and consumers (`insanectl`, CI).
//!
//! Everything on the record path is a handful of relaxed atomic
//! operations: no locks, no heap allocation, no syscalls. Locks exist
//! only at registration and snapshot time. The crate is panic-free
//! (checked by `insane-lint`) and contains no `unsafe`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod schema;

pub use hist::{HistogramSnapshot, LogHistogram, ShardedHistogram, Summary};
pub use json::Value;
pub use recorder::{Counter, Gauge, Sampler};
pub use registry::{
    BreakdownSample, DatapathSnapshot, DatapathTelemetry, Registry, RegistrySnapshot,
    StreamSnapshot, StreamTelemetry, TenantSnapshot, TenantTelemetry,
};
pub use schema::{
    validate_bench_hotpath, validate_bench_ipc, validate_bench_isolation, validate_bench_latency,
    validate_bench_noisy_neighbor, validate_bench_throughput, SchemaError,
};

/// Schema identifier served by the runtime introspection endpoint.
pub const SNAPSHOT_SCHEMA: &str = "insane-telemetry-v1";
/// Schema identifier of `BENCH_latency.json`.
pub const BENCH_LATENCY_SCHEMA: &str = "insane-bench-latency-v1";
/// Schema identifier of `BENCH_throughput.json`.
pub const BENCH_THROUGHPUT_SCHEMA: &str = "insane-bench-throughput-v1";
/// Schema identifier of `BENCH_noisy_neighbor.json`.
pub const BENCH_NOISY_NEIGHBOR_SCHEMA: &str = "insane-bench-noisy-neighbor-v1";
/// Schema identifier of `BENCH_hotpath.json`.
pub const BENCH_HOTPATH_SCHEMA: &str = "insane-bench-hotpath-v1";
/// Schema identifier of `BENCH_ipc.json`.
pub const BENCH_IPC_SCHEMA: &str = "insane-bench-ipc-v1";
/// Schema identifier of `BENCH_isolation.json`.
pub const BENCH_ISOLATION_SCHEMA: &str = "insane-bench-isolation-v1";
