//! Scalar lock-free recorders: counters, gauges, and the 1-in-N
//! sampler that keeps the hot path branch-cheap.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (queue depth, pool occupancy, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level if `v` is higher (high-water tracking).
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Deterministic 1-in-N sampler.
///
/// `hit()` is one relaxed `fetch_add` plus a compare — cheap enough to
/// sit on the consume path — and admits exactly every `period`-th
/// event, so sampled histograms still see a representative slice of
/// the distribution rather than a bursty prefix. A period of 0
/// disables sampling entirely (`hit()` is always false); a period of 1
/// records every event.
#[derive(Debug)]
pub struct Sampler {
    period: AtomicU64,
    ticks: AtomicU64,
}

impl Default for Sampler {
    fn default() -> Self {
        Self::every(1)
    }
}

impl Sampler {
    /// Creates a sampler admitting every `period`-th event.
    pub fn every(period: u64) -> Self {
        Self {
            period: AtomicU64::new(period),
            ticks: AtomicU64::new(0),
        }
    }

    /// Re-configures the period at runtime (0 = off, 1 = everything).
    pub fn set_period(&self, period: u64) {
        self.period.store(period, Ordering::Relaxed);
    }

    /// Currently configured period.
    pub fn period(&self) -> u64 {
        self.period.load(Ordering::Relaxed)
    }

    /// Counts one event; returns whether it should be recorded.
    pub fn hit(&self) -> bool {
        let period = self.period.load(Ordering::Relaxed);
        if period == 0 {
            return false;
        }
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
        tick.is_multiple_of(period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(7);
        g.raise(3);
        assert_eq!(g.get(), 7);
        g.raise(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn sampler_admits_exactly_one_in_n() {
        let s = Sampler::every(4);
        let hits = (0..100).filter(|_| s.hit()).count();
        assert_eq!(hits, 25);
    }

    #[test]
    fn sampler_period_edge_cases() {
        let off = Sampler::every(0);
        assert!((0..10).all(|_| !off.hit()));

        let all = Sampler::every(1);
        assert!((0..10).all(|_| all.hit()));

        let s = Sampler::every(2);
        s.set_period(0);
        assert!(!s.hit());
        s.set_period(1);
        assert!(s.hit());
    }
}
