//! The telemetry registry: owns every per-stream and per-datapath
//! recorder bundle and turns them into plain-data snapshots.
//!
//! The registry lock is only taken when a stream/datapath is
//! registered or a snapshot is requested — never on the record path.
//! Hot-path callers hold an `Arc` to their own [`StreamTelemetry`] /
//! [`DatapathTelemetry`] and record through lock-free atomics.

use crate::hist::{ShardedHistogram, Summary};
use crate::json::Value;
use crate::recorder::{Counter, Sampler};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One latency observation, broken into the Fig. 6 pipeline components
/// plus the fragment-reassembly wait introduced by this crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakdownSample {
    /// Emit → wire (sender-side middleware + datapath TX).
    pub send_ns: u64,
    /// Time on the wire.
    pub network_ns: u64,
    /// Wire end → sink queue (receiver-side RX + dispatch).
    pub receive_ns: u64,
    /// Sink queue → consume (application-side delay).
    pub processing_ns: u64,
    /// Extra wait for sibling fragments during reassembly.
    pub reassembly_ns: u64,
}

impl BreakdownSample {
    /// Total one-way latency of the observation.
    pub fn total_ns(&self) -> u64 {
        self.send_ns
            .saturating_add(self.network_ns)
            .saturating_add(self.receive_ns)
            .saturating_add(self.processing_ns)
            .saturating_add(self.reassembly_ns)
    }
}

/// Recorder bundle for one stream (keyed by channel).
#[derive(Debug)]
pub struct StreamTelemetry {
    channel: u32,
    class: String,
    budget_ns: AtomicU64,
    sampler: Sampler,
    /// Messages consumed on this stream (counted even when sampled out).
    pub consumed: Counter,
    /// Observations actually recorded into the histograms.
    pub sampled: Counter,
    /// Consumed messages whose total latency exceeded the QoS budget.
    pub budget_violations: Counter,
    total: ShardedHistogram,
    send: ShardedHistogram,
    network: ShardedHistogram,
    receive: ShardedHistogram,
    processing: ShardedHistogram,
    reassembly: ShardedHistogram,
}

impl StreamTelemetry {
    fn new(channel: u32, class: &str, budget_ns: u64, sample_every: u64) -> Self {
        Self {
            channel,
            class: class.to_string(),
            budget_ns: AtomicU64::new(budget_ns),
            sampler: Sampler::every(sample_every),
            consumed: Counter::new(),
            sampled: Counter::new(),
            budget_violations: Counter::new(),
            total: ShardedHistogram::new(),
            send: ShardedHistogram::new(),
            network: ShardedHistogram::new(),
            receive: ShardedHistogram::new(),
            processing: ShardedHistogram::new(),
            reassembly: ShardedHistogram::new(),
        }
    }

    /// Channel this stream records for.
    pub fn channel(&self) -> u32 {
        self.channel
    }

    /// Traffic-class label (`best-effort`, `tc5`, …).
    pub fn class(&self) -> &str {
        &self.class
    }

    /// Latency budget; 0 means no budget is enforced.
    pub fn budget_ns(&self) -> u64 {
        self.budget_ns.load(Ordering::Relaxed)
    }

    /// Records one consumed-message latency breakdown.
    ///
    /// The consume counter and budget check run on every call; the
    /// histograms only absorb every `sample_every`-th observation, so
    /// the common case is two relaxed `fetch_add`s and a compare.
    pub fn observe(&self, sample: &BreakdownSample) {
        self.consumed.incr();
        let total = sample.total_ns();
        let budget = self.budget_ns.load(Ordering::Relaxed);
        if budget > 0 && total > budget {
            self.budget_violations.incr();
        }
        if !self.sampler.hit() {
            return;
        }
        self.sampled.incr();
        self.total.record(total);
        self.send.record(sample.send_ns);
        self.network.record(sample.network_ns);
        self.receive.record(sample.receive_ns);
        self.processing.record(sample.processing_ns);
        self.reassembly.record(sample.reassembly_ns);
    }

    /// Plain-data snapshot of this stream's recorders.
    pub fn snapshot(&self) -> StreamSnapshot {
        StreamSnapshot {
            channel: self.channel,
            class: self.class.clone(),
            budget_ns: self.budget_ns(),
            consumed: self.consumed.get(),
            sampled: self.sampled.get(),
            budget_violations: self.budget_violations.get(),
            total: self.total.snapshot().summary(),
            send: self.send.snapshot().summary(),
            network: self.network.snapshot().summary(),
            receive: self.receive.snapshot().summary(),
            processing: self.processing.snapshot().summary(),
            reassembly: self.reassembly.snapshot().summary(),
        }
    }
}

/// Recorder bundle for one tenant: end-to-end latency rollup across
/// every stream the tenant consumes on, plus a consume counter.  The
/// tenant id is a plain `u16` so this crate stays free of middleware
/// dependencies; tenant 0 is the anonymous default tenant.
#[derive(Debug)]
pub struct TenantTelemetry {
    tenant: u16,
    sampler: Sampler,
    /// Messages consumed by this tenant (counted even when sampled out).
    pub consumed: Counter,
    /// Observations actually recorded into the histogram.
    pub sampled: Counter,
    total: ShardedHistogram,
}

impl TenantTelemetry {
    fn new(tenant: u16, sample_every: u64) -> Self {
        Self {
            tenant,
            sampler: Sampler::every(sample_every),
            consumed: Counter::new(),
            sampled: Counter::new(),
            total: ShardedHistogram::new(),
        }
    }

    /// Tenant these recorders belong to.
    pub fn tenant(&self) -> u16 {
        self.tenant
    }

    /// Records one consumed-message end-to-end latency for this tenant.
    pub fn observe_total(&self, total_ns: u64) {
        self.consumed.incr();
        if !self.sampler.hit() {
            return;
        }
        self.sampled.incr();
        self.total.record(total_ns);
    }

    /// Plain-data snapshot of this tenant's recorders.
    pub fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            tenant: self.tenant,
            consumed: self.consumed.get(),
            sampled: self.sampled.get(),
            total: self.total.snapshot().summary(),
        }
    }
}

/// Recorder bundle for one shard of one datapath plugin (an unsharded
/// datapath is shard 0).
#[derive(Debug)]
pub struct DatapathTelemetry {
    name: String,
    shard: usize,
    /// Messages put on the wire by this datapath shard.
    pub tx_messages: Counter,
    /// Messages received from this datapath shard.
    pub rx_messages: Counter,
    /// Messages enqueued into this shard's packet scheduler.
    pub scheduled: Counter,
    /// Per-traffic-class deferral events: scheduler passes in which a
    /// queued frame was held back by a closed gate, the guard band, or
    /// a remaining window too short to finish in (time-aware shaping
    /// only; index = 802.1Q traffic class).
    pub gate_deferrals: [Counter; 8],
}

impl DatapathTelemetry {
    fn new(name: &str, shard: usize) -> Self {
        Self {
            name: name.to_string(),
            shard,
            tx_messages: Counter::new(),
            rx_messages: Counter::new(),
            scheduled: Counter::new(),
            gate_deferrals: core::array::from_fn(|_| Counter::new()),
        }
    }

    /// Technology label of the datapath (`kernel-udp`, `dpdk`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Polling shard these counters belong to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Plain-data snapshot of this datapath shard's counters.
    pub fn snapshot(&self) -> DatapathSnapshot {
        DatapathSnapshot {
            name: self.name.clone(),
            shard: self.shard,
            tx_messages: self.tx_messages.get(),
            rx_messages: self.rx_messages.get(),
            scheduled: self.scheduled.get(),
            gate_deferrals: core::array::from_fn(|i| self.gate_deferrals[i].get()),
        }
    }
}

/// Root of the telemetry tree for one runtime.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    sample_every: AtomicU64,
    streams: RwLock<Vec<Arc<StreamTelemetry>>>,
    datapaths: RwLock<Vec<Arc<DatapathTelemetry>>>,
    tenants: RwLock<Vec<Arc<TenantTelemetry>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new(1)
    }
}

impl Registry {
    /// Creates an enabled registry sampling every `sample_every`-th
    /// observation into histograms (1 = everything, 0 = nothing).
    pub fn new(sample_every: u64) -> Self {
        Self {
            enabled: AtomicBool::new(true),
            sample_every: AtomicU64::new(sample_every),
            streams: RwLock::new(Vec::new()),
            datapaths: RwLock::new(Vec::new()),
            tenants: RwLock::new(Vec::new()),
        }
    }

    /// Whether recording is enabled. Hot paths check this single
    /// relaxed load before touching any recorder.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Currently configured histogram sampling period.
    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Re-configures the sampling period for existing and future
    /// streams.
    pub fn set_sample_every(&self, period: u64) {
        self.sample_every.store(period, Ordering::Relaxed);
        if let Ok(streams) = self.streams.read() {
            for s in streams.iter() {
                s.sampler.set_period(period);
            }
        }
        if let Ok(tenants) = self.tenants.read() {
            for t in tenants.iter() {
                t.sampler.set_period(period);
            }
        }
    }

    /// Returns the recorder bundle for `channel`, creating it on first
    /// use. Callers cache the returned `Arc`; this lock is never taken
    /// per message.
    pub fn stream(&self, channel: u32, class: &str, budget_ns: u64) -> Arc<StreamTelemetry> {
        if let Ok(streams) = self.streams.read() {
            if let Some(s) = streams.iter().find(|s| s.channel == channel) {
                return Arc::clone(s);
            }
        }
        let mut streams = match self.streams.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(s) = streams.iter().find(|s| s.channel == channel) {
            return Arc::clone(s);
        }
        let s = Arc::new(StreamTelemetry::new(
            channel,
            class,
            budget_ns,
            self.sample_every(),
        ));
        streams.push(Arc::clone(&s));
        s
    }

    /// Returns the recorder bundle for `tenant`, creating it on first
    /// use. Callers cache the returned `Arc`; this lock is never taken
    /// per message.
    pub fn tenant(&self, tenant: u16) -> Arc<TenantTelemetry> {
        if let Ok(tenants) = self.tenants.read() {
            if let Some(t) = tenants.iter().find(|t| t.tenant == tenant) {
                return Arc::clone(t);
            }
        }
        let mut tenants = match self.tenants.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(t) = tenants.iter().find(|t| t.tenant == tenant) {
            return Arc::clone(t);
        }
        let t = Arc::new(TenantTelemetry::new(tenant, self.sample_every()));
        tenants.push(Arc::clone(&t));
        t
    }

    /// Registers a datapath recorder bundle for shard 0 (one per
    /// plugin, at runtime start; unsharded engines use this form).
    pub fn register_datapath(&self, name: &str) -> Arc<DatapathTelemetry> {
        self.register_datapath_shard(name, 0)
    }

    /// Registers a datapath recorder bundle for one polling shard
    /// (one per `(plugin, shard)` pair, at runtime start).
    pub fn register_datapath_shard(&self, name: &str, shard: usize) -> Arc<DatapathTelemetry> {
        let d = Arc::new(DatapathTelemetry::new(name, shard));
        let mut datapaths = match self.datapaths.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        datapaths.push(Arc::clone(&d));
        d
    }

    /// Snapshots every stream and datapath into plain data.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let streams = match self.streams.read() {
            Ok(g) => g.iter().map(|s| s.snapshot()).collect(),
            Err(_) => Vec::new(),
        };
        let datapaths = match self.datapaths.read() {
            Ok(g) => g.iter().map(|d| d.snapshot()).collect(),
            Err(_) => Vec::new(),
        };
        let tenants = match self.tenants.read() {
            Ok(g) => g.iter().map(|t| t.snapshot()).collect(),
            Err(_) => Vec::new(),
        };
        RegistrySnapshot {
            enabled: self.is_enabled(),
            sample_every: self.sample_every(),
            streams,
            datapaths,
            tenants,
        }
    }
}

/// Plain-data snapshot of a whole [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Whether recording was enabled at snapshot time.
    pub enabled: bool,
    /// Histogram sampling period.
    pub sample_every: u64,
    /// Per-stream recorder snapshots.
    pub streams: Vec<StreamSnapshot>,
    /// Per-datapath recorder snapshots.
    pub datapaths: Vec<DatapathSnapshot>,
    /// Per-tenant recorder snapshots.
    pub tenants: Vec<TenantSnapshot>,
}

/// Plain-data snapshot of one stream's recorders.
#[derive(Debug, Clone, Default)]
pub struct StreamSnapshot {
    /// Channel id.
    pub channel: u32,
    /// Traffic-class label.
    pub class: String,
    /// Latency budget (0 = none).
    pub budget_ns: u64,
    /// Messages consumed.
    pub consumed: u64,
    /// Observations recorded into histograms.
    pub sampled: u64,
    /// Budget violations.
    pub budget_violations: u64,
    /// End-to-end latency summary.
    pub total: Summary,
    /// Send-component summary.
    pub send: Summary,
    /// Network-component summary.
    pub network: Summary,
    /// Receive-component summary.
    pub receive: Summary,
    /// Processing-component summary.
    pub processing: Summary,
    /// Reassembly-component summary.
    pub reassembly: Summary,
}

/// Plain-data snapshot of one tenant's recorders.
#[derive(Debug, Clone, Default)]
pub struct TenantSnapshot {
    /// Tenant id (0 = the anonymous default tenant).
    pub tenant: u16,
    /// Messages consumed by the tenant.
    pub consumed: u64,
    /// Observations recorded into the histogram.
    pub sampled: u64,
    /// End-to-end latency summary across all the tenant's streams.
    pub total: Summary,
}

/// Plain-data snapshot of one datapath shard's counters.
#[derive(Debug, Clone, Default)]
pub struct DatapathSnapshot {
    /// Technology label.
    pub name: String,
    /// Polling shard (0 for unsharded datapaths).
    pub shard: usize,
    /// Messages put on the wire.
    pub tx_messages: u64,
    /// Messages received.
    pub rx_messages: u64,
    /// Messages enqueued into the packet scheduler.
    pub scheduled: u64,
    /// Per-traffic-class gate-deferral events (time-aware shaping).
    pub gate_deferrals: [u64; 8],
}

fn summary_json(s: &Summary) -> Value {
    Value::object([
        ("count", Value::from(s.count)),
        ("p50_ns", Value::from(s.p50_ns)),
        ("p90_ns", Value::from(s.p90_ns)),
        ("p99_ns", Value::from(s.p99_ns)),
        ("p999_ns", Value::from(s.p999_ns)),
        ("mean_ns", Value::from(s.mean_ns)),
        ("max_ns", Value::from(s.max_ns)),
    ])
}

impl StreamSnapshot {
    /// JSON form, as served by the introspection endpoint.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("channel", Value::from(u64::from(self.channel))),
            ("class", Value::from(self.class.as_str())),
            ("budget_ns", Value::from(self.budget_ns)),
            ("consumed", Value::from(self.consumed)),
            ("sampled", Value::from(self.sampled)),
            ("budget_violations", Value::from(self.budget_violations)),
            ("total", summary_json(&self.total)),
            ("send", summary_json(&self.send)),
            ("network", summary_json(&self.network)),
            ("receive", summary_json(&self.receive)),
            ("processing", summary_json(&self.processing)),
            ("reassembly", summary_json(&self.reassembly)),
        ])
    }
}

impl TenantSnapshot {
    /// JSON form, as served by the introspection endpoint.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("tenant", Value::from(u64::from(self.tenant))),
            ("consumed", Value::from(self.consumed)),
            ("sampled", Value::from(self.sampled)),
            ("total", summary_json(&self.total)),
        ])
    }
}

impl DatapathSnapshot {
    /// JSON form, as served by the introspection endpoint.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("technology", Value::from(self.name.as_str())),
            ("shard", Value::from(self.shard as u64)),
            ("tx_messages", Value::from(self.tx_messages)),
            ("rx_messages", Value::from(self.rx_messages)),
            ("scheduled", Value::from(self.scheduled)),
            (
                "gate_deferrals",
                Value::Array(
                    self.gate_deferrals
                        .iter()
                        .map(|&n| Value::from(n))
                        .collect(),
                ),
            ),
        ])
    }
}

impl RegistrySnapshot {
    /// JSON form, as served by the introspection endpoint.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("enabled", Value::Bool(self.enabled)),
            ("sample_every", Value::from(self.sample_every)),
            (
                "streams",
                Value::Array(self.streams.iter().map(StreamSnapshot::to_json).collect()),
            ),
            (
                "datapaths",
                Value::Array(
                    self.datapaths
                        .iter()
                        .map(DatapathSnapshot::to_json)
                        .collect(),
                ),
            ),
            (
                "tenants",
                Value::Array(self.tenants.iter().map(TenantSnapshot::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_registry_is_get_or_create() {
        let reg = Registry::new(1);
        let a = reg.stream(7, "best-effort", 0);
        let b = reg.stream(7, "ignored-on-second-call", 123);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(b.class(), "best-effort");
        assert_eq!(reg.snapshot().streams.len(), 1);
    }

    #[test]
    fn observe_records_breakdown_and_violations() {
        let reg = Registry::new(1);
        let s = reg.stream(1, "tc6", 1_000);
        s.observe(&BreakdownSample {
            send_ns: 100,
            network_ns: 200,
            receive_ns: 50,
            processing_ns: 25,
            reassembly_ns: 0,
        });
        s.observe(&BreakdownSample {
            send_ns: 900,
            network_ns: 900,
            ..Default::default()
        });
        let snap = s.snapshot();
        assert_eq!(snap.consumed, 2);
        assert_eq!(snap.sampled, 2);
        assert_eq!(snap.budget_violations, 1);
        assert_eq!(snap.total.count, 2);
        assert_eq!(snap.total.max_ns, 1_800);
    }

    #[test]
    fn sampling_thins_histograms_but_not_counters() {
        let reg = Registry::new(10);
        let s = reg.stream(2, "best-effort", 0);
        for _ in 0..100 {
            s.observe(&BreakdownSample {
                send_ns: 10,
                ..Default::default()
            });
        }
        let snap = s.snapshot();
        assert_eq!(snap.consumed, 100);
        assert_eq!(snap.sampled, 10);
        assert_eq!(snap.total.count, 10);
    }

    #[test]
    fn datapath_counters_snapshot() {
        let reg = Registry::new(1);
        let d = reg.register_datapath("kernel-udp");
        d.tx_messages.add(3);
        d.rx_messages.incr();
        d.scheduled.add(4);
        let snap = reg.snapshot();
        assert_eq!(snap.datapaths.len(), 1);
        assert_eq!(snap.datapaths[0].name, "kernel-udp");
        assert_eq!(snap.datapaths[0].tx_messages, 3);
        assert_eq!(snap.datapaths[0].rx_messages, 1);
        assert_eq!(snap.datapaths[0].scheduled, 4);
    }

    #[test]
    fn datapath_shards_are_distinct_bundles() {
        let reg = Registry::new(1);
        let s0 = reg.register_datapath_shard("dpdk", 0);
        let s1 = reg.register_datapath_shard("dpdk", 1);
        s0.tx_messages.add(2);
        s1.tx_messages.add(5);
        let snap = reg.snapshot();
        assert_eq!(snap.datapaths.len(), 2);
        assert_eq!(snap.datapaths[0].shard, 0);
        assert_eq!(snap.datapaths[0].tx_messages, 2);
        assert_eq!(snap.datapaths[1].shard, 1);
        assert_eq!(snap.datapaths[1].tx_messages, 5);
        let json = snap.to_json().to_string();
        assert!(json.contains("\"shard\":1"));
    }

    #[test]
    fn tenant_registry_is_get_or_create_and_rolls_up() {
        let reg = Registry::new(1);
        let a = reg.tenant(4);
        let b = reg.tenant(4);
        assert!(Arc::ptr_eq(&a, &b));
        a.observe_total(1_000);
        b.observe_total(3_000);
        let snap = reg.snapshot();
        assert_eq!(snap.tenants.len(), 1);
        assert_eq!(snap.tenants[0].tenant, 4);
        assert_eq!(snap.tenants[0].consumed, 2);
        assert_eq!(snap.tenants[0].total.count, 2);
        assert_eq!(snap.tenants[0].total.max_ns, 3_000);
        let json = snap.to_json().to_string();
        assert!(json.contains("\"tenant\":4"));
    }

    #[test]
    fn registry_snapshot_serializes() {
        let reg = Registry::new(1);
        reg.stream(9, "tc7", 500);
        reg.register_datapath("dpdk");
        let json = reg.snapshot().to_json().to_string();
        assert!(json.contains("\"channel\":9"));
        assert!(json.contains("\"technology\":\"dpdk\""));
        assert!(json.contains("\"p999_ns\""));
    }
}
