//! Property-based tests for histogram merge and quantile math.
//!
//! The satellite requirements: merged quantiles must bracket per-shard
//! quantiles, and values at the bucket extremes must saturate cleanly
//! instead of wrapping or panicking.

use insane_telemetry::hist::{HistogramSnapshot, LogHistogram, BUCKETS, SUB_BUCKETS};
use proptest::prelude::*;

/// Splits values round-robin across `shards` histograms and returns
/// the per-shard snapshots plus the merged snapshot.
fn shard_and_merge(values: &[u64], shards: usize) -> (Vec<HistogramSnapshot>, HistogramSnapshot) {
    let hists: Vec<LogHistogram> = (0..shards).map(|_| LogHistogram::new()).collect();
    for (i, &v) in values.iter().enumerate() {
        hists[i % shards].record(v);
    }
    let snaps: Vec<HistogramSnapshot> = hists.iter().map(LogHistogram::snapshot).collect();
    let mut merged = HistogramSnapshot::empty();
    for s in &snaps {
        merged.merge(s);
    }
    (snaps, merged)
}

proptest! {
    /// For every quantile, the merged histogram's estimate lies between
    /// the smallest and largest per-shard estimates (the defining
    /// soundness property of shard-merge aggregation).
    #[test]
    fn merged_quantiles_bracket_shard_quantiles(
        values in proptest::collection::vec(0u64..10_000_000_000, 1..400),
        shards in 1usize..6,
    ) {
        let (snaps, merged) = shard_and_merge(&values, shards);
        let nonempty: Vec<&HistogramSnapshot> =
            snaps.iter().filter(|s| s.count > 0).collect();
        prop_assert!(!nonempty.is_empty());
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let per_shard: Vec<u64> = nonempty.iter().map(|s| s.quantile(q)).collect();
            let lo = per_shard.iter().copied().min().unwrap_or(0);
            let hi = per_shard.iter().copied().max().unwrap_or(0);
            let m = merged.quantile(q);
            prop_assert!(
                lo <= m && m <= hi,
                "q={} merged {} outside shard range [{}, {}]", q, m, lo, hi
            );
        }
    }

    /// Merging preserves the exact side-channels: count, sum, and max.
    #[test]
    fn merge_preserves_count_sum_max(
        values in proptest::collection::vec(any::<u64>(), 0..200),
        shards in 1usize..5,
    ) {
        let (_, merged) = shard_and_merge(&values, shards);
        prop_assert_eq!(merged.count, values.len() as u64);
        let exact_sum = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(merged.sum, exact_sum);
        prop_assert_eq!(merged.max, values.iter().copied().max().unwrap_or(0));
    }

    /// The quantile estimate stays within one sub-bucket of relative
    /// error (2^-SUB_BITS) of the exact order statistic.
    #[test]
    fn quantile_relative_error_is_bounded(
        values in proptest::collection::vec(1u64..1_000_000_000_000, 1..300),
        qs in proptest::collection::vec(0u64..=1000, 1..8),
    ) {
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut values = values;
        values.sort_unstable();
        let snap = h.snapshot();
        for q_mille in qs {
            let q = q_mille as f64 / 1000.0;
            let mut rank = (q * values.len() as f64).ceil() as usize;
            if rank == 0 {
                rank = 1;
            }
            let exact = values[rank - 1];
            let approx = snap.quantile(q);
            let err = approx.abs_diff(exact) as f64 / exact as f64;
            prop_assert!(
                err <= 1.0 / SUB_BUCKETS as f64,
                "q={}: approx {} vs exact {} (err {})", q, approx, exact, err
            );
        }
    }

    /// Extreme values land in the terminal buckets without wrapping:
    /// counts are conserved and every quantile stays inside [min, max]
    /// of the recorded extremes.
    #[test]
    fn saturation_at_bucket_extremes(
        n_min in 1u64..50,
        n_max in 1u64..50,
        near_top in proptest::collection::vec((u64::MAX - 1000)..=u64::MAX, 0..20),
    ) {
        let h = LogHistogram::new();
        for _ in 0..n_min {
            h.record(0);
        }
        for _ in 0..n_max {
            h.record(u64::MAX);
        }
        for &v in &near_top {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, n_min + n_max + near_top.len() as u64);
        prop_assert_eq!(snap.counts[0], n_min);
        // Everything within 1000 of u64::MAX shares the huge top bucket.
        prop_assert_eq!(snap.counts[BUCKETS - 1], n_max + near_top.len() as u64);
        prop_assert_eq!(snap.max, u64::MAX);
        prop_assert_eq!(snap.quantile(0.0), 0);
        for q in [0.25, 0.5, 0.75, 1.0] {
            prop_assert!(snap.quantile(q) <= snap.max);
        }
    }
}
