//! Overhead guard (ISSUE 4): telemetry must be cheap enough that the
//! zero-copy fast path cannot tell it is there.
//!
//! Two assertions, both over the loopback kernel-UDP datapath:
//!
//! 1. **Zero added allocations** — with telemetry compiled in, the
//!    steady-state emit/consume round trip performs *exactly* as many
//!    heap allocations with recording enabled (sampled) as with it
//!    disabled.  All recorder state is preallocated at stream
//!    registration; the record path is relaxed atomics only.
//! 2. **< 5 % wall-clock difference** between the telemetry-enabled
//!    (1-in-16 sampled) and telemetry-disabled round-trip medians.
//!    Timing comparisons are inherently noisy on shared CI runners, so
//!    `INSANE_SKIP_OVERHEAD_GUARD=1` skips the timing half, and it only
//!    runs on optimized builds (the allocation half always runs — it is
//!    deterministic).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use insane_core::runtime::poll_until_quiescent;
use insane_core::{
    ChannelId, ConsumeMode, InsaneError, QosPolicy, Runtime, RuntimeConfig, Session,
    TelemetryConfig, ThreadingMode,
};
use insane_fabric::{Fabric, Technology, TestbedProfile};

/// Counts every heap allocation made through the global allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic increment with no other side effects, so every
// GlobalAlloc contract (layout fidelity, uniqueness, deallocation
// pairing) is exactly the system allocator's.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: callers uphold the GlobalAlloc contract (nonzero-size
    // layout); this wrapper adds no requirements of its own.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged from our caller, which
        // upholds the GlobalAlloc contract for it.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: callers pass a pointer previously returned by `alloc`
    // with the same layout, per the GlobalAlloc contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching `alloc` through
        // this same wrapper, which allocated via `System`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One manually-driven loopback pair over the kernel-UDP datapath with
/// the given telemetry configuration, plus a primed source/sink on
/// channel 7.
struct Loopback {
    rt_a: Runtime,
    rt_b: Runtime,
    source: insane_core::Source,
    sink: insane_core::Sink,
    _sessions: (Session, Session),
    _streams: (insane_core::Stream, insane_core::Stream),
}

fn loopback(fabric: &Fabric, base_id: u32, telemetry: TelemetryConfig) -> Loopback {
    let host_a = fabric.add_host(&format!("a{base_id}"));
    let host_b = fabric.add_host(&format!("b{base_id}"));
    let techs = [Technology::KernelUdp];
    let config = |id: u32| {
        RuntimeConfig::new(id)
            .with_technologies(&techs)
            .with_threading(ThreadingMode::Manual)
            .with_telemetry(telemetry)
    };
    let rt_a = Runtime::start(config(base_id), fabric, host_a).expect("runtime a");
    let rt_b = Runtime::start(config(base_id + 1), fabric, host_b).expect("runtime b");
    rt_a.add_peer(host_b).expect("peer");
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    let session_a = Session::connect(&rt_a).expect("session a");
    let session_b = Session::connect(&rt_b).expect("session b");
    let stream_a = session_a
        .create_stream(QosPolicy::slow())
        .expect("stream a");
    let stream_b = session_b
        .create_stream(QosPolicy::slow())
        .expect("stream b");
    let sink = stream_b.create_sink(ChannelId(7)).expect("sink");
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    let source = stream_a.create_source(ChannelId(7)).expect("source");
    Loopback {
        rt_a,
        rt_b,
        source,
        sink,
        _sessions: (session_a, session_b),
        _streams: (stream_a, stream_b),
    }
}

impl Loopback {
    /// One emit → poll → consume round trip of a 32-byte payload.
    fn round_trip(&self) {
        let mut buf = self.source.get_buffer(32).expect("buffer");
        buf.fill(0x5a);
        self.source.emit(buf).expect("emit");
        loop {
            self.rt_a.poll_once();
            self.rt_b.poll_once();
            match self.sink.consume(ConsumeMode::NonBlocking) {
                Ok(msg) => {
                    drop(msg);
                    break;
                }
                Err(InsaneError::WouldBlock) => {}
                Err(e) => panic!("consume failed: {e}"),
            }
        }
    }

    /// Allocations per `n` steady-state round trips.
    fn allocs_over(&self, n: usize) -> u64 {
        let before = allocations();
        for _ in 0..n {
            self.round_trip();
        }
        allocations() - before
    }

    /// Steady-state allocation floor: the minimum of `blocks` blocks of
    /// `n` round trips each.  The deliver-poll loop is paced by real
    /// time (the fabric models link latency), so an occasional extra
    /// poll iteration adds stray allocations; that noise is strictly
    /// additive, making the per-block minimum the deterministic cost.
    fn alloc_floor(&self, blocks: usize, n: usize) -> u64 {
        (0..blocks).map(|_| self.allocs_over(n)).min().unwrap_or(0)
    }

    /// Median wall-clock time of `n` round trips, sampled one by one.
    fn median_ns(&self, n: usize) -> u64 {
        let mut samples: Vec<u64> = (0..n)
            .map(|_| {
                let start = std::time::Instant::now();
                self.round_trip();
                start.elapsed().as_nanos() as u64
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    }
}

#[test]
fn telemetry_adds_zero_allocations_on_the_emit_consume_path() {
    let fabric = Fabric::new(TestbedProfile::local());
    let disabled = loopback(&fabric, 1, TelemetryConfig::disabled());
    let sampled = loopback(&fabric, 3, TelemetryConfig::default().with_sample_every(16));
    let every = loopback(&fabric, 5, TelemetryConfig::default());

    // Warm-up: first trips populate lazy state (hash maps, inbound
    // scratch, histogram shard slots) on every configuration.
    for lb in [&disabled, &sampled, &every] {
        lb.allocs_over(64);
    }

    const N: usize = 128;
    const BLOCKS: usize = 6;
    let base = disabled.alloc_floor(BLOCKS, N);
    let with_sampling = sampled.alloc_floor(BLOCKS, N);
    let with_full = every.alloc_floor(BLOCKS, N);
    assert_eq!(
        with_sampling, base,
        "sampled telemetry must not allocate on the emit/consume path \
         (disabled: {base}, sampled: {with_sampling} allocations / {N} round trips)"
    );
    assert_eq!(
        with_full, base,
        "even unsampled telemetry records into preallocated recorders \
         (disabled: {base}, every-message: {with_full} allocations / {N} round trips)"
    );
}

#[test]
fn telemetry_round_trip_overhead_is_under_five_percent() {
    if std::env::var_os("INSANE_SKIP_OVERHEAD_GUARD").is_some() {
        eprintln!("INSANE_SKIP_OVERHEAD_GUARD set: skipping timing comparison");
        return;
    }
    // An unoptimized record path says nothing about shipped overhead:
    // in debug builds the relaxed-atomic increments cost 3-4x their
    // release weight and routinely blow the 5% budget. The timing
    // comparison only means something on optimized code.
    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping timing comparison (run with --release)");
        return;
    }
    let fabric = Fabric::new(TestbedProfile::local());
    let disabled = loopback(&fabric, 1, TelemetryConfig::disabled());
    let sampled = loopback(&fabric, 3, TelemetryConfig::default().with_sample_every(16));

    // Warm-up both paths (code, caches, lazy state).
    disabled.median_ns(64);
    sampled.median_ns(64);

    // Interleave measurement blocks so slow drift (thermal, noisy
    // neighbours) hits both configurations equally, and keep the best
    // (least-disturbed) block per configuration.
    const BLOCK: usize = 200;
    let mut best_off = u64::MAX;
    let mut best_on = u64::MAX;
    for _ in 0..5 {
        best_off = best_off.min(disabled.median_ns(BLOCK));
        best_on = best_on.min(sampled.median_ns(BLOCK));
    }
    let diff = best_on.abs_diff(best_off) as f64 / best_off as f64;
    assert!(
        diff < 0.05,
        "sampled telemetry changed the loopback round trip by {:.1}% \
         (disabled median {best_off} ns, sampled median {best_on} ns); \
         set INSANE_SKIP_OVERHEAD_GUARD=1 to skip on noisy machines",
        diff * 100.0
    );
}
