//! One-shot framing and parsing of full Ethernet/IPv4/UDP packets.
//!
//! This is the hot path of the packet processing engine: the runtime
//! writes headers directly into the zero-copy slot ahead of the payload
//! (TX) and locates the payload range without copying (RX).

use std::net::Ipv4Addr;

use crate::ether::{EthernetHeader, MacAddr, ETHERTYPE_IPV4};
use crate::ipv4::{Ipv4Header, DEFAULT_TTL, PROTO_UDP};
use crate::udp::UdpHeader;
use crate::{ether, ipv4, udp, NetstackError, FRAME_OVERHEAD};

/// Builder that frames one UDP packet into a caller-provided buffer.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone, Copy)]
pub struct PacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    ttl: u8,
    identification: u16,
    udp_checksum: bool,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketBuilder {
    /// Starts a builder with unspecified addresses and checksums off
    /// (kernel-bypassing NICs offload them in the paper's testbeds).
    pub fn new() -> Self {
        Self {
            src_mac: MacAddr::default(),
            dst_mac: MacAddr::default(),
            src_ip: Ipv4Addr::UNSPECIFIED,
            dst_ip: Ipv4Addr::UNSPECIFIED,
            src_port: 0,
            dst_port: 0,
            ttl: DEFAULT_TTL,
            identification: 0,
            udp_checksum: false,
        }
    }

    /// Sets the source MAC.
    pub fn src_mac(mut self, mac: MacAddr) -> Self {
        self.src_mac = mac;
        self
    }

    /// Sets the destination MAC.
    pub fn dst_mac(mut self, mac: MacAddr) -> Self {
        self.dst_mac = mac;
        self
    }

    /// Sets the source IPv4 address and UDP port.
    pub fn src(mut self, ip: Ipv4Addr, port: u16) -> Self {
        self.src_ip = ip;
        self.src_port = port;
        self
    }

    /// Sets the destination IPv4 address and UDP port.
    pub fn dst(mut self, ip: Ipv4Addr, port: u16) -> Self {
        self.dst_ip = ip;
        self.dst_port = port;
        self
    }

    /// Overrides the TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the IPv4 identification field.
    pub fn identification(mut self, id: u16) -> Self {
        self.identification = id;
        self
    }

    /// Enables the UDP checksum (off by default: offloaded).
    pub fn udp_checksum(mut self, on: bool) -> Self {
        self.udp_checksum = on;
        self
    }

    /// Frames `payload` into `buf`, returning the total packet length.
    ///
    /// # Errors
    ///
    /// * [`NetstackError::BufferTooSmall`] when `buf` cannot hold headers
    ///   plus payload.
    /// * [`NetstackError::PayloadTooLarge`] when the IPv4 length field
    ///   would overflow.
    pub fn write(&self, buf: &mut [u8], payload: &[u8]) -> Result<usize, NetstackError> {
        let total = FRAME_OVERHEAD + payload.len();
        if buf.len() < total {
            return Err(NetstackError::BufferTooSmall {
                needed: total,
                available: buf.len(),
            });
        }
        let ip_len = ipv4::HEADER_LEN + udp::HEADER_LEN + payload.len();
        if ip_len > u16::MAX as usize {
            return Err(NetstackError::PayloadTooLarge {
                len: payload.len(),
                max: u16::MAX as usize - ipv4::HEADER_LEN - udp::HEADER_LEN,
            });
        }
        EthernetHeader {
            dst: self.dst_mac,
            src: self.src_mac,
            ethertype: ETHERTYPE_IPV4,
        }
        .write(&mut buf[..ether::HEADER_LEN])?;
        Ipv4Header {
            src: self.src_ip,
            dst: self.dst_ip,
            protocol: PROTO_UDP,
            total_len: ip_len as u16,
            ttl: self.ttl,
            identification: self.identification,
        }
        .write(&mut buf[ether::HEADER_LEN..])?;
        let udp_start = ether::HEADER_LEN + ipv4::HEADER_LEN;
        // Copy payload first so an enabled checksum can cover it in place.
        buf[FRAME_OVERHEAD..total].copy_from_slice(payload);
        let (udp_buf, payload_buf) = buf[udp_start..total].split_at_mut(udp::HEADER_LEN);
        UdpHeader {
            src_port: self.src_port,
            dst_port: self.dst_port,
            length: (udp::HEADER_LEN + payload.len()) as u16,
        }
        .write(
            udp_buf,
            self.udp_checksum
                .then_some((self.src_ip, self.dst_ip, &*payload_buf)),
        )?;
        Ok(total)
    }

    /// Frames headers in place for a payload that is *already resident* at
    /// `buf[FRAME_OVERHEAD..FRAME_OVERHEAD + payload_len]` (true zero-copy
    /// TX: the application wrote the message into the slot at offset
    /// [`FRAME_OVERHEAD`]).  Returns the total packet length.
    ///
    /// # Errors
    ///
    /// As [`PacketBuilder::write`].
    pub fn finish_in_place(
        &self,
        buf: &mut [u8],
        payload_len: usize,
    ) -> Result<usize, NetstackError> {
        let total = FRAME_OVERHEAD + payload_len;
        if buf.len() < total {
            return Err(NetstackError::BufferTooSmall {
                needed: total,
                available: buf.len(),
            });
        }
        let ip_len = ipv4::HEADER_LEN + udp::HEADER_LEN + payload_len;
        if ip_len > u16::MAX as usize {
            return Err(NetstackError::PayloadTooLarge {
                len: payload_len,
                max: u16::MAX as usize - ipv4::HEADER_LEN - udp::HEADER_LEN,
            });
        }
        EthernetHeader {
            dst: self.dst_mac,
            src: self.src_mac,
            ethertype: ETHERTYPE_IPV4,
        }
        .write(&mut buf[..ether::HEADER_LEN])?;
        Ipv4Header {
            src: self.src_ip,
            dst: self.dst_ip,
            protocol: PROTO_UDP,
            total_len: ip_len as u16,
            ttl: self.ttl,
            identification: self.identification,
        }
        .write(&mut buf[ether::HEADER_LEN..])?;
        let udp_start = ether::HEADER_LEN + ipv4::HEADER_LEN;
        let (udp_buf, payload_buf) = buf[udp_start..total].split_at_mut(udp::HEADER_LEN);
        UdpHeader {
            src_port: self.src_port,
            dst_port: self.dst_port,
            length: (udp::HEADER_LEN + payload_len) as u16,
        }
        .write(
            udp_buf,
            self.udp_checksum
                .then_some((self.src_ip, self.dst_ip, &*payload_buf)),
        )?;
        Ok(total)
    }
}

/// A parsed view over a received packet; borrows the underlying bytes.
#[derive(Debug)]
pub struct PacketView<'a> {
    eth: EthernetHeader,
    ip: Ipv4Header,
    udp: UdpHeader,
    payload: &'a [u8],
}

impl<'a> PacketView<'a> {
    /// Parses and validates one packet.
    ///
    /// # Errors
    ///
    /// Propagates header errors; additionally rejects non-UDP protocols
    /// and inconsistent length fields.
    pub fn parse(buf: &'a [u8]) -> Result<Self, NetstackError> {
        let eth = EthernetHeader::parse(buf)?;
        if eth.ethertype != ETHERTYPE_IPV4 {
            return Err(NetstackError::Malformed("not IPv4 ethertype"));
        }
        let ip_bytes = &buf[ether::HEADER_LEN..];
        let ip = Ipv4Header::parse(ip_bytes)?;
        if ip.protocol != PROTO_UDP {
            return Err(NetstackError::Malformed("not UDP"));
        }
        if (ip.total_len as usize) > ip_bytes.len() {
            return Err(NetstackError::Truncated);
        }
        let udp_bytes = &ip_bytes[ipv4::HEADER_LEN..ip.total_len as usize];
        let udp = UdpHeader::parse(udp_bytes)?;
        if udp.length as usize != udp_bytes.len() {
            return Err(NetstackError::Malformed("UDP/IP length mismatch"));
        }
        udp.verify(udp_bytes, ip.src, ip.dst)?;
        Ok(Self {
            eth,
            ip,
            udp,
            payload: &udp_bytes[udp::HEADER_LEN..],
        })
    }

    /// Ethernet header.
    pub fn ethernet(&self) -> &EthernetHeader {
        &self.eth
    }

    /// IPv4 header.
    pub fn ipv4(&self) -> &Ipv4Header {
        &self.ip
    }

    /// UDP header.
    pub fn udp(&self) -> &UdpHeader {
        &self.udp
    }

    /// The application payload.
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Byte offset of the payload within the original buffer (always
    /// [`FRAME_OVERHEAD`]; exposed for zero-copy consumers).
    pub fn payload_offset(&self) -> usize {
        FRAME_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> PacketBuilder {
        PacketBuilder::new()
            .src_mac(MacAddr::from_host_index(0))
            .dst_mac(MacAddr::from_host_index(1))
            .src(Ipv4Addr::new(10, 0, 0, 1), 7000)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 7001)
    }

    #[test]
    fn write_parse_roundtrip() {
        let mut buf = [0u8; 256];
        let len = builder()
            .udp_checksum(true)
            .write(&mut buf, b"hi there")
            .unwrap();
        assert_eq!(len, FRAME_OVERHEAD + 8);
        let view = PacketView::parse(&buf[..len]).unwrap();
        assert_eq!(view.payload(), b"hi there");
        assert_eq!(view.udp().dst_port, 7001);
        assert_eq!(view.ipv4().src, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(view.ethernet().dst, MacAddr::from_host_index(1));
    }

    #[test]
    fn in_place_framing_matches_copy_framing() {
        let payload = b"zero copy payload";
        let mut a = [0u8; 256];
        let mut b = [0u8; 256];
        let la = builder().write(&mut a, payload).unwrap();
        b[FRAME_OVERHEAD..FRAME_OVERHEAD + payload.len()].copy_from_slice(payload);
        let lb = builder().finish_in_place(&mut b, payload.len()).unwrap();
        assert_eq!(la, lb);
        assert_eq!(&a[..la], &b[..lb]);
    }

    #[test]
    fn small_buffer_is_rejected() {
        let mut buf = [0u8; 40];
        assert!(matches!(
            builder().write(&mut buf, b"xxxx"),
            Err(NetstackError::BufferTooSmall { .. })
        ));
    }

    #[test]
    fn non_udp_packets_are_rejected() {
        let mut buf = [0u8; 128];
        let len = builder().write(&mut buf, b"x").unwrap();
        // Overwrite protocol with TCP and fix the IPv4 checksum.
        buf[ether::HEADER_LEN + 9] = 6;
        buf[ether::HEADER_LEN + 10..ether::HEADER_LEN + 12].fill(0);
        let csum = crate::internet_checksum(&buf[ether::HEADER_LEN..ether::HEADER_LEN + 20], 0);
        buf[ether::HEADER_LEN + 10..ether::HEADER_LEN + 12].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(
            PacketView::parse(&buf[..len]).err(),
            Some(NetstackError::Malformed("not UDP"))
        );
    }

    #[test]
    fn truncated_packets_are_rejected() {
        let mut buf = [0u8; 128];
        let len = builder().write(&mut buf, b"abcdefgh").unwrap();
        assert_eq!(
            PacketView::parse(&buf[..len - 4]).err(),
            Some(NetstackError::Truncated)
        );
    }

    #[test]
    fn corrupted_payload_with_checksum_is_rejected() {
        let mut buf = [0u8; 128];
        let len = builder()
            .udp_checksum(true)
            .write(&mut buf, b"payload")
            .unwrap();
        buf[len - 1] ^= 0xFF;
        assert_eq!(
            PacketView::parse(&buf[..len]).err(),
            Some(NetstackError::BadChecksum("UDP"))
        );
    }

    #[test]
    fn jumbo_payload_frames() {
        let payload = vec![0xABu8; 8192];
        let mut buf = vec![0u8; 9000];
        let len = builder().write(&mut buf, &payload).unwrap();
        let view = PacketView::parse(&buf[..len]).unwrap();
        assert_eq!(view.payload().len(), 8192);
    }
}
