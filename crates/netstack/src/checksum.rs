//! RFC 1071 internet checksum.

/// Computes the 16-bit one's-complement internet checksum over `data`,
/// with an `initial` partial sum (used to fold in pseudo-headers).
///
/// # Examples
///
/// ```
/// // RFC 1071 example words: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2 -> !ddf2
/// let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(insane_netstack::internet_checksum(&data, 0), !0xddf2);
/// ```
pub fn internet_checksum(data: &[u8], initial: u32) -> u16 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_data_yields_complement_of_initial() {
        assert_eq!(internet_checksum(&[], 0), 0xFFFF);
        assert_eq!(internet_checksum(&[], 0x1234), !0x1234u16);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xAB], 0), !0xAB00u16);
    }

    #[test]
    fn checksum_over_data_including_its_checksum_verifies() {
        let mut packet = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x40, 0x00, 0x40, 0x11];
        packet.extend_from_slice(&[0u8; 10]);
        let csum = internet_checksum(&packet, 0);
        // Insert into a position that was zero when the sum was taken.
        packet[10] = (csum >> 8) as u8;
        packet[11] = csum as u8;
        // A packet containing its own checksum sums to zero.
        assert_eq!(internet_checksum(&packet, 0), 0);
    }

    #[test]
    fn carry_folding_handles_many_ff_words() {
        let data = vec![0xFFu8; 4096];
        // Sum of many 0xFFFF words folds back; must not panic or wrap.
        let c = internet_checksum(&data, 0);
        assert_eq!(c, 0);
    }
}
