//! The INSANE message header.
//!
//! Every message the middleware puts on a datapath is prefixed by this
//! fixed-size header.  It carries what the runtime needs to dispatch the
//! message on the receiving host (channel id, §5.1), what the scheduler
//! needs (QoS traffic class, §5.2), the sequencing and app-level
//! fragmentation metadata the Lunar streaming framework builds on (§7.2),
//! and a sender timestamp that feeds the latency-breakdown experiment
//! (Fig. 6).

use crate::NetstackError;

/// Serialized size of [`InsaneHeader`] in bytes.
pub const HEADER_LEN: usize = 40;

/// Magic value marking INSANE messages.
pub const MAGIC: u16 = 0x1A5E;

/// Wire-format version this implementation writes.
pub const VERSION: u8 = 1;

/// What the message carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageKind {
    /// Application payload for a channel.
    Data,
    /// Runtime-to-runtime control traffic (membership, subscriptions).
    Control,
}

impl MessageKind {
    fn to_wire(self) -> u8 {
        match self {
            MessageKind::Data => 0,
            MessageKind::Control => 1,
        }
    }

    fn from_wire(b: u8) -> Result<Self, NetstackError> {
        match b {
            0 => Ok(MessageKind::Data),
            1 => Ok(MessageKind::Control),
            _ => Err(NetstackError::Malformed("unknown message kind")),
        }
    }
}

/// The INSANE message header (fixed 40-byte little-endian layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsaneHeader {
    /// Data or control.
    pub kind: MessageKind,
    /// QoS traffic class assigned by the stream's time-sensitivity policy
    /// (0 = best effort; 1–7 = TSN classes).
    pub traffic_class: u8,
    /// Application-chosen channel id (§5.1).
    pub channel: u32,
    /// Sender runtime id (dispatch + reassembly key).
    pub src_runtime: u32,
    /// Per-(runtime, channel) sequence number.
    pub seq: u64,
    /// Index of this fragment within the message (0 for unfragmented).
    pub frag_index: u16,
    /// Total fragments in the message (1 for unfragmented).
    pub frag_count: u16,
    /// Total message length across all fragments, in bytes.
    pub total_len: u32,
    /// Sender wall-clock timestamp in nanoseconds (monotonic origin chosen
    /// by the sender; used only for same-run latency accounting).
    pub timestamp_ns: u64,
}

impl InsaneHeader {
    /// Creates an unfragmented data header.
    pub fn data(channel: u32, src_runtime: u32, seq: u64, payload_len: u32) -> Self {
        Self {
            kind: MessageKind::Data,
            traffic_class: 0,
            channel,
            src_runtime,
            seq,
            frag_index: 0,
            frag_count: 1,
            total_len: payload_len,
            timestamp_ns: 0,
        }
    }

    /// Whether this message is one fragment of a larger message.
    pub fn is_fragmented(&self) -> bool {
        self.frag_count > 1
    }

    /// Writes the header into `buf[..HEADER_LEN]`.
    ///
    /// # Errors
    ///
    /// [`NetstackError::BufferTooSmall`] when `buf` is too short.
    pub fn write(&self, buf: &mut [u8]) -> Result<(), NetstackError> {
        if buf.len() < HEADER_LEN {
            return Err(NetstackError::BufferTooSmall {
                needed: HEADER_LEN,
                available: buf.len(),
            });
        }
        buf[0..2].copy_from_slice(&MAGIC.to_le_bytes());
        buf[2] = VERSION;
        buf[3] = self.kind.to_wire();
        buf[4] = self.traffic_class;
        buf[5] = 0; // reserved
        buf[6..8].copy_from_slice(&self.frag_index.to_le_bytes());
        buf[8..10].copy_from_slice(&self.frag_count.to_le_bytes());
        buf[10..12].fill(0); // reserved
        buf[12..16].copy_from_slice(&self.channel.to_le_bytes());
        buf[16..20].copy_from_slice(&self.src_runtime.to_le_bytes());
        buf[20..28].copy_from_slice(&self.seq.to_le_bytes());
        buf[28..32].copy_from_slice(&self.total_len.to_le_bytes());
        buf[32..40].copy_from_slice(&self.timestamp_ns.to_le_bytes());
        Ok(())
    }

    /// Parses the header from `buf[..HEADER_LEN]`.
    ///
    /// # Errors
    ///
    /// * [`NetstackError::Truncated`] for short input.
    /// * [`NetstackError::Malformed`] for bad magic/version/kind or
    ///   inconsistent fragment fields.
    pub fn parse(buf: &[u8]) -> Result<Self, NetstackError> {
        if buf.len() < HEADER_LEN {
            return Err(NetstackError::Truncated);
        }
        if u16::from_le_bytes([buf[0], buf[1]]) != MAGIC {
            return Err(NetstackError::Malformed("bad INSANE magic"));
        }
        if buf[2] != VERSION {
            return Err(NetstackError::Malformed("unsupported INSANE version"));
        }
        let kind = MessageKind::from_wire(buf[3])?;
        let frag_index = u16::from_le_bytes([buf[6], buf[7]]);
        let frag_count = u16::from_le_bytes([buf[8], buf[9]]);
        if frag_count == 0 || frag_index >= frag_count {
            return Err(NetstackError::Malformed("inconsistent fragment fields"));
        }
        Ok(Self {
            kind,
            traffic_class: buf[4],
            frag_index,
            frag_count,
            channel: u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")),
            src_runtime: u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")),
            seq: u64::from_le_bytes(buf[20..28].try_into().expect("8 bytes")),
            total_len: u32::from_le_bytes(buf[28..32].try_into().expect("4 bytes")),
            timestamp_ns: u64::from_le_bytes(buf[32..40].try_into().expect("8 bytes")),
        })
    }
}

/// Byte range of the message checksum inside the serialized header
/// (the bytes [`InsaneHeader::write`] zeroes as reserved).
const CHECKSUM_RANGE: core::ops::Range<usize> = 10..12;

/// Seals a serialized message (`HEADER_LEN` header bytes followed by the
/// payload) by writing the internet checksum of the whole message into
/// the header's checksum slot.
///
/// A computed checksum of zero is transmitted as `0xFFFF` (UDP-style), so
/// a stored zero always means "unsealed" and [`checksum_ok`] accepts it —
/// senders that never seal stay compatible.
///
/// # Errors
///
/// [`NetstackError::Truncated`] when `msg` is shorter than a header.
pub fn seal(msg: &mut [u8]) -> Result<(), NetstackError> {
    if msg.len() < HEADER_LEN {
        return Err(NetstackError::Truncated);
    }
    msg[CHECKSUM_RANGE].fill(0);
    let mut sum = crate::internet_checksum(msg, 0);
    if sum == 0 {
        sum = 0xFFFF;
    }
    msg[CHECKSUM_RANGE].copy_from_slice(&sum.to_be_bytes());
    Ok(())
}

/// Verifies a sealed message (header plus payload).
///
/// Returns `true` for intact sealed messages and for unsealed messages
/// (stored checksum zero); `false` when the message is shorter than a
/// header or any bit of it was corrupted after sealing.
pub fn checksum_ok(msg: &[u8]) -> bool {
    if msg.len() < HEADER_LEN {
        return false;
    }
    if msg[CHECKSUM_RANGE] == [0, 0] {
        return true;
    }
    // One's-complement property: a message containing its own checksum
    // sums to zero.
    crate::internet_checksum(msg, 0) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> InsaneHeader {
        InsaneHeader {
            kind: MessageKind::Data,
            traffic_class: 5,
            channel: 0xAABBCCDD,
            src_runtime: 17,
            seq: 0x0123_4567_89AB_CDEF,
            frag_index: 2,
            frag_count: 4,
            total_len: 100_000,
            timestamp_ns: 42_000_000_000,
        }
    }

    #[test]
    fn roundtrip_all_fields() {
        let hdr = header();
        let mut buf = [0u8; HEADER_LEN];
        hdr.write(&mut buf).unwrap();
        assert_eq!(InsaneHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn data_constructor_is_unfragmented() {
        let h = InsaneHeader::data(9, 1, 7, 512);
        assert!(!h.is_fragmented());
        assert_eq!(h.frag_count, 1);
        assert_eq!(h.total_len, 512);
        assert_eq!(h.kind, MessageKind::Data);
    }

    #[test]
    fn bad_magic_version_kind_are_rejected() {
        let mut buf = [0u8; HEADER_LEN];
        header().write(&mut buf).unwrap();
        let mut bad_magic = buf;
        bad_magic[0] = 0;
        assert!(matches!(
            InsaneHeader::parse(&bad_magic),
            Err(NetstackError::Malformed("bad INSANE magic"))
        ));
        let mut bad_version = buf;
        bad_version[2] = 99;
        assert!(matches!(
            InsaneHeader::parse(&bad_version),
            Err(NetstackError::Malformed("unsupported INSANE version"))
        ));
        let mut bad_kind = buf;
        bad_kind[3] = 7;
        assert!(matches!(
            InsaneHeader::parse(&bad_kind),
            Err(NetstackError::Malformed("unknown message kind"))
        ));
    }

    #[test]
    fn inconsistent_fragments_rejected() {
        let mut buf = [0u8; HEADER_LEN];
        let mut h = header();
        h.frag_index = 4; // == frag_count
        h.write(&mut buf).unwrap();
        assert!(matches!(
            InsaneHeader::parse(&buf),
            Err(NetstackError::Malformed("inconsistent fragment fields"))
        ));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            InsaneHeader::parse(&[0u8; 10]).err(),
            Some(NetstackError::Truncated)
        );
    }

    fn sealed_message(payload: &[u8]) -> Vec<u8> {
        let mut msg = vec![0u8; HEADER_LEN + payload.len()];
        header().write(&mut msg).unwrap();
        msg[HEADER_LEN..].copy_from_slice(payload);
        seal(&mut msg).unwrap();
        msg
    }

    #[test]
    fn seal_then_verify_roundtrips() {
        let msg = sealed_message(b"payload bytes");
        assert!(checksum_ok(&msg));
        // Sealing does not disturb any parsed field.
        assert_eq!(InsaneHeader::parse(&msg).unwrap(), header());
    }

    #[test]
    fn any_single_bit_flip_is_caught() {
        let msg = sealed_message(&[0xA5; 24]);
        for byte in 0..msg.len() {
            for bit in 0..8 {
                let mut bad = msg.clone();
                bad[byte] ^= 1 << bit;
                if bad[CHECKSUM_RANGE] == [0, 0] {
                    // The flip forged the "unsealed" marker itself; that
                    // escape hatch is intentional.
                    continue;
                }
                assert!(
                    !checksum_ok(&bad),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn unsealed_message_is_accepted() {
        let mut msg = vec![0u8; HEADER_LEN + 8];
        header().write(&mut msg).unwrap();
        assert!(checksum_ok(&msg), "zero checksum means unsealed");
    }

    #[test]
    fn zero_sum_payload_transmits_as_ffff() {
        // A message whose one's-complement sum is 0xFFFF would compute a
        // zero checksum; the seal must substitute 0xFFFF and still verify.
        let mut msg = vec![0u8; HEADER_LEN + 2];
        header().write(&mut msg).unwrap();
        let partial = crate::internet_checksum(&msg, 0);
        msg[HEADER_LEN..].copy_from_slice(&partial.to_be_bytes());
        seal(&mut msg).unwrap();
        assert_eq!(&msg[10..12], &0xFFFFu16.to_be_bytes());
        assert!(checksum_ok(&msg));
    }

    #[test]
    fn short_input_fails_both_ways() {
        let mut short = [0u8; 8];
        assert!(seal(&mut short).is_err());
        assert!(!checksum_ok(&short));
    }
}
