//! Static ARP-like neighbor table.
//!
//! Edge-cloud deployments in the paper are provisioned: every INSANE
//! runtime knows its peers (§5.3 forwards to "the reachable remote INSANE
//! runtimes").  The userspace stack therefore resolves IPv4 → MAC through
//! a static table seeded at startup, with no dynamic ARP traffic.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use parking_lot::RwLock;

use crate::ether::MacAddr;
use crate::NetstackError;

/// A thread-safe IPv4 → MAC resolution table.
#[derive(Debug, Default)]
pub struct NeighborTable {
    entries: RwLock<HashMap<Ipv4Addr, MacAddr>>,
}

impl NeighborTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table pre-seeded for `host_count` simulated hosts using
    /// the deterministic address scheme of
    /// [`crate::ipv4::Ipv4Header::addr_for_host`] and
    /// [`MacAddr::from_host_index`].
    pub fn for_simulated_hosts(host_count: u32) -> Self {
        let table = Self::new();
        for index in 0..host_count {
            table.insert(
                crate::ipv4::Ipv4Header::addr_for_host(index),
                MacAddr::from_host_index(index),
            );
        }
        table
    }

    /// Adds or replaces an entry; returns the previous MAC if any.
    pub fn insert(&self, ip: Ipv4Addr, mac: MacAddr) -> Option<MacAddr> {
        self.entries.write().insert(ip, mac)
    }

    /// Removes an entry.
    pub fn remove(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.entries.write().remove(&ip)
    }

    /// Resolves `ip` to a MAC address.
    ///
    /// # Errors
    ///
    /// [`NetstackError::NoRoute`] when the address is unknown.
    pub fn resolve(&self, ip: Ipv4Addr) -> Result<MacAddr, NetstackError> {
        self.entries
            .read()
            .get(&ip)
            .copied()
            .ok_or(NetstackError::NoRoute)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_known_and_unknown() {
        let t = NeighborTable::new();
        let ip = Ipv4Addr::new(10, 0, 0, 7);
        let mac = MacAddr::from_host_index(7);
        assert!(t.is_empty());
        t.insert(ip, mac);
        assert_eq!(t.resolve(ip).unwrap(), mac);
        assert_eq!(
            t.resolve(Ipv4Addr::new(10, 0, 0, 8)),
            Err(NetstackError::NoRoute)
        );
    }

    #[test]
    fn seeded_table_covers_all_hosts() {
        let t = NeighborTable::for_simulated_hosts(4);
        assert_eq!(t.len(), 4);
        for i in 0..4 {
            let ip = crate::ipv4::Ipv4Header::addr_for_host(i);
            assert_eq!(t.resolve(ip).unwrap(), MacAddr::from_host_index(i));
        }
    }

    #[test]
    fn insert_replaces_and_remove_deletes() {
        let t = NeighborTable::new();
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        assert_eq!(t.insert(ip, MacAddr::from_host_index(1)), None);
        let old = t.insert(ip, MacAddr::from_host_index(2));
        assert_eq!(old, Some(MacAddr::from_host_index(1)));
        assert_eq!(t.remove(ip), Some(MacAddr::from_host_index(2)));
        assert!(t.resolve(ip).is_err());
    }
}
