//! Application-level fragmentation and reassembly.
//!
//! The INSANE stack never fragments inside IP (§8: reassembly would force
//! data copies and choke the receive pipeline).  Large messages — e.g. the
//! raw camera frames of the Lunar streaming framework (§7.2) — are instead
//! split *by the application layer* into chunks that each fit one frame,
//! tagged through [`crate::insane_hdr::InsaneHeader`]'s fragment fields,
//! and reassembled at the consumer.

use std::collections::{HashMap, VecDeque};

use crate::NetstackError;

/// Description of one fragment produced by [`plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentPlan {
    /// Fragment index (0-based).
    pub index: u16,
    /// Total fragments of the message.
    pub count: u16,
    /// Byte offset of this fragment within the message.
    pub offset: usize,
    /// Length of this fragment in bytes.
    pub len: usize,
}

/// Splits a message of `total_len` bytes into fragments of at most
/// `max_fragment` bytes.
///
/// # Errors
///
/// [`NetstackError::PayloadTooLarge`] if more than `u16::MAX` fragments
/// would be needed; [`NetstackError::Malformed`] for a zero
/// `max_fragment`.
pub fn plan(total_len: usize, max_fragment: usize) -> Result<Vec<FragmentPlan>, NetstackError> {
    if max_fragment == 0 {
        return Err(NetstackError::Malformed("max_fragment must be non-zero"));
    }
    if total_len == 0 {
        return Ok(vec![FragmentPlan {
            index: 0,
            count: 1,
            offset: 0,
            len: 0,
        }]);
    }
    let count = total_len.div_ceil(max_fragment);
    if count > u16::MAX as usize {
        return Err(NetstackError::PayloadTooLarge {
            len: total_len,
            max: max_fragment * u16::MAX as usize,
        });
    }
    Ok((0..count)
        .map(|i| {
            let offset = i * max_fragment;
            FragmentPlan {
                index: i as u16,
                count: count as u16,
                offset,
                len: max_fragment.min(total_len - offset),
            }
        })
        .collect())
}

/// Key identifying one in-flight message at the reassembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MessageKey {
    /// Sender runtime id.
    pub src_runtime: u32,
    /// Channel the message travels on.
    pub channel: u32,
    /// Message sequence number.
    pub seq: u64,
}

#[derive(Debug)]
struct Partial {
    buffer: Vec<u8>,
    received: Vec<bool>,
    remaining: usize,
}

/// Reassembles fragmented messages; incomplete messages are evicted when
/// more than `max_partial` are in flight (oldest first), which bounds
/// memory under loss.
#[derive(Debug)]
pub struct Reassembler {
    partials: HashMap<MessageKey, Partial>,
    /// Keys in arrival order for oldest-first eviction.  Completed
    /// messages are *not* eagerly removed; eviction lazily skips keys
    /// that no longer have a live partial, keeping both the hot
    /// completion path and eviction O(1) amortized.
    arrival_order: VecDeque<MessageKey>,
    max_partial: usize,
    evicted: u64,
}

impl Reassembler {
    /// Creates a reassembler holding at most `max_partial` incomplete
    /// messages.
    pub fn new(max_partial: usize) -> Self {
        Self {
            partials: HashMap::new(),
            arrival_order: VecDeque::new(),
            max_partial: max_partial.max(1),
            evicted: 0,
        }
    }

    /// Offers one fragment; returns the complete message when this
    /// fragment was the last missing piece.
    ///
    /// # Errors
    ///
    /// [`NetstackError::FragmentMismatch`] when the fragment disagrees
    /// with previously seen metadata (count, total length, overrun) or
    /// duplicates an already-received index with different content
    /// expectations.
    pub fn offer(
        &mut self,
        key: MessageKey,
        index: u16,
        count: u16,
        total_len: usize,
        offset: usize,
        data: &[u8],
    ) -> Result<Option<Vec<u8>>, NetstackError> {
        // `checked_add` guards against adversarial headers where
        // `offset + len` wraps usize in release builds and sneaks past
        // the bound check.
        let end = match offset.checked_add(data.len()) {
            Some(end) => end,
            None => return Err(NetstackError::FragmentMismatch),
        };
        if count == 0 || index >= count || end > total_len {
            return Err(NetstackError::FragmentMismatch);
        }
        if count == 1 {
            // A single-fragment message that reuses the key of a live
            // partial contradicts that partial's metadata (count > 1);
            // accepting it silently would also leak the stale partial
            // until eviction.
            if self.partials.contains_key(&key) {
                return Err(NetstackError::FragmentMismatch);
            }
            return Ok(Some(data.to_vec()));
        }
        let partial = match self.partials.get_mut(&key) {
            Some(p) => {
                if p.received.len() != count as usize || p.buffer.len() != total_len {
                    return Err(NetstackError::FragmentMismatch);
                }
                p
            }
            None => {
                while self.partials.len() >= self.max_partial {
                    match self.arrival_order.pop_front() {
                        // Stale entry (message completed): skip, keep popping.
                        Some(oldest) => {
                            if self.partials.remove(&oldest).is_some() {
                                self.evicted += 1;
                            }
                        }
                        None => break,
                    }
                }
                // Amortized compaction: completed messages leave stale
                // keys behind; squeeze them out before the deque can
                // grow past twice the live set.  Runs before `key` is
                // pushed — its partial is not inserted yet and the
                // retain must not strip the new arrival entry.
                if self.arrival_order.len() >= (2 * self.max_partial).max(8) {
                    let partials = &self.partials;
                    self.arrival_order.retain(|k| partials.contains_key(k));
                }
                self.arrival_order.push_back(key);
                self.partials.entry(key).or_insert(Partial {
                    buffer: vec![0; total_len],
                    received: vec![false; count as usize],
                    remaining: count as usize,
                })
            }
        };
        if partial.received[index as usize] {
            // Duplicate fragment (datagram networks may duplicate): ignore.
            return Ok(None);
        }
        partial.buffer[offset..offset + data.len()].copy_from_slice(data);
        partial.received[index as usize] = true;
        partial.remaining -= 1;
        if partial.remaining == 0 {
            // Lazy removal: the `arrival_order` entry stays behind and
            // is skipped (or compacted) at eviction time, so completing
            // a message costs O(1) instead of an O(n) `retain`.
            match self.partials.remove(&key) {
                Some(done) => Ok(Some(done.buffer)),
                None => Err(NetstackError::FragmentMismatch),
            }
        } else {
            Ok(None)
        }
    }

    /// Number of messages currently awaiting fragments.
    pub fn pending(&self) -> usize {
        self.partials.len()
    }

    /// Messages evicted incomplete since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seq: u64) -> MessageKey {
        MessageKey {
            src_runtime: 1,
            channel: 2,
            seq,
        }
    }

    #[test]
    fn plan_covers_message_exactly() {
        let plan = plan(10_000, 3_000).unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0].len, 3_000);
        assert_eq!(plan[3].len, 1_000);
        let total: usize = plan.iter().map(|f| f.len).sum();
        assert_eq!(total, 10_000);
        for (i, f) in plan.iter().enumerate() {
            assert_eq!(f.index as usize, i);
            assert_eq!(f.count, 4);
            assert_eq!(f.offset, i * 3_000);
        }
    }

    #[test]
    fn plan_exact_multiple_has_no_runt() {
        let plan = plan(9_000, 3_000).unwrap();
        assert_eq!(plan.len(), 3);
        assert!(plan.iter().all(|f| f.len == 3_000));
    }

    #[test]
    fn plan_zero_len_single_empty_fragment() {
        let plan = plan(0, 1000).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].len, 0);
    }

    #[test]
    fn plan_rejects_absurd_inputs() {
        assert!(plan(10, 0).is_err());
        assert!(plan(100_000_000, 1).is_err());
    }

    #[test]
    fn reassembly_in_order_and_out_of_order() {
        let message: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        for shuffle in [false, true] {
            let mut r = Reassembler::new(8);
            let mut frags = plan(message.len(), 1_400).unwrap();
            if shuffle {
                frags.reverse();
            }
            let mut result = None;
            for f in &frags {
                let out = r
                    .offer(
                        key(1),
                        f.index,
                        f.count,
                        message.len(),
                        f.offset,
                        &message[f.offset..f.offset + f.len],
                    )
                    .unwrap();
                if let Some(m) = out {
                    result = Some(m);
                }
            }
            assert_eq!(result.expect("complete"), message);
            assert_eq!(r.pending(), 0);
        }
    }

    #[test]
    fn single_fragment_messages_bypass_state() {
        let mut r = Reassembler::new(2);
        let out = r.offer(key(5), 0, 1, 4, 0, b"tiny").unwrap();
        assert_eq!(out.as_deref(), Some(&b"tiny"[..]));
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut r = Reassembler::new(2);
        assert!(r.offer(key(1), 0, 2, 8, 0, b"abcd").unwrap().is_none());
        assert!(r.offer(key(1), 0, 2, 8, 0, b"abcd").unwrap().is_none());
        let done = r.offer(key(1), 1, 2, 8, 4, b"efgh").unwrap();
        assert_eq!(done.as_deref(), Some(&b"abcdefgh"[..]));
    }

    #[test]
    fn mismatched_metadata_is_rejected() {
        let mut r = Reassembler::new(2);
        r.offer(key(1), 0, 3, 12, 0, b"aaaa").unwrap();
        assert_eq!(
            r.offer(key(1), 1, 2, 12, 4, b"bbbb").err(),
            Some(NetstackError::FragmentMismatch)
        );
        assert_eq!(
            r.offer(key(2), 0, 2, 4, 2, b"cccc").err(),
            Some(NetstackError::FragmentMismatch),
            "overrun past total_len"
        );
    }

    #[test]
    fn single_fragment_rejected_while_partial_live() {
        // Regression: a count == 1 fragment reusing the key of a live
        // partial used to be accepted silently, leaking the stale
        // partial until eviction.
        let mut r = Reassembler::new(4);
        assert!(r.offer(key(7), 0, 3, 12, 0, b"aaaa").unwrap().is_none());
        assert_eq!(
            r.offer(key(7), 0, 1, 4, 0, b"tiny").err(),
            Some(NetstackError::FragmentMismatch)
        );
        // The original partial is untouched and still completes.
        assert!(r.offer(key(7), 1, 3, 12, 4, b"bbbb").unwrap().is_none());
        let done = r.offer(key(7), 2, 3, 12, 8, b"cccc").unwrap();
        assert_eq!(done.as_deref(), Some(&b"aaaabbbbcccc"[..]));
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn offset_overflow_is_rejected() {
        // Regression: `offset + data.len()` used to wrap usize in
        // release builds and pass the `> total_len` bound check.
        let mut r = Reassembler::new(2);
        assert_eq!(
            r.offer(key(1), 0, 2, 8, usize::MAX, b"abcd").err(),
            Some(NetstackError::FragmentMismatch)
        );
        assert_eq!(
            r.offer(key(1), 0, 1, 8, usize::MAX - 1, b"abcd").err(),
            Some(NetstackError::FragmentMismatch)
        );
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn eviction_skips_completed_keys() {
        // Completed messages leave lazy entries in arrival order;
        // eviction must skip them instead of counting them as live.
        let mut r = Reassembler::new(2);
        assert!(r.offer(key(1), 0, 2, 8, 0, b"aaaa").unwrap().is_none());
        assert!(r.offer(key(1), 1, 2, 8, 4, b"bbbb").unwrap().is_some());
        r.offer(key(2), 0, 2, 8, 0, b"cccc").unwrap();
        r.offer(key(3), 0, 2, 8, 0, b"dddd").unwrap();
        // Capacity is full with key(2)/key(3); the stale key(1) entry
        // sits at the front of the order.  Inserting key(4) must evict
        // key(2), not trip over key(1).
        r.offer(key(4), 0, 2, 8, 0, b"eeee").unwrap();
        assert_eq!(r.pending(), 2);
        assert_eq!(r.evicted(), 1);
        // key(3) survives and still completes.
        let done = r.offer(key(3), 1, 2, 8, 4, b"ffff").unwrap();
        assert_eq!(done.as_deref(), Some(&b"ddddffff"[..]));
    }

    #[test]
    fn eviction_bounds_memory() {
        let mut r = Reassembler::new(2);
        r.offer(key(1), 0, 2, 8, 0, b"aaaa").unwrap();
        r.offer(key(2), 0, 2, 8, 0, b"bbbb").unwrap();
        r.offer(key(3), 0, 2, 8, 0, b"cccc").unwrap(); // evicts key(1)
        assert_eq!(r.pending(), 2);
        assert_eq!(r.evicted(), 1);
        // key(1)'s second fragment now starts a fresh partial.
        assert!(r.offer(key(1), 1, 2, 8, 4, b"dddd").unwrap().is_none());
    }
}
