//! Minimal userspace network stack for the INSANE middleware.
//!
//! Kernel-bypassing technologies leave protocol processing to the user
//! (§3 of the paper: "the user has to provide its own network and
//! transport protocols").  INSANE's runtime therefore contains a *packet
//! processing engine* that frames outgoing messages and parses incoming
//! ones on the DPDK and XDP datapaths; kernel UDP uses the kernel's stack
//! and RDMA offloads framing to the NIC (§5.3).
//!
//! This crate is that engine, deliberately minimal and allocation-free on
//! the hot path:
//!
//! * [`ether`], [`ipv4`], [`udp`] — header build/parse with the real wire
//!   layouts and checksums, written in place into zero-copy slot buffers;
//! * [`packet`] — one-shot framing/parsing of a full Ethernet/IPv4/UDP
//!   packet ([`packet::PacketBuilder`], [`packet::PacketView`]);
//! * [`neighbor`] — a static ARP-like neighbor table (edge deployments in
//!   the paper are provisioned, not discovered);
//! * [`insane_hdr`] — the INSANE message header carried in every UDP
//!   payload: channel id, sequence number, QoS class, and the app-level
//!   fragmentation metadata the streaming framework uses (§7.2);
//! * [`fragment`] — application-level fragmentation/reassembly.  True
//!   in-stack IP fragmentation is deliberately unsupported, matching the
//!   paper's zero-copy argument (§8): payloads above the MTU must use
//!   jumbo frames or application-level fragmentation.
//!
//! # Examples
//!
//! ```
//! use insane_netstack::packet::{PacketBuilder, PacketView};
//! use insane_netstack::{ether::MacAddr, MTU_JUMBO};
//! use std::net::Ipv4Addr;
//!
//! let mut buf = [0u8; 1500];
//! let len = PacketBuilder::new()
//!     .src_mac(MacAddr::from_host_index(0))
//!     .dst_mac(MacAddr::from_host_index(1))
//!     .src(Ipv4Addr::new(10, 0, 0, 1), 7000)
//!     .dst(Ipv4Addr::new(10, 0, 0, 2), 7001)
//!     .write(&mut buf, b"payload")?;
//! let view = PacketView::parse(&buf[..len])?;
//! assert_eq!(view.payload(), b"payload");
//! # Ok::<(), insane_netstack::NetstackError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ether;
pub mod fragment;
pub mod insane_hdr;
pub mod ipv4;
pub mod neighbor;
pub mod packet;
pub mod udp;

mod checksum;

pub use checksum::internet_checksum;

use core::fmt;

/// Standard Ethernet MTU in bytes.
pub const MTU_STANDARD: usize = 1_500;
/// Jumbo-frame MTU the paper enables for payloads above 1.5 KB (§6.2).
pub const MTU_JUMBO: usize = 9_000;

/// Total header bytes a full Ethernet/IPv4/UDP frame spends before the
/// payload.
pub const FRAME_OVERHEAD: usize = ether::HEADER_LEN + ipv4::HEADER_LEN + udp::HEADER_LEN;

/// Errors produced while framing or parsing packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetstackError {
    /// The destination buffer cannot hold headers plus payload.
    BufferTooSmall {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The payload exceeds what one frame may carry at the given MTU.
    PayloadTooLarge {
        /// Payload bytes requested.
        len: usize,
        /// Maximum payload at this MTU.
        max: usize,
    },
    /// The packet is shorter than its headers claim.
    Truncated,
    /// A header field has an unsupported or corrupt value.
    Malformed(&'static str),
    /// A checksum did not verify.
    BadChecksum(&'static str),
    /// A fragment is inconsistent with its message (wrong count/len).
    FragmentMismatch,
    /// The neighbor table has no entry for the requested address.
    NoRoute,
}

impl fmt::Display for NetstackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetstackError::BufferTooSmall { needed, available } => {
                write!(f, "buffer too small: need {needed} bytes, have {available}")
            }
            NetstackError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds frame maximum of {max}")
            }
            NetstackError::Truncated => write!(f, "packet truncated"),
            NetstackError::Malformed(what) => write!(f, "malformed packet: {what}"),
            NetstackError::BadChecksum(which) => write!(f, "bad {which} checksum"),
            NetstackError::FragmentMismatch => write!(f, "fragment metadata mismatch"),
            NetstackError::NoRoute => write!(f, "no neighbor entry for destination"),
        }
    }
}

impl std::error::Error for NetstackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_overhead_is_42_bytes() {
        // Ethernet (14) + IPv4 (20) + UDP (8): the classic 42.
        assert_eq!(FRAME_OVERHEAD, 42);
    }
}
