//! UDP header build/parse.
//!
//! The checksum is computed over the IPv4 pseudo-header + UDP header +
//! payload when requested; the kernel-bypassing fast path may skip it
//! (NICs offload it in the paper's testbeds) — a zero checksum field means
//! "not computed", as UDP-over-IPv4 allows.

use crate::checksum::internet_checksum;
use crate::NetstackError;
use std::net::Ipv4Addr;

/// Length of a UDP header.
pub const HEADER_LEN: usize = 8;

/// A parsed or to-be-written UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Header + payload length in bytes.
    pub length: u16,
}

fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, udp_len: u16) -> u32 {
    let s = src.octets();
    let d = dst.octets();
    let mut sum = 0u32;
    sum += u32::from(u16::from_be_bytes([s[0], s[1]]));
    sum += u32::from(u16::from_be_bytes([s[2], s[3]]));
    sum += u32::from(u16::from_be_bytes([d[0], d[1]]));
    sum += u32::from(u16::from_be_bytes([d[2], d[3]]));
    sum += u32::from(crate::ipv4::PROTO_UDP as u16);
    sum += u32::from(udp_len);
    sum
}

impl UdpHeader {
    /// Writes the header into `buf[..8]`; if `checksum_over` is `Some`,
    /// computes the checksum across the pseudo-header and `payload`.
    ///
    /// # Errors
    ///
    /// [`NetstackError::BufferTooSmall`] when `buf` is too short.
    pub fn write(
        &self,
        buf: &mut [u8],
        checksum_over: Option<(Ipv4Addr, Ipv4Addr, &[u8])>,
    ) -> Result<(), NetstackError> {
        if buf.len() < HEADER_LEN {
            return Err(NetstackError::BufferTooSmall {
                needed: HEADER_LEN,
                available: buf.len(),
            });
        }
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&self.length.to_be_bytes());
        buf[6..8].fill(0);
        if let Some((src, dst, payload)) = checksum_over {
            let mut sum = pseudo_header_sum(src, dst, self.length);
            // Fold the header (checksum field currently zero) then payload.
            sum += u32::from(u16::from_be_bytes([buf[0], buf[1]]));
            sum += u32::from(u16::from_be_bytes([buf[2], buf[3]]));
            sum += u32::from(u16::from_be_bytes([buf[4], buf[5]]));
            let mut csum = internet_checksum(payload, sum);
            if csum == 0 {
                csum = 0xFFFF; // 0 is reserved for "no checksum"
            }
            buf[6..8].copy_from_slice(&csum.to_be_bytes());
        }
        Ok(())
    }

    /// Parses the header at the start of `buf`.
    ///
    /// # Errors
    ///
    /// [`NetstackError::Truncated`] for short input;
    /// [`NetstackError::Malformed`] for impossible lengths.
    pub fn parse(buf: &[u8]) -> Result<Self, NetstackError> {
        if buf.len() < HEADER_LEN {
            return Err(NetstackError::Truncated);
        }
        let length = u16::from_be_bytes([buf[4], buf[5]]);
        if (length as usize) < HEADER_LEN {
            return Err(NetstackError::Malformed("UDP length below header"));
        }
        Ok(Self {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length,
        })
    }

    /// Verifies the datagram checksum, when present.
    ///
    /// `datagram` must span header + payload.
    ///
    /// # Errors
    ///
    /// [`NetstackError::BadChecksum`] when a present checksum fails;
    /// [`NetstackError::Truncated`] when `datagram` is shorter than the
    /// advertised length.
    pub fn verify(
        &self,
        datagram: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> Result<(), NetstackError> {
        if datagram.len() < self.length as usize {
            return Err(NetstackError::Truncated);
        }
        let stored = u16::from_be_bytes([datagram[6], datagram[7]]);
        if stored == 0 {
            return Ok(()); // checksum not computed
        }
        let sum = pseudo_header_sum(src, dst, self.length);
        if internet_checksum(&datagram[..self.length as usize], sum) != 0 {
            return Err(NetstackError::BadChecksum("UDP"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn build(payload: &[u8], with_csum: bool) -> Vec<u8> {
        let hdr = UdpHeader {
            src_port: 7000,
            dst_port: 7001,
            length: (HEADER_LEN + payload.len()) as u16,
        };
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        buf[HEADER_LEN..].copy_from_slice(payload);
        let (head, body) = buf.split_at_mut(HEADER_LEN);
        hdr.write(head, with_csum.then_some((SRC, DST, &*body)))
            .unwrap();
        buf
    }

    #[test]
    fn roundtrip_with_checksum() {
        let dgram = build(b"checksummed payload", true);
        let hdr = UdpHeader::parse(&dgram).unwrap();
        assert_eq!(hdr.src_port, 7000);
        assert_eq!(hdr.dst_port, 7001);
        hdr.verify(&dgram, SRC, DST).unwrap();
    }

    #[test]
    fn payload_corruption_is_detected() {
        let mut dgram = build(b"checksummed payload", true);
        let last = dgram.len() - 1;
        dgram[last] ^= 0xFF;
        let hdr = UdpHeader::parse(&dgram).unwrap();
        assert_eq!(
            hdr.verify(&dgram, SRC, DST),
            Err(NetstackError::BadChecksum("UDP"))
        );
    }

    #[test]
    fn zero_checksum_means_skip() {
        let dgram = build(b"fast path", false);
        let hdr = UdpHeader::parse(&dgram).unwrap();
        hdr.verify(&dgram, SRC, DST).unwrap();
    }

    #[test]
    fn wrong_pseudo_header_fails() {
        let dgram = build(b"payload", true);
        let hdr = UdpHeader::parse(&dgram).unwrap();
        assert!(hdr.verify(&dgram, SRC, Ipv4Addr::new(10, 0, 0, 9)).is_err());
    }

    #[test]
    fn malformed_length_rejected() {
        let mut dgram = build(b"x", false);
        dgram[4] = 0;
        dgram[5] = 3; // < 8
        assert_eq!(
            UdpHeader::parse(&dgram),
            Err(NetstackError::Malformed("UDP length below header"))
        );
    }

    #[test]
    fn empty_payload_roundtrips() {
        let dgram = build(b"", true);
        let hdr = UdpHeader::parse(&dgram).unwrap();
        assert_eq!(hdr.length as usize, HEADER_LEN);
        hdr.verify(&dgram, SRC, DST).unwrap();
    }
}
