//! Ethernet II framing.

use crate::NetstackError;
use core::fmt;

/// Length of an Ethernet II header.
pub const HEADER_LEN: usize = 14;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Deterministic locally-administered MAC for simulated host `index`
    /// (the fabric provisions addresses instead of discovering them).
    pub fn from_host_index(index: u32) -> Self {
        let b = index.to_be_bytes();
        MacAddr([0x02, 0x1A, b[0], b[1], b[2], b[3]])
    }

    /// Whether the address is broadcast.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// A parsed or to-be-written Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Writes the header into the first [`HEADER_LEN`] bytes of `buf`.
    ///
    /// # Errors
    ///
    /// [`NetstackError::BufferTooSmall`] when `buf` is shorter than the
    /// header.
    pub fn write(&self, buf: &mut [u8]) -> Result<(), NetstackError> {
        if buf.len() < HEADER_LEN {
            return Err(NetstackError::BufferTooSmall {
                needed: HEADER_LEN,
                available: buf.len(),
            });
        }
        buf[0..6].copy_from_slice(&self.dst.0);
        buf[6..12].copy_from_slice(&self.src.0);
        buf[12..14].copy_from_slice(&self.ethertype.to_be_bytes());
        Ok(())
    }

    /// Parses the header from the start of `buf`.
    ///
    /// # Errors
    ///
    /// [`NetstackError::Truncated`] when `buf` is shorter than the header.
    pub fn parse(buf: &[u8]) -> Result<Self, NetstackError> {
        if buf.len() < HEADER_LEN {
            return Err(NetstackError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(Self {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: u16::from_be_bytes([buf[12], buf[13]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = EthernetHeader {
            dst: MacAddr::from_host_index(3),
            src: MacAddr::from_host_index(9),
            ethertype: ETHERTYPE_IPV4,
        };
        let mut buf = [0u8; 32];
        hdr.write(&mut buf).unwrap();
        assert_eq!(EthernetHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn short_buffers_are_rejected() {
        let hdr = EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::default(),
            ethertype: ETHERTYPE_IPV4,
        };
        let mut buf = [0u8; 13];
        assert!(matches!(
            hdr.write(&mut buf),
            Err(NetstackError::BufferTooSmall { needed: 14, .. })
        ));
        assert_eq!(
            EthernetHeader::parse(&buf[..4]),
            Err(NetstackError::Truncated)
        );
    }

    #[test]
    fn host_index_macs_are_unique_and_local() {
        let a = MacAddr::from_host_index(1);
        let b = MacAddr::from_host_index(2);
        assert_ne!(a, b);
        // Locally administered bit set, unicast.
        assert_eq!(a.0[0] & 0b11, 0b10);
        assert!(!a.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
    }

    #[test]
    fn display_formats_colon_separated() {
        let m = MacAddr([0x02, 0x1A, 0, 0, 0, 0x7F]);
        assert_eq!(m.to_string(), "02:1a:00:00:00:7f");
    }
}
