//! IPv4 header build/parse with header checksum.
//!
//! The stack never fragments (DF is always set): the paper's prototype
//! refuses in-stack fragmentation to preserve zero-copy receive (§8).

use crate::checksum::internet_checksum;
use crate::NetstackError;
use std::net::Ipv4Addr;

/// Length of the fixed IPv4 header (no options).
pub const HEADER_LEN: usize = 20;

/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// Default TTL for generated packets.
pub const DEFAULT_TTL: u8 = 64;

/// A parsed or to-be-written IPv4 header (no options supported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol (UDP for this stack).
    pub protocol: u8,
    /// Total length: header + payload, in bytes.
    pub total_len: u16,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (used only for diagnostics; no fragmentation).
    pub identification: u16,
}

impl Ipv4Header {
    /// Deterministic address for simulated host `index` in 10.0.0.0/16.
    pub fn addr_for_host(index: u32) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, (index >> 8) as u8, index as u8)
    }

    /// Writes the header (with checksum) into the first [`HEADER_LEN`]
    /// bytes of `buf`.
    ///
    /// # Errors
    ///
    /// [`NetstackError::BufferTooSmall`] when `buf` is too short.
    pub fn write(&self, buf: &mut [u8]) -> Result<(), NetstackError> {
        if buf.len() < HEADER_LEN {
            return Err(NetstackError::BufferTooSmall {
                needed: HEADER_LEN,
                available: buf.len(),
            });
        }
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = 0; // DSCP/ECN
        buf[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&self.identification.to_be_bytes());
        buf[6..8].copy_from_slice(&0x4000u16.to_be_bytes()); // DF, offset 0
        buf[8] = self.ttl;
        buf[9] = self.protocol;
        buf[10..12].fill(0); // checksum placeholder
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        let csum = internet_checksum(&buf[..HEADER_LEN], 0);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
        Ok(())
    }

    /// Parses and validates the header at the start of `buf`.
    ///
    /// # Errors
    ///
    /// * [`NetstackError::Truncated`] for short input.
    /// * [`NetstackError::Malformed`] for non-IPv4, options, or fragments.
    /// * [`NetstackError::BadChecksum`] when the header checksum fails.
    pub fn parse(buf: &[u8]) -> Result<Self, NetstackError> {
        if buf.len() < HEADER_LEN {
            return Err(NetstackError::Truncated);
        }
        if buf[0] >> 4 != 4 {
            return Err(NetstackError::Malformed("not IPv4"));
        }
        if buf[0] & 0x0F != 5 {
            return Err(NetstackError::Malformed("IPv4 options unsupported"));
        }
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        if flags_frag & 0x1FFF != 0 || flags_frag & 0x2000 != 0 {
            // Offset non-zero or MF set: this stack never fragments.
            return Err(NetstackError::Malformed("IP fragmentation unsupported"));
        }
        if internet_checksum(&buf[..HEADER_LEN], 0) != 0 {
            return Err(NetstackError::BadChecksum("IPv4 header"));
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if (total_len as usize) < HEADER_LEN {
            return Err(NetstackError::Malformed("total length below header"));
        }
        Ok(Self {
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            protocol: buf[9],
            total_len,
            ttl: buf[8],
            identification: u16::from_be_bytes([buf[4], buf[5]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Ipv4Header {
        Ipv4Header {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            protocol: PROTO_UDP,
            total_len: 48,
            ttl: DEFAULT_TTL,
            identification: 0xBEEF,
        }
    }

    #[test]
    fn roundtrip_and_checksum() {
        let hdr = header();
        let mut buf = [0u8; 20];
        hdr.write(&mut buf).unwrap();
        assert_eq!(internet_checksum(&buf, 0), 0, "self-verifying checksum");
        assert_eq!(Ipv4Header::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = [0u8; 20];
        header().write(&mut buf).unwrap();
        buf[16] ^= 0x01; // flip a destination bit
        assert_eq!(
            Ipv4Header::parse(&buf),
            Err(NetstackError::BadChecksum("IPv4 header"))
        );
    }

    #[test]
    fn fragments_are_rejected() {
        let mut buf = [0u8; 20];
        header().write(&mut buf).unwrap();
        // Set MF and refresh the checksum so only the fragment check fires.
        buf[6] = 0x20;
        buf[10..12].fill(0);
        let csum = internet_checksum(&buf, 0);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(
            Ipv4Header::parse(&buf),
            Err(NetstackError::Malformed("IP fragmentation unsupported"))
        );
    }

    #[test]
    fn non_ipv4_is_rejected() {
        let mut buf = [0u8; 20];
        header().write(&mut buf).unwrap();
        buf[0] = 0x65;
        assert_eq!(
            Ipv4Header::parse(&buf),
            Err(NetstackError::Malformed("not IPv4"))
        );
    }

    #[test]
    fn host_addresses_are_deterministic() {
        assert_eq!(Ipv4Header::addr_for_host(1), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(Ipv4Header::addr_for_host(258), Ipv4Addr::new(10, 0, 1, 2));
    }

    #[test]
    fn truncated_is_rejected() {
        assert_eq!(
            Ipv4Header::parse(&[0x45; 10]),
            Err(NetstackError::Truncated)
        );
    }
}
