//! Property-based tests for the wire formats and fragmentation.

use insane_netstack::fragment::{plan, MessageKey, Reassembler};
use insane_netstack::insane_hdr::{InsaneHeader, MessageKind, HEADER_LEN};
use insane_netstack::packet::{PacketBuilder, PacketView};
use insane_netstack::{ether::MacAddr, FRAME_OVERHEAD};
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    /// Any payload frames and parses back identically, with or without the
    /// UDP checksum.
    #[test]
    fn packet_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..2048),
                        src_port in 1u16..u16::MAX,
                        dst_port in 1u16..u16::MAX,
                        csum in any::<bool>()) {
        let mut buf = vec![0u8; FRAME_OVERHEAD + payload.len()];
        let len = PacketBuilder::new()
            .src_mac(MacAddr::from_host_index(0))
            .dst_mac(MacAddr::from_host_index(1))
            .src(Ipv4Addr::new(10, 0, 0, 1), src_port)
            .dst(Ipv4Addr::new(10, 0, 0, 2), dst_port)
            .udp_checksum(csum)
            .write(&mut buf, &payload)
            .unwrap();
        let view = PacketView::parse(&buf[..len]).unwrap();
        prop_assert_eq!(view.payload(), &payload[..]);
        prop_assert_eq!(view.udp().src_port, src_port);
        prop_assert_eq!(view.udp().dst_port, dst_port);
    }

    /// Flipping any single bit of a checksummed packet makes parsing fail
    /// (headers self-verify; payload is covered by the UDP checksum).
    #[test]
    fn corruption_never_passes_checksums(payload in proptest::collection::vec(any::<u8>(), 1..256),
                                         bit in 0usize..512) {
        let mut buf = vec![0u8; FRAME_OVERHEAD + payload.len()];
        let len = PacketBuilder::new()
            .src(Ipv4Addr::new(10, 0, 0, 1), 9)
            .dst(Ipv4Addr::new(10, 0, 0, 2), 9)
            .udp_checksum(true)
            .write(&mut buf, &payload)
            .unwrap();
        let bit = bit % (len * 8);
        let byte = bit / 8;
        // Skip fields not covered by any checksum: the Ethernet header
        // (14 bytes) and the UDP length/ports are covered; MACs are not.
        prop_assume!(byte >= 14);
        buf[byte] ^= 1 << (bit % 8);
        let parsed = PacketView::parse(&buf[..len]);
        if let Ok(view) = parsed {
            // The only acceptable outcome is a flip that the one's
            // complement arithmetic cannot distinguish (0x0000/0xFFFF
            // ambiguity); payload must still match in that case.
            prop_assert_eq!(view.payload().len(), payload.len());
        }
    }

    /// The INSANE header roundtrips all field values.
    #[test]
    fn insane_header_roundtrip(channel in any::<u32>(),
                               src_runtime in any::<u32>(),
                               seq in any::<u64>(),
                               tclass in 0u8..8,
                               frag_count in 1u16..100,
                               total_len in any::<u32>(),
                               ts in any::<u64>(),
                               kind_data in any::<bool>()) {
        let hdr = InsaneHeader {
            kind: if kind_data { MessageKind::Data } else { MessageKind::Control },
            traffic_class: tclass,
            channel,
            src_runtime,
            seq,
            frag_index: frag_count - 1,
            frag_count,
            total_len,
            timestamp_ns: ts,
        };
        let mut buf = [0u8; HEADER_LEN];
        hdr.write(&mut buf).unwrap();
        prop_assert_eq!(InsaneHeader::parse(&buf).unwrap(), hdr);
    }

    /// plan() tiles the message exactly: fragments are contiguous,
    /// non-overlapping, and cover [0, total_len).
    #[test]
    fn fragment_plan_tiles_exactly(total in 0usize..1_000_000, max in 1usize..20_000) {
        let frags = plan(total, max).unwrap();
        let mut cursor = 0usize;
        for (i, f) in frags.iter().enumerate() {
            prop_assert_eq!(f.index as usize, i);
            prop_assert_eq!(f.count as usize, frags.len());
            prop_assert_eq!(f.offset, cursor);
            prop_assert!(f.len <= max);
            cursor += f.len;
        }
        prop_assert_eq!(cursor, total);
    }

    /// Reassembly recovers the original message for any fragment size and
    /// any delivery permutation.
    #[test]
    fn reassembly_is_permutation_invariant(len in 1usize..50_000,
                                           max in 100usize..5_000,
                                           seed in any::<u64>()) {
        let message: Vec<u8> = (0..len).map(|i| (i as u64).wrapping_mul(seed.max(1)) as u8).collect();
        let mut frags = plan(len, max).unwrap();
        // Deterministic pseudo-shuffle.
        let n = frags.len();
        for i in 0..n {
            let j = (seed as usize).wrapping_mul(i + 1) % n;
            frags.swap(i, j);
        }
        let mut r = Reassembler::new(4);
        let key = MessageKey { src_runtime: 0, channel: 0, seq: 1 };
        let mut out = None;
        for f in &frags {
            if let Some(m) = r
                .offer(key, f.index, f.count, len, f.offset, &message[f.offset..f.offset + f.len])
                .unwrap()
            {
                out = Some(m);
            }
        }
        prop_assert_eq!(out.expect("complete"), message);
    }
}
