//! Crash isolation e2e: `kill -9` a client mid-stream and prove the
//! daemon (a) force-reclaims every slot the corpse held, and (b) never
//! disturbs a concurrent session, which keeps streaming in order
//! throughout.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use insane_ipc::IpcClient;

/// Spawns `insaned` on a unique socket and waits for its ready line.
fn spawn_daemon(tag: &str) -> (Child, PathBuf) {
    let socket =
        std::env::temp_dir().join(format!("insane-crash-{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let mut child = Command::new(env!("CARGO_BIN_EXE_insaned"))
        .args(["--socket"])
        .arg(&socket)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn insaned");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut ready = String::new();
    BufReader::new(stdout)
        .read_line(&mut ready)
        .expect("daemon ready line");
    assert!(ready.starts_with("insaned listening on"));
    (child, socket)
}

const CRASHER_SLOTS: usize = 12;

#[test]
fn killing_a_client_reclaims_its_slots_and_spares_its_neighbor() {
    let (mut daemon, socket) = spawn_daemon("kill9");

    // The survivor attaches first and starts streaming.
    let mut survivor = IpcClient::attach(&socket, "survivor", "fast").expect("attach survivor");
    let stream = survivor.create_stream("steady").expect("stream");

    // The victim: checks out CRASHER_SLOTS slots (half held, half
    // in-flight) and then waits for SIGKILL.
    let mut crasher = Command::new(env!("CARGO_BIN_EXE_insane-ipc-crasher"))
        .arg(&socket)
        .arg("hold")
        .arg(CRASHER_SLOTS.to_string())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn crasher");
    let crasher_out = crasher.stdout.take().expect("crasher stdout");
    let mut ready = String::new();
    BufReader::new(crasher_out)
        .read_line(&mut ready)
        .expect("crasher ready line");
    assert!(
        ready.starts_with("crasher ready in_use="),
        "unexpected crasher line: {ready:?}"
    );

    // Pump the survivor both before and after the kill; every message
    // must come back in order, unaffected by the neighbor's death.
    let mut next_seq: u64 = 0;
    let mut pump = |client: &mut IpcClient, n: u64| {
        let start = next_seq;
        while next_seq < start + n {
            let mut guard = client.lend(8).expect("survivor lend");
            guard.copy_from_slice(&next_seq.to_le_bytes());
            client.emit(stream, guard).expect("survivor emit");
            loop {
                if let Some((got_stream, view)) = client.try_recv() {
                    assert_eq!(got_stream, stream);
                    let mut seq = [0u8; 8];
                    seq.copy_from_slice(&view[..8]);
                    assert_eq!(u64::from_le_bytes(seq), next_seq, "survivor lost order");
                    break;
                }
                std::thread::yield_now();
            }
            next_seq += 1;
        }
    };
    pump(&mut survivor, 500);

    // SIGKILL: no destructor runs in the victim, its control socket
    // closes from the kernel side, and the daemon must notice.
    crasher.kill().expect("kill -9 crasher");
    crasher.wait().expect("reap crasher");

    // Keep the survivor streaming while the daemon detects the death
    // and reclaims; poll the daemon's counters until it reports done.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        pump(&mut survivor, 50);
        let stats = survivor.daemon_stats().expect("daemon stats");
        if stats.reclaims >= 1 {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never reclaimed the crashed session: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(stats.reclaimed_slots as usize, CRASHER_SLOTS);
    assert_eq!(stats.leaked_slots, 0, "crash leaked slots: {stats:?}");
    assert!(stats.last_reclaim_ns > 0, "reclaim latency not recorded");
    assert_eq!(stats.sessions, 1, "survivor's session went with the crash");

    // The survivor is genuinely untouched: more in-order traffic, and
    // its pool reconciles to zero outstanding checkouts.
    pump(&mut survivor, 500);
    assert_eq!(survivor.pool().stats().in_use, 0);
    assert_eq!(survivor.pool().stats().misuse_rejections, 0);

    // `in_use` across the daemon now counts only live sessions — the
    // crashed pool was reclaimed, the survivor holds nothing.
    let stats = survivor.daemon_stats().expect("final stats");
    assert_eq!(stats.in_use, 0, "daemon-wide checkouts did not reconcile");

    survivor.request_shutdown().expect("shutdown");
    survivor.detach().expect("detach");
    assert!(daemon.wait().expect("daemon exit").success());
}
