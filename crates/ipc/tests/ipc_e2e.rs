//! End-to-end cross-process datapath test: a real `insaned` daemon in
//! its own OS process, ≥10⁵ messages round-tripped through the shared
//! segment, with three properties asserted along the way:
//!
//! 1. **Per-stream ordering** — every received payload carries the next
//!    expected sequence number.
//! 2. **Zero copies** — each received view points into the `mmap`ed
//!    segment itself (`contains_ptr`), never a private buffer.
//! 3. **Zero allocations** — the steady-state `lend → emit → try_recv →
//!    drop` loop performs no heap allocation in this process (counting
//!    global allocator), mirroring `crates/telemetry/tests/overhead.rs`.
//!
//! One `#[test]` only: the allocation counter is global, and a second
//! concurrent test would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use insane_ipc::IpcClient;

/// Counts every heap allocation made through the global allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic increment with no other side effects, so every
// GlobalAlloc contract (layout fidelity, uniqueness, deallocation
// pairing) is exactly the system allocator's.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: callers uphold the GlobalAlloc contract (nonzero-size
    // layout); this wrapper adds no requirements of its own.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged from our caller, which
        // upholds the GlobalAlloc contract for it.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: callers pass a pointer previously returned by `alloc`
    // with the same layout, per the GlobalAlloc contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching `alloc` through
        // this same wrapper, which allocated via `System`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Spawns `insaned` on a unique socket and waits for its ready line.
fn spawn_daemon(tag: &str) -> (Child, PathBuf) {
    let socket = std::env::temp_dir().join(format!("insane-e2e-{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let mut child = Command::new(env!("CARGO_BIN_EXE_insaned"))
        .args(["--socket"])
        .arg(&socket)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn insaned");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut ready = String::new();
    BufReader::new(stdout)
        .read_line(&mut ready)
        .expect("daemon ready line");
    assert!(
        ready.starts_with("insaned listening on"),
        "unexpected ready line: {ready:?}"
    );
    (child, socket)
}

const MESSAGES: u64 = 120_000;

#[test]
fn cross_process_datapath_is_ordered_zero_copy_and_allocation_free() {
    let (mut daemon, socket) = spawn_daemon("datapath");

    let mut client = IpcClient::attach(&socket, "e2e", "fast").expect("attach");
    let stream = client.create_stream("seq").expect("stream");

    // Warm up: one full round trip so any lazy one-time allocation in
    // the path happens before the counter snapshot.
    {
        let mut guard = client.lend(8).expect("warmup lend");
        guard.copy_from_slice(&0u64.to_le_bytes());
        client.emit(stream, guard).expect("warmup emit");
        loop {
            if let Some((_, view)) = client.try_recv() {
                drop(view);
                break;
            }
            std::thread::yield_now();
        }
    }

    let stats_before = client.pool().stats();
    assert_eq!(stats_before.in_use, 0, "warmup leaked a checkout");
    let allocs_before = allocations();

    // Steady state: keep a few messages in flight, assert ordering and
    // zero-copy on every receive.  `next_send` is the sequence number to
    // stamp next; `next_recv` the one we must see next.
    let mut next_send: u64 = 1; // 0 was the warmup
    let mut next_recv: u64 = 1;
    let window: u64 = 16; // < ring capacity and < slot count
    while next_recv <= MESSAGES {
        while next_send <= MESSAGES && next_send - next_recv < window {
            let mut guard = match client.lend(8) {
                Ok(guard) => guard,
                Err(_) => break, // pool back-pressure: drain first
            };
            guard.copy_from_slice(&next_send.to_le_bytes());
            match client.emit(stream, guard) {
                Ok(()) => next_send += 1,
                Err(guard) => {
                    drop(guard); // ring full: return the slot, drain
                    break;
                }
            }
        }
        let mut progressed = false;
        while let Some((got_stream, view)) = client.try_recv() {
            assert_eq!(got_stream, stream);
            assert!(
                client.segment().contains_ptr(view.as_ptr()),
                "received payload is outside the shared segment: not zero-copy"
            );
            let mut seq = [0u8; 8];
            seq.copy_from_slice(&view[..8]);
            assert_eq!(u64::from_le_bytes(seq), next_recv, "out-of-order delivery");
            next_recv += 1;
            progressed = true;
        }
        if !progressed {
            // Single-core runners: let the daemon's datapath thread in.
            std::thread::yield_now();
        }
    }

    let allocs_after = allocations();
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "steady-state datapath allocated on the heap"
    );

    // Every checkout came home: the pool reconciles to zero leaks.
    let stats_after = client.pool().stats();
    assert_eq!(stats_after.in_use, 0, "datapath leaked slot checkouts");
    assert_eq!(
        stats_after.misuse_rejections, 0,
        "token discipline violated"
    );
    assert!(stats_after.acquires >= MESSAGES);

    // Clean shutdown: daemon exits and removes its socket.
    client.request_shutdown().expect("shutdown request");
    client.detach().expect("detach");
    let status = daemon.wait().expect("daemon exit");
    assert!(status.success(), "daemon exited with {status:?}");
    assert!(
        !socket.exists(),
        "daemon left its control socket behind on clean shutdown"
    );
}
