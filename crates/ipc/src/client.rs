//! The thin client library: what an application links instead of the
//! whole runtime (paper Fig. 3).
//!
//! `attach` performs the entire slow path once — connect, version
//! handshake, receive the segment fd over `SCM_RIGHTS`, `mmap`, attach
//! the pool and rings.  After that the per-message path is
//! `lend → emit` / `try_recv → drop`, which touches only the shared
//! segment: no syscalls, no copies, no allocation.

use std::io::Write;
use std::os::fd::{AsRawFd, FromRawFd};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;

use insane_memory::{Segment, SlotGuard, SlotPool, SlotToken, SlotView};
use insane_queues::{ring_bytes, ShmConsumer, ShmProducer};

use crate::proto::{AttachAck, LineBuf, PROTO_VERSION};
use crate::server::ServerStatsSnapshot;
use crate::{shm, sys, IpcError};

/// A client session with the runtime daemon.
///
/// Deliberately `!Sync` (the ring endpoints are single-owner); the
/// whole session can move to the thread that runs the application's
/// datapath.
pub struct IpcClient {
    control: UnixStream,
    lines: LineBuf,
    session: u64,
    segment: Segment,
    pool: SlotPool,
    /// Client → daemon descriptor ring.
    tx: ShmProducer,
    /// Daemon → client descriptor ring.
    rx: ShmConsumer,
}

impl core::fmt::Debug for IpcClient {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("IpcClient")
            .field("session", &self.session)
            .field("pool", &self.pool)
            .finish()
    }
}

impl IpcClient {
    /// Attaches to the daemon serving `socket`: handshake, fd transfer,
    /// segment mapping, pool + ring attach.
    ///
    /// # Errors
    ///
    /// [`IpcError::Io`] on socket/mmap failures, [`IpcError::Protocol`]
    /// on a version refusal or malformed ack.
    pub fn attach(socket: &Path, tenant: &str, qos: &str) -> Result<Self, IpcError> {
        let mut control = UnixStream::connect(socket)?;
        control.write_all(format!("attach {PROTO_VERSION} {tenant} {qos}\n").as_bytes())?;

        // The ack line and the SCM_RIGHTS fd arrive together; collect
        // bytes until the newline, keeping whichever chunk carried the
        // descriptor.
        let mut lines = LineBuf::new();
        let mut seg_fd: Option<std::fs::File> = None;
        let line = loop {
            if let Some(line) = lines.take_line()? {
                break line;
            }
            let mut chunk = [0u8; 512];
            let (n, fd) = sys::recv_with_fd(control.as_raw_fd(), &mut chunk)?;
            if n == 0 {
                return Err(IpcError::Protocol("daemon hung up during attach".into()));
            }
            if let Some(fd) = fd {
                // SAFETY: the kernel just installed this descriptor for
                // us; nothing else owns it.
                seg_fd = Some(unsafe { std::fs::File::from_raw_fd(fd) });
            }
            lines.extend(&chunk[..n]);
        };
        if line.starts_with("err") {
            return Err(IpcError::Protocol(line));
        }
        let ack = AttachAck::parse(&line)?;
        let file = seg_fd
            .ok_or_else(|| IpcError::Protocol("attach ack carried no segment descriptor".into()))?;

        // Validate the ack's layout against itself before trusting any
        // offset: both rings and the pool must fit the declared length.
        let ring_len = ring_bytes(ack.ring_capacity);
        if !ack.ring_capacity.is_power_of_two()
            || ack
                .tx_off
                .checked_add(ring_len)
                .is_none_or(|e| e > ack.seg_len)
            || ack
                .rx_off
                .checked_add(ring_len)
                .is_none_or(|e| e > ack.seg_len)
            || ack.pool_off >= ack.seg_len
        {
            return Err(IpcError::Protocol(
                "attach ack layout is inconsistent".into(),
            ));
        }

        let segment = shm::map_segment(&file, ack.seg_len)?;
        drop(file); // the mapping keeps the pages alive
        let pool =
            SlotPool::attach_segment(segment.slice(ack.pool_off, ack.tx_off - ack.pool_off)?)?;
        if pool.slot_size() != ack.slot_size || pool.slot_count() != ack.slot_count {
            return Err(IpcError::Protocol(
                "segment pool header disagrees with attach ack".into(),
            ));
        }
        let keep: Arc<dyn core::any::Any + Send + Sync> = Arc::new(segment.clone());
        // SAFETY: offsets were bounds-checked against `seg_len` above,
        // the daemon initialized the ring regions, the `keep` Arc pins
        // the mapping, and this client holds exactly the producer end of
        // TX and the consumer end of RX (the daemon holds the others).
        let (tx, rx) = unsafe {
            (
                ShmProducer::attach(
                    segment.base_ptr().add(ack.tx_off),
                    ack.ring_capacity,
                    Some(Arc::clone(&keep)),
                ),
                ShmConsumer::attach(
                    segment.base_ptr().add(ack.rx_off),
                    ack.ring_capacity,
                    Some(keep),
                ),
            )
        };
        Ok(Self {
            control,
            lines,
            session: ack.session,
            segment,
            pool,
            tx,
            rx,
        })
    }

    /// Daemon-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The shared segment (for zero-copy address-range assertions).
    pub fn segment(&self) -> &Segment {
        &self.segment
    }

    /// The session's slot pool.
    pub fn pool(&self) -> &SlotPool {
        &self.pool
    }

    fn request(&mut self, line: &str) -> Result<String, IpcError> {
        self.control.write_all(line.as_bytes())?;
        self.control.write_all(b"\n")?;
        match self.lines.read_line(&mut self.control)? {
            Some(reply) if reply.starts_with("err") => Err(IpcError::Protocol(reply)),
            Some(reply) => Ok(reply),
            None => Err(IpcError::SessionDead),
        }
    }

    /// Creates a stream and returns its id.
    ///
    /// # Errors
    ///
    /// [`IpcError::Protocol`] on daemon refusal, [`IpcError::Io`] on a
    /// dead control socket.
    pub fn create_stream(&mut self, name: &str) -> Result<u32, IpcError> {
        let reply = self.request(&format!("stream-create {name}"))?;
        reply
            .strip_prefix("ok stream ")
            .and_then(|id| id.trim().parse().ok())
            .ok_or(IpcError::Protocol(reply))
    }

    /// Destroys a stream.
    ///
    /// # Errors
    ///
    /// As [`IpcClient::create_stream`].
    pub fn destroy_stream(&mut self, id: u32) -> Result<(), IpcError> {
        self.request(&format!("stream-destroy {id}")).map(|_| ())
    }

    /// Sends a heartbeat (also what keeps an idle session alive past the
    /// daemon's timeout).
    ///
    /// # Errors
    ///
    /// As [`IpcClient::create_stream`].
    pub fn heartbeat(&mut self) -> Result<(), IpcError> {
        self.request("hb").map(|_| ())
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// As [`IpcClient::create_stream`].
    pub fn daemon_stats(&mut self) -> Result<ServerStatsSnapshot, IpcError> {
        let reply = self.request("stats")?;
        ServerStatsSnapshot::parse(&reply)
    }

    /// Asks the daemon to exit after this connection closes.
    ///
    /// # Errors
    ///
    /// As [`IpcClient::create_stream`].
    pub fn request_shutdown(&mut self) -> Result<(), IpcError> {
        self.request("shutdown").map(|_| ())
    }

    /// Lends a slot from the shared pool for a `len`-byte message.
    ///
    /// # Errors
    ///
    /// [`IpcError::Memory`] on exhaustion (back-pressure: release or
    /// retry).
    // insane-lint: hot-path-root
    pub fn lend(&self, len: usize) -> Result<SlotGuard, IpcError> {
        Ok(self.pool.acquire(len)?)
    }

    /// Emits a filled slot on `stream`: pushes the 16-byte descriptor,
    /// transferring ownership of the checkout to the daemon.  On a full
    /// TX ring the guard is handed back untouched (nothing was sent).
    // insane-lint: hot-path-root
    pub fn emit(&self, stream: u32, guard: SlotGuard) -> Result<(), SlotGuard> {
        let (word0, word1) = guard.token().to_wire();
        // insane-lint: allow(hot-path-alloc) -- ShmProducer::push writes a fixed-capacity shared ring; it never allocates
        match self.tx.push([word0, word1 | ((stream as u64) << 32)]) {
            Ok(()) => {
                // The descriptor now in the TX ring owns the checkout;
                // the daemon (or a force-reclaim) releases it.
                // insane-lint: allow(slot-token-drop) -- ownership transferred to the in-flight descriptor pushed above
                let _ = guard.into_token();
                Ok(())
            }
            Err(_) => Err(guard),
        }
    }

    /// Polls the RX ring: returns the next `(stream, message)` if one is
    /// waiting.  The view borrows the shared segment directly — zero
    /// copies — and releases the slot when dropped.
    // insane-lint: hot-path-root
    pub fn try_recv(&self) -> Option<(u32, SlotView)> {
        let [word0, word1] = self.rx.pop()?;
        let stream = (word1 >> 32) as u32;
        let token = SlotToken::from_wire(self.pool.pool_id(), word0, word1 & u64::from(u32::MAX));
        // A stale token here means the daemon force-reclaimed this
        // session out from under us; surface it as "nothing received".
        let view = self.pool.view(token).ok()?;
        Some((stream, view))
    }

    /// Gracefully detaches: the daemon retires the session and reclaims
    /// whatever the application still held.
    ///
    /// # Errors
    ///
    /// As [`IpcClient::create_stream`] (the session is gone regardless).
    pub fn detach(mut self) -> Result<(), IpcError> {
        self.request("detach").map(|_| ())
    }
}
