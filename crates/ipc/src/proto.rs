//! The versioned control-plane line protocol.
//!
//! One request line, one response line, UTF-8, newline-terminated —
//! the same shape as the runtime introspection endpoint this protocol
//! grew out of, so `nc -U` remains a debugging tool.  The only binary
//! element is the shared-segment descriptor riding the attach ack as an
//! `SCM_RIGHTS` control message.
//!
//! ```text
//! client → daemon                      daemon → client
//! ---------------                      ---------------
//! attach insane-ipc-v1 <tenant> <qos>  ok attach <session> <slot_size>
//!                                        <slot_count> <ring_cap>
//!                                        <pool_off> <tx_off> <rx_off>
//!                                        <seg_len>            (+ fd)
//! stream-create <name>                 ok stream <id>
//! stream-destroy <id>                  ok
//! hb                                   ok
//! probe                                ok probe insane-ipc-v1
//! stats                                ok stats k=v k=v …
//! detach                               ok
//! anything else                        err <reason>
//! ```
//!
//! The attach line carries the protocol version; a daemon refuses a
//! mismatched client with a typed `err`, so an old library never maps a
//! segment whose layout it misreads.

use std::io::Read;

use crate::IpcError;

/// Protocol identifier sent in every `attach` and answered by `probe`.
pub const PROTO_VERSION: &str = "insane-ipc-v1";

/// Hard cap on a control line; anything longer is a protocol error.
pub const MAX_LINE: usize = 4096;

/// Everything a client needs to join a session: the identifiers of the
/// shared segment's regions.  All offsets are segment-relative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttachAck {
    /// Daemon-assigned session id.
    pub session: u64,
    /// Slot size of the session pool, bytes.
    pub slot_size: usize,
    /// Slot count of the session pool.
    pub slot_count: usize,
    /// Capacity of each descriptor ring.
    pub ring_capacity: usize,
    /// Pool region offset within the segment.
    pub pool_off: usize,
    /// Client→daemon descriptor ring offset.
    pub tx_off: usize,
    /// Daemon→client descriptor ring offset.
    pub rx_off: usize,
    /// Total segment length, bytes.
    pub seg_len: usize,
}

impl AttachAck {
    /// Formats the ack as its response line (without the fd).
    pub fn to_line(&self) -> String {
        format!(
            "ok attach {} {} {} {} {} {} {} {}",
            self.session,
            self.slot_size,
            self.slot_count,
            self.ring_capacity,
            self.pool_off,
            self.tx_off,
            self.rx_off,
            self.seg_len
        )
    }

    /// Parses an `ok attach …` response line.
    ///
    /// # Errors
    ///
    /// [`IpcError::Protocol`] on a malformed or non-attach line.
    pub fn parse(line: &str) -> Result<Self, IpcError> {
        let mut words = line.split_ascii_whitespace();
        if words.next() != Some("ok") || words.next() != Some("attach") {
            return Err(IpcError::Protocol(format!("not an attach ack: {line:?}")));
        }
        let mut field = || -> Result<u64, IpcError> {
            words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| IpcError::Protocol(format!("malformed attach ack: {line:?}")))
        };
        Ok(Self {
            session: field()?,
            slot_size: field()? as usize,
            slot_count: field()? as usize,
            ring_capacity: field()? as usize,
            pool_off: field()? as usize,
            tx_off: field()? as usize,
            rx_off: field()? as usize,
            seg_len: field()? as usize,
        })
    }
}

/// Incremental line reader over a byte stream (control sockets are
/// `SOCK_STREAM`: one logical line may arrive in several reads, or two
/// lines in one).
#[derive(Debug, Default)]
pub struct LineBuf {
    pending: Vec<u8>,
}

impl LineBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next buffered line without reading, if one is
    /// complete.
    ///
    /// # Errors
    ///
    /// [`IpcError::Protocol`] on non-UTF-8 lines or lines over
    /// [`MAX_LINE`].
    pub fn take_line(&mut self) -> Result<Option<String>, IpcError> {
        if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
            let rest = self.pending.split_off(pos + 1);
            let mut line = core::mem::replace(&mut self.pending, rest);
            line.pop(); // the newline
            let line = String::from_utf8(line)
                .map_err(|_| IpcError::Protocol("non-UTF-8 control line".into()))?;
            return Ok(Some(line));
        }
        if self.pending.len() > MAX_LINE {
            return Err(IpcError::Protocol("control line exceeds MAX_LINE".into()));
        }
        Ok(None)
    }

    /// Appends raw bytes received out-of-band (e.g. alongside an
    /// `SCM_RIGHTS` message).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.pending.extend_from_slice(bytes);
    }

    /// Reads from `stream` until a full line is available or EOF.
    /// Returns `Ok(None)` on EOF; I/O timeouts surface as `Io` errors
    /// for the caller to interpret.
    ///
    /// # Errors
    ///
    /// [`IpcError::Io`] on read failures (including timeouts),
    /// [`IpcError::Protocol`] on malformed lines.
    pub fn read_line(&mut self, stream: &mut impl Read) -> Result<Option<String>, IpcError> {
        loop {
            if let Some(line) = self.take_line()? {
                return Ok(Some(line));
            }
            let mut chunk = [0u8; 256];
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Ok(None);
            }
            self.pending.extend_from_slice(&chunk[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_ack_round_trips() {
        let ack = AttachAck {
            session: 42,
            slot_size: 2048,
            slot_count: 256,
            ring_capacity: 64,
            pool_off: 0,
            tx_off: 4096,
            rx_off: 8192,
            seg_len: 12288,
        };
        assert_eq!(AttachAck::parse(&ack.to_line()).unwrap(), ack);
    }

    #[test]
    fn malformed_acks_are_typed_errors() {
        for bad in ["", "ok", "err no", "ok attach 1 2 three", "ok attach 1"] {
            assert!(matches!(AttachAck::parse(bad), Err(IpcError::Protocol(_))));
        }
    }

    #[test]
    fn line_buf_splits_coalesced_and_partial_lines() {
        let mut buf = LineBuf::new();
        buf.extend(b"first\nsec");
        assert_eq!(buf.take_line().unwrap().as_deref(), Some("first"));
        assert_eq!(buf.take_line().unwrap(), None);
        buf.extend(b"ond\n");
        assert_eq!(buf.take_line().unwrap().as_deref(), Some("second"));
    }

    #[test]
    fn oversized_lines_are_rejected() {
        let mut buf = LineBuf::new();
        buf.extend(&vec![b'x'; MAX_LINE + 1]);
        assert!(buf.take_line().is_err());
    }
}
