//! Unix-domain socket lifecycle shared by the daemon control socket and
//! the runtime introspection endpoint (`crates/core`).
//!
//! The naive `UnixListener::bind(path)` has two long-standing problems
//! this module fixes once for both sockets:
//!
//! * **Stale files.** A crashed daemon leaves its socket file behind and
//!   every rebind fails with `AddrInUse`.  Blindly unlinking before bind
//!   is worse — it silently evicts a *live* daemon.  [`bind_guarded`]
//!   probes instead: on `AddrInUse` it connects to the path; a refused
//!   connection proves the file is stale (unlink and rebind), a
//!   successful one proves a live owner ([`IpcError::AlreadyRunning`]).
//! * **Permissions.** Session sockets accept attach requests and hand
//!   out shared-memory descriptors, so the file is chmod'ed `0600`
//!   before the first accept.
//!
//! The returned [`BoundSocket`] removes the file on drop, covering
//! clean shutdown.

use std::fs;
use std::os::unix::fs::PermissionsExt;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

use crate::IpcError;

/// A bound listener that owns its socket file: the file is created
/// `0600` and unlinked when the guard drops.
#[derive(Debug)]
pub struct BoundSocket {
    listener: UnixListener,
    path: PathBuf,
}

impl BoundSocket {
    /// The listening socket.
    pub fn listener(&self) -> &UnixListener {
        &self.listener
    }

    /// Path of the socket file this guard owns.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for BoundSocket {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Binds `path`, recovering from stale socket files left by a crashed
/// process (probe-then-unlink, never blind unlink) and restricting the
/// file to `0600`.
///
/// # Errors
///
/// * [`IpcError::AlreadyRunning`] if a live listener already serves the
///   path.
/// * [`IpcError::Io`] for every other bind/probe/chmod failure.
pub fn bind_guarded(path: &Path) -> Result<BoundSocket, IpcError> {
    let listener = match UnixListener::bind(path) {
        Ok(listener) => listener,
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            // The file exists.  Probe it: a live owner accepts (or at
            // least does not refuse); a stale file refuses the connect.
            match UnixStream::connect(path) {
                Ok(_) => return Err(IpcError::AlreadyRunning),
                Err(probe) if probe.kind() == std::io::ErrorKind::ConnectionRefused => {
                    fs::remove_file(path)?;
                    UnixListener::bind(path)?
                }
                Err(probe) => return Err(IpcError::Io(probe)),
            }
        }
        Err(e) => return Err(IpcError::Io(e)),
    };
    fs::set_permissions(path, fs::Permissions::from_mode(0o600))?;
    Ok(BoundSocket {
        listener,
        path: path.to_path_buf(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("insane-uds-{}-{name}.sock", std::process::id()))
    }

    #[test]
    fn bind_creates_a_private_socket_and_cleans_up() {
        let path = scratch("clean");
        let _ = fs::remove_file(&path);
        let bound = bind_guarded(&path).unwrap();
        let mode = fs::metadata(&path).unwrap().permissions().mode();
        assert_eq!(mode & 0o777, 0o600, "socket must be private");
        drop(bound);
        assert!(!path.exists(), "clean shutdown removes the file");
    }

    #[test]
    fn stale_socket_file_is_unlinked_and_rebound() {
        let path = scratch("stale");
        let _ = fs::remove_file(&path);
        // Simulate a crashed daemon: bind, then leak the file by
        // dropping the listener without the guard's cleanup.
        let dead = UnixListener::bind(&path).unwrap();
        drop(dead);
        assert!(path.exists(), "precondition: stale file left behind");
        let bound = bind_guarded(&path).unwrap();
        // And the recovered socket actually accepts.
        bound.listener().set_nonblocking(true).unwrap();
        let _client = UnixStream::connect(&path).unwrap();
        drop(bound);
        assert!(!path.exists());
    }

    #[test]
    fn live_socket_is_not_evicted() {
        let path = scratch("live");
        let _ = fs::remove_file(&path);
        let first = bind_guarded(&path).unwrap();
        assert!(matches!(bind_guarded(&path), Err(IpcError::AlreadyRunning)));
        assert!(path.exists(), "the live owner keeps its socket");
        drop(first);
    }
}
