//! Shared-memory segment transport: anonymous `/dev/shm` files mapped
//! into each participating process and wrapped as
//! [`insane_memory::Segment`]s.
//!
//! The daemon creates one file per session, unlinks it immediately
//! (anonymous-memfd semantics without relying on `memfd_create`'s
//! glibc wrapper), sizes it, maps it, and passes the descriptor to the
//! client in the attach ack via `SCM_RIGHTS`.  Both processes then hold
//! the same pages at different virtual addresses — which is exactly the
//! situation the segment/offset discipline in `insane-memory` exists
//! for.

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};

use insane_memory::Segment;

use crate::sys;
use crate::IpcError;

/// Owner of one `mmap` region; dropping the last [`Segment`] handle
/// unmaps it.
struct Mapping {
    base: *mut u8,
    len: usize,
}

// SAFETY: the raw pointer is only used by `Drop`; all byte access goes
// through the `Segment` protocols.
unsafe impl Send for Mapping {}
// SAFETY: as above.
unsafe impl Sync for Mapping {}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `base`/`len` denote the single mapping created in
        // `map_segment`, and the owning `Segment` is gone.
        unsafe { sys::unmap(self.base, self.len) };
    }
}

static SEGMENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Creates an anonymous shared-memory file of `len` bytes.
///
/// The file is created `0600` under `/dev/shm` (tmpfs, so "file" means
/// RAM) with a collision-free name and unlinked before this function
/// returns: from then on only descriptors reference it, and the kernel
/// reclaims the pages when the last one closes — no stale segment files
/// after a crash.
///
/// # Errors
///
/// I/O errors from creation or sizing.
pub fn create_segment_file(len: usize) -> io::Result<File> {
    use std::os::unix::fs::OpenOptionsExt;
    let seq = SEGMENT_SEQ.fetch_add(1, Ordering::Relaxed);
    let path =
        std::path::Path::new("/dev/shm").join(format!("insane-seg-{}-{}", std::process::id(), seq));
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .mode(0o600)
        .open(&path)?;
    let unlink = std::fs::remove_file(&path);
    file.set_len(len as u64)?;
    unlink?;
    Ok(file)
}

/// Maps `len` bytes of `file` shared and wraps them as a [`Segment`].
///
/// The mapping outlives `file` (the caller may close the descriptor;
/// the daemon keeps it open only long enough to pass it on) and is
/// released when the last `Segment` handle drops.
///
/// # Errors
///
/// [`IpcError::Io`] if the `mmap` fails.
pub fn map_segment(file: &File, len: usize) -> Result<Segment, IpcError> {
    let base = sys::map_shared(file.as_raw_fd(), len)?;
    // SAFETY: `base` points to `len` freshly mapped read-write bytes;
    // the `Mapping` keep-alive owns them and unmaps on final drop; the
    // segment is the region's only alias in this process.
    Ok(unsafe { Segment::from_raw(base, len, Box::new(Mapping { base, len })) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::Ordering;

    #[test]
    fn two_mappings_of_one_file_share_bytes() {
        let file = create_segment_file(8192).unwrap();
        let a = map_segment(&file, 8192).unwrap();
        let b = map_segment(&file, 8192).unwrap();
        assert_ne!(a.base_ptr(), b.base_ptr(), "independent mappings");
        a.atomic_u64(64).store(0xfeed, Ordering::Release);
        assert_eq!(b.atomic_u64(64).load(Ordering::Acquire), 0xfeed);
    }

    #[test]
    fn segment_file_is_anonymous() {
        let file = create_segment_file(4096).unwrap();
        // The path was unlinked at creation; only the fd keeps it alive.
        let seg = map_segment(&file, 4096).unwrap();
        drop(file);
        seg.atomic_u64(0).store(7, Ordering::Relaxed);
        assert_eq!(seg.atomic_u64(0).load(Ordering::Relaxed), 7);
    }

    #[test]
    fn pool_created_in_one_mapping_attaches_in_another() {
        use insane_memory::{PoolConfig, SlotPool};
        let config = PoolConfig::new(5, 64, 8);
        let len = SlotPool::required_segment_len(&config).unwrap();
        let file = create_segment_file(len).unwrap();
        let creator_map = map_segment(&file, len).unwrap();
        let attacher_map = map_segment(&file, len).unwrap();
        let creator = SlotPool::create_in_segment(config, creator_map).unwrap();
        let attached = SlotPool::attach_segment(attacher_map).unwrap();
        let mut g = creator.acquire(2).unwrap();
        g.copy_from_slice(b"hi");
        let t = g.into_token();
        let v = attached.view(t).unwrap();
        assert_eq!(&*v, b"hi");
        drop(v);
        assert_eq!(creator.free_slots(), 8);
    }
}
