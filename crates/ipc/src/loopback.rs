//! The in-process twin of a daemon session: the same segment-backed
//! pool, the same offset-addressed descriptor rings, the same forwarder
//! loop — minus the OS process boundary.
//!
//! This is the control arm of the process-split experiment
//! (`BENCH_ipc.json`): a round trip through [`InProcessLoop`] crosses
//! every structure a daemon round trip crosses, so the difference
//! between the two is exactly what the process boundary costs.  It is
//! also a convenient harness for exercising the datapath structures
//! without spawning a daemon.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use insane_memory::{PoolConfig, Segment, SlotGuard, SlotPool, SlotToken, SlotView};
use insane_queues::{ring_bytes, Descriptor, ShmConsumer, ShmProducer};

use crate::IpcError;

/// The daemon datapath's burst size, mirrored by the forwarder.
const BURST: usize = 64;
/// The daemon datapath's idle sleep, mirrored by the forwarder.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// A complete client↔runtime datapath inside one process: heap segment,
/// pool, TX/RX descriptor rings, and a forwarder thread running the
/// daemon's loop (bursts, pending holdover, idle sleep).
///
/// The API mirrors [`crate::IpcClient`]'s hot path — `lend → emit` /
/// `try_recv → drop` — so a benchmark can drive both with the same
/// code.
pub struct InProcessLoop {
    pool: SlotPool,
    tx: ShmProducer,
    rx: ShmConsumer,
    stop: Arc<AtomicBool>,
    forwarder: Option<std::thread::JoinHandle<()>>,
}

impl core::fmt::Debug for InProcessLoop {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("InProcessLoop")
            .field("pool", &self.pool)
            .finish()
    }
}

impl InProcessLoop {
    /// Builds the loop: segment, pool, rings, forwarder thread.
    ///
    /// # Errors
    ///
    /// [`IpcError::Memory`] if the pool configuration is rejected,
    /// [`IpcError::Io`] if the forwarder thread cannot spawn.
    pub fn new(
        slot_size: usize,
        slot_count: usize,
        ring_capacity: usize,
    ) -> Result<Self, IpcError> {
        let config = PoolConfig::new(u16::MAX, slot_size, slot_count);
        let pool_len = SlotPool::required_segment_len(&config)?;
        let ring_len = (ring_bytes(ring_capacity) + 63) & !63;
        let tx_off = pool_len;
        let rx_off = pool_len + ring_len;
        let segment = Segment::heap(rx_off + ring_len);
        let pool = SlotPool::create_in_segment(config, segment.slice(0, pool_len)?)?;

        let keep: Arc<dyn core::any::Any + Send + Sync> = Arc::new(segment.clone());
        // SAFETY: both ring regions lie inside the zero-initialized heap
        // segment at 64-aligned offsets, the `keep` Arc pins the
        // backing, and each of the four endpoints below is the unique
        // owner of its side (client side stays here, forwarder side
        // moves into the thread).
        let (tx, fwd_in, fwd_out, rx) = unsafe {
            (
                ShmProducer::attach(
                    segment.base_ptr().add(tx_off),
                    ring_capacity,
                    Some(Arc::clone(&keep)),
                ),
                ShmConsumer::attach(
                    segment.base_ptr().add(tx_off),
                    ring_capacity,
                    Some(Arc::clone(&keep)),
                ),
                ShmProducer::attach(
                    segment.base_ptr().add(rx_off),
                    ring_capacity,
                    Some(Arc::clone(&keep)),
                ),
                ShmConsumer::attach(segment.base_ptr().add(rx_off), ring_capacity, Some(keep)),
            )
        };

        let stop = Arc::new(AtomicBool::new(false));
        let stop_fwd = Arc::clone(&stop);
        let forwarder = std::thread::Builder::new()
            .name("insane-loopback".into())
            .spawn(move || forward(&fwd_in, &fwd_out, &stop_fwd))?;
        Ok(Self {
            pool,
            tx,
            rx,
            stop,
            forwarder: Some(forwarder),
        })
    }

    /// The loop's slot pool (for stats reconciliation).
    pub fn pool(&self) -> &SlotPool {
        &self.pool
    }

    /// Lends a slot for a `len`-byte message.
    ///
    /// # Errors
    ///
    /// [`IpcError::Memory`] on exhaustion.
    pub fn lend(&self, len: usize) -> Result<SlotGuard, IpcError> {
        Ok(self.pool.acquire(len)?)
    }

    /// Emits a filled slot; the forwarder routes it back to `try_recv`.
    /// On a full ring the guard is handed back untouched.
    pub fn emit(&self, guard: SlotGuard) -> Result<(), SlotGuard> {
        let (word0, word1) = guard.token().to_wire();
        match self.tx.push([word0, word1]) {
            Ok(()) => {
                // insane-lint: allow(slot-token-drop) -- ownership transferred to the in-flight descriptor pushed above
                let _ = guard.into_token();
                Ok(())
            }
            Err(_) => Err(guard),
        }
    }

    /// Polls for the next forwarded message.
    pub fn try_recv(&self) -> Option<SlotView> {
        let [word0, word1] = self.rx.pop()?;
        let token = SlotToken::from_wire(self.pool.pool_id(), word0, word1);
        self.pool.view(token).ok()
    }
}

impl Drop for InProcessLoop {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.forwarder.take() {
            let _ = handle.join();
        }
    }
}

/// The daemon's datapath loop verbatim: drain in bursts, hold one
/// descriptor across a full output ring, sleep when idle.
fn forward(input: &ShmConsumer, output: &ShmProducer, stop: &AtomicBool) {
    let mut pending: Option<Descriptor> = None;
    loop {
        let mut moved = false;
        for _ in 0..BURST {
            let Some(desc) = pending.take().or_else(|| input.pop()) else {
                break;
            };
            match output.push(desc) {
                Ok(()) => moved = true,
                Err(desc) => {
                    pending = Some(desc);
                    break;
                }
            }
        }
        if !moved {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trips_in_order() {
        let lb = InProcessLoop::new(256, 32, 16).unwrap();
        for i in 0u64..500 {
            let mut guard = lb.lend(8).unwrap();
            guard.copy_from_slice(&i.to_le_bytes());
            assert!(lb.emit(guard).is_ok());
            let view = loop {
                if let Some(view) = lb.try_recv() {
                    break view;
                }
                std::thread::yield_now();
            };
            let mut seq = [0u8; 8];
            seq.copy_from_slice(&view[..8]);
            assert_eq!(u64::from_le_bytes(seq), i);
        }
        assert_eq!(lb.pool().stats().in_use, 0);
    }

    #[test]
    fn drop_joins_the_forwarder() {
        let lb = InProcessLoop::new(256, 8, 8).unwrap();
        let guard = lb.lend(4).unwrap();
        assert!(lb.emit(guard).is_ok());
        drop(lb); // must not hang even with a descriptor in flight
    }
}
