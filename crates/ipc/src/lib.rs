//! The client/runtime process split: what turns this reproduction from a
//! single-process library into the paper's architecture (Fig. 3) — a thin
//! client library in each application process talking to one per-host
//! INSANE runtime daemon.
//!
//! Two planes, deliberately asymmetric:
//!
//! * **Control plane** ([`uds`], [`proto`], [`server`]): a Unix-domain
//!   socket carrying a versioned line protocol — `attach` (with the
//!   shared-segment fd passed via `SCM_RIGHTS`), stream create/destroy,
//!   heartbeat, graceful detach, and the introspection ops `probe` and
//!   `stats`.  Slow, allocating, forgiving: it runs once per session,
//!   not per message.
//! * **Datapath** ([`client`], plus [`insane_memory::Segment`] and
//!   [`insane_queues::shm_spsc`]): a per-session shared-memory segment
//!   holding a [`SlotPool`](insane_memory::SlotPool) and two offset-
//!   addressed SPSC descriptor rings.  `lend → emit → (daemon) → recv →
//!   release` moves 16-byte descriptors, never payload bytes, and
//!   allocates nothing after attach.
//!
//! Crash isolation is first-class: each session gets its *own* segment
//! and pool, so when a client dies (socket hangup or missed heartbeats)
//! the daemon revokes that session's rings and force-reclaims its
//! outstanding slots via the generation word
//! ([`SlotPool::force_reclaim`](insane_memory::SlotPool::force_reclaim))
//! without touching any other session.  The runtime survives `kill -9`
//! of any client; `tests/crash_reclaim.rs` proves it.
//!
//! See DESIGN.md §13 for the segment layout, the attach state machine,
//! and the reclaim protocol.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod loopback;
pub mod proto;
pub mod server;
pub mod shm;
pub mod sys;
pub mod uds;

pub use client::IpcClient;
pub use server::{IpcServer, ServerConfig, ServerStatsSnapshot};

use core::fmt;

/// Errors produced by the IPC layer.
#[derive(Debug)]
pub enum IpcError {
    /// An OS-level I/O failure (socket, mmap, segment file).
    Io(std::io::Error),
    /// The peer spoke, but not the protocol we expected.
    Protocol(String),
    /// `bind_guarded` found a *live* daemon already serving the socket
    /// path (a stale file from a crashed daemon is unlinked instead).
    AlreadyRunning,
    /// A slot-pool operation failed (exhaustion, stale token, …).
    Memory(insane_memory::MemoryError),
    /// The daemon declared this session dead (or it was never attached).
    SessionDead,
}

impl fmt::Display for IpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpcError::Io(e) => write!(f, "ipc i/o error: {e}"),
            IpcError::Protocol(what) => write!(f, "ipc protocol error: {what}"),
            IpcError::AlreadyRunning => {
                write!(f, "another daemon is already serving this socket path")
            }
            IpcError::Memory(e) => write!(f, "ipc memory error: {e}"),
            IpcError::SessionDead => write!(f, "ipc session is not attached or was revoked"),
        }
    }
}

impl std::error::Error for IpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IpcError::Io(e) => Some(e),
            IpcError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IpcError {
    fn from(e: std::io::Error) -> Self {
        IpcError::Io(e)
    }
}

impl From<insane_memory::MemoryError> for IpcError {
    fn from(e: insane_memory::MemoryError) -> Self {
        IpcError::Memory(e)
    }
}
