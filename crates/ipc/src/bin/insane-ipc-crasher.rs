//! Test/bench helper: a client that attaches, checks slots out, and
//! then either waits to be `kill -9`ed (`hold` mode) or aborts itself
//! (`abort` mode) — exercising the daemon's crash-reclaim path.
//!
//! ```text
//! insane-ipc-crasher <socket> <hold|abort> <slots>
//! ```
//!
//! Prints `crasher ready in_use=<n>` once the slots are checked out so
//! the parent knows when to strike.

use insane_ipc::{IpcClient, IpcError};

fn main() {
    match run() {
        Ok(()) => {}
        Err(e) => {
            eprintln!("insane-ipc-crasher: {e}");
            std::process::exit(1);
        }
    }
}

fn run() -> Result<(), IpcError> {
    let mut args = std::env::args().skip(1);
    let socket = args.next().ok_or_else(|| {
        IpcError::Protocol("usage: insane-ipc-crasher <socket> <hold|abort> <slots>".into())
    })?;
    let mode = args.next().unwrap_or_else(|| "hold".into());
    let slots: usize = args.next().and_then(|n| n.parse().ok()).unwrap_or(8);

    let mut client = IpcClient::attach(std::path::Path::new(&socket), "crasher", "fast")?;
    let stream = client.create_stream("doomed")?;

    // Check out `slots` slots the daemon will have to force-reclaim:
    // half stay as local guards (a crashed process's working set), half
    // are emitted so descriptors are also in flight in the rings.
    let mut held = Vec::new();
    for i in 0..slots {
        let mut guard = client.lend(8)?;
        guard.copy_from_slice(&(i as u64).to_le_bytes());
        if i % 2 == 0 {
            if let Err(guard) = client.emit(stream, guard) {
                held.push(guard);
            }
        } else {
            held.push(guard);
        }
    }

    println!("crasher ready in_use={}", client.pool().stats().in_use);
    use std::io::Write;
    let _ = std::io::stdout().flush();

    if mode == "abort" {
        // Die without running a single destructor.
        std::process::abort();
    }
    // `hold`: wait for SIGKILL.  No destructor will run then either.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
