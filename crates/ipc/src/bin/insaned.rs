//! `insaned` — the per-host INSANE runtime daemon.
//!
//! Applications link `insane-ipc`'s client library and attach over the
//! Unix control socket; the daemon owns every session's shared segment
//! and runs the datapath.  See README "Running as a daemon".
//!
//! ```text
//! insaned [--socket PATH] [--slot-size N] [--slots N] [--ring N]
//!         [--hb-timeout-ms N]
//! ```

use std::time::Duration;

use insane_ipc::{IpcError, ServerConfig};

fn main() {
    match run() {
        Ok(()) => {}
        Err(e) => {
            eprintln!("insaned: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_args(mut config: ServerConfig) -> Result<ServerConfig, IpcError> {
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> Result<String, IpcError> {
            args.next()
                .ok_or_else(|| IpcError::Protocol(format!("{what} needs a value")))
        };
        match flag.as_str() {
            "--socket" => config.socket = value("--socket")?.into(),
            "--slot-size" => {
                config.slot_size = parse_num(&value("--slot-size")?, "--slot-size")?;
            }
            "--slots" => config.slot_count = parse_num(&value("--slots")?, "--slots")?,
            "--ring" => config.ring_capacity = parse_num(&value("--ring")?, "--ring")?,
            "--hb-timeout-ms" => {
                config.hb_timeout = Duration::from_millis(parse_num(
                    &value("--hb-timeout-ms")?,
                    "--hb-timeout-ms",
                )? as u64);
            }
            "--help" | "-h" => {
                println!(
                    "usage: insaned [--socket PATH] [--slot-size N] [--slots N] \
                     [--ring N] [--hb-timeout-ms N]"
                );
                std::process::exit(0);
            }
            other => {
                return Err(IpcError::Protocol(format!("unknown flag: {other}")));
            }
        }
    }
    Ok(config)
}

fn parse_num(text: &str, what: &str) -> Result<usize, IpcError> {
    text.parse()
        .map_err(|_| IpcError::Protocol(format!("{what}: not a number: {text}")))
}

fn run() -> Result<(), IpcError> {
    let config = parse_args(ServerConfig::new("/tmp/insaned.sock"))?;
    let server = insane_ipc::IpcServer::start(config)?;
    // The ready line is the spawn contract: tests and the bench wait
    // for it before connecting.
    println!("insaned listening on {}", server.socket_path().display());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
    Ok(())
}
