//! Minimal raw-syscall surface for the IPC layer: `mmap`/`munmap` for
//! the shared segment and `sendmsg`/`recvmsg` for `SCM_RIGHTS` fd
//! passing.  The workspace builds offline with no `libc` crate, so the
//! handful of symbols we need are declared directly against the C
//! library (Linux 64-bit ABI: x86_64 and aarch64 agree on every struct
//! used here).
//!
//! Everything else socket-shaped goes through `std::os::unix::net`.

use std::io;
use std::os::fd::RawFd;

#[repr(C)]
struct IoVec {
    iov_base: *mut core::ffi::c_void,
    iov_len: usize,
}

#[repr(C)]
struct MsgHdr {
    msg_name: *mut core::ffi::c_void,
    msg_namelen: u32,
    msg_iov: *mut IoVec,
    msg_iovlen: usize,
    msg_control: *mut core::ffi::c_void,
    msg_controllen: usize,
    msg_flags: i32,
}

/// `struct cmsghdr` followed inline by its data; `#[repr(C, align(8))]`
/// keeps the whole buffer at the kernel's required cmsg alignment.
#[repr(C, align(8))]
struct CmsgOneFd {
    cmsg_len: usize,
    cmsg_level: i32,
    cmsg_type: i32,
    fd: RawFd,
    _pad: [u8; 4],
}

const SOL_SOCKET: i32 = 1;
const SCM_RIGHTS: i32 = 1;
/// `CMSG_LEN(4)`: header (16 bytes on 64-bit) + one fd.
const CMSG_LEN_ONE_FD: usize = 16 + core::mem::size_of::<RawFd>();

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_SHARED: i32 = 1;

extern "C" {
    fn mmap(
        addr: *mut core::ffi::c_void,
        length: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut core::ffi::c_void;
    fn munmap(addr: *mut core::ffi::c_void, length: usize) -> i32;
    fn sendmsg(sockfd: i32, msg: *const MsgHdr, flags: i32) -> isize;
    fn recvmsg(sockfd: i32, msg: *mut MsgHdr, flags: i32) -> isize;
}

/// Maps `len` bytes of `fd` shared and read-write.
///
/// # Errors
///
/// The `errno` of a failed `mmap`.
pub fn map_shared(fd: RawFd, len: usize) -> io::Result<*mut u8> {
    // SAFETY: plain syscall; a NULL hint lets the kernel pick the
    // address, and the result is checked before use.
    let ptr = unsafe {
        mmap(
            core::ptr::null_mut(),
            len,
            PROT_READ | PROT_WRITE,
            MAP_SHARED,
            fd,
            0,
        )
    };
    if ptr as isize == -1 {
        return Err(io::Error::last_os_error());
    }
    Ok(ptr.cast())
}

/// Unmaps a region previously returned by [`map_shared`].
///
/// # Safety
///
/// `ptr`/`len` must denote exactly one live mapping, and nothing may
/// reference its bytes afterwards.
// SAFETY: callers uphold the `# Safety` contract above.
pub unsafe fn unmap(ptr: *mut u8, len: usize) {
    // SAFETY: forwarded caller contract.
    let _ = unsafe { munmap(ptr.cast(), len) };
}

/// Sends `bytes` on the (Unix-domain) socket `sock`, attaching `fd` as
/// an `SCM_RIGHTS` control message, and returns the bytes written.
///
/// # Errors
///
/// The `errno` of a failed `sendmsg`.
pub fn send_with_fd(sock: RawFd, bytes: &[u8], fd: RawFd) -> io::Result<usize> {
    let mut iov = IoVec {
        iov_base: bytes.as_ptr() as *mut core::ffi::c_void,
        iov_len: bytes.len(),
    };
    let mut cmsg = CmsgOneFd {
        cmsg_len: CMSG_LEN_ONE_FD,
        cmsg_level: SOL_SOCKET,
        cmsg_type: SCM_RIGHTS,
        fd,
        _pad: [0; 4],
    };
    let msg = MsgHdr {
        msg_name: core::ptr::null_mut(),
        msg_namelen: 0,
        msg_iov: &mut iov,
        msg_iovlen: 1,
        msg_control: (&mut cmsg as *mut CmsgOneFd).cast(),
        msg_controllen: core::mem::size_of::<CmsgOneFd>(),
        msg_flags: 0,
    };
    // SAFETY: every pointer in `msg` refers to live stack/borrowed
    // memory for the duration of the call.
    let n = unsafe { sendmsg(sock, &msg, 0) };
    if n < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(n as usize)
}

/// Receives into `buf`, also accepting one `SCM_RIGHTS` fd if the peer
/// attached one.  Returns `(bytes_read, received_fd)`; `bytes_read == 0`
/// means the peer hung up.
///
/// # Errors
///
/// The `errno` of a failed `recvmsg`.
pub fn recv_with_fd(sock: RawFd, buf: &mut [u8]) -> io::Result<(usize, Option<RawFd>)> {
    let mut iov = IoVec {
        iov_base: buf.as_mut_ptr().cast(),
        iov_len: buf.len(),
    };
    let mut cmsg = CmsgOneFd {
        cmsg_len: 0,
        cmsg_level: 0,
        cmsg_type: 0,
        fd: -1,
        _pad: [0; 4],
    };
    let mut msg = MsgHdr {
        msg_name: core::ptr::null_mut(),
        msg_namelen: 0,
        msg_iov: &mut iov,
        msg_iovlen: 1,
        msg_control: (&mut cmsg as *mut CmsgOneFd).cast(),
        msg_controllen: core::mem::size_of::<CmsgOneFd>(),
        msg_flags: 0,
    };
    // SAFETY: as in `send_with_fd`.
    let n = unsafe { recvmsg(sock, &mut msg, 0) };
    if n < 0 {
        return Err(io::Error::last_os_error());
    }
    let fd = (msg.msg_controllen >= CMSG_LEN_ONE_FD
        && cmsg.cmsg_level == SOL_SOCKET
        && cmsg.cmsg_type == SCM_RIGHTS
        && cmsg.fd >= 0)
        .then_some(cmsg.fd);
    Ok((n as usize, fd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Seek, SeekFrom, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn fd_passing_round_trips_a_file() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut tmp = tempfile();
        tmp.write_all(b"through the wormhole").unwrap();
        tmp.flush().unwrap();

        send_with_fd(a.as_raw_fd(), b"hello\n", tmp.as_raw_fd()).unwrap();
        let mut buf = [0u8; 64];
        let (n, fd) = recv_with_fd(b.as_raw_fd(), &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello\n");
        let fd = fd.expect("expected an SCM_RIGHTS fd");
        assert_ne!(fd, tmp.as_raw_fd(), "receiver gets its own descriptor");

        // SAFETY: `fd` was just received and is owned by no one else.
        let mut received = unsafe { <std::fs::File as std::os::fd::FromRawFd>::from_raw_fd(fd) };
        received.seek(SeekFrom::Start(0)).unwrap();
        let mut text = String::new();
        received.read_to_string(&mut text).unwrap();
        assert_eq!(text, "through the wormhole");
    }

    #[test]
    fn plain_messages_carry_no_fd() {
        let (a, mut b) = UnixStream::pair().unwrap();
        b.write_all(b"no fd here\n").unwrap();
        let mut buf = [0u8; 64];
        let (n, fd) = recv_with_fd(a.as_raw_fd(), &mut buf).unwrap();
        assert_eq!(&buf[..n], b"no fd here\n");
        assert_eq!(fd, None);
    }

    #[test]
    fn map_shared_sees_file_writes() {
        let mut tmp = tempfile();
        tmp.set_len(4096).unwrap();
        tmp.write_all(b"mapped").unwrap();
        tmp.flush().unwrap();
        let ptr = map_shared(tmp.as_raw_fd(), 4096).unwrap();
        // SAFETY: fresh 4096-byte shared mapping, sole reference.
        let bytes = unsafe { core::slice::from_raw_parts(ptr, 6) };
        assert_eq!(bytes, b"mapped");
        // SAFETY: exactly the mapping created above.
        unsafe { unmap(ptr, 4096) };
    }

    fn tempfile() -> std::fs::File {
        let path = std::env::temp_dir().join(format!(
            "insane-sys-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        std::fs::remove_file(&path).unwrap();
        f
    }
}
