//! The runtime daemon: control-plane accept/session threads plus the
//! single datapath thread that owns every session's ring endpoints.
//!
//! Threading model (one daemon process):
//!
//! * **accept thread** — non-blocking accept loop on the control
//!   socket; spawns one control thread per connection.
//! * **control threads** — speak [`proto`](crate::proto) with one
//!   client each: build the session segment on `attach`, answer
//!   heartbeats and stream ops, and detect death (EOF on `kill -9`,
//!   or a heartbeat gap past the configured timeout).  Death is
//!   *signaled* here but *executed* on the datapath thread, which is
//!   the only owner of the session's ring endpoints.
//! * **datapath thread** — polls every live session's TX ring and
//!   routes descriptors to the session's RX ring (the reproduction's
//!   loopback fabric), 64-descriptor bursts, no allocation, no locks on
//!   the per-descriptor path.  When a session is marked dead it drains
//!   the TX ring, drops the endpoints (ring revocation), force-reclaims
//!   the session pool via the generation word, and records how long
//!   death-to-reclaim took.
//!
//! Sessions are fully isolated: one segment, one pool, one ring pair
//! per session, so a crashing client can only ever leak — and have
//! reclaimed — its own slots.

use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use insane_memory::{PoolConfig, SlotPool};
use insane_queues::{ring_bytes, ShmConsumer, ShmProducer};
use parking_lot::Mutex;

use crate::proto::{AttachAck, LineBuf, PROTO_VERSION};
use crate::uds::{bind_guarded, BoundSocket};
use crate::{shm, sys, IpcError};

/// Construction parameters for an [`IpcServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Control-socket path.
    pub socket: PathBuf,
    /// Slot size of each session pool, bytes.
    pub slot_size: usize,
    /// Slot count of each session pool.
    pub slot_count: usize,
    /// Capacity of each descriptor ring (power of two).
    pub ring_capacity: usize,
    /// Declare a session dead after this long without control traffic.
    pub hb_timeout: Duration,
}

impl ServerConfig {
    /// A config serving `socket` with the default session shape
    /// (2048-byte slots × 256, 64-deep rings, 10 s heartbeat timeout).
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            slot_size: 2048,
            slot_count: 256,
            ring_capacity: 64,
            hb_timeout: Duration::from_secs(10),
        }
    }
}

/// Daemon-global counters, exported by the `stats` control op.
#[derive(Debug, Default)]
struct ServerStats {
    attaches: AtomicU64,
    sessions: AtomicU64,
    forwarded: AtomicU64,
    reclaims: AtomicU64,
    reclaimed_slots: AtomicU64,
    leaked_slots: AtomicU64,
    last_reclaim_ns: AtomicU64,
    hb_timeouts: AtomicU64,
}

/// A point-in-time copy of the daemon counters (what clients parse out
/// of the `stats` response line).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Currently attached sessions.
    pub sessions: u64,
    /// Total successful attaches since start.
    pub attaches: u64,
    /// Descriptors forwarded on the datapath.
    pub forwarded: u64,
    /// Crash-reclaim events executed.
    pub reclaims: u64,
    /// Slots force-reclaimed across all crash events.
    pub reclaimed_slots: u64,
    /// Slots still checked out *after* a force-reclaim (must stay 0).
    pub leaked_slots: u64,
    /// Duration of the most recent death-to-reclaim, nanoseconds.
    pub last_reclaim_ns: u64,
    /// Sessions declared dead by heartbeat timeout (vs hangup).
    pub hb_timeouts: u64,
    /// Slots currently checked out, summed over live session pools.
    pub in_use: u64,
}

impl ServerStatsSnapshot {
    /// Parses the `ok stats k=v …` response line.
    ///
    /// # Errors
    ///
    /// [`IpcError::Protocol`] if the line is not a stats response.
    pub fn parse(line: &str) -> Result<Self, IpcError> {
        let mut words = line.split_ascii_whitespace();
        if words.next() != Some("ok") || words.next() != Some("stats") {
            return Err(IpcError::Protocol(format!("not a stats line: {line:?}")));
        }
        let mut snap = Self::default();
        for word in words {
            let Some((key, value)) = word.split_once('=') else {
                continue;
            };
            let Ok(value) = value.parse::<u64>() else {
                continue;
            };
            match key {
                "sessions" => snap.sessions = value,
                "attaches" => snap.attaches = value,
                "forwarded" => snap.forwarded = value,
                "reclaims" => snap.reclaims = value,
                "reclaimed_slots" => snap.reclaimed_slots = value,
                "leaked_slots" => snap.leaked_slots = value,
                "last_reclaim_ns" => snap.last_reclaim_ns = value,
                "hb_timeouts" => snap.hb_timeouts = value,
                "in_use" => snap.in_use = value,
                _ => {}
            }
        }
        Ok(snap)
    }

    fn to_line(self) -> String {
        format!(
            "ok stats sessions={} attaches={} forwarded={} reclaims={} reclaimed_slots={} \
             leaked_slots={} last_reclaim_ns={} hb_timeouts={} in_use={}",
            self.sessions,
            self.attaches,
            self.forwarded,
            self.reclaims,
            self.reclaimed_slots,
            self.leaked_slots,
            self.last_reclaim_ns,
            self.hb_timeouts,
            self.in_use
        )
    }
}

/// Control-plane view of one session, shared between the session's
/// control thread (writer of the death signal) and the datapath thread
/// (executor of the reclaim).
struct SessionShared {
    id: u64,
    alive: AtomicBool,
    /// Graceful detach vs crash: decides whether the reclaim counts
    /// toward the crash metrics.
    graceful: AtomicBool,
    /// Stamped by the control thread the moment death is detected, read
    /// by the datapath thread after the reclaim to compute
    /// `last_reclaim_ns`.
    died_at: Mutex<Option<Instant>>,
    next_stream: AtomicU32,
    pool: SlotPool,
}

impl SessionShared {
    fn mark_dead(&self, graceful: bool) {
        self.graceful.store(graceful, Ordering::Relaxed);
        *self.died_at.lock() = Some(Instant::now());
        self.alive.store(false, Ordering::Release);
    }
}

/// Datapath-thread ownership of one session: the ring endpoints (which
/// are single-owner by the SPSC contract) plus a one-descriptor holdover
/// for RX back-pressure.
struct DatapathSession {
    shared: Arc<SessionShared>,
    tx: ShmConsumer,
    rx: ShmProducer,
    pending: Option<[u64; 2]>,
}

struct ServerState {
    config: ServerConfig,
    stats: ServerStats,
    sessions: Mutex<Vec<Arc<SessionShared>>>,
    next_session: AtomicU64,
    shutdown: AtomicBool,
    shutdown_requested: AtomicBool,
}

impl ServerState {
    fn snapshot(&self) -> ServerStatsSnapshot {
        let in_use: u64 = self
            .sessions
            .lock()
            .iter()
            .map(|s| s.pool.stats().in_use as u64)
            .sum();
        ServerStatsSnapshot {
            sessions: self.stats.sessions.load(Ordering::Relaxed),
            attaches: self.stats.attaches.load(Ordering::Relaxed),
            forwarded: self.stats.forwarded.load(Ordering::Relaxed),
            reclaims: self.stats.reclaims.load(Ordering::Relaxed),
            reclaimed_slots: self.stats.reclaimed_slots.load(Ordering::Relaxed),
            leaked_slots: self.stats.leaked_slots.load(Ordering::Relaxed),
            last_reclaim_ns: self.stats.last_reclaim_ns.load(Ordering::Relaxed),
            hb_timeouts: self.stats.hb_timeouts.load(Ordering::Relaxed),
            in_use,
        }
    }
}

/// The INSANE runtime daemon: binds the control socket, serves attach
/// sessions, runs the shared-memory datapath.
pub struct IpcServer {
    state: Arc<ServerState>,
    bound: Option<BoundSocket>,
    accept: Option<std::thread::JoinHandle<()>>,
    datapath: Option<std::thread::JoinHandle<()>>,
}

impl core::fmt::Debug for IpcServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("IpcServer")
            .field("socket", &self.state.config.socket)
            .field("stats", &self.state.snapshot())
            .finish()
    }
}

impl IpcServer {
    /// Binds the control socket (recovering stale files, refusing a live
    /// daemon) and starts the accept and datapath threads.
    ///
    /// # Errors
    ///
    /// [`IpcError::AlreadyRunning`] or [`IpcError::Io`] from the bind.
    pub fn start(config: ServerConfig) -> Result<Self, IpcError> {
        if !config.ring_capacity.is_power_of_two() || config.ring_capacity == 0 {
            return Err(IpcError::Protocol(
                "ring_capacity must be a power of two".into(),
            ));
        }
        let bound = bind_guarded(&config.socket)?;
        bound.listener().set_nonblocking(true)?;
        let listener = bound.listener().try_clone()?;
        let state = Arc::new(ServerState {
            config,
            stats: ServerStats::default(),
            sessions: Mutex::new(Vec::new()),
            next_session: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
        });
        let (dp_tx, dp_rx) = mpsc::channel::<DatapathSession>();

        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            while !accept_state.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_state = Arc::clone(&accept_state);
                        let conn_dp = dp_tx.clone();
                        std::thread::spawn(move || serve_conn(stream, conn_state, conn_dp));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });

        let dp_state = Arc::clone(&state);
        let datapath = std::thread::spawn(move || run_datapath(dp_state, dp_rx));

        Ok(Self {
            state,
            bound: Some(bound),
            accept: Some(accept),
            datapath: Some(datapath),
        })
    }

    /// Path of the control socket.
    pub fn socket_path(&self) -> PathBuf {
        self.state.config.socket.clone()
    }

    /// Current daemon counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.state.snapshot()
    }

    /// Whether a client asked the daemon to exit (the `shutdown` op).
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Stops all threads and removes the socket file.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.datapath.take() {
            let _ = h.join();
        }
        // Dropping the guard unlinks the socket file (clean shutdown).
        self.bound = None;
    }
}

impl Drop for IpcServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Writes one response line, ignoring failures (a peer that hung up
/// mid-response is handled by the next read).
fn say(stream: &mut UnixStream, line: &str) {
    use std::io::Write;
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// One control connection, start to finish.
fn serve_conn(
    mut stream: UnixStream,
    state: Arc<ServerState>,
    dp_tx: mpsc::Sender<DatapathSession>,
) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let mut lines = LineBuf::new();
    let mut session: Option<Arc<SessionShared>> = None;
    let mut last_seen = Instant::now();
    let outcome = loop {
        if state.shutdown.load(Ordering::Relaxed) {
            break ConnEnd::ServerExit;
        }
        let line = match lines.read_line(&mut stream) {
            Ok(Some(line)) => line,
            Ok(None) => break ConnEnd::Hangup,
            Err(IpcError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if session.is_some() && last_seen.elapsed() > state.config.hb_timeout {
                    state.stats.hb_timeouts.fetch_add(1, Ordering::Relaxed);
                    break ConnEnd::Hangup;
                }
                continue;
            }
            Err(_) => break ConnEnd::Hangup,
        };
        last_seen = Instant::now();
        let mut words = line.split_ascii_whitespace();
        match words.next() {
            Some("attach") => {
                if words.next() != Some(PROTO_VERSION) {
                    say(&mut stream, "err protocol version mismatch");
                    continue;
                }
                if session.is_some() {
                    say(&mut stream, "err session already attached");
                    continue;
                }
                match open_session(&state, &dp_tx, &mut stream) {
                    Ok(shared) => session = Some(shared),
                    Err(e) => say(&mut stream, &format!("err attach failed: {e}")),
                }
            }
            Some("stream-create") => match &session {
                Some(s) => {
                    let id = s.next_stream.fetch_add(1, Ordering::Relaxed);
                    say(&mut stream, &format!("ok stream {id}"));
                }
                None => say(&mut stream, "err not attached"),
            },
            Some("stream-destroy") => match &session {
                Some(_) => say(&mut stream, "ok"),
                None => say(&mut stream, "err not attached"),
            },
            Some("hb") => say(&mut stream, "ok"),
            Some("probe") => say(&mut stream, &format!("ok probe {PROTO_VERSION}")),
            Some("stats") => {
                let line = state.snapshot().to_line();
                say(&mut stream, &line);
            }
            Some("shutdown") => {
                state.shutdown_requested.store(true, Ordering::Relaxed);
                say(&mut stream, "ok");
            }
            Some("detach") => {
                say(&mut stream, "ok");
                break ConnEnd::Detach;
            }
            _ => say(&mut stream, "err unknown op"),
        }
    };
    if let Some(shared) = session {
        shared.mark_dead(matches!(outcome, ConnEnd::Detach));
    }
}

enum ConnEnd {
    /// Clean `detach`.
    Detach,
    /// EOF, heartbeat timeout, or a protocol failure: treat as a crash.
    Hangup,
    /// The daemon itself is exiting.
    ServerExit,
}

/// Builds one session: segment file, mapping, pool, rings; hands the
/// ring endpoints to the datapath and the fd to the client.
fn open_session(
    state: &Arc<ServerState>,
    dp_tx: &mpsc::Sender<DatapathSession>,
    stream: &mut UnixStream,
) -> Result<Arc<SessionShared>, IpcError> {
    let config = &state.config;
    let id = state.next_session.fetch_add(1, Ordering::Relaxed) + 1;
    let pool_config = PoolConfig::new(id as u16, config.slot_size, config.slot_count);
    let pool_len = SlotPool::required_segment_len(&pool_config)?;
    let ring_len = (ring_bytes(config.ring_capacity) + 63) & !63;
    let tx_off = pool_len;
    let rx_off = pool_len + ring_len;
    let seg_len = rx_off + ring_len;

    let file = shm::create_segment_file(seg_len)?;
    let segment = shm::map_segment(&file, seg_len)?;
    let pool = SlotPool::create_in_segment(pool_config, segment.slice(0, pool_len)?)?;
    let keep: Arc<dyn core::any::Any + Send + Sync> = Arc::new(segment.clone());
    // SAFETY: `tx_off`/`rx_off` + `ring_bytes(capacity)` lie inside the
    // freshly mapped `seg_len` bytes (computed above), the fresh tmpfs
    // pages are zero, the `keep` Arc pins the mapping, and this daemon
    // attaches exactly one consumer (TX) and one producer (RX) — the
    // client holds the opposite ends.
    let (tx, rx) = unsafe {
        (
            ShmConsumer::attach(
                segment.base_ptr().add(tx_off),
                config.ring_capacity,
                Some(Arc::clone(&keep)),
            ),
            ShmProducer::attach(
                segment.base_ptr().add(rx_off),
                config.ring_capacity,
                Some(keep),
            ),
        )
    };

    let shared = Arc::new(SessionShared {
        id,
        alive: AtomicBool::new(true),
        graceful: AtomicBool::new(false),
        died_at: Mutex::new(None),
        next_stream: AtomicU32::new(0),
        pool: pool.clone(),
    });
    dp_tx
        .send(DatapathSession {
            shared: Arc::clone(&shared),
            tx,
            rx,
            pending: None,
        })
        .map_err(|_| IpcError::SessionDead)?;
    state.sessions.lock().push(Arc::clone(&shared));
    state.stats.attaches.fetch_add(1, Ordering::Relaxed);
    state.stats.sessions.fetch_add(1, Ordering::Relaxed);

    let ack = AttachAck {
        session: id,
        slot_size: config.slot_size,
        slot_count: config.slot_count,
        ring_capacity: config.ring_capacity,
        pool_off: 0,
        tx_off,
        rx_off,
        seg_len,
    };
    let line = format!("{}\n", ack.to_line());
    sys::send_with_fd(stream.as_raw_fd(), line.as_bytes(), file.as_raw_fd())?;
    Ok(shared)
}

/// Descriptors moved per session per poll iteration.
const BURST: usize = 64;

// insane-lint: hot-path-root
fn run_datapath(state: Arc<ServerState>, dp_rx: mpsc::Receiver<DatapathSession>) {
    let mut sessions: Vec<DatapathSession> = Vec::new();
    loop {
        while let Ok(s) = dp_rx.try_recv() {
            // insane-lint: allow(hot-path-alloc) -- grows once per session attach (control-plane rate), not per message
            sessions.push(s);
        }
        let mut progressed = false;
        let mut index = 0;
        while index < sessions.len() {
            // insane-lint: allow(hot-path-panic) -- `index < sessions.len()` is the loop condition
            let session = &mut sessions[index];
            if !session.shared.alive.load(Ordering::Acquire) {
                let dead = sessions.swap_remove(index);
                reclaim_session(&state, dead);
                progressed = true;
                continue;
            }
            for _ in 0..BURST {
                let descriptor = match session.pending.take().or_else(|| session.tx.pop()) {
                    Some(d) => d,
                    None => break,
                };
                // insane-lint: allow(hot-path-alloc) -- ShmProducer::push writes a fixed-capacity shared ring; it never allocates
                match session.rx.push(descriptor) {
                    Ok(()) => {
                        state.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                    Err(held) => {
                        // RX back-pressure: hold the descriptor, retry
                        // next iteration.  Nothing is dropped.
                        session.pending = Some(held);
                        break;
                    }
                }
            }
            index += 1;
        }
        if state.shutdown.load(Ordering::Relaxed) {
            break;
        }
        if !progressed {
            // insane-lint: allow(hot-path-block) -- this IS the idle loop: every ring was empty this iteration
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Executes a session's death: drain + revoke rings, force-reclaim the
/// pool, record metrics, unregister.
fn reclaim_session(state: &Arc<ServerState>, session: DatapathSession) {
    let DatapathSession { shared, tx, rx, .. } = session;
    // Drain descriptors still in flight; their checkouts die with the
    // generation bump below.
    while tx.pop().is_some() {}
    // Revoke the rings: dropping the endpoints releases the daemon's
    // keep-alives on the segment.
    drop(tx);
    drop(rx);
    let reclaimed = shared.pool.force_reclaim();
    let leaked = shared.pool.stats().in_use;
    if !shared.graceful.load(Ordering::Relaxed) {
        state.stats.reclaims.fetch_add(1, Ordering::Relaxed);
        state
            .stats
            .reclaimed_slots
            .fetch_add(reclaimed as u64, Ordering::Relaxed);
        state
            .stats
            .leaked_slots
            .fetch_add(leaked as u64, Ordering::Relaxed);
        // insane-lint: allow(hot-path-block) -- crash-time slow path, runs once per session death
        if let Some(died_at) = *shared.died_at.lock() {
            state
                .stats
                .last_reclaim_ns
                .store(died_at.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
    // insane-lint: allow(hot-path-block) -- crash-time slow path, runs once per session death
    state.sessions.lock().retain(|s| s.id != shared.id);
    state.stats.sessions.fetch_sub(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_line_round_trips() {
        let snap = ServerStatsSnapshot {
            sessions: 2,
            attaches: 5,
            forwarded: 1000,
            reclaims: 1,
            reclaimed_slots: 3,
            leaked_slots: 0,
            last_reclaim_ns: 12345,
            hb_timeouts: 1,
            in_use: 7,
        };
        assert_eq!(ServerStatsSnapshot::parse(&snap.to_line()).unwrap(), snap);
    }

    #[test]
    fn non_power_of_two_ring_is_refused() {
        let mut config = ServerConfig::new("/tmp/never-bound.sock");
        config.ring_capacity = 48;
        assert!(IpcServer::start(config).is_err());
    }
}
