//! The 802.1Qbv time-aware scheduler.
//!
//! Eight per-class FIFO queues guarded by a [`GateControlList`]: an item
//! is releasable only while its class's gate is open, and among open
//! classes the higher priority drains first (strict priority transmission
//! selection, the 802.1Q default).

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::gates::GateControlList;
use crate::{Scheduler, TrafficClass, TsnError, CLASS_COUNT};

/// A time-aware shaper over a gate control list.
///
/// Beyond plain gate checks, the shaper accounts for per-class
/// *frame-transmission times*: a frame is released only if it can
/// finish — guard band included — before its gate closes, and a burst's
/// releases advance a virtual clock so the decision holds for every
/// frame in the burst, not just the first.
#[derive(Debug)]
pub struct TasScheduler<T> {
    queues: [VecDeque<T>; CLASS_COUNT],
    gcl: GateControlList,
    /// Modeled wire time of one frame per class (zero = not metered).
    tx_time: [Duration; CLASS_COUNT],
    /// Deferral events per class since the last `take_gate_deferrals`.
    deferrals: [u64; CLASS_COUNT],
    len: usize,
}

impl<T> TasScheduler<T> {
    /// Creates a shaper driven by `gcl`.
    pub fn new(gcl: GateControlList) -> Self {
        Self {
            queues: core::array::from_fn(|_| VecDeque::new()),
            gcl,
            tx_time: [Duration::ZERO; CLASS_COUNT],
            deferrals: [0; CLASS_COUNT],
            len: 0,
        }
    }

    /// Sets the modeled frame-transmission time for one class (builder
    /// form; zero — the default — disables deadline metering for it).
    pub fn with_tx_time(mut self, class: TrafficClass, tx: Duration) -> Self {
        self.set_tx_time(class, tx);
        self
    }

    /// Sets one class's frame-transmission time on a live scheduler.
    pub fn set_tx_time(&mut self, class: TrafficClass, tx: Duration) {
        self.tx_time[class.value() as usize] = tx;
    }

    /// The modeled frame-transmission time of `class`.
    pub fn tx_time(&self, class: TrafficClass) -> Duration {
        self.tx_time[class.value() as usize]
    }

    /// The gate program driving this scheduler.
    pub fn gate_control_list(&self) -> &GateControlList {
        &self.gcl
    }

    /// Items queued in one class.
    pub fn class_len(&self, class: TrafficClass) -> usize {
        self.queues[class.value() as usize].len()
    }
}

impl<T> Scheduler<T> for TasScheduler<T> {
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-panic) -- TrafficClass::value() is < CLASS_COUNT by type construction
    // insane-lint: allow-fn(hot-path-alloc) -- class deques are bounded by admission; they reach a watermark and reuse capacity
    fn enqueue(&mut self, item: T, class: TrafficClass, _now: Instant) {
        self.queues[class.value() as usize].push_back(item);
        self.len += 1;
    }

    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-panic) -- class indices come from TrafficClass::all(), always < CLASS_COUNT
    fn dequeue_ready(&mut self, out: &mut Vec<T>, max: usize, now: Instant) -> usize {
        if self.len == 0 || max == 0 {
            return 0;
        }
        // Strict priority with per-frame gate evaluation: every release
        // advances a virtual clock by the frame's transmission time and
        // the gate/guard/deadline predicate is re-checked against it.
        // A single `active_entry(now)` snapshot for the whole burst
        // would let a burst straddling a window edge leak best-effort
        // frames into the next critical window.
        let mut moved = 0;
        let mut vnow = now;
        for tc in TrafficClass::all().into_iter().rev() {
            let class = tc.value() as usize;
            let tx = self.tx_time[class];
            loop {
                if moved >= max {
                    return moved;
                }
                if self.queues[class].is_empty() {
                    break;
                }
                if !self.gcl.can_start(tc, tx, vnow) {
                    // Head frame held by a closed gate, the guard band,
                    // or a window too short to finish in: one deferral
                    // event per class per pass.
                    self.deferrals[class] += 1;
                    break;
                }
                match self.queues[class].pop_front() {
                    Some(item) => {
                        out.push(item);
                        moved += 1;
                        self.len -= 1;
                        vnow += tx;
                    }
                    None => break,
                }
            }
        }
        moved
    }

    fn len(&self) -> usize {
        self.len
    }

    fn next_release(&self, now: Instant) -> Option<Instant> {
        TrafficClass::all()
            .into_iter()
            .filter(|c| !self.queues[c.value() as usize].is_empty())
            .filter_map(|c| self.gcl.next_open(c, now))
            .min()
    }

    fn window_budget(&self, now: Instant) -> Option<usize> {
        // The clamp is the number of frames that can still start before
        // their windows close.  It only exists when every non-empty
        // class is metered: one ready unmetered class makes any finite
        // cap meaningless.
        let mut budget = 0usize;
        let mut metered = false;
        let classes = TrafficClass::all();
        for ((tc, queue), tx) in classes.iter().zip(&self.queues).zip(&self.tx_time) {
            if queue.is_empty() {
                continue;
            }
            let usable = self
                .gcl
                .open_run(*tc, now)
                .saturating_sub(self.gcl.guard_band());
            if tx.is_zero() {
                if !usable.is_zero() {
                    return None;
                }
            } else {
                metered = true;
                let slots = usable.as_nanos().checked_div(tx.as_nanos()).unwrap_or(0);
                budget = budget.saturating_add(slots as usize);
            }
        }
        metered.then_some(budget)
    }

    fn take_gate_deferrals(&mut self) -> [u64; CLASS_COUNT] {
        std::mem::take(&mut self.deferrals)
    }

    fn set_timing(
        &mut self,
        guard_band: Option<Duration>,
        frame_tx: Option<Duration>,
    ) -> Result<(), TsnError> {
        if let Some(guard) = guard_band {
            self.gcl.set_guard_band(guard)?;
        }
        if let Some(tx) = frame_tx {
            self.tx_time = [tx; CLASS_COUNT];
        }
        Ok(())
    }

    fn drain_all(&mut self, out: &mut Vec<T>) -> usize {
        let mut moved = 0;
        // Highest class first: evacuation preserves priority order even
        // though the destination scheduler re-classifies the items.
        for class in (0..CLASS_COUNT).rev() {
            moved += self.queues[class].len();
            out.extend(self.queues[class].drain(..));
        }
        self.len = 0;
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::GateEntry;
    use std::time::Duration;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn exclusive_gcl(epoch: Instant) -> GateControlList {
        // [0,2ms): only TC7.  [2ms,10ms): everything but TC7.
        GateControlList::exclusive_window(TrafficClass::TIME_CRITICAL, ms(2), ms(10), epoch)
            .unwrap()
    }

    #[test]
    fn closed_gate_holds_packets() {
        let epoch = Instant::now();
        let mut s = TasScheduler::new(exclusive_gcl(epoch));
        s.enqueue("best-effort", TrafficClass::BEST_EFFORT, epoch);
        let mut out = Vec::new();
        // During the critical window best-effort must not leave.
        assert_eq!(s.dequeue_ready(&mut out, 10, epoch + ms(1)), 0);
        assert_eq!(s.len(), 1);
        // After the window it flows.
        assert_eq!(s.dequeue_ready(&mut out, 10, epoch + ms(3)), 1);
        assert_eq!(out, vec!["best-effort"]);
    }

    #[test]
    fn open_gate_releases_in_priority_order() {
        let epoch = Instant::now();
        let gcl = GateControlList::new(vec![GateEntry::all_open(ms(10))], epoch).unwrap();
        let mut s = TasScheduler::new(gcl);
        s.enqueue("low", TrafficClass::BEST_EFFORT, epoch);
        s.enqueue("high", TrafficClass::TIME_CRITICAL, epoch);
        s.enqueue("mid", TrafficClass::new(4).unwrap(), epoch);
        let mut out = Vec::new();
        s.dequeue_ready(&mut out, 10, epoch + ms(1));
        assert_eq!(out, vec!["high", "mid", "low"]);
    }

    #[test]
    fn fifo_within_a_class() {
        let epoch = Instant::now();
        let gcl = GateControlList::new(vec![GateEntry::all_open(ms(10))], epoch).unwrap();
        let mut s = TasScheduler::new(gcl);
        for i in 0..5 {
            s.enqueue(i, TrafficClass::TIME_CRITICAL, epoch);
        }
        let mut out = Vec::new();
        s.dequeue_ready(&mut out, 3, epoch);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(s.class_len(TrafficClass::TIME_CRITICAL), 2);
    }

    #[test]
    fn critical_window_is_exclusive_and_periodic() {
        let epoch = Instant::now();
        let mut s = TasScheduler::new(exclusive_gcl(epoch));
        s.enqueue("critical", TrafficClass::TIME_CRITICAL, epoch);
        s.enqueue("bulk", TrafficClass::BEST_EFFORT, epoch);
        let mut out = Vec::new();
        // Inside the second cycle's critical window (t = 10.5ms).
        let t = epoch + Duration::from_micros(10_500);
        s.dequeue_ready(&mut out, 10, t);
        assert_eq!(out, vec!["critical"], "only TC7 may leave in its window");
    }

    #[test]
    fn next_release_points_to_gate_opening() {
        let epoch = Instant::now();
        let mut s = TasScheduler::new(exclusive_gcl(epoch));
        assert_eq!(s.next_release(epoch), None, "empty scheduler");
        s.enqueue("bulk", TrafficClass::BEST_EFFORT, epoch);
        // At t=1ms the best-effort gate opens at 2ms.
        let t = epoch + ms(1);
        let release = s.next_release(t).expect("eventually releasable");
        let offset = release.duration_since(epoch);
        assert!(offset >= ms(2) && offset < ms(3), "{offset:?}");
        // A queued critical packet is releasable immediately in-window.
        s.enqueue("crit", TrafficClass::TIME_CRITICAL, t);
        assert_eq!(s.next_release(epoch + ms(1)), Some(epoch + ms(1)));
    }

    #[test]
    fn drain_all_ignores_closed_gates() {
        let epoch = Instant::now();
        let mut s = TasScheduler::new(exclusive_gcl(epoch));
        s.enqueue("bulk", TrafficClass::BEST_EFFORT, epoch);
        s.enqueue("crit", TrafficClass::TIME_CRITICAL, epoch);
        // Inside the critical window best-effort is gated — but a failover
        // evacuation must still surface everything, priority first.
        let mut out = Vec::new();
        assert_eq!(s.drain_all(&mut out), 2);
        assert_eq!(out, vec!["crit", "bulk"]);
        assert!(s.is_empty());
        assert_eq!(s.dequeue_ready(&mut out, 10, epoch + ms(3)), 0);
    }

    #[test]
    fn burst_cannot_straddle_a_window_edge() {
        // Regression: dequeue_ready used to evaluate active_entry(now)
        // once per burst, so a best-effort burst started late in the
        // open window leaked frames into the next critical window.
        // With a 1ms frame time and 3ms left in the window, exactly 3
        // of the 10 queued frames may leave.
        let epoch = Instant::now();
        let mut s =
            TasScheduler::new(exclusive_gcl(epoch)).with_tx_time(TrafficClass::BEST_EFFORT, ms(1));
        for i in 0..10 {
            s.enqueue(i, TrafficClass::BEST_EFFORT, epoch);
        }
        let mut out = Vec::new();
        // Window is [2ms, 10ms); at t=7ms only 3 frame slots remain.
        assert_eq!(s.dequeue_ready(&mut out, 10, epoch + ms(7)), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(s.len(), 7, "the rest waits for the next open window");
        // The held frames flow once the next best-effort window opens.
        out.clear();
        assert_eq!(s.dequeue_ready(&mut out, 10, epoch + ms(12)), 7);
    }

    #[test]
    fn guard_band_suppresses_release_before_the_critical_window() {
        let epoch = Instant::now();
        let gcl = exclusive_gcl(epoch).with_guard_band(ms(1)).unwrap();
        let mut s = TasScheduler::new(gcl);
        s.enqueue("bulk", TrafficClass::BEST_EFFORT, epoch);
        let mut out = Vec::new();
        // t=9.5ms: gate open, but inside the 1ms guard before the next
        // critical window — nothing may start.
        let t = epoch + Duration::from_micros(9_500);
        assert_eq!(s.dequeue_ready(&mut out, 10, t), 0);
        // Clear of the guard the same frame flows.
        assert_eq!(s.dequeue_ready(&mut out, 10, epoch + ms(12)), 1);
        assert_eq!(out, vec!["bulk"]);
    }

    #[test]
    fn window_budget_counts_remaining_frame_slots() {
        let epoch = Instant::now();
        let mut s = TasScheduler::new(exclusive_gcl(epoch).with_guard_band(ms(1)).unwrap())
            .with_tx_time(TrafficClass::BEST_EFFORT, ms(1));
        assert_eq!(
            s.window_budget(epoch + ms(7)),
            None,
            "empty: nothing to meter"
        );
        for i in 0..10 {
            s.enqueue(i, TrafficClass::BEST_EFFORT, epoch);
        }
        // 3ms left in the window, 1ms guard: 2 one-ms frames fit.
        assert_eq!(s.window_budget(epoch + ms(7)), Some(2));
        // An unmetered ready class disables the clamp.
        s.set_tx_time(TrafficClass::BEST_EFFORT, Duration::ZERO);
        assert_eq!(s.window_budget(epoch + ms(7)), None);
    }

    #[test]
    fn gate_deferrals_are_counted_and_taken() {
        let epoch = Instant::now();
        let mut s = TasScheduler::new(exclusive_gcl(epoch));
        s.enqueue("bulk", TrafficClass::BEST_EFFORT, epoch);
        let mut out = Vec::new();
        // Two passes inside the critical window: two deferral events.
        assert_eq!(s.dequeue_ready(&mut out, 10, epoch + ms(1)), 0);
        assert_eq!(
            s.dequeue_ready(&mut out, 10, epoch + Duration::from_micros(1_500)),
            0
        );
        let deferrals = s.take_gate_deferrals();
        assert_eq!(deferrals[TrafficClass::BEST_EFFORT.value() as usize], 2);
        // Take semantics: the counters reset.
        assert_eq!(s.take_gate_deferrals(), [0; CLASS_COUNT]);
    }

    #[test]
    fn set_timing_rearms_guard_and_tx_time() {
        let epoch = Instant::now();
        let mut s: TasScheduler<u8> = TasScheduler::new(exclusive_gcl(epoch));
        assert_eq!(
            s.set_timing(Some(ms(10)), None),
            Err(TsnError::GuardBandTooLong {
                guard: ms(10),
                cycle: ms(10)
            })
        );
        s.set_timing(Some(ms(1)), Some(ms(2))).unwrap();
        assert_eq!(s.gate_control_list().guard_band(), ms(1));
        assert_eq!(s.tx_time(TrafficClass::BEST_EFFORT), ms(2));
        assert_eq!(s.tx_time(TrafficClass::TIME_CRITICAL), ms(2));
    }

    #[test]
    fn max_budget_is_respected_across_classes() {
        let epoch = Instant::now();
        let gcl = GateControlList::new(vec![GateEntry::all_open(ms(10))], epoch).unwrap();
        let mut s = TasScheduler::new(gcl);
        for i in 0..4 {
            s.enqueue(i, TrafficClass::TIME_CRITICAL, epoch);
            s.enqueue(i + 10, TrafficClass::BEST_EFFORT, epoch);
        }
        let mut out = Vec::new();
        assert_eq!(s.dequeue_ready(&mut out, 5, epoch), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 10]);
        assert_eq!(s.len(), 3);
    }
}
