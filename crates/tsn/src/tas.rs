//! The 802.1Qbv time-aware scheduler.
//!
//! Eight per-class FIFO queues guarded by a [`GateControlList`]: an item
//! is releasable only while its class's gate is open, and among open
//! classes the higher priority drains first (strict priority transmission
//! selection, the 802.1Q default).

use std::collections::VecDeque;
use std::time::Instant;

use crate::gates::GateControlList;
use crate::{Scheduler, TrafficClass, CLASS_COUNT};

/// A time-aware shaper over a gate control list.
#[derive(Debug)]
pub struct TasScheduler<T> {
    queues: [VecDeque<T>; CLASS_COUNT],
    gcl: GateControlList,
    len: usize,
}

impl<T> TasScheduler<T> {
    /// Creates a shaper driven by `gcl`.
    pub fn new(gcl: GateControlList) -> Self {
        Self {
            queues: core::array::from_fn(|_| VecDeque::new()),
            gcl,
            len: 0,
        }
    }

    /// The gate program driving this scheduler.
    pub fn gate_control_list(&self) -> &GateControlList {
        &self.gcl
    }

    /// Items queued in one class.
    pub fn class_len(&self, class: TrafficClass) -> usize {
        self.queues[class.value() as usize].len()
    }
}

impl<T> Scheduler<T> for TasScheduler<T> {
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-panic) -- TrafficClass::value() is < CLASS_COUNT by type construction
    // insane-lint: allow-fn(hot-path-alloc) -- class deques are bounded by admission; they reach a watermark and reuse capacity
    fn enqueue(&mut self, item: T, class: TrafficClass, _now: Instant) {
        self.queues[class.value() as usize].push_back(item);
        self.len += 1;
    }

    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-panic) -- the class loop index is 0..CLASS_COUNT, the queues array's length
    fn dequeue_ready(&mut self, out: &mut Vec<T>, max: usize, now: Instant) -> usize {
        if self.len == 0 || max == 0 {
            return 0;
        }
        let entry = self.gcl.active_entry(now).0;
        let mut moved = 0;
        // Strict priority: drain the highest open class first.
        for class in (0..CLASS_COUNT).rev() {
            if entry.gates & (1 << class) == 0 {
                continue;
            }
            let q = &mut self.queues[class];
            while moved < max {
                match q.pop_front() {
                    Some(item) => {
                        out.push(item);
                        moved += 1;
                        self.len -= 1;
                    }
                    None => break,
                }
            }
            if moved >= max {
                break;
            }
        }
        moved
    }

    fn len(&self) -> usize {
        self.len
    }

    fn next_release(&self, now: Instant) -> Option<Instant> {
        (0..CLASS_COUNT)
            .filter(|&c| !self.queues[c].is_empty())
            .filter_map(|c| {
                self.gcl
                    .next_open(TrafficClass::new(c as u8).expect("class in range"), now)
            })
            .min()
    }

    fn drain_all(&mut self, out: &mut Vec<T>) -> usize {
        let mut moved = 0;
        // Highest class first: evacuation preserves priority order even
        // though the destination scheduler re-classifies the items.
        for class in (0..CLASS_COUNT).rev() {
            moved += self.queues[class].len();
            out.extend(self.queues[class].drain(..));
        }
        self.len = 0;
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::GateEntry;
    use std::time::Duration;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn exclusive_gcl(epoch: Instant) -> GateControlList {
        // [0,2ms): only TC7.  [2ms,10ms): everything but TC7.
        GateControlList::exclusive_window(TrafficClass::TIME_CRITICAL, ms(2), ms(10), epoch)
            .unwrap()
    }

    #[test]
    fn closed_gate_holds_packets() {
        let epoch = Instant::now();
        let mut s = TasScheduler::new(exclusive_gcl(epoch));
        s.enqueue("best-effort", TrafficClass::BEST_EFFORT, epoch);
        let mut out = Vec::new();
        // During the critical window best-effort must not leave.
        assert_eq!(s.dequeue_ready(&mut out, 10, epoch + ms(1)), 0);
        assert_eq!(s.len(), 1);
        // After the window it flows.
        assert_eq!(s.dequeue_ready(&mut out, 10, epoch + ms(3)), 1);
        assert_eq!(out, vec!["best-effort"]);
    }

    #[test]
    fn open_gate_releases_in_priority_order() {
        let epoch = Instant::now();
        let gcl = GateControlList::new(vec![GateEntry::all_open(ms(10))], epoch).unwrap();
        let mut s = TasScheduler::new(gcl);
        s.enqueue("low", TrafficClass::BEST_EFFORT, epoch);
        s.enqueue("high", TrafficClass::TIME_CRITICAL, epoch);
        s.enqueue("mid", TrafficClass::new(4).unwrap(), epoch);
        let mut out = Vec::new();
        s.dequeue_ready(&mut out, 10, epoch + ms(1));
        assert_eq!(out, vec!["high", "mid", "low"]);
    }

    #[test]
    fn fifo_within_a_class() {
        let epoch = Instant::now();
        let gcl = GateControlList::new(vec![GateEntry::all_open(ms(10))], epoch).unwrap();
        let mut s = TasScheduler::new(gcl);
        for i in 0..5 {
            s.enqueue(i, TrafficClass::TIME_CRITICAL, epoch);
        }
        let mut out = Vec::new();
        s.dequeue_ready(&mut out, 3, epoch);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(s.class_len(TrafficClass::TIME_CRITICAL), 2);
    }

    #[test]
    fn critical_window_is_exclusive_and_periodic() {
        let epoch = Instant::now();
        let mut s = TasScheduler::new(exclusive_gcl(epoch));
        s.enqueue("critical", TrafficClass::TIME_CRITICAL, epoch);
        s.enqueue("bulk", TrafficClass::BEST_EFFORT, epoch);
        let mut out = Vec::new();
        // Inside the second cycle's critical window (t = 10.5ms).
        let t = epoch + Duration::from_micros(10_500);
        s.dequeue_ready(&mut out, 10, t);
        assert_eq!(out, vec!["critical"], "only TC7 may leave in its window");
    }

    #[test]
    fn next_release_points_to_gate_opening() {
        let epoch = Instant::now();
        let mut s = TasScheduler::new(exclusive_gcl(epoch));
        assert_eq!(s.next_release(epoch), None, "empty scheduler");
        s.enqueue("bulk", TrafficClass::BEST_EFFORT, epoch);
        // At t=1ms the best-effort gate opens at 2ms.
        let t = epoch + ms(1);
        let release = s.next_release(t).expect("eventually releasable");
        let offset = release.duration_since(epoch);
        assert!(offset >= ms(2) && offset < ms(3), "{offset:?}");
        // A queued critical packet is releasable immediately in-window.
        s.enqueue("crit", TrafficClass::TIME_CRITICAL, t);
        assert_eq!(s.next_release(epoch + ms(1)), Some(epoch + ms(1)));
    }

    #[test]
    fn drain_all_ignores_closed_gates() {
        let epoch = Instant::now();
        let mut s = TasScheduler::new(exclusive_gcl(epoch));
        s.enqueue("bulk", TrafficClass::BEST_EFFORT, epoch);
        s.enqueue("crit", TrafficClass::TIME_CRITICAL, epoch);
        // Inside the critical window best-effort is gated — but a failover
        // evacuation must still surface everything, priority first.
        let mut out = Vec::new();
        assert_eq!(s.drain_all(&mut out), 2);
        assert_eq!(out, vec!["crit", "bulk"]);
        assert!(s.is_empty());
        assert_eq!(s.dequeue_ready(&mut out, 10, epoch + ms(3)), 0);
    }

    #[test]
    fn max_budget_is_respected_across_classes() {
        let epoch = Instant::now();
        let gcl = GateControlList::new(vec![GateEntry::all_open(ms(10))], epoch).unwrap();
        let mut s = TasScheduler::new(gcl);
        for i in 0..4 {
            s.enqueue(i, TrafficClass::TIME_CRITICAL, epoch);
            s.enqueue(i + 10, TrafficClass::BEST_EFFORT, epoch);
        }
        let mut out = Vec::new();
        assert_eq!(s.dequeue_ready(&mut out, 5, epoch), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 10]);
        assert_eq!(s.len(), 3);
    }
}
