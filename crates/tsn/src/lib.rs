//! Packet schedulers for the INSANE runtime.
//!
//! The paper's packet scheduler (§5.3) sends packets "according to the
//! time sensitiveness policy": a FIFO strategy by default, and an IEEE
//! 802.1Qbv *time-aware shaper* for streams marked time-sensitive (§5.2),
//! the standard designed for deterministic behavior in edge soft
//! real-time applications.
//!
//! * [`FifoScheduler`] — the default: one queue, strict arrival order.
//! * [`TasScheduler`] — 802.1Qbv: eight traffic classes, each guarded by a
//!   gate; a cyclic [`GateControlList`] opens and closes gates on a fixed
//!   schedule, so time-critical classes get exclusive, jitter-free windows.
//!
//! Both implement [`Scheduler`] so the runtime can swap them per the
//! stream QoS.
//!
//! # Examples
//!
//! ```
//! use insane_tsn::{FifoScheduler, Scheduler, TrafficClass};
//! use std::time::Instant;
//!
//! let mut s = FifoScheduler::new();
//! s.enqueue("pkt-a", TrafficClass::BEST_EFFORT, Instant::now());
//! s.enqueue("pkt-b", TrafficClass::BEST_EFFORT, Instant::now());
//! let mut out = Vec::new();
//! s.dequeue_ready(&mut out, 10, Instant::now());
//! assert_eq!(out, ["pkt-a", "pkt-b"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fifo;
mod gates;
mod tas;

pub use fifo::FifoScheduler;
pub use gates::{GateControlList, GateEntry};
pub use tas::TasScheduler;

use core::fmt;
use std::time::Instant;

/// One of the eight 802.1Q traffic classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrafficClass(u8);

/// Number of traffic classes in 802.1Q.
pub const CLASS_COUNT: usize = 8;

impl TrafficClass {
    /// Class 0: best-effort traffic.
    pub const BEST_EFFORT: TrafficClass = TrafficClass(0);
    /// Class 7: the highest-priority, typically time-critical class.
    pub const TIME_CRITICAL: TrafficClass = TrafficClass(7);

    /// Creates a class from its 802.1Q priority value.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::BadClass`] for values ≥ 8.
    pub fn new(value: u8) -> Result<Self, TsnError> {
        if (value as usize) < CLASS_COUNT {
            Ok(TrafficClass(value))
        } else {
            Err(TsnError::BadClass(value))
        }
    }

    /// The raw priority value (0–7).
    pub fn value(&self) -> u8 {
        self.0
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TC{}", self.0)
    }
}

/// Errors from scheduler construction and configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsnError {
    /// Traffic-class value outside 0–7.
    BadClass(u8),
    /// A gate control list must contain at least one entry.
    EmptyGcl,
    /// A gate entry with zero duration would stall the cycle.
    ZeroDuration,
}

impl fmt::Display for TsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsnError::BadClass(v) => write!(f, "traffic class {v} out of range (0-7)"),
            TsnError::EmptyGcl => write!(f, "gate control list is empty"),
            TsnError::ZeroDuration => write!(f, "gate entry has zero duration"),
        }
    }
}

impl std::error::Error for TsnError {}

/// A packet scheduler: items enter with a traffic class and leave when the
/// strategy says they may.
pub trait Scheduler<T> {
    /// Enqueues `item` in traffic class `class` at time `now`.
    fn enqueue(&mut self, item: T, class: TrafficClass, now: Instant);

    /// Moves up to `max` releasable items into `out` (in release order);
    /// returns how many were moved.
    fn dequeue_ready(&mut self, out: &mut Vec<T>, max: usize, now: Instant) -> usize;

    /// Items currently queued across all classes.
    fn len(&self) -> usize;

    /// Whether no items are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Earliest instant at which a queued item may become releasable, if
    /// the strategy can say (lets a polling thread sleep instead of spin).
    fn next_release(&self, now: Instant) -> Option<Instant>;

    /// Moves *every* queued item into `out`, gates and release times
    /// notwithstanding; returns how many were moved.  Datapath failover
    /// uses this to evacuate a dead device's queue onto another scheduler
    /// — a closed gate must not hold packets hostage on a device that
    /// will never transmit again.
    fn drain_all(&mut self, out: &mut Vec<T>) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_construction_validates_range() {
        assert!(TrafficClass::new(0).is_ok());
        assert!(TrafficClass::new(7).is_ok());
        assert_eq!(TrafficClass::new(8), Err(TsnError::BadClass(8)));
        assert_eq!(TrafficClass::BEST_EFFORT.value(), 0);
        assert_eq!(TrafficClass::TIME_CRITICAL.value(), 7);
        assert_eq!(TrafficClass::TIME_CRITICAL.to_string(), "TC7");
    }
}
