//! Packet schedulers for the INSANE runtime.
//!
//! The paper's packet scheduler (§5.3) sends packets "according to the
//! time sensitiveness policy": a FIFO strategy by default, and an IEEE
//! 802.1Qbv *time-aware shaper* for streams marked time-sensitive (§5.2),
//! the standard designed for deterministic behavior in edge soft
//! real-time applications.
//!
//! * [`FifoScheduler`] — the default: one queue, strict arrival order.
//! * [`TasScheduler`] — 802.1Qbv: eight traffic classes, each guarded by a
//!   gate; a cyclic [`GateControlList`] opens and closes gates on a fixed
//!   schedule, so time-critical classes get exclusive, jitter-free windows.
//!
//! Both implement [`Scheduler`] so the runtime can swap them per the
//! stream QoS.
//!
//! # Examples
//!
//! ```
//! use insane_tsn::{FifoScheduler, Scheduler, TrafficClass};
//! use std::time::Instant;
//!
//! let mut s = FifoScheduler::new();
//! s.enqueue("pkt-a", TrafficClass::BEST_EFFORT, Instant::now());
//! s.enqueue("pkt-b", TrafficClass::BEST_EFFORT, Instant::now());
//! let mut out = Vec::new();
//! s.dequeue_ready(&mut out, 10, Instant::now());
//! assert_eq!(out, ["pkt-a", "pkt-b"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fifo;
mod gates;
mod tas;

pub use fifo::FifoScheduler;
pub use gates::{GateControlList, GateEntry};
pub use tas::TasScheduler;

use core::fmt;
use std::time::{Duration, Instant};

/// One of the eight 802.1Q traffic classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrafficClass(u8);

/// Number of traffic classes in 802.1Q.
pub const CLASS_COUNT: usize = 8;

impl TrafficClass {
    /// Class 0: best-effort traffic.
    pub const BEST_EFFORT: TrafficClass = TrafficClass(0);
    /// Class 7: the highest-priority, typically time-critical class.
    pub const TIME_CRITICAL: TrafficClass = TrafficClass(7);

    /// Creates a class from its 802.1Q priority value.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::BadClass`] for values ≥ 8.
    pub fn new(value: u8) -> Result<Self, TsnError> {
        if (value as usize) < CLASS_COUNT {
            Ok(TrafficClass(value))
        } else {
            Err(TsnError::BadClass(value))
        }
    }

    /// The raw priority value (0–7).
    pub fn value(&self) -> u8 {
        self.0
    }

    /// All eight classes, lowest to highest priority.
    ///
    /// The infallible iteration source for per-class loops: indexing a
    /// `[T; CLASS_COUNT]` by `value()` or walking every class never
    /// needs a fallible [`TrafficClass::new`] round trip.
    pub const fn all() -> [TrafficClass; CLASS_COUNT] {
        [
            TrafficClass(0),
            TrafficClass(1),
            TrafficClass(2),
            TrafficClass(3),
            TrafficClass(4),
            TrafficClass(5),
            TrafficClass(6),
            TrafficClass(7),
        ]
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TC{}", self.0)
    }
}

/// Errors from scheduler construction and configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsnError {
    /// Traffic-class value outside 0–7.
    BadClass(u8),
    /// A gate control list must contain at least one entry.
    EmptyGcl,
    /// A gate entry with zero duration would stall the cycle.
    ZeroDuration,
    /// A gate entry that opens no class would hold every queue for its
    /// whole window — never useful, always a configuration bug.
    NeverOpen,
    /// The exclusive critical window must leave room in the cycle for
    /// the other classes.
    WindowExceedsCycle {
        /// Requested critical-window length.
        window: Duration,
        /// Cycle period it was asked to fit inside.
        cycle: Duration,
    },
    /// The guard band must be shorter than the gate cycle, or no frame
    /// could ever start.
    GuardBandTooLong {
        /// Requested guard band.
        guard: Duration,
        /// Cycle period it must fit inside.
        cycle: Duration,
    },
}

impl fmt::Display for TsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsnError::BadClass(v) => write!(f, "traffic class {v} out of range (0-7)"),
            TsnError::EmptyGcl => write!(f, "gate control list is empty"),
            TsnError::ZeroDuration => write!(f, "gate entry has zero duration"),
            TsnError::NeverOpen => write!(f, "gate entry opens no traffic class"),
            TsnError::WindowExceedsCycle { window, cycle } => write!(
                f,
                "critical window {window:?} must be shorter than the cycle {cycle:?}"
            ),
            TsnError::GuardBandTooLong { guard, cycle } => write!(
                f,
                "guard band {guard:?} must be shorter than the cycle {cycle:?}"
            ),
        }
    }
}

impl std::error::Error for TsnError {}

/// A packet scheduler: items enter with a traffic class and leave when the
/// strategy says they may.
pub trait Scheduler<T> {
    /// Enqueues `item` in traffic class `class` at time `now`.
    fn enqueue(&mut self, item: T, class: TrafficClass, now: Instant);

    /// Moves up to `max` releasable items into `out` (in release order);
    /// returns how many were moved.
    fn dequeue_ready(&mut self, out: &mut Vec<T>, max: usize, now: Instant) -> usize;

    /// Items currently queued across all classes.
    fn len(&self) -> usize;

    /// Whether no items are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Earliest instant at which a queued item may become releasable, if
    /// the strategy can say (lets a polling thread sleep instead of spin).
    fn next_release(&self, now: Instant) -> Option<Instant>;

    /// How many queued frames can still *start* before their windows
    /// close, if the strategy meters transmission windows at all.
    ///
    /// `None` means unmetered — no useful clamp exists (the FIFO
    /// default, or a time-aware shaper with no frame-transmission
    /// times configured).  The polling engine caps its drain burst at
    /// this budget so a device burst never carries more than the
    /// remaining window can transmit.
    fn window_budget(&self, _now: Instant) -> Option<usize> {
        None
    }

    /// Takes (returns and resets) per-class counts of deferral events:
    /// dequeue passes in which a queued frame was held back by a closed
    /// gate, the guard band, or a window too short to finish in.
    ///
    /// Strategies without gates report all zeros.
    fn take_gate_deferrals(&mut self) -> [u64; CLASS_COUNT] {
        [0; CLASS_COUNT]
    }

    /// Applies shaper timing parameters at runtime, if the strategy has
    /// them: `guard_band` re-arms the gate program's guard interval,
    /// `frame_tx` sets a uniform per-frame transmission time for every
    /// class.  `None` leaves the respective parameter unchanged; the
    /// default implementation (gateless strategies) accepts and ignores
    /// both.  This is the hot-reload hook behind the `tas_*` tunables.
    ///
    /// # Errors
    ///
    /// [`TsnError::GuardBandTooLong`] if `guard_band` does not fit the
    /// strategy's gate cycle.
    fn set_timing(
        &mut self,
        _guard_band: Option<Duration>,
        _frame_tx: Option<Duration>,
    ) -> Result<(), TsnError> {
        Ok(())
    }

    /// Moves *every* queued item into `out`, gates and release times
    /// notwithstanding; returns how many were moved.  Datapath failover
    /// uses this to evacuate a dead device's queue onto another scheduler
    /// — a closed gate must not hold packets hostage on a device that
    /// will never transmit again.
    fn drain_all(&mut self, out: &mut Vec<T>) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_construction_validates_range() {
        assert!(TrafficClass::new(0).is_ok());
        assert!(TrafficClass::new(7).is_ok());
        assert_eq!(TrafficClass::new(8), Err(TsnError::BadClass(8)));
        assert_eq!(TrafficClass::BEST_EFFORT.value(), 0);
        assert_eq!(TrafficClass::TIME_CRITICAL.value(), 7);
        assert_eq!(TrafficClass::TIME_CRITICAL.to_string(), "TC7");
    }
}
