//! The default FIFO strategy: packets go out in arrival order, as soon as
//! the poller asks (paper §5.2: "a FIFO scheduler handles all the packets
//! and sends them to the network as soon as the user code emits them").

use std::collections::VecDeque;
use std::time::Instant;

use crate::{Scheduler, TrafficClass};

/// Strict arrival-order scheduler; traffic classes are ignored.
#[derive(Debug)]
pub struct FifoScheduler<T> {
    queue: VecDeque<T>,
}

impl<T> FifoScheduler<T> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self {
            queue: VecDeque::new(),
        }
    }

    /// Creates an empty scheduler with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            queue: VecDeque::with_capacity(capacity),
        }
    }
}

impl<T> Default for FifoScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Scheduler<T> for FifoScheduler<T> {
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-alloc) -- the FIFO deque is bounded by admission; it reaches a watermark and reuses capacity
    fn enqueue(&mut self, item: T, _class: TrafficClass, _now: Instant) {
        self.queue.push_back(item);
    }

    // insane-lint: hot-path-root
    fn dequeue_ready(&mut self, out: &mut Vec<T>, max: usize, _now: Instant) -> usize {
        let n = max.min(self.queue.len());
        out.extend(self.queue.drain(..n));
        n
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn next_release(&self, now: Instant) -> Option<Instant> {
        if self.queue.is_empty() {
            None
        } else {
            Some(now)
        }
    }

    fn drain_all(&mut self, out: &mut Vec<T>) -> usize {
        let n = self.queue.len();
        out.extend(self.queue.drain(..));
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_arrival_order_across_classes() {
        let mut s = FifoScheduler::new();
        let now = Instant::now();
        s.enqueue(1, TrafficClass::TIME_CRITICAL, now);
        s.enqueue(2, TrafficClass::BEST_EFFORT, now);
        s.enqueue(3, TrafficClass::TIME_CRITICAL, now);
        let mut out = Vec::new();
        assert_eq!(s.dequeue_ready(&mut out, 10, now), 3);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(s.is_empty());
    }

    #[test]
    fn dequeue_respects_max() {
        let mut s = FifoScheduler::with_capacity(8);
        let now = Instant::now();
        for i in 0..5 {
            s.enqueue(i, TrafficClass::BEST_EFFORT, now);
        }
        let mut out = Vec::new();
        assert_eq!(s.dequeue_ready(&mut out, 2, now), 2);
        assert_eq!(s.len(), 3);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn drain_all_empties_in_order() {
        let mut s = FifoScheduler::new();
        let now = Instant::now();
        for i in 0..4 {
            s.enqueue(i, TrafficClass::BEST_EFFORT, now);
        }
        let mut out = Vec::new();
        assert_eq!(s.drain_all(&mut out), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(s.is_empty());
    }

    #[test]
    fn next_release_is_immediate_or_none() {
        let mut s = FifoScheduler::new();
        let now = Instant::now();
        assert_eq!(s.next_release(now), None);
        s.enqueue((), TrafficClass::BEST_EFFORT, now);
        assert_eq!(s.next_release(now), Some(now));
    }
}
