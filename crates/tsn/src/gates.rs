//! IEEE 802.1Qbv gate control lists.
//!
//! A *gate control list* (GCL) is a cyclic program: at every instant,
//! each of the eight traffic classes has a gate that is either open or
//! closed, and only open classes may transmit.  The cycle repeats with a
//! fixed period, giving time-critical classes deterministic, exclusive
//! transmission windows.

use std::time::{Duration, Instant};

use crate::{TrafficClass, TsnError, CLASS_COUNT};

/// One GCL entry: which gates are open, for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateEntry {
    /// Bitmask of open gates (bit `i` = class `i`).
    pub gates: u8,
    /// Length of this window.
    pub duration: Duration,
}

impl GateEntry {
    /// Creates an entry opening exactly the given classes.
    ///
    /// # Errors
    ///
    /// [`TsnError::NeverOpen`] for an empty class list: an entry with
    /// every gate closed would hold all queues for its whole window.
    pub fn open(classes: &[TrafficClass], duration: Duration) -> Result<Self, TsnError> {
        if classes.is_empty() {
            return Err(TsnError::NeverOpen);
        }
        let mut gates = 0u8;
        for c in classes {
            gates |= 1 << c.value();
        }
        Ok(Self { gates, duration })
    }

    /// Creates an entry with every gate open.
    pub fn all_open(duration: Duration) -> Self {
        Self {
            gates: 0xFF,
            duration,
        }
    }

    /// Whether `class`'s gate is open in this entry.
    pub fn is_open(&self, class: TrafficClass) -> bool {
        self.gates & (1 << class.value()) != 0
    }
}

/// A cyclic gate program anchored at an epoch instant.
#[derive(Debug, Clone)]
pub struct GateControlList {
    entries: Vec<GateEntry>,
    cycle: Duration,
    epoch: Instant,
    /// Guard interval before each gate-closing boundary: a frame may
    /// not *start* within the last `guard_band` of its class's open
    /// run, so an in-flight frame can never spill into the next
    /// window (classically: bulk traffic cannot encroach on the
    /// critical window that follows it).
    guard_band: Duration,
}

impl GateControlList {
    /// Builds a GCL from `entries`, anchored at `epoch`.
    ///
    /// # Errors
    ///
    /// * [`TsnError::EmptyGcl`] with no entries.
    /// * [`TsnError::ZeroDuration`] if any window has zero length.
    /// * [`TsnError::NeverOpen`] if any entry opens no class.
    pub fn new(entries: Vec<GateEntry>, epoch: Instant) -> Result<Self, TsnError> {
        if entries.is_empty() {
            return Err(TsnError::EmptyGcl);
        }
        if entries.iter().any(|e| e.duration.is_zero()) {
            return Err(TsnError::ZeroDuration);
        }
        if entries.iter().any(|e| e.gates == 0) {
            return Err(TsnError::NeverOpen);
        }
        let cycle = entries.iter().map(|e| e.duration).sum();
        Ok(Self {
            entries,
            cycle,
            epoch,
            guard_band: Duration::ZERO,
        })
    }

    /// The canonical industrial pattern: a short exclusive window for the
    /// time-critical class at the start of each cycle, everything else
    /// open for the remainder.
    ///
    /// # Errors
    ///
    /// * [`TsnError::ZeroDuration`] if either window is zero.
    /// * [`TsnError::WindowExceedsCycle`] if `critical_window >= cycle`
    ///   — the critical class would own the whole cycle and every other
    ///   class would starve.
    pub fn exclusive_window(
        critical: TrafficClass,
        critical_window: Duration,
        cycle: Duration,
        epoch: Instant,
    ) -> Result<Self, TsnError> {
        if critical_window >= cycle {
            return Err(TsnError::WindowExceedsCycle {
                window: critical_window,
                cycle,
            });
        }
        let rest = cycle - critical_window;
        let mut others = !(1 << critical.value());
        if others == 0 {
            others = 0xFF;
        }
        Self::new(
            vec![
                GateEntry::open(&[critical], critical_window)?,
                GateEntry {
                    gates: others,
                    duration: rest,
                },
            ],
            epoch,
        )
    }

    /// Sets the guard interval enforced before each gate-closing
    /// boundary (builder form; the default is zero — no guard).
    ///
    /// # Errors
    ///
    /// [`TsnError::GuardBandTooLong`] if `guard >= cycle`.
    pub fn with_guard_band(mut self, guard: Duration) -> Result<Self, TsnError> {
        self.set_guard_band(guard)?;
        Ok(self)
    }

    /// Re-arms the guard interval on a live gate program (the hot-reload
    /// path behind the `tas_guard_band_ns` tunable).
    ///
    /// # Errors
    ///
    /// [`TsnError::GuardBandTooLong`] if `guard >= cycle`.
    pub fn set_guard_band(&mut self, guard: Duration) -> Result<(), TsnError> {
        if guard >= self.cycle {
            return Err(TsnError::GuardBandTooLong {
                guard,
                cycle: self.cycle,
            });
        }
        self.guard_band = guard;
        Ok(())
    }

    /// The configured guard interval (zero when unset).
    pub fn guard_band(&self) -> Duration {
        self.guard_band
    }

    /// Total cycle duration.
    pub fn cycle(&self) -> Duration {
        self.cycle
    }

    /// The entry active at `now`, with the time remaining in its window.
    pub fn active_entry(&self, now: Instant) -> (GateEntry, Duration) {
        let since_epoch = now.saturating_duration_since(self.epoch);
        let cycle_ns = self.cycle.as_nanos().max(1);
        // insane-lint: allow(hot-path-panic) -- divisor clamped to >= 1 by the max(1) above
        let mut into_cycle = (since_epoch.as_nanos() % cycle_ns) as u64;
        // Numerically the loop always returns (windows tile the cycle);
        // falling through keeps the function total without a panic site:
        // the last window (or an all-open entry for an empty list, which
        // the constructor rejects) with no time remaining.
        let mut fallback = GateEntry {
            gates: 0xFF,
            duration: Duration::ZERO,
        };
        for entry in &self.entries {
            let d = entry.duration.as_nanos() as u64;
            if into_cycle < d {
                return (*entry, Duration::from_nanos(d - into_cycle));
            }
            into_cycle -= d;
            fallback = *entry;
        }
        (fallback, Duration::ZERO)
    }

    /// Whether `class` may transmit at `now`.
    pub fn is_open(&self, class: TrafficClass, now: Instant) -> bool {
        self.active_entry(now).0.is_open(class)
    }

    /// The next instant at or after `now` when `class`'s gate is open
    /// (`now` itself if already open); `None` if no entry ever opens it.
    pub fn next_open(&self, class: TrafficClass, now: Instant) -> Option<Instant> {
        if self.is_open(class, now) {
            return Some(now);
        }
        // Direct modular arithmetic over the entry start offsets: the
        // wait to an opening entry is its cycle offset minus the current
        // cycle position, wrapping forward.  Total by construction — no
        // window-by-window walk that could fail to advance on a
        // zero-remaining `active_entry` fallback — and the result is an
        // entry start that opens the class, so it is open by definition.
        let cycle_ns = self.cycle.as_nanos().max(1) as u64;
        let since = now.saturating_duration_since(self.epoch).as_nanos();
        // insane-lint: allow(hot-path-panic) -- divisor clamped to >= 1 by the max(1) above
        let into = (since % u128::from(cycle_ns)) as u64;
        let mut start = 0u64;
        let mut best: Option<u64> = None;
        for entry in &self.entries {
            if entry.is_open(class) {
                // `start == into` inside an open entry was handled by the
                // early return, so `start <= into` always means "already
                // passed this cycle": the next chance is a cycle later.
                let wait = if start > into {
                    start - into
                } else {
                    start + cycle_ns - into
                };
                best = Some(best.map_or(wait, |b| b.min(wait)));
            }
            start += entry.duration.as_nanos() as u64;
        }
        best.map(|w| now + Duration::from_nanos(w))
    }

    /// How long `class`'s gate stays continuously open starting at
    /// `now`: the remainder of the active window plus every immediately
    /// following window that also opens the class, capped at one full
    /// cycle.  Zero when the gate is closed at `now`.
    pub fn open_run(&self, class: TrafficClass, now: Instant) -> Duration {
        let cycle_ns = self.cycle.as_nanos().max(1) as u64;
        let since = now.saturating_duration_since(self.epoch).as_nanos();
        // insane-lint: allow(hot-path-panic) -- divisor clamped to >= 1 by the max(1) above
        let mut into = (since % u128::from(cycle_ns)) as u64;
        let n = self.entries.len();
        let mut hit = None;
        for (i, entry) in self.entries.iter().enumerate() {
            let d = entry.duration.as_nanos() as u64;
            if into < d {
                hit = Some((i, entry, d - into));
                break;
            }
            into -= d;
        }
        // The windows tile the cycle, so the walk always lands in one.
        let Some((idx, active, remaining)) = hit else {
            return Duration::ZERO;
        };
        if !active.is_open(class) {
            return Duration::ZERO;
        }
        let mut run = remaining;
        // The remaining entries in cyclic order starting after `idx`.
        let wrapped = self
            .entries
            .iter()
            .skip(idx + 1)
            .chain(self.entries.iter())
            .take(n.saturating_sub(1));
        for entry in wrapped {
            if !entry.is_open(class) {
                return Duration::from_nanos(run.min(cycle_ns));
            }
            run += entry.duration.as_nanos() as u64;
        }
        // Every entry opens the class: the run wraps the whole cycle.
        Duration::from_nanos(cycle_ns)
    }

    /// Whether a frame of `class` taking `tx_time` on the wire may
    /// *start* at `now`: the gate must be open and the frame must finish
    /// — with the guard band to spare — before the gate closes.
    pub fn can_start(&self, class: TrafficClass, tx_time: Duration, now: Instant) -> bool {
        let run = self.open_run(class, now);
        !run.is_zero() && self.guard_band + tx_time <= run
    }

    /// Gate states per class at `now` (diagnostics / table rendering).
    pub fn snapshot(&self, now: Instant) -> [bool; CLASS_COUNT] {
        let entry = self.active_entry(now).0;
        core::array::from_fn(|i| entry.gates & (1 << i) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn construction_validates() {
        let epoch = Instant::now();
        assert_eq!(
            GateControlList::new(vec![], epoch).err(),
            Some(TsnError::EmptyGcl)
        );
        assert_eq!(
            GateControlList::new(vec![GateEntry::all_open(Duration::ZERO)], epoch).err(),
            Some(TsnError::ZeroDuration)
        );
        let gcl = GateControlList::new(vec![GateEntry::all_open(ms(10))], epoch).unwrap();
        assert_eq!(gcl.cycle(), ms(10));
    }

    #[test]
    fn never_open_entries_are_rejected_at_construction() {
        let epoch = Instant::now();
        // The constructor-shaped path...
        assert_eq!(GateEntry::open(&[], ms(5)).err(), Some(TsnError::NeverOpen));
        // ...and the literal-struct escape hatch are both closed.
        let all_closed = GateEntry {
            gates: 0,
            duration: ms(5),
        };
        assert_eq!(
            GateControlList::new(vec![GateEntry::all_open(ms(5)), all_closed], epoch).err(),
            Some(TsnError::NeverOpen)
        );
    }

    #[test]
    fn exclusive_window_rejects_window_at_or_beyond_cycle() {
        let epoch = Instant::now();
        for w in [ms(10), ms(12)] {
            assert_eq!(
                GateControlList::exclusive_window(TrafficClass::TIME_CRITICAL, w, ms(10), epoch)
                    .err(),
                Some(TsnError::WindowExceedsCycle {
                    window: w,
                    cycle: ms(10)
                })
            );
        }
    }

    #[test]
    fn guard_band_validates_and_reports() {
        let epoch = Instant::now();
        let gcl = GateControlList::new(vec![GateEntry::all_open(ms(10))], epoch).unwrap();
        assert_eq!(gcl.guard_band(), Duration::ZERO);
        assert_eq!(
            gcl.clone().with_guard_band(ms(10)).err(),
            Some(TsnError::GuardBandTooLong {
                guard: ms(10),
                cycle: ms(10)
            })
        );
        let gcl = gcl.with_guard_band(ms(1)).unwrap();
        assert_eq!(gcl.guard_band(), ms(1));
    }

    #[test]
    fn open_run_spans_consecutive_open_windows() {
        let epoch = Instant::now();
        // [0,2): TC7 only.  [2,6) and [6,10): TC0-6 — so best-effort's
        // run from t=3ms covers the rest of both windows (7ms), while
        // TC7's run from t=1ms is only the rest of its window.
        let others = GateEntry {
            gates: 0x7F,
            duration: ms(4),
        };
        let gcl = GateControlList::new(
            vec![
                GateEntry::open(&[TrafficClass::TIME_CRITICAL], ms(2)).unwrap(),
                others,
                others,
            ],
            epoch,
        )
        .unwrap();
        assert_eq!(
            gcl.open_run(TrafficClass::BEST_EFFORT, epoch + ms(3)),
            ms(7)
        );
        assert_eq!(
            gcl.open_run(TrafficClass::TIME_CRITICAL, epoch + ms(1)),
            ms(1)
        );
        assert_eq!(
            gcl.open_run(TrafficClass::BEST_EFFORT, epoch + ms(1)),
            Duration::ZERO
        );
        // A class open in every window runs a full cycle, no more.
        let always = GateControlList::new(vec![GateEntry::all_open(ms(10))], epoch).unwrap();
        assert_eq!(
            always.open_run(TrafficClass::BEST_EFFORT, epoch + ms(3)),
            ms(10)
        );
    }

    #[test]
    fn can_start_accounts_for_guard_band_and_tx_time() {
        let epoch = Instant::now();
        let gcl =
            GateControlList::exclusive_window(TrafficClass::TIME_CRITICAL, ms(2), ms(10), epoch)
                .unwrap()
                .with_guard_band(ms(1))
                .unwrap();
        // Best effort's run from t=3ms is 7ms: a 5ms frame fits (5+1 <= 7),
        // a 7ms frame does not (7+1 > 7).
        let t = epoch + ms(3);
        assert!(gcl.can_start(TrafficClass::BEST_EFFORT, ms(5), t));
        assert!(!gcl.can_start(TrafficClass::BEST_EFFORT, ms(7), t));
        // Inside the guard band before the next critical window even a
        // zero-length frame may not start.
        let t = epoch + Duration::from_micros(9_500);
        assert!(!gcl.can_start(TrafficClass::BEST_EFFORT, Duration::ZERO, t));
        // A closed gate can never start.
        assert!(!gcl.can_start(TrafficClass::BEST_EFFORT, Duration::ZERO, epoch + ms(1)));
    }

    #[test]
    fn exclusive_window_pattern() {
        let epoch = Instant::now();
        let gcl =
            GateControlList::exclusive_window(TrafficClass::TIME_CRITICAL, ms(2), ms(10), epoch)
                .unwrap();
        // In the first 2ms only TC7 is open.
        let t0 = epoch + ms(1);
        assert!(gcl.is_open(TrafficClass::TIME_CRITICAL, t0));
        assert!(!gcl.is_open(TrafficClass::BEST_EFFORT, t0));
        // Afterwards everything except TC7.
        let t1 = epoch + ms(5);
        assert!(!gcl.is_open(TrafficClass::TIME_CRITICAL, t1));
        assert!(gcl.is_open(TrafficClass::BEST_EFFORT, t1));
        // The pattern repeats every cycle.
        let t2 = epoch + ms(11);
        assert!(gcl.is_open(TrafficClass::TIME_CRITICAL, t2));
        assert!(!gcl.is_open(TrafficClass::BEST_EFFORT, t2));
    }

    #[test]
    fn next_open_for_closed_gate_lands_in_window() {
        let epoch = Instant::now();
        let gcl =
            GateControlList::exclusive_window(TrafficClass::TIME_CRITICAL, ms(2), ms(10), epoch)
                .unwrap();
        // Best effort is closed during [0, 2ms); next open is at 2ms.
        let t = epoch + ms(1);
        let open_at = gcl.next_open(TrafficClass::BEST_EFFORT, t).unwrap();
        let offset = open_at.duration_since(epoch);
        assert!(offset >= ms(2) && offset < ms(3), "{offset:?}");
        // TC7 closed during [2ms, 10ms); next open at cycle start (10ms).
        let t = epoch + ms(5);
        let open_at = gcl.next_open(TrafficClass::TIME_CRITICAL, t).unwrap();
        let offset = open_at.duration_since(epoch);
        assert!(offset >= ms(10) && offset < ms(11), "{offset:?}");
    }

    #[test]
    fn never_open_gate_returns_none() {
        let epoch = Instant::now();
        let gcl = GateControlList::new(
            vec![GateEntry::open(&[TrafficClass::TIME_CRITICAL], ms(5)).unwrap()],
            epoch,
        )
        .unwrap();
        assert_eq!(gcl.next_open(TrafficClass::BEST_EFFORT, epoch), None);
        assert_eq!(
            gcl.next_open(TrafficClass::TIME_CRITICAL, epoch),
            Some(epoch)
        );
    }

    #[test]
    fn snapshot_reflects_active_entry() {
        let epoch = Instant::now();
        let gcl =
            GateControlList::exclusive_window(TrafficClass::new(6).unwrap(), ms(3), ms(9), epoch)
                .unwrap();
        let snap = gcl.snapshot(epoch + ms(1));
        assert!(snap[6]);
        assert!(!snap[0] && !snap[7]);
        let snap = gcl.snapshot(epoch + ms(4));
        assert!(!snap[6]);
        assert!(snap[0] && snap[7]);
    }

    #[test]
    fn active_entry_reports_remaining_window() {
        let epoch = Instant::now();
        let gcl = GateControlList::new(
            vec![GateEntry::all_open(ms(4)), GateEntry::all_open(ms(6))],
            epoch,
        )
        .unwrap();
        let (_, remaining) = gcl.active_entry(epoch + ms(1));
        assert!(remaining > ms(2) && remaining <= ms(3));
        let (_, remaining) = gcl.active_entry(epoch + ms(7));
        assert!(remaining > ms(2) && remaining <= ms(3));
    }
}
