//! IEEE 802.1Qbv gate control lists.
//!
//! A *gate control list* (GCL) is a cyclic program: at every instant,
//! each of the eight traffic classes has a gate that is either open or
//! closed, and only open classes may transmit.  The cycle repeats with a
//! fixed period, giving time-critical classes deterministic, exclusive
//! transmission windows.

use std::time::{Duration, Instant};

use crate::{TrafficClass, TsnError, CLASS_COUNT};

/// One GCL entry: which gates are open, for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateEntry {
    /// Bitmask of open gates (bit `i` = class `i`).
    pub gates: u8,
    /// Length of this window.
    pub duration: Duration,
}

impl GateEntry {
    /// Creates an entry opening exactly the given classes.
    pub fn open(classes: &[TrafficClass], duration: Duration) -> Self {
        let mut gates = 0u8;
        for c in classes {
            gates |= 1 << c.value();
        }
        Self { gates, duration }
    }

    /// Creates an entry with every gate open.
    pub fn all_open(duration: Duration) -> Self {
        Self {
            gates: 0xFF,
            duration,
        }
    }

    /// Whether `class`'s gate is open in this entry.
    pub fn is_open(&self, class: TrafficClass) -> bool {
        self.gates & (1 << class.value()) != 0
    }
}

/// A cyclic gate program anchored at an epoch instant.
#[derive(Debug, Clone)]
pub struct GateControlList {
    entries: Vec<GateEntry>,
    cycle: Duration,
    epoch: Instant,
}

impl GateControlList {
    /// Builds a GCL from `entries`, anchored at `epoch`.
    ///
    /// # Errors
    ///
    /// * [`TsnError::EmptyGcl`] with no entries.
    /// * [`TsnError::ZeroDuration`] if any window has zero length.
    pub fn new(entries: Vec<GateEntry>, epoch: Instant) -> Result<Self, TsnError> {
        if entries.is_empty() {
            return Err(TsnError::EmptyGcl);
        }
        if entries.iter().any(|e| e.duration.is_zero()) {
            return Err(TsnError::ZeroDuration);
        }
        let cycle = entries.iter().map(|e| e.duration).sum();
        Ok(Self {
            entries,
            cycle,
            epoch,
        })
    }

    /// The canonical industrial pattern: a short exclusive window for the
    /// time-critical class at the start of each cycle, everything else
    /// open for the remainder.
    ///
    /// # Errors
    ///
    /// [`TsnError::ZeroDuration`] if either window is zero.
    pub fn exclusive_window(
        critical: TrafficClass,
        critical_window: Duration,
        cycle: Duration,
        epoch: Instant,
    ) -> Result<Self, TsnError> {
        let rest = cycle.saturating_sub(critical_window);
        let mut others = !(1 << critical.value());
        if others == 0 {
            others = 0xFF;
        }
        Self::new(
            vec![
                GateEntry::open(&[critical], critical_window),
                GateEntry {
                    gates: others,
                    duration: rest,
                },
            ],
            epoch,
        )
    }

    /// Total cycle duration.
    pub fn cycle(&self) -> Duration {
        self.cycle
    }

    /// The entry active at `now`, with the time remaining in its window.
    pub fn active_entry(&self, now: Instant) -> (GateEntry, Duration) {
        let since_epoch = now.saturating_duration_since(self.epoch);
        let cycle_ns = self.cycle.as_nanos().max(1);
        // insane-lint: allow(hot-path-panic) -- divisor clamped to >= 1 by the max(1) above
        let mut into_cycle = (since_epoch.as_nanos() % cycle_ns) as u64;
        // Numerically the loop always returns (windows tile the cycle);
        // falling through keeps the function total without a panic site:
        // the last window (or an all-open entry for an empty list, which
        // the constructor rejects) with no time remaining.
        let mut fallback = GateEntry {
            gates: 0xFF,
            duration: Duration::ZERO,
        };
        for entry in &self.entries {
            let d = entry.duration.as_nanos() as u64;
            if into_cycle < d {
                return (*entry, Duration::from_nanos(d - into_cycle));
            }
            into_cycle -= d;
            fallback = *entry;
        }
        (fallback, Duration::ZERO)
    }

    /// Whether `class` may transmit at `now`.
    pub fn is_open(&self, class: TrafficClass, now: Instant) -> bool {
        self.active_entry(now).0.is_open(class)
    }

    /// The next instant at or after `now` when `class`'s gate is open
    /// (`now` itself if already open); `None` if no entry ever opens it.
    pub fn next_open(&self, class: TrafficClass, now: Instant) -> Option<Instant> {
        if !self.entries.iter().any(|e| e.is_open(class)) {
            return None;
        }
        if self.is_open(class, now) {
            return Some(now);
        }
        // Walk windows forward from `now` until one opens the gate.
        let (_, remaining) = self.active_entry(now);
        let mut t = now + remaining;
        for _ in 0..self.entries.len() {
            if self.is_open(class, t) {
                return Some(t);
            }
            let (_, rem) = self.active_entry(t);
            t += rem;
        }
        Some(t)
    }

    /// Gate states per class at `now` (diagnostics / table rendering).
    pub fn snapshot(&self, now: Instant) -> [bool; CLASS_COUNT] {
        let entry = self.active_entry(now).0;
        core::array::from_fn(|i| entry.gates & (1 << i) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn construction_validates() {
        let epoch = Instant::now();
        assert_eq!(
            GateControlList::new(vec![], epoch).err(),
            Some(TsnError::EmptyGcl)
        );
        assert_eq!(
            GateControlList::new(vec![GateEntry::all_open(Duration::ZERO)], epoch).err(),
            Some(TsnError::ZeroDuration)
        );
        let gcl = GateControlList::new(vec![GateEntry::all_open(ms(10))], epoch).unwrap();
        assert_eq!(gcl.cycle(), ms(10));
    }

    #[test]
    fn exclusive_window_pattern() {
        let epoch = Instant::now();
        let gcl =
            GateControlList::exclusive_window(TrafficClass::TIME_CRITICAL, ms(2), ms(10), epoch)
                .unwrap();
        // In the first 2ms only TC7 is open.
        let t0 = epoch + ms(1);
        assert!(gcl.is_open(TrafficClass::TIME_CRITICAL, t0));
        assert!(!gcl.is_open(TrafficClass::BEST_EFFORT, t0));
        // Afterwards everything except TC7.
        let t1 = epoch + ms(5);
        assert!(!gcl.is_open(TrafficClass::TIME_CRITICAL, t1));
        assert!(gcl.is_open(TrafficClass::BEST_EFFORT, t1));
        // The pattern repeats every cycle.
        let t2 = epoch + ms(11);
        assert!(gcl.is_open(TrafficClass::TIME_CRITICAL, t2));
        assert!(!gcl.is_open(TrafficClass::BEST_EFFORT, t2));
    }

    #[test]
    fn next_open_for_closed_gate_lands_in_window() {
        let epoch = Instant::now();
        let gcl =
            GateControlList::exclusive_window(TrafficClass::TIME_CRITICAL, ms(2), ms(10), epoch)
                .unwrap();
        // Best effort is closed during [0, 2ms); next open is at 2ms.
        let t = epoch + ms(1);
        let open_at = gcl.next_open(TrafficClass::BEST_EFFORT, t).unwrap();
        let offset = open_at.duration_since(epoch);
        assert!(offset >= ms(2) && offset < ms(3), "{offset:?}");
        // TC7 closed during [2ms, 10ms); next open at cycle start (10ms).
        let t = epoch + ms(5);
        let open_at = gcl.next_open(TrafficClass::TIME_CRITICAL, t).unwrap();
        let offset = open_at.duration_since(epoch);
        assert!(offset >= ms(10) && offset < ms(11), "{offset:?}");
    }

    #[test]
    fn never_open_gate_returns_none() {
        let epoch = Instant::now();
        let gcl = GateControlList::new(
            vec![GateEntry::open(&[TrafficClass::TIME_CRITICAL], ms(5))],
            epoch,
        )
        .unwrap();
        assert_eq!(gcl.next_open(TrafficClass::BEST_EFFORT, epoch), None);
        assert_eq!(
            gcl.next_open(TrafficClass::TIME_CRITICAL, epoch),
            Some(epoch)
        );
    }

    #[test]
    fn snapshot_reflects_active_entry() {
        let epoch = Instant::now();
        let gcl =
            GateControlList::exclusive_window(TrafficClass::new(6).unwrap(), ms(3), ms(9), epoch)
                .unwrap();
        let snap = gcl.snapshot(epoch + ms(1));
        assert!(snap[6]);
        assert!(!snap[0] && !snap[7]);
        let snap = gcl.snapshot(epoch + ms(4));
        assert!(!snap[6]);
        assert!(snap[0] && snap[7]);
    }

    #[test]
    fn active_entry_reports_remaining_window() {
        let epoch = Instant::now();
        let gcl = GateControlList::new(
            vec![GateEntry::all_open(ms(4)), GateEntry::all_open(ms(6))],
            epoch,
        )
        .unwrap();
        let (_, remaining) = gcl.active_entry(epoch + ms(1));
        assert!(remaining > ms(2) && remaining <= ms(3));
        let (_, remaining) = gcl.active_entry(epoch + ms(7));
        assert!(remaining > ms(2) && remaining <= ms(3));
    }
}
