//! Property-based tests for the schedulers.

use insane_tsn::{
    FifoScheduler, GateControlList, GateEntry, Scheduler, TasScheduler, TrafficClass,
};
use proptest::prelude::*;
use std::time::{Duration, Instant};

proptest! {
    /// FIFO conservation: every enqueued item leaves exactly once, in
    /// arrival order, under any interleaving of enqueues and dequeues.
    #[test]
    fn fifo_conserves_and_orders(ops in proptest::collection::vec(any::<Option<u8>>(), 1..300)) {
        let mut s = FifoScheduler::new();
        let now = Instant::now();
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        let mut out = Vec::new();
        for op in ops {
            match op {
                Some(class) => {
                    s.enqueue(next_in, TrafficClass::new(class % 8).unwrap(), now);
                    next_in += 1;
                }
                None => {
                    out.clear();
                    s.dequeue_ready(&mut out, 3, now);
                    for &v in &out {
                        prop_assert_eq!(v, next_out);
                        next_out += 1;
                    }
                }
            }
        }
        out.clear();
        s.dequeue_ready(&mut out, usize::MAX, now);
        for &v in &out {
            prop_assert_eq!(v, next_out);
            next_out += 1;
        }
        prop_assert_eq!(next_out, next_in);
        prop_assert!(s.is_empty());
    }

    /// TAS never releases an item while its class gate is closed, and
    /// releases everything once all gates open.
    #[test]
    fn tas_respects_gates(items in proptest::collection::vec(0u8..8, 1..100),
                          probe_ms in 0u64..30) {
        let epoch = Instant::now();
        // [0, 5ms): classes 4-7.  [5ms, 10ms): classes 0-3.
        let gcl = GateControlList::new(
            vec![
                GateEntry { gates: 0xF0, duration: Duration::from_millis(5) },
                GateEntry { gates: 0x0F, duration: Duration::from_millis(5) },
            ],
            epoch,
        )
        .unwrap();
        let mut s = TasScheduler::new(gcl.clone());
        for (i, &c) in items.iter().enumerate() {
            s.enqueue((i, c), TrafficClass::new(c).unwrap(), epoch);
        }
        let probe = epoch + Duration::from_millis(probe_ms);
        let mut out = Vec::new();
        s.dequeue_ready(&mut out, usize::MAX, probe);
        for &(_, c) in &out {
            prop_assert!(
                gcl.is_open(TrafficClass::new(c).unwrap(), probe),
                "released class {c} while its gate was closed"
            );
        }
        // Drain the rest by probing both halves of a cycle.
        let mut drained = out.len();
        for extra in [0u64, 6] {
            let t = epoch + Duration::from_millis(20 + extra);
            out.clear();
            s.dequeue_ready(&mut out, usize::MAX, t);
            drained += out.len();
        }
        prop_assert_eq!(drained, items.len());
        prop_assert!(s.is_empty());
    }

    /// next_release never lies: if it reports an instant, at least one
    /// item is releasable there.
    #[test]
    fn tas_next_release_is_sound(classes in proptest::collection::vec(0u8..8, 1..50)) {
        let epoch = Instant::now();
        let gcl = GateControlList::exclusive_window(
            TrafficClass::TIME_CRITICAL,
            Duration::from_millis(2),
            Duration::from_millis(10),
            epoch,
        )
        .unwrap();
        let mut s = TasScheduler::new(gcl);
        for (i, &c) in classes.iter().enumerate() {
            s.enqueue(i, TrafficClass::new(c).unwrap(), epoch);
        }
        let t = epoch + Duration::from_millis(1);
        if let Some(release) = s.next_release(t) {
            let mut out = Vec::new();
            let n = s.dequeue_ready(&mut out, usize::MAX, release);
            prop_assert!(n > 0, "next_release promised work but none was releasable");
        }
    }
}
