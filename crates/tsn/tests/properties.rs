//! Property-based tests for the schedulers.

use insane_tsn::{
    FifoScheduler, GateControlList, GateEntry, Scheduler, TasScheduler, TrafficClass,
};
use proptest::prelude::*;
use std::time::{Duration, Instant};

proptest! {
    /// FIFO conservation: every enqueued item leaves exactly once, in
    /// arrival order, under any interleaving of enqueues and dequeues.
    #[test]
    fn fifo_conserves_and_orders(ops in proptest::collection::vec(any::<Option<u8>>(), 1..300)) {
        let mut s = FifoScheduler::new();
        let now = Instant::now();
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        let mut out = Vec::new();
        for op in ops {
            match op {
                Some(class) => {
                    s.enqueue(next_in, TrafficClass::new(class % 8).unwrap(), now);
                    next_in += 1;
                }
                None => {
                    out.clear();
                    s.dequeue_ready(&mut out, 3, now);
                    for &v in &out {
                        prop_assert_eq!(v, next_out);
                        next_out += 1;
                    }
                }
            }
        }
        out.clear();
        s.dequeue_ready(&mut out, usize::MAX, now);
        for &v in &out {
            prop_assert_eq!(v, next_out);
            next_out += 1;
        }
        prop_assert_eq!(next_out, next_in);
        prop_assert!(s.is_empty());
    }

    /// TAS never releases an item while its class gate is closed, and
    /// releases everything once all gates open.
    #[test]
    fn tas_respects_gates(items in proptest::collection::vec(0u8..8, 1..100),
                          probe_ms in 0u64..30) {
        let epoch = Instant::now();
        // [0, 5ms): classes 4-7.  [5ms, 10ms): classes 0-3.
        let gcl = GateControlList::new(
            vec![
                GateEntry { gates: 0xF0, duration: Duration::from_millis(5) },
                GateEntry { gates: 0x0F, duration: Duration::from_millis(5) },
            ],
            epoch,
        )
        .unwrap();
        let mut s = TasScheduler::new(gcl.clone());
        for (i, &c) in items.iter().enumerate() {
            s.enqueue((i, c), TrafficClass::new(c).unwrap(), epoch);
        }
        let probe = epoch + Duration::from_millis(probe_ms);
        let mut out = Vec::new();
        s.dequeue_ready(&mut out, usize::MAX, probe);
        for &(_, c) in &out {
            prop_assert!(
                gcl.is_open(TrafficClass::new(c).unwrap(), probe),
                "released class {c} while its gate was closed"
            );
        }
        // Drain the rest by probing both halves of a cycle.
        let mut drained = out.len();
        for extra in [0u64, 6] {
            let t = epoch + Duration::from_millis(20 + extra);
            out.clear();
            s.dequeue_ready(&mut out, usize::MAX, t);
            drained += out.len();
        }
        prop_assert_eq!(drained, items.len());
        prop_assert!(s.is_empty());
    }

    /// `next_open` agrees with `active_entry` for arbitrary gate
    /// programs: the windows tile the cycle, a reported instant is
    /// actually open, lands within two cycles, and no entry boundary
    /// before it opens the class (so it is minimal at the granularity
    /// at which gates change).
    #[test]
    fn gcl_next_open_agrees_with_active_entry(
        entries in proptest::collection::vec((1u8..=255u8, 1u64..20), 1..6),
        class in 0u8..8,
        probe_ms in 0u64..200,
    ) {
        let epoch = Instant::now();
        let gcl = GateControlList::new(
            entries
                .iter()
                .map(|&(gates, d)| GateEntry { gates, duration: Duration::from_millis(d) })
                .collect(),
            epoch,
        )
        .unwrap();
        let tiled: Duration = entries.iter().map(|&(_, d)| Duration::from_millis(d)).sum();
        prop_assert_eq!(gcl.cycle(), tiled, "windows must tile the cycle");
        let class = TrafficClass::new(class).unwrap();
        let t = epoch + Duration::from_millis(probe_ms) + Duration::from_micros(137);
        match gcl.next_open(class, t) {
            None => {
                // A None class must be closed at every sampled instant.
                for ms in 0..gcl.cycle().as_millis() as u64 {
                    prop_assert!(!gcl.is_open(class, epoch + Duration::from_millis(ms)));
                }
            }
            Some(open_at) => {
                prop_assert!(open_at >= t);
                prop_assert!(gcl.is_open(class, open_at), "next_open returned a closed instant");
                prop_assert!(gcl.active_entry(open_at).0.is_open(class));
                prop_assert!(open_at.duration_since(t) < gcl.cycle() * 2);
                if open_at > t {
                    prop_assert!(!gcl.is_open(class, t));
                    // Walk the entry boundaries in (t, open_at): all closed.
                    let mut b = t + gcl.active_entry(t).1;
                    while b < open_at {
                        prop_assert!(
                            !gcl.is_open(class, b),
                            "an earlier boundary already opened the class"
                        );
                        let (_, rem) = gcl.active_entry(b);
                        if rem.is_zero() {
                            break;
                        }
                        b += rem;
                    }
                }
            }
        }
    }

    /// next_release never lies: if it reports an instant, at least one
    /// item is releasable there.
    #[test]
    fn tas_next_release_is_sound(classes in proptest::collection::vec(0u8..8, 1..50)) {
        let epoch = Instant::now();
        let gcl = GateControlList::exclusive_window(
            TrafficClass::TIME_CRITICAL,
            Duration::from_millis(2),
            Duration::from_millis(10),
            epoch,
        )
        .unwrap();
        let mut s = TasScheduler::new(gcl);
        for (i, &c) in classes.iter().enumerate() {
            s.enqueue(i, TrafficClass::new(c).unwrap(), epoch);
        }
        let t = epoch + Duration::from_millis(1);
        if let Some(release) = s.next_release(t) {
            let mut out = Vec::new();
            let n = s.dequeue_ready(&mut out, usize::MAX, release);
            prop_assert!(n > 0, "next_release promised work but none was releasable");
        }
    }
}
