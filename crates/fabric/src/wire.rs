//! The fabric itself: hosts, ports, frames, and delivery scheduling.

use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use insane_memory::SlotView;

use crate::link::DirectedLink;
use crate::profile::TestbedProfile;
use crate::FabricError;

/// Identifier of a host attached to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub(crate) u32);

impl HostId {
    /// Raw numeric id (stable for the lifetime of the fabric).
    pub fn index(&self) -> u32 {
        self.0
    }

    /// Reconstructs a host id from its raw index (e.g. received in a
    /// control message).  Using an index that no host carries makes
    /// subsequent operations fail with [`FabricError::UnknownHost`].
    pub fn from_index(index: u32) -> Self {
        HostId(index)
    }
}

/// A (host, port) pair — the fabric-level address of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Host the device is attached to.
    pub host: HostId,
    /// Port number the device bound (device-class specific namespaces are
    /// up to the caller, like UDP ports are).
    pub port: u16,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}:{}", self.host.0, self.port)
    }
}

/// Frame payload: inline bytes, or a zero-copy slot view.
///
/// Kernel-path devices copy payloads (and are charged for it); bypass
/// devices move [`SlotView`]s so the bytes are written once by the producer
/// and read once by the consumer — the paper's zero-copy property.
pub enum Payload {
    /// Owned bytes travelling with the frame.
    Inline(Box<[u8]>),
    /// A checked-out slot travelling by id (DMA-like).
    Pooled(SlotView),
}

impl Payload {
    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Inline(b) => b,
            Payload::Pooled(v) => v,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the payload into a fresh vector (the explicit copy a
    /// non-zero-copy consumer performs).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Duplicates the payload the way the wire would: inline bytes are
    /// copied, pooled slots gain another reference (no byte copy).
    pub(crate) fn clone_shallow(&self) -> Payload {
        match self {
            Payload::Inline(b) => Payload::Inline(b.clone()),
            Payload::Pooled(v) => Payload::Pooled(v.clone_ref()),
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Inline(b) => f.debug_tuple("Inline").field(&b.len()).finish(),
            Payload::Pooled(v) => f.debug_tuple("Pooled").field(&v.len()).finish(),
        }
    }
}

/// A frame in flight (or delivered).
#[derive(Debug)]
pub struct Frame {
    /// Sender endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Payload bytes or slot.
    pub payload: Payload,
    /// When the sending device handed the frame to its NIC.
    pub sent_at: Instant,
    /// When the fabric delivered the frame at the destination port
    /// (serialization + propagation + switch).  Set by the fabric.
    pub delivered_at: Instant,
}

impl Frame {
    /// Creates a frame ready for [`Fabric::transmit`].
    pub fn new(src: Endpoint, dst: Endpoint, payload: Payload) -> Self {
        let now = Instant::now();
        Self {
            src,
            dst,
            payload,
            sent_at: now,
            delivered_at: now,
        }
    }

    /// Time the frame spent on the wire (network component of Fig. 6).
    pub fn wire_ns(&self) -> u64 {
        self.delivered_at
            .saturating_duration_since(self.sent_at)
            .as_nanos() as u64
    }
}

/// Per-port delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Frames enqueued for this port.
    pub delivered: u64,
    /// Frames dropped because the port queue was full (receiver overrun —
    /// the effect behind Fig. 8b's collapse at 8 sinks).
    pub dropped: u64,
}

struct PortInner {
    queue: Mutex<VecDeque<Frame>>,
    ready: Condvar,
    capacity: usize,
    delivered: AtomicU64,
    dropped: AtomicU64,
    closed: Mutex<bool>,
}

impl PortInner {
    fn stats(&self) -> PortStats {
        PortStats {
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// Receiver handle for a bound endpoint; devices wrap this.
#[derive(Clone)]
pub struct PortHandle {
    endpoint: Endpoint,
    inner: Arc<PortInner>,
    fabric: Arc<FabricInner>,
}

impl fmt::Debug for PortHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PortHandle")
            .field("endpoint", &self.endpoint)
            .field("stats", &self.inner.stats())
            .finish()
    }
}

impl PortHandle {
    /// The endpoint this port is bound to.
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint
    }

    /// Delivery statistics for this port.
    pub fn stats(&self) -> PortStats {
        self.inner.stats()
    }

    /// Frames currently queued (including not-yet-deliverable ones).
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Pops the oldest frame whose delivery time has arrived, if any.
    pub fn poll(&self) -> Option<Frame> {
        let mut q = self.inner.queue.lock();
        match q.front() {
            Some(f) if f.delivered_at <= Instant::now() => q.pop_front(),
            _ => None,
        }
    }

    /// Pops up to `max` deliverable frames into `out`; returns the count.
    pub fn poll_burst(&self, out: &mut Vec<Frame>, max: usize) -> usize {
        let mut q = self.inner.queue.lock();
        let now = Instant::now();
        let mut n = 0;
        while n < max && q.front().is_some_and(|f| f.delivered_at <= now) {
            if let Some(f) = q.pop_front() {
                out.push(f);
                n += 1;
            }
        }
        n
    }

    /// Blocks until a frame is deliverable and pops it.
    ///
    /// # Errors
    ///
    /// [`FabricError::Closed`] if the port is shut down while waiting.
    pub fn recv_blocking(&self) -> Result<Frame, FabricError> {
        let mut q = self.inner.queue.lock();
        loop {
            if *self.inner.closed.lock() {
                return Err(FabricError::Closed);
            }
            let now = Instant::now();
            match q.front().map(|f| f.delivered_at) {
                Some(at) if at <= now => {
                    if let Some(f) = q.pop_front() {
                        return Ok(f);
                    }
                }
                Some(deadline) => {
                    self.inner.ready.wait_until(&mut q, deadline);
                }
                None => {
                    self.inner.ready.wait(&mut q);
                }
            }
        }
    }

    /// Marks the port closed, waking any blocked receiver.
    pub fn close(&self) {
        *self.inner.closed.lock() = true;
        self.inner.ready.notify_all();
    }

    /// Removes the binding from the fabric (subsequent sends to this
    /// endpoint fail with [`FabricError::Unreachable`]).
    pub fn unbind(&self) {
        self.close();
        self.fabric.ports.write().remove(&self.endpoint);
    }
}

struct HostInfo {
    #[allow(dead_code)]
    name: String,
    uplink: DirectedLink,
    downlink: DirectedLink,
}

struct FabricInner {
    profile: TestbedProfile,
    hosts: RwLock<Vec<Arc<HostInfo>>>,
    ports: RwLock<HashMap<Endpoint, Arc<PortInner>>>,
    frames_sent: AtomicU64,
    faults: Arc<crate::fault::FaultState>,
}

/// The in-process wire connecting simulated hosts.
///
/// Cloning is cheap (shared handle).
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl fmt::Debug for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fabric")
            .field("profile", &self.inner.profile.name)
            .field("hosts", &self.inner.hosts.read().len())
            .field("ports", &self.inner.ports.read().len())
            .field(
                "frames_sent",
                &self.inner.frames_sent.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl Fabric {
    /// Creates a fabric with the given testbed profile.
    pub fn new(profile: TestbedProfile) -> Self {
        Self {
            inner: Arc::new(FabricInner {
                profile,
                hosts: RwLock::new(Vec::new()),
                ports: RwLock::new(HashMap::new()),
                frames_sent: AtomicU64::new(0),
                faults: Arc::new(crate::fault::FaultState::new()),
            }),
        }
    }

    /// The testbed profile this fabric was created with.
    pub fn profile(&self) -> &TestbedProfile {
        &self.inner.profile
    }

    /// Attaches a new host and returns its id.
    pub fn add_host(&self, name: &str) -> HostId {
        let mut hosts = self.inner.hosts.write();
        let id = HostId(hosts.len() as u32);
        hosts.push(Arc::new(HostInfo {
            name: name.to_owned(),
            uplink: DirectedLink::new(self.inner.profile.link),
            downlink: DirectedLink::new(self.inner.profile.link),
        }));
        id
    }

    /// Number of hosts attached.
    pub fn host_count(&self) -> usize {
        self.inner.hosts.read().len()
    }

    /// Total frames accepted for transmission.
    pub fn frames_sent(&self) -> u64 {
        self.inner.frames_sent.load(Ordering::Relaxed)
    }

    /// Handle for configuring fault injection on this fabric.
    pub fn faults(&self) -> crate::fault::FaultInjector {
        crate::fault::FaultInjector::from_state(Arc::clone(&self.inner.faults))
    }

    /// Whether the device at `ep` is gated down by fault injection.
    /// Runtimes use this as their datapath health probe.
    pub fn device_down(&self, ep: Endpoint) -> bool {
        self.inner.faults.device_is_down(ep)
    }

    fn host(&self, id: HostId) -> Result<Arc<HostInfo>, FabricError> {
        self.inner
            .hosts
            .read()
            .get(id.0 as usize)
            .cloned()
            .ok_or(FabricError::UnknownHost(id))
    }

    /// Binds `endpoint` with the profile's default RX queue capacity.
    ///
    /// # Errors
    ///
    /// * [`FabricError::UnknownHost`] for an unattached host.
    /// * [`FabricError::AddrInUse`] if the endpoint is taken.
    pub fn bind(&self, endpoint: Endpoint) -> Result<PortHandle, FabricError> {
        self.bind_with_capacity(endpoint, self.inner.profile.rx_queue_frames)
    }

    /// Binds `endpoint` with an explicit RX queue capacity in frames.
    ///
    /// # Errors
    ///
    /// As [`Fabric::bind`].
    pub fn bind_with_capacity(
        &self,
        endpoint: Endpoint,
        capacity: usize,
    ) -> Result<PortHandle, FabricError> {
        self.host(endpoint.host)?;
        let mut ports = self.inner.ports.write();
        if ports.contains_key(&endpoint) {
            return Err(FabricError::AddrInUse(endpoint));
        }
        let inner = Arc::new(PortInner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity,
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            closed: Mutex::new(false),
        });
        ports.insert(endpoint, Arc::clone(&inner));
        Ok(PortHandle {
            endpoint,
            inner,
            fabric: Arc::clone(&self.inner),
        })
    }

    /// Whether `endpoint` currently has a bound port.
    pub fn is_bound(&self, endpoint: Endpoint) -> bool {
        self.inner.ports.read().contains_key(&endpoint)
    }

    /// Transmits a frame: computes its delivery time from the link models
    /// and enqueues it at the destination port.
    ///
    /// `wire_bytes` is the on-wire frame size (payload + technology
    /// headers); `extra_latency_ns` is the device's one-way NIC latency.
    ///
    /// A full destination queue drops the frame silently (counted in the
    /// port's [`PortStats::dropped`]) — datagram semantics, like every
    /// technology the paper integrates.
    ///
    /// # Errors
    ///
    /// [`FabricError::Unreachable`] when nothing is bound at `frame.dst`.
    pub fn transmit(
        &self,
        frame: Frame,
        wire_bytes: usize,
        extra_latency_ns: u64,
    ) -> Result<(), FabricError> {
        self.transmit_at(frame, wire_bytes, extra_latency_ns, Instant::now())
    }

    /// As [`Fabric::transmit`] with an explicit hand-off instant, so a
    /// device submitting a burst reads the clock once for all frames.
    pub fn transmit_at(
        &self,
        mut frame: Frame,
        wire_bytes: usize,
        extra_latency_ns: u64,
        now: Instant,
    ) -> Result<(), FabricError> {
        let dst_port = self
            .inner
            .ports
            .read()
            .get(&frame.dst)
            .cloned()
            .ok_or(FabricError::Unreachable(frame.dst))?;

        // Fault pipeline: device/host gates, link gates, per-link plans.
        // Like real datagram networks, injected loss is silent (`Ok`).
        let (duplicate, reorder) = match self.inner.faults.intercept(&mut frame, now) {
            crate::fault::Verdict::Drop => return Ok(()),
            crate::fault::Verdict::Deliver { duplicate, reorder } => (duplicate, reorder),
        };

        frame.sent_at = now;
        let deliver_at = if frame.src.host == frame.dst.host {
            now + std::time::Duration::from_nanos(
                self.inner.profile.link.loopback_ns + extra_latency_ns,
            )
        } else {
            let src_host = self.host(frame.src.host)?;
            let dst_host = self.host(frame.dst.host)?;
            // 1. serialize on the sender uplink (queues behind in-flight
            //    frames — this is the goodput gate);
            let tx_done = src_host.uplink.reserve(wire_bytes, now);
            // 2. propagation + switch traversal + NIC latency;
            let hop = self.inner.profile.link.propagation_ns
                + self.inner.profile.switch_ns()
                + extra_latency_ns;
            let arrived = tx_done + std::time::Duration::from_nanos(hop);
            // 3. serialize on the receiver downlink (store-and-forward).
            dst_host.downlink.reserve(wire_bytes, arrived)
        };
        frame.delivered_at = deliver_at;

        let twin = duplicate.then(|| Frame {
            src: frame.src,
            dst: frame.dst,
            payload: frame.payload.clone_shallow(),
            sent_at: frame.sent_at,
            delivered_at: frame.delivered_at,
        });

        let mut q = dst_port.queue.lock();
        let mut accepted = 0u64;
        for f in std::iter::once(frame).chain(twin) {
            if q.len() >= dst_port.capacity {
                dst_port.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                q.push_back(f);
                dst_port.delivered.fetch_add(1, Ordering::Relaxed);
                accepted += 1;
            }
        }
        if reorder {
            let n = q.len();
            if n >= 2 {
                q.swap(n - 1, n - 2);
            }
        }
        drop(q);
        if accepted > 0 {
            dst_port.ready.notify_one();
            self.inner
                .frames_sent
                .fetch_add(accepted, Ordering::Relaxed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestbedProfile;

    fn two_hosts() -> (Fabric, HostId, HostId) {
        let f = Fabric::new(TestbedProfile::local());
        let a = f.add_host("a");
        let b = f.add_host("b");
        (f, a, b)
    }

    fn ep(host: HostId, port: u16) -> Endpoint {
        Endpoint { host, port }
    }

    #[test]
    fn bind_rejects_duplicates_and_unknown_hosts() {
        let (f, a, _) = two_hosts();
        let e = ep(a, 7);
        let _p = f.bind(e).unwrap();
        assert_eq!(f.bind(e).err(), Some(FabricError::AddrInUse(e)));
        let ghost = Endpoint {
            host: HostId(99),
            port: 1,
        };
        assert_eq!(
            f.bind(ghost).err(),
            Some(FabricError::UnknownHost(HostId(99)))
        );
    }

    #[test]
    fn transmit_to_unbound_endpoint_fails() {
        let (f, a, b) = two_hosts();
        let frame = Frame::new(ep(a, 1), ep(b, 2), Payload::Inline(b"x".to_vec().into()));
        assert!(matches!(
            f.transmit(frame, 64, 0),
            Err(FabricError::Unreachable(_))
        ));
    }

    #[test]
    fn frame_travels_and_carries_payload() {
        let (f, a, b) = two_hosts();
        let src = ep(a, 1);
        let dst = ep(b, 2);
        let port = f.bind(dst).unwrap();
        f.transmit(
            Frame::new(src, dst, Payload::Inline(b"hello".to_vec().into())),
            64,
            0,
        )
        .unwrap();
        let got = port.recv_blocking().unwrap();
        assert_eq!(got.payload.as_slice(), b"hello");
        assert_eq!(got.src, src);
        assert!(got.wire_ns() >= 500, "propagation must apply");
    }

    #[test]
    fn delivery_respects_propagation_delay() {
        // Use an artificially long propagation so the in-flight window is
        // large enough to observe deterministically on any host.
        let mut profile = TestbedProfile::cloudlab();
        profile.link.propagation_ns = 200_000;
        let f = Fabric::new(profile);
        let a = f.add_host("a");
        let b = f.add_host("b");
        let dst = ep(b, 2);
        let port = f.bind(dst).unwrap();
        f.transmit(
            Frame::new(ep(a, 1), dst, Payload::Inline(b"x".to_vec().into())),
            64,
            0,
        )
        .unwrap();
        // Immediately after transmit the frame is still "on the wire".
        assert!(port.poll().is_none());
        let frame = port.recv_blocking().unwrap();
        assert!(frame.wire_ns() >= 200_000);
    }

    #[test]
    fn switch_profile_adds_latency() {
        let direct = Fabric::new(TestbedProfile::local());
        let switched = Fabric::new(TestbedProfile::cloudlab());
        let mut wire = [0u64; 2];
        for (i, f) in [direct, switched].iter().enumerate() {
            let a = f.add_host("a");
            let b = f.add_host("b");
            let dst = ep(b, 2);
            let port = f.bind(dst).unwrap();
            f.transmit(
                Frame::new(ep(a, 1), dst, Payload::Inline(b"x".to_vec().into())),
                64,
                0,
            )
            .unwrap();
            wire[i] = port.recv_blocking().unwrap().wire_ns();
        }
        assert!(
            wire[1] >= wire[0] + 1_500,
            "switch must add ≈1.7 µs: direct={} switched={}",
            wire[0],
            wire[1]
        );
    }

    #[test]
    fn loopback_is_faster_than_wire() {
        let (f, a, _) = two_hosts();
        let dst = ep(a, 2);
        let port = f.bind(dst).unwrap();
        f.transmit(
            Frame::new(ep(a, 1), dst, Payload::Inline(b"x".to_vec().into())),
            64,
            0,
        )
        .unwrap();
        let frame = port.recv_blocking().unwrap();
        assert!(frame.wire_ns() < 500);
    }

    #[test]
    fn full_queue_drops_and_counts() {
        let (f, a, b) = two_hosts();
        let dst = ep(b, 2);
        let port = f.bind_with_capacity(dst, 2).unwrap();
        for _ in 0..5 {
            f.transmit(
                Frame::new(ep(a, 1), dst, Payload::Inline(b"x".to_vec().into())),
                64,
                0,
            )
            .unwrap();
        }
        let stats = port.stats();
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.dropped, 3);
    }

    #[test]
    fn poll_burst_respects_max_and_readiness() {
        let (f, a, b) = two_hosts();
        let dst = ep(b, 2);
        let port = f.bind(dst).unwrap();
        for _ in 0..5 {
            f.transmit(
                Frame::new(ep(a, 1), dst, Payload::Inline(b"y".to_vec().into())),
                64,
                0,
            )
            .unwrap();
        }
        // Wait for the frames to be deliverable.
        crate::time::spin_for_ns(10_000);
        let mut out = Vec::new();
        assert_eq!(port.poll_burst(&mut out, 3), 3);
        assert_eq!(port.poll_burst(&mut out, 10), 2);
    }

    #[test]
    fn closing_wakes_blocked_receiver() {
        let (f, _a, b) = two_hosts();
        let port = f.bind(ep(b, 9)).unwrap();
        let port2 = port.clone();
        let waiter = std::thread::spawn(move || port2.recv_blocking());
        std::thread::sleep(std::time::Duration::from_millis(20));
        port.close();
        assert_eq!(waiter.join().unwrap().err(), Some(FabricError::Closed));
    }

    #[test]
    fn unbind_releases_the_endpoint() {
        let (f, _a, b) = two_hosts();
        let e = ep(b, 9);
        let port = f.bind(e).unwrap();
        assert!(f.is_bound(e));
        port.unbind();
        assert!(!f.is_bound(e));
        let _again = f.bind(e).unwrap();
    }

    #[test]
    fn pooled_payload_travels_zero_copy() {
        use insane_memory::{PoolConfig, SlotPool};
        let (f, a, b) = two_hosts();
        let dst = ep(b, 2);
        let port = f.bind(dst).unwrap();
        let pool = SlotPool::new(PoolConfig::new(0, 128, 4)).unwrap();
        let mut g = pool.acquire(5).unwrap();
        g.copy_from_slice(b"pool!");
        let token = g.into_token();
        let view = pool.view(token).unwrap();
        f.transmit(Frame::new(ep(a, 1), dst, Payload::Pooled(view)), 64, 0)
            .unwrap();
        assert_eq!(pool.free_slots(), 3, "slot checked out while in flight");
        let frame = port.recv_blocking().unwrap();
        assert_eq!(frame.payload.as_slice(), b"pool!");
        drop(frame);
        assert_eq!(pool.free_slots(), 4, "drop releases the slot");
    }
}
