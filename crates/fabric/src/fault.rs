//! Deterministic, seeded fault injection for the fabric.
//!
//! Every frame the fabric accepts passes through the [`FaultInjector`]
//! attached to it.  By default the injector is inert (a single relaxed
//! atomic load per frame); once configured it can
//!
//! * gate **devices** (a bound endpoint or a whole host) so frames from or
//!   to them vanish — the simulated equivalent of a NIC dying;
//! * gate **links** (directed host pairs), either toggled or over
//!   scheduled time windows relative to the fabric's creation;
//! * apply a per-link [`FaultPlan`]: independent probabilities of frame
//!   drop, payload corruption (a single bit flip, caught downstream by the
//!   packet engine's payload checksum), duplication, and reordering.
//!
//! All randomness comes from one seeded xorshift64* generator, so a given
//! seed and transmit order replays the exact same fault sequence.  Every
//! injected fault is counted in [`FaultStats`].

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::wire::{Endpoint, Frame, HostId, Payload};

/// Per-link fault probabilities, each in `[0, 1]` and sampled
/// independently per frame (drop short-circuits the others).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability the frame is silently dropped.
    pub drop: f64,
    /// Probability one payload bit is flipped.
    pub corrupt: f64,
    /// Probability the frame is delivered twice.
    pub duplicate: f64,
    /// Probability the frame overtakes the frame queued before it.
    pub reorder: f64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// A loss-only plan with drop probability `p`.
    pub fn lossy(p: f64) -> Self {
        Self {
            drop: p,
            ..Self::default()
        }
    }

    fn is_inert(&self) -> bool {
        self.drop <= 0.0 && self.corrupt <= 0.0 && self.duplicate <= 0.0 && self.reorder <= 0.0
    }
}

/// Counters for every fault the injector has applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames dropped by a [`FaultPlan`] drop sample.
    pub injected_drops: u64,
    /// Frames whose payload was bit-flipped.
    pub corruptions: u64,
    /// Frames delivered twice.
    pub duplicates: u64,
    /// Frames reordered past their predecessor.
    pub reorders: u64,
    /// Frames dropped because their link was down (toggle or window).
    pub link_down_drops: u64,
    /// Frames dropped because a device or host was down.
    pub device_down_drops: u64,
}

#[derive(Default)]
struct Counters {
    injected_drops: AtomicU64,
    corruptions: AtomicU64,
    duplicates: AtomicU64,
    reorders: AtomicU64,
    link_down_drops: AtomicU64,
    device_down_drops: AtomicU64,
}

struct LinkWindow {
    src: u32,
    dst: u32,
    from: Duration,
    until: Duration,
}

#[derive(Default)]
struct Config {
    default_plan: FaultPlan,
    link_plans: HashMap<(u32, u32), FaultPlan>,
    links_down: HashSet<(u32, u32)>,
    hosts_down: HashSet<u32>,
    devices_down: HashSet<Endpoint>,
    device_ranges_down: Vec<(u32, u16, u16)>,
    windows: Vec<LinkWindow>,
}

impl Config {
    fn is_inert(&self) -> bool {
        self.default_plan.is_inert()
            && self.link_plans.values().all(FaultPlan::is_inert)
            && self.links_down.is_empty()
            && self.hosts_down.is_empty()
            && self.devices_down.is_empty()
            && self.device_ranges_down.is_empty()
            && self.windows.is_empty()
    }

    fn device_is_down(&self, ep: Endpoint) -> bool {
        self.hosts_down.contains(&ep.host.index())
            || self.devices_down.contains(&ep)
            || self
                .device_ranges_down
                .iter()
                .any(|&(h, lo, hi)| h == ep.host.index() && (lo..=hi).contains(&ep.port))
    }

    fn link_is_down(&self, src: HostId, dst: HostId, since_epoch: Duration) -> bool {
        let key = (src.index(), dst.index());
        self.links_down.contains(&key)
            || self
                .windows
                .iter()
                .any(|w| (w.src, w.dst) == key && w.from <= since_epoch && since_epoch < w.until)
    }
}

/// What the injector decided for one frame.
pub(crate) enum Verdict {
    /// Discard the frame (already counted).
    Drop,
    /// Deliver, with optional side effects.
    Deliver {
        /// Enqueue a second copy of the frame.
        duplicate: bool,
        /// Let the frame overtake the previously queued frame.
        reorder: bool,
    },
}

const CLEAN: Verdict = Verdict::Deliver {
    duplicate: false,
    reorder: false,
};

pub(crate) struct FaultState {
    active: AtomicBool,
    epoch: Instant,
    rng: Mutex<u64>,
    config: Mutex<Config>,
    counters: Counters,
}

impl FaultState {
    pub(crate) fn new() -> Self {
        Self {
            active: AtomicBool::new(false),
            epoch: Instant::now(),
            rng: Mutex::new(0x9E37_79B9_7F4A_7C15),
            config: Mutex::new(Config::default()),
            counters: Counters::default(),
        }
    }

    fn next_u64(rng: &mut u64) -> u64 {
        let mut x = *rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit(rng: &mut u64) -> f64 {
        (Self::next_u64(rng) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Applies the configured faults to `frame`; the caller enacts the
    /// returned verdict.
    pub(crate) fn intercept(&self, frame: &mut Frame, now: Instant) -> Verdict {
        if !self.active.load(Ordering::Relaxed) {
            return CLEAN;
        }
        let cfg = self.config.lock();
        if cfg.device_is_down(frame.src) || cfg.device_is_down(frame.dst) {
            self.counters
                .device_down_drops
                .fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }
        if cfg.link_is_down(
            frame.src.host,
            frame.dst.host,
            now.saturating_duration_since(self.epoch),
        ) {
            self.counters
                .link_down_drops
                .fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }
        let plan = cfg
            .link_plans
            .get(&(frame.src.host.index(), frame.dst.host.index()))
            .copied()
            .unwrap_or(cfg.default_plan);
        drop(cfg);
        if plan.is_inert() {
            return CLEAN;
        }

        let mut rng = self.rng.lock();
        if plan.drop > 0.0 && Self::unit(&mut rng) < plan.drop {
            self.counters.injected_drops.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }
        if plan.corrupt > 0.0 && Self::unit(&mut rng) < plan.corrupt && !frame.payload.is_empty() {
            let bit = Self::next_u64(&mut rng);
            corrupt_payload(&mut frame.payload, bit);
            self.counters.corruptions.fetch_add(1, Ordering::Relaxed);
        }
        let duplicate = plan.duplicate > 0.0 && Self::unit(&mut rng) < plan.duplicate;
        if duplicate {
            self.counters.duplicates.fetch_add(1, Ordering::Relaxed);
        }
        let reorder = plan.reorder > 0.0 && Self::unit(&mut rng) < plan.reorder;
        if reorder {
            self.counters.reorders.fetch_add(1, Ordering::Relaxed);
        }
        Verdict::Deliver { duplicate, reorder }
    }

    pub(crate) fn device_is_down(&self, ep: Endpoint) -> bool {
        // insane-lint: allow(hot-path-block) -- the atomic fast path short-circuits; the lock is taken only while fault injection is active
        self.active.load(Ordering::Relaxed) && self.config.lock().device_is_down(ep)
    }

    fn refresh_active(&self, cfg: &Config) {
        self.active.store(!cfg.is_inert(), Ordering::Relaxed);
    }
}

/// Flips one payload bit chosen by `entropy`.  Pooled payloads are shared
/// with the sender, so corruption substitutes an inline copy — the sender's
/// slot keeps its original bytes, as with real on-wire corruption.
fn corrupt_payload(payload: &mut Payload, entropy: u64) {
    let mut bytes = payload.to_vec();
    let idx = (entropy as usize >> 3) % bytes.len();
    bytes[idx] ^= 1 << (entropy & 7);
    *payload = Payload::Inline(bytes.into_boxed_slice());
}

/// Handle for configuring fault injection on a [`crate::Fabric`].
///
/// Cloning is cheap; all clones act on the same injector.  Obtained via
/// [`crate::Fabric::faults`].
#[derive(Clone)]
pub struct FaultInjector {
    state: Arc<FaultState>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("active", &self.state.active.load(Ordering::Relaxed))
            .field("stats", &self.stats())
            .finish()
    }
}

impl FaultInjector {
    pub(crate) fn from_state(state: Arc<FaultState>) -> Self {
        Self { state }
    }

    /// Reseeds the fault generator (replays deterministically per seed).
    pub fn seed(&self, seed: u64) {
        *self.state.rng.lock() = seed | 1;
    }

    /// Sets the plan applied to links with no per-link plan.
    pub fn set_default_plan(&self, plan: FaultPlan) {
        let mut cfg = self.state.config.lock();
        cfg.default_plan = plan;
        self.state.refresh_active(&cfg);
    }

    /// Sets the plan for the directed link `src → dst`.
    pub fn set_link_plan(&self, src: HostId, dst: HostId, plan: FaultPlan) {
        let mut cfg = self.state.config.lock();
        cfg.link_plans.insert((src.index(), dst.index()), plan);
        self.state.refresh_active(&cfg);
    }

    /// Toggles the directed link `src → dst` down (frames silently lost).
    pub fn set_link_down(&self, src: HostId, dst: HostId, down: bool) {
        let mut cfg = self.state.config.lock();
        let key = (src.index(), dst.index());
        if down {
            cfg.links_down.insert(key);
        } else {
            cfg.links_down.remove(&key);
        }
        self.state.refresh_active(&cfg);
    }

    /// Schedules the directed link `src → dst` down for
    /// `[from, until)`, measured from the fabric's creation.
    pub fn schedule_link_down(&self, src: HostId, dst: HostId, from: Duration, until: Duration) {
        let mut cfg = self.state.config.lock();
        cfg.windows.push(LinkWindow {
            src: src.index(),
            dst: dst.index(),
            from,
            until,
        });
        self.state.refresh_active(&cfg);
    }

    /// Toggles a whole host down (all its devices fail).
    pub fn set_host_down(&self, host: HostId, down: bool) {
        let mut cfg = self.state.config.lock();
        if down {
            cfg.hosts_down.insert(host.index());
        } else {
            cfg.hosts_down.remove(&host.index());
        }
        self.state.refresh_active(&cfg);
    }

    /// Fails the device bound at `ep`: frames from or to it vanish.
    pub fn fail_device(&self, ep: Endpoint) {
        let mut cfg = self.state.config.lock();
        cfg.devices_down.insert(ep);
        self.state.refresh_active(&cfg);
    }

    /// Restores a device failed with [`FaultInjector::fail_device`].
    pub fn restore_device(&self, ep: Endpoint) {
        let mut cfg = self.state.config.lock();
        cfg.devices_down.remove(&ep);
        self.state.refresh_active(&cfg);
    }

    /// Fails every device on `host` with a port in `ports` (inclusive) —
    /// e.g. a whole RDMA queue-pair range.
    pub fn fail_device_range(&self, host: HostId, ports: std::ops::RangeInclusive<u16>) {
        let mut cfg = self.state.config.lock();
        cfg.device_ranges_down
            .push((host.index(), *ports.start(), *ports.end()));
        self.state.refresh_active(&cfg);
    }

    /// Restores device ranges failed with
    /// [`FaultInjector::fail_device_range`] that match `host` and overlap
    /// `ports`.
    pub fn restore_device_range(&self, host: HostId, ports: std::ops::RangeInclusive<u16>) {
        let mut cfg = self.state.config.lock();
        cfg.device_ranges_down
            .retain(|&(h, lo, hi)| h != host.index() || hi < *ports.start() || lo > *ports.end());
        self.state.refresh_active(&cfg);
    }

    /// Whether the device at `ep` is currently gated down (directly, via a
    /// failed range, or because its host is down).
    pub fn device_down(&self, ep: Endpoint) -> bool {
        self.state.device_is_down(ep)
    }

    /// Snapshot of every fault injected so far.
    pub fn stats(&self) -> FaultStats {
        let c = &self.state.counters;
        FaultStats {
            injected_drops: c.injected_drops.load(Ordering::Relaxed),
            corruptions: c.corruptions.load(Ordering::Relaxed),
            duplicates: c.duplicates.load(Ordering::Relaxed),
            reorders: c.reorders.load(Ordering::Relaxed),
            link_down_drops: c.link_down_drops.load(Ordering::Relaxed),
            device_down_drops: c.device_down_drops.load(Ordering::Relaxed),
        }
    }

    /// Removes all configured faults (counters are preserved).
    pub fn clear(&self) {
        let mut cfg = self.state.config.lock();
        *cfg = Config::default();
        self.state.refresh_active(&cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Fabric;
    use crate::TestbedProfile;

    fn two_hosts() -> (Fabric, HostId, HostId) {
        let f = Fabric::new(TestbedProfile::local());
        let a = f.add_host("a");
        let b = f.add_host("b");
        (f, a, b)
    }

    fn ep(host: HostId, port: u16) -> Endpoint {
        Endpoint { host, port }
    }

    fn send(f: &Fabric, src: Endpoint, dst: Endpoint, payload: &[u8]) {
        f.transmit(
            Frame::new(src, dst, Payload::Inline(payload.to_vec().into())),
            64,
            0,
        )
        .unwrap();
    }

    fn drain(port: &crate::wire::PortHandle) -> Vec<Vec<u8>> {
        crate::time::spin_for_ns(20_000);
        let mut out = Vec::new();
        port.poll_burst(&mut out, 1024);
        out.iter().map(|f| f.payload.to_vec()).collect()
    }

    #[test]
    fn inert_injector_changes_nothing() {
        let (f, a, b) = two_hosts();
        let dst = ep(b, 2);
        let port = f.bind(dst).unwrap();
        send(&f, ep(a, 1), dst, b"x");
        assert_eq!(drain(&port).len(), 1);
        assert_eq!(f.faults().stats(), FaultStats::default());
    }

    #[test]
    fn seeded_drops_are_deterministic_and_bounded() {
        let mut counts = Vec::new();
        for _ in 0..2 {
            let (f, a, b) = two_hosts();
            let dst = ep(b, 2);
            let port = f.bind_with_capacity(dst, 4096).unwrap();
            let faults = f.faults();
            faults.seed(42);
            faults.set_default_plan(FaultPlan::lossy(0.3));
            for _ in 0..1000 {
                send(&f, ep(a, 1), dst, b"x");
            }
            let got = drain(&port).len();
            assert_eq!(got as u64 + faults.stats().injected_drops, 1000);
            assert!((150..=450).contains(&faults.stats().injected_drops));
            counts.push(got);
        }
        assert_eq!(counts[0], counts[1], "same seed must replay identically");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let (f, a, b) = two_hosts();
        let dst = ep(b, 2);
        let port = f.bind(dst).unwrap();
        let faults = f.faults();
        faults.seed(7);
        faults.set_link_plan(
            a,
            b,
            FaultPlan {
                corrupt: 1.0,
                ..FaultPlan::none()
            },
        );
        send(&f, ep(a, 1), dst, &[0u8; 16]);
        let got = drain(&port);
        assert_eq!(got.len(), 1);
        let flipped: u32 = got[0].iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped");
        assert_eq!(faults.stats().corruptions, 1);
    }

    #[test]
    fn duplicates_deliver_twice() {
        let (f, a, b) = two_hosts();
        let dst = ep(b, 2);
        let port = f.bind(dst).unwrap();
        let faults = f.faults();
        faults.set_link_plan(
            a,
            b,
            FaultPlan {
                duplicate: 1.0,
                ..FaultPlan::none()
            },
        );
        send(&f, ep(a, 1), dst, b"twin");
        let got = drain(&port);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], got[1]);
        assert_eq!(faults.stats().duplicates, 1);
    }

    #[test]
    fn reorder_overtakes_previous_frame() {
        let (f, a, b) = two_hosts();
        let dst = ep(b, 2);
        let port = f.bind(dst).unwrap();
        let faults = f.faults();
        send(&f, ep(a, 1), dst, b"first");
        faults.set_link_plan(
            a,
            b,
            FaultPlan {
                reorder: 1.0,
                ..FaultPlan::none()
            },
        );
        send(&f, ep(a, 1), dst, b"second");
        let got = drain(&port);
        assert_eq!(got, vec![b"second".to_vec(), b"first".to_vec()]);
        assert_eq!(faults.stats().reorders, 1);
    }

    #[test]
    fn link_down_toggle_and_window_drop_frames() {
        let (f, a, b) = two_hosts();
        let dst = ep(b, 2);
        let port = f.bind(dst).unwrap();
        let faults = f.faults();
        faults.set_link_down(a, b, true);
        send(&f, ep(a, 1), dst, b"lost");
        faults.set_link_down(a, b, false);
        // A window covering all of time from the fabric's epoch.
        faults.schedule_link_down(a, b, Duration::ZERO, Duration::from_secs(3600));
        send(&f, ep(a, 1), dst, b"lost too");
        faults.clear();
        send(&f, ep(a, 1), dst, b"through");
        assert_eq!(drain(&port), vec![b"through".to_vec()]);
        assert_eq!(faults.stats().link_down_drops, 2);
    }

    #[test]
    fn device_and_range_failures_gate_traffic_both_ways() {
        let (f, a, b) = two_hosts();
        let dst = ep(b, 2);
        let back = ep(a, 1);
        let port = f.bind(dst).unwrap();
        let port_back = f.bind(back).unwrap();
        let faults = f.faults();
        faults.fail_device(dst);
        assert!(f.device_down(dst));
        send(&f, back, dst, b"to dead dst");
        send(&f, dst, back, b"from dead src");
        faults.restore_device(dst);
        assert!(!f.device_down(dst));
        faults.fail_device_range(b, 0..=100);
        send(&f, back, dst, b"range dead");
        faults.restore_device_range(b, 0..=100);
        send(&f, back, dst, b"alive");
        assert_eq!(drain(&port), vec![b"alive".to_vec()]);
        assert_eq!(drain(&port_back).len(), 0);
        assert_eq!(faults.stats().device_down_drops, 3);
    }

    #[test]
    fn host_down_gates_every_device() {
        let (f, a, b) = two_hosts();
        let dst = ep(b, 2);
        let port = f.bind(dst).unwrap();
        let faults = f.faults();
        faults.set_host_down(b, true);
        send(&f, ep(a, 1), dst, b"lost");
        faults.set_host_down(b, false);
        send(&f, ep(a, 1), dst, b"through");
        assert_eq!(drain(&port), vec![b"through".to_vec()]);
        assert_eq!(faults.stats().device_down_drops, 1);
    }
}
