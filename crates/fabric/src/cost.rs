//! Per-technology CPU cost models.
//!
//! Table 1 of the paper contrasts the four end-host networking options by
//! kernel integration, API, zero-copy capability, CPU consumption and
//! hardware needs.  This module encodes the *costs* behind that table as
//! calibrated constants: every value is the amount of CPU time a real host
//! would spend in the corresponding stage, chosen so that the raw-
//! technology benchmarks reproduce the paper's measurements on the local
//! testbed (§6.2); the CloudLab profile scales CPU-bound entries by the
//! measured single-thread speed ratio of its slower processor.
//!
//! ## Calibration ledger (local testbed targets, 64 B ping-pong)
//!
//! | system | paper RTT | model |
//! |---|---|---|
//! | kernel UDP, blocking | ≈ 19–20 µs | 2 × (syscall·2 + stack_tx + stack_rx + wakeup + wire) |
//! | kernel UDP, busy-poll | 12.58 µs | as above minus wakeups |
//! | raw DPDK | 3.44 µs | 2 × (tx work + rx poll + wire) |
//! | throughput (8 KB jumbo) | ≈ 97 Gbps DPDK / ≈ 20 Gbps UDP | serialization gate vs per-byte copy |
//!
//! The wire itself (serialization, propagation, switch) lives in
//! [`crate::LinkModel`] / [`crate::SwitchModel`]; this module is CPU only.

use core::fmt;

/// The four end-host networking technologies of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Technology {
    /// In-kernel TCP/IP stack via AF_INET sockets (here: UDP).
    KernelUdp,
    /// Linux eXpress Data Path via AF_XDP sockets.
    Xdp,
    /// Data Plane Development Kit: kernel-bypassing poll-mode drivers.
    Dpdk,
    /// Remote Direct Memory Access (two-sided verbs over RoCE-like wire).
    Rdma,
}

impl Technology {
    /// All technologies, in Table 1 order.
    pub const ALL: [Technology; 4] = [
        Technology::KernelUdp,
        Technology::Xdp,
        Technology::Dpdk,
        Technology::Rdma,
    ];

    /// Human-readable name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Technology::KernelUdp => "Kernel UDP",
            Technology::Xdp => "XDP",
            Technology::Dpdk => "DPDK",
            Technology::Rdma => "RDMA",
        }
    }

    /// Kernel integration column of Table 1.
    pub fn kernel_integration(&self) -> &'static str {
        match self {
            Technology::KernelUdp | Technology::Xdp => "In-kernel",
            Technology::Dpdk | Technology::Rdma => "Kernel-bypassing",
        }
    }

    /// API column of Table 1.
    pub fn api_name(&self) -> &'static str {
        match self {
            Technology::KernelUdp => "AF_INET Socket",
            Technology::Xdp => "AF_XDP Socket",
            Technology::Dpdk => "RTE",
            Technology::Rdma => "Verbs",
        }
    }

    /// Zero-copy column of Table 1.
    pub fn zero_copy(&self) -> bool {
        !matches!(self, Technology::KernelUdp)
    }

    /// CPU-consumption column of Table 1.
    pub fn cpu_consumption(&self) -> &'static str {
        match self {
            Technology::KernelUdp => "Per-packet",
            Technology::Xdp => "Per-packet",
            Technology::Dpdk => "Busy polling",
            Technology::Rdma => "Hardware offloading",
        }
    }

    /// Dedicated-hardware column of Table 1.
    pub fn requires_dedicated_hardware(&self) -> bool {
        matches!(self, Technology::Rdma)
    }

    /// Whether using this technology requires dedicating CPU cores to busy
    /// polling (the paper's resource-consumption QoS hinges on this).
    pub fn requires_busy_polling(&self) -> bool {
        matches!(self, Technology::Dpdk)
    }

    /// Whether the technology needs a userspace protocol stack (the paper's
    /// packet processing engine runs for DPDK and XDP, not for kernel UDP
    /// or RDMA, §5.3).
    pub fn needs_userspace_stack(&self) -> bool {
        matches!(self, Technology::Dpdk | Technology::Xdp)
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// CPU costs of one technology, all in nanoseconds on the local testbed
/// (scaled by the profile's `cpu_scale` elsewhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TechCosts {
    /// Cost of crossing the user/kernel boundary once (0 for bypasses).
    pub syscall_ns: u64,
    /// Kernel or driver TX-path processing per packet.
    pub tx_path_ns: u64,
    /// Kernel or driver RX-path processing per packet.
    pub rx_path_ns: u64,
    /// Per-byte copy cost ×100 (e.g. 15 = 0.15 ns/byte); zero-copy
    /// technologies carry 0.
    pub copy_ns_per_byte_x100: u64,
    /// Thread wake-up penalty when a blocking receive is satisfied.
    pub wakeup_ns: u64,
    /// Fixed cost of one TX doorbell/burst submission (amortized over the
    /// packets in the burst — this is why batching wins, Fig. 8a).
    pub tx_doorbell_ns: u64,
    /// Cost of one empty RX poll (busy-poll loop granularity).
    pub rx_poll_ns: u64,
    /// Extra one-way NIC/DMA latency this technology adds on the wire path.
    pub nic_latency_ns: u64,
    /// Per-packet wire overhead in bytes (headers the device adds).
    pub wire_overhead_bytes: usize,
}

impl TechCosts {
    /// Calibrated costs for a technology.
    pub fn of(tech: Technology) -> Self {
        match tech {
            // Two syscalls per packet, a deep kernel stack, and a payload
            // copy in each direction: the reasons §3 gives for kernel
            // networking falling behind.
            Technology::KernelUdp => TechCosts {
                syscall_ns: 600,
                tx_path_ns: 1_450,
                rx_path_ns: 2_050,
                copy_ns_per_byte_x100: 6, // with the real buffer copy on top ≈ the testbed's effective rate
                wakeup_ns: 3_300,
                tx_doorbell_ns: 0,
                rx_poll_ns: 120,
                nic_latency_ns: 450,
                wire_overhead_bytes: 42, // Ethernet + IPv4 + UDP
            },
            // Zero-copy AF_XDP: one lightweight kick per TX batch, driver
            // forwards each packet between ring and NIC; cheaper than the
            // full stack, dearer than DPDK (§3).
            Technology::Xdp => TechCosts {
                syscall_ns: 250,
                tx_path_ns: 520,
                rx_path_ns: 680,
                copy_ns_per_byte_x100: 0,
                wakeup_ns: 1_800,
                tx_doorbell_ns: 180,
                rx_poll_ns: 90,
                nic_latency_ns: 450,
                wire_overhead_bytes: 42,
            },
            // Kernel bypass with poll-mode drivers: tiny per-packet cost,
            // fixed doorbell per burst, busy-polling RX.
            Technology::Dpdk => TechCosts {
                syscall_ns: 0,
                tx_path_ns: 90,
                rx_path_ns: 110,
                copy_ns_per_byte_x100: 0,
                wakeup_ns: 0,
                tx_doorbell_ns: 220,
                rx_poll_ns: 45,
                nic_latency_ns: 450,
                wire_overhead_bytes: 42,
            },
            // Hardware offloading: posting a WQE and polling a CQE are the
            // only CPU touches; the NIC runs the protocol (§3).
            Technology::Rdma => TechCosts {
                syscall_ns: 0,
                tx_path_ns: 70,
                rx_path_ns: 60,
                copy_ns_per_byte_x100: 0,
                wakeup_ns: 0,
                tx_doorbell_ns: 110,
                rx_poll_ns: 40,
                nic_latency_ns: 200,     // RoCE NICs cut the host-side latency
                wire_overhead_bytes: 58, // Eth + IP + UDP + BTH
            },
        }
    }

    /// Per-packet TX CPU cost for `payload` bytes, excluding the doorbell.
    #[inline]
    pub fn tx_packet_ns(&self, payload: usize) -> u64 {
        self.syscall_ns + self.tx_path_ns + self.copy_ns(payload)
    }

    /// Per-packet RX CPU cost for `payload` bytes.
    #[inline]
    pub fn rx_packet_ns(&self, payload: usize) -> u64 {
        self.syscall_ns + self.rx_path_ns + self.copy_ns(payload)
    }

    /// Copy cost for `len` bytes (zero for zero-copy technologies).
    #[inline]
    pub fn copy_ns(&self, len: usize) -> u64 {
        len as u64 * self.copy_ns_per_byte_x100 / 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_columns_match_paper() {
        assert_eq!(Technology::KernelUdp.kernel_integration(), "In-kernel");
        assert_eq!(Technology::Xdp.kernel_integration(), "In-kernel");
        assert_eq!(Technology::Dpdk.kernel_integration(), "Kernel-bypassing");
        assert_eq!(Technology::Rdma.kernel_integration(), "Kernel-bypassing");
        assert!(!Technology::KernelUdp.zero_copy());
        assert!(Technology::Xdp.zero_copy());
        assert!(Technology::Dpdk.zero_copy());
        assert!(Technology::Rdma.zero_copy());
        assert!(Technology::Rdma.requires_dedicated_hardware());
        assert!(!Technology::Dpdk.requires_dedicated_hardware());
        assert_eq!(Technology::Dpdk.api_name(), "RTE");
        assert_eq!(Technology::Rdma.api_name(), "Verbs");
    }

    #[test]
    fn only_dpdk_busy_polls() {
        let polling: Vec<_> = Technology::ALL
            .iter()
            .filter(|t| t.requires_busy_polling())
            .collect();
        assert_eq!(polling, vec![&Technology::Dpdk]);
    }

    #[test]
    fn stack_requirement_matches_section3() {
        assert!(Technology::Dpdk.needs_userspace_stack());
        assert!(Technology::Xdp.needs_userspace_stack());
        assert!(!Technology::KernelUdp.needs_userspace_stack());
        assert!(!Technology::Rdma.needs_userspace_stack());
    }

    #[test]
    fn kernel_path_is_costlier_than_bypasses() {
        let udp = TechCosts::of(Technology::KernelUdp);
        let dpdk = TechCosts::of(Technology::Dpdk);
        let xdp = TechCosts::of(Technology::Xdp);
        let rdma = TechCosts::of(Technology::Rdma);
        for len in [64usize, 1024, 8192] {
            assert!(udp.tx_packet_ns(len) > xdp.tx_packet_ns(len));
            assert!(xdp.tx_packet_ns(len) > dpdk.tx_packet_ns(len));
            assert!(dpdk.tx_packet_ns(len) > rdma.tx_packet_ns(len));
        }
    }

    #[test]
    fn copy_cost_scales_with_length_only_for_kernel() {
        let udp = TechCosts::of(Technology::KernelUdp);
        let dpdk = TechCosts::of(Technology::Dpdk);
        assert_eq!(udp.copy_ns(0), 0);
        assert!(udp.copy_ns(8192) > udp.copy_ns(64));
        assert_eq!(dpdk.copy_ns(8192), 0);
    }

    #[test]
    fn calibration_udp_rtt_64b_matches_paper() {
        // One direction of the non-blocking ping-pong: send syscall+stack,
        // wire (~nic latency both ends + serialization ~5ns + propagation
        // ~500ns, checked in link tests), recv syscall+stack.
        let udp = TechCosts::of(Technology::KernelUdp);
        let one_way_cpu = udp.tx_packet_ns(64) + udp.rx_packet_ns(64);
        // CPU share per direction ≈ 4.7–4.8 µs -> with ~1.4 µs wire this
        // lands near the paper's 12.58 µs RTT.
        assert!((4_500..5_200).contains(&one_way_cpu), "{one_way_cpu}");
    }

    #[test]
    fn calibration_dpdk_rtt_64b_matches_paper() {
        let dpdk = TechCosts::of(Technology::Dpdk);
        let one_way_cpu = dpdk.tx_packet_ns(64) + dpdk.tx_doorbell_ns + dpdk.rx_packet_ns(64);
        // ≈ 0.4–0.5 µs CPU per direction + ~1.3 µs wire ≈ 3.4 µs RTT.
        assert!((350..650).contains(&one_way_cpu), "{one_way_cpu}");
    }
}
