//! Link bandwidth/latency modeling.
//!
//! A frame's arrival time is computed from three components, exactly the
//! physics the paper's testbeds exhibit:
//!
//! 1. **serialization** — a 100 Gbps link carries a byte every 0.08 ns;
//!    back-to-back frames queue behind each other on the sender's uplink
//!    (per-direction `busy_until` tracking), which is what caps goodput in
//!    Fig. 8a;
//! 2. **propagation** — constant per hop (cables are short in both
//!    testbeds);
//! 3. **switch** — the CloudLab testbed adds a store-and-forward switch
//!    that the paper measures at ≈1.7 µs per traversal (§6.2).

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Static description of a point-to-point link (or a host uplink).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Usable line rate in gigabits per second.
    pub bandwidth_gbps: f64,
    /// One-way propagation plus PHY latency in nanoseconds.
    pub propagation_ns: u64,
    /// Latency of a same-host (loopback) delivery in nanoseconds.
    pub loopback_ns: u64,
}

impl LinkModel {
    /// The 100 Gbps Mellanox links of both paper testbeds (Table 2).
    pub fn mellanox_100g() -> Self {
        Self {
            bandwidth_gbps: 100.0,
            propagation_ns: 500,
            loopback_ns: 350,
        }
    }

    /// Time to serialize `bytes` onto the wire.
    #[inline]
    pub fn serialization(&self, bytes: usize) -> Duration {
        let ns = (bytes as f64 * 8.0) / self.bandwidth_gbps;
        Duration::from_nanos(ns.ceil() as u64)
    }
}

/// One direction of a full-duplex link with busy-period tracking.
///
/// `reserve` answers: *if a frame of this size is handed to the NIC now,
/// when has it finished serializing?* — and remembers the answer so the
/// next frame queues behind it.
#[derive(Debug)]
pub struct DirectedLink {
    model: LinkModel,
    busy_until: Mutex<Option<Instant>>,
}

impl DirectedLink {
    /// Creates an idle directed link.
    pub fn new(model: LinkModel) -> Self {
        Self {
            model,
            busy_until: Mutex::new(None),
        }
    }

    /// Reserves transmission of `bytes` starting no earlier than `now`;
    /// returns the instant serialization completes.
    pub fn reserve(&self, bytes: usize, now: Instant) -> Instant {
        let ser = self.model.serialization(bytes);
        let mut busy = self.busy_until.lock();
        let start = match *busy {
            Some(b) if b > now => b,
            _ => now,
        };
        let done = start + ser;
        *busy = Some(done);
        done
    }

    /// Whether the link is currently serializing a frame.
    #[cfg(test)]
    pub fn is_busy(&self, now: Instant) -> bool {
        matches!(*self.busy_until.lock(), Some(b) if b > now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_scales_with_size_and_bandwidth() {
        let l = LinkModel {
            bandwidth_gbps: 100.0,
            propagation_ns: 0,
            loopback_ns: 0,
        };
        // 8192 bytes at 100 Gbps = 655.36 ns
        let d = l.serialization(8192);
        assert!((650..=660).contains(&(d.as_nanos() as u64)), "{d:?}");
        let slow = LinkModel {
            bandwidth_gbps: 10.0,
            propagation_ns: 0,
            loopback_ns: 0,
        };
        let slow_ns = slow.serialization(8192).as_nanos() as i128;
        let fast_ns = l.serialization(8192).as_nanos() as i128 * 10;
        assert!((slow_ns - fast_ns).abs() <= 10, "{slow_ns} vs {fast_ns}");
    }

    #[test]
    fn mellanox_profile_is_100g() {
        let m = LinkModel::mellanox_100g();
        assert_eq!(m.bandwidth_gbps, 100.0);
        // 64-byte frame serializes in ~5ns — negligible vs propagation.
        assert!(m.serialization(64) < Duration::from_nanos(10));
    }

    #[test]
    fn back_to_back_frames_queue_on_the_link() {
        let link = DirectedLink::new(LinkModel {
            bandwidth_gbps: 1.0, // 1 Gbps -> 8 ns per byte
            propagation_ns: 0,
            loopback_ns: 0,
        });
        let now = Instant::now();
        let first = link.reserve(1000, now); // 8 µs
        let second = link.reserve(1000, now); // queues behind the first
        assert_eq!((first - now).as_micros(), 8);
        assert_eq!((second - now).as_micros(), 16);
        assert!(link.is_busy(now));
    }

    #[test]
    fn idle_link_starts_immediately() {
        let link = DirectedLink::new(LinkModel::mellanox_100g());
        let now = Instant::now();
        let done = link.reserve(64, now);
        assert!(done - now < Duration::from_nanos(10));
        // After the busy period has passed, a new reservation starts fresh.
        let later = now + Duration::from_micros(10);
        let done2 = link.reserve(64, later);
        assert!(done2 >= later);
    }

    #[test]
    fn goodput_is_capped_by_line_rate() {
        // Reserving 1000 frames of 8 KB on a 100 Gbps link must take at
        // least 1000 * 655 ns of link time.
        let link = DirectedLink::new(LinkModel::mellanox_100g());
        let now = Instant::now();
        let mut last = now;
        for _ in 0..1000 {
            last = link.reserve(8192, now);
        }
        let total = last - now;
        assert!(total >= Duration::from_nanos(655 * 1000));
        let gbps = (1000.0 * 8192.0 * 8.0) / total.as_nanos() as f64;
        assert!(gbps <= 100.5, "modeled link exceeded line rate: {gbps}");
    }
}
