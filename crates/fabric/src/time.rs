//! Wall-clock cost injection.
//!
//! The simulation charges modeled CPU costs (syscalls, kernel stack work,
//! copies, driver work) to the *calling thread* by busy-waiting, so that a
//! wall-clock measurement over the fabric contains both the modeled costs
//! and the real execution time of whatever middleware runs on top.  This is
//! the property that lets the benches reproduce the paper's raw-technology
//! numbers while still measuring INSANE's own overhead for real.

use std::time::{Duration, Instant};

/// Busy-waits for approximately `ns` nanoseconds.
///
/// Sub-microsecond sleeps are impossible with OS timers, so the fabric
/// spins; this mirrors what DPDK lcores and kernel busy-poll loops do with
/// the CPU anyway.  Zero is a no-op.
#[inline]
pub fn spin_for_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let deadline = Instant::now() + Duration::from_nanos(ns);
    while Instant::now() < deadline {
        core::hint::spin_loop();
    }
}

/// Busy-waits until `deadline` (no-op if already past).
#[inline]
pub fn spin_until(deadline: Instant) {
    while Instant::now() < deadline {
        core::hint::spin_loop();
    }
}

/// Deterministic per-device jitter source.
///
/// Real testbeds show run-to-run variance (the paper's plots carry IQR
/// whiskers); the devices add a few percent of multiplicative noise to the
/// charged costs using this tiny xorshift generator — deterministic per
/// seed so experiments are reproducible.
#[derive(Debug, Clone)]
pub struct Jitter {
    state: u64,
    /// Amplitude as a fraction of the cost in 1/1024 units (e.g. 51 ≈ 5%).
    amplitude_millis: u64,
}

impl Jitter {
    /// Creates a jitter source with the given seed and amplitude
    /// (`amplitude` is a fraction, e.g. `0.05` for ±5 %).
    pub fn new(seed: u64, amplitude: f64) -> Self {
        Self {
            state: seed.max(1),
            amplitude_millis: (amplitude.clamp(0.0, 0.5) * 1024.0) as u64,
        }
    }

    /// A jitter source that never perturbs anything.
    pub fn none() -> Self {
        Self {
            state: 1,
            amplitude_millis: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Perturbs `ns` by up to ± the configured amplitude.
    #[inline]
    pub fn apply(&mut self, ns: u64) -> u64 {
        if self.amplitude_millis == 0 || ns == 0 {
            return ns;
        }
        let span = ns * self.amplitude_millis / 1024; // max deviation
        if span == 0 {
            return ns;
        }
        let r = self.next_u64() % (2 * span + 1);
        ns - span + r
    }
}

/// Scales a cost by a percentage factor (used for the per-testbed CPU
/// speed ratio, e.g. 128 = 1.28x slower than the local testbed).
#[inline]
pub fn scale_ns(ns: u64, scale_pct: u32) -> u64 {
    ns * scale_pct as u64 / 100
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_for_zero_returns_immediately() {
        let t0 = Instant::now();
        spin_for_ns(0);
        assert!(t0.elapsed() < Duration::from_millis(1));
    }

    #[test]
    fn spin_for_waits_at_least_requested() {
        let t0 = Instant::now();
        spin_for_ns(200_000); // 200 us
        assert!(t0.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn spin_until_past_deadline_is_noop() {
        let t0 = Instant::now();
        spin_until(t0 - Duration::from_secs(1).min(Duration::from_nanos(1)));
        assert!(t0.elapsed() < Duration::from_millis(1));
    }

    #[test]
    fn jitter_stays_within_amplitude() {
        let mut j = Jitter::new(42, 0.05);
        for _ in 0..10_000 {
            let v = j.apply(1_000);
            assert!((950..=1050).contains(&v), "{v} outside ±5%");
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = Jitter::new(7, 0.1);
        let mut b = Jitter::new(7, 0.1);
        for _ in 0..100 {
            assert_eq!(a.apply(5_000), b.apply(5_000));
        }
    }

    #[test]
    fn zero_amplitude_is_identity() {
        let mut j = Jitter::none();
        assert_eq!(j.apply(1234), 1234);
    }

    #[test]
    fn scale_applies_percentage() {
        assert_eq!(scale_ns(1000, 100), 1000);
        assert_eq!(scale_ns(1000, 128), 1280);
        assert_eq!(scale_ns(1000, 250), 2500);
    }
}
