//! Simulated edge-cloud network fabric.
//!
//! The INSANE paper evaluates on two physical testbeds (Table 2): two
//! directly-cabled hosts with Mellanox 100 Gbps NICs, and two CloudLab
//! nodes behind a Dell switch.  Those testbeds — and the four network
//! acceleration technologies they host — need hardware this reproduction
//! does not have, so this crate builds the closest synthetic equivalent
//! that exercises the same code paths:
//!
//! * [`Fabric`] — an in-process wire.  Hosts attach ports; frames travel
//!   between ports through full-duplex links with **serialization gating**
//!   (a 100 Gbps link really only carries 100 Gbps), propagation delay, and
//!   an optional store-and-forward switch (the CloudLab profile).
//! * [`TestbedProfile`] — the two testbeds from Table 2 as data: link
//!   model, switch, and CPU-speed scale factors.
//! * [`cost`] — calibrated per-technology CPU cost models (syscalls, kernel
//!   stack traversal, per-byte copies, wakeups, driver work).  CPU costs
//!   are *charged to the calling thread* by busy-waiting, so wall-clock
//!   measurements over the fabric reproduce the paper's published numbers
//!   for the raw technologies while everything layered on top (the INSANE
//!   runtime, Demikernel, the Lunar apps) remains genuinely measured code.
//! * [`devices`] — the four simulated technologies with their native API
//!   shapes: [`devices::SimUdpSocket`] (AF_INET-style), [`devices::DpdkPort`]
//!   (mempool + `rx_burst`/`tx_burst`), [`devices::XdpSocket`] (umem + four
//!   rings), [`devices::RdmaNic`] (memory regions, queue pairs, completion
//!   queues, two-sided verbs).
//!
//! Frames carry either inline bytes or a pooled [`insane_memory::SlotView`]
//! so that the zero-copy property of the kernel-bypassing technologies is
//! preserved end to end: sending a pooled payload moves a slot id, never
//! the bytes.
//!
//! # Examples
//!
//! ```
//! use insane_fabric::{Fabric, TestbedProfile};
//! use insane_fabric::devices::{RecvMode, SimUdpSocket};
//!
//! let fabric = Fabric::new(TestbedProfile::local());
//! let a = fabric.add_host("node-a");
//! let b = fabric.add_host("node-b");
//! let tx = SimUdpSocket::bind(&fabric, a, 9000)?;
//! let rx = SimUdpSocket::bind(&fabric, b, 9000)?;
//! tx.send_to(b"ping", rx.local_addr())?;
//! let datagram = rx.recv(RecvMode::Blocking)?;
//! assert_eq!(datagram.payload.as_slice(), b"ping");
//! # Ok::<(), insane_fabric::FabricError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod devices;
mod fault;
mod link;
mod profile;
pub mod time;
mod wire;

pub use cost::{TechCosts, Technology};
pub use fault::{FaultInjector, FaultPlan, FaultStats};
pub use link::LinkModel;
pub use profile::{SwitchModel, TestbedProfile};
pub use wire::{Endpoint, Fabric, Frame, HostId, Payload, PortStats};

use core::fmt;

/// Errors produced by the fabric and its simulated devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The destination endpoint has no bound port.
    Unreachable(Endpoint),
    /// The (host, port) pair is already bound by another device.
    AddrInUse(Endpoint),
    /// The host id does not exist on this fabric.
    UnknownHost(HostId),
    /// Non-blocking receive found no ready frame.
    WouldBlock,
    /// The frame exceeds the device MTU.
    FrameTooLarge {
        /// Payload length the caller attempted to send.
        len: usize,
        /// Device MTU in bytes.
        mtu: usize,
    },
    /// The device-internal queue or ring is full.
    RingFull,
    /// A verb was used on a queue pair that is not connected.
    NotConnected,
    /// The device was shut down.
    Closed,
    /// Underlying memory-pool failure (e.g. mempool exhausted).
    Memory(insane_memory::MemoryError),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Unreachable(ep) => write!(f, "endpoint {ep} is not bound"),
            FabricError::AddrInUse(ep) => write!(f, "endpoint {ep} is already bound"),
            FabricError::UnknownHost(h) => write!(f, "host {h:?} does not exist"),
            FabricError::WouldBlock => write!(f, "no frame ready"),
            FabricError::FrameTooLarge { len, mtu } => {
                write!(f, "frame of {len} bytes exceeds MTU of {mtu} bytes")
            }
            FabricError::RingFull => write!(f, "device ring is full"),
            FabricError::NotConnected => write!(f, "queue pair is not connected"),
            FabricError::Closed => write!(f, "device is closed"),
            FabricError::Memory(e) => write!(f, "memory pool error: {e}"),
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<insane_memory::MemoryError> for FabricError {
    fn from(e: insane_memory::MemoryError) -> Self {
        FabricError::Memory(e)
    }
}
