//! Testbed profiles (Table 2 of the paper, as data).

use crate::link::LinkModel;

/// A store-and-forward switch between the hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchModel {
    /// Product name (for Table 2 rendering).
    pub name: &'static str,
    /// One traversal's latency in nanoseconds.  The paper measures the
    /// CloudLab switch at ≈1.7 µs and notes packets traverse it twice per
    /// round trip (§6.2).
    pub traversal_ns: u64,
}

impl SwitchModel {
    /// The Dell Z9264F-ON of the CloudLab testbed.
    pub fn dell_z9264f_on() -> Self {
        Self {
            name: "Dell Z9264F-ON",
            traversal_ns: 1_700,
        }
    }
}

/// One of the paper's two testbeds, reduced to the parameters that shape
/// the measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct TestbedProfile {
    /// Short name used in experiment output ("Local", "Public cloud").
    pub name: &'static str,
    /// OS string (Table 2 rendering only).
    pub os: &'static str,
    /// CPU string (Table 2 rendering only).
    pub cpu: &'static str,
    /// RAM in GB (Table 2 rendering only).
    pub ram_gb: u32,
    /// NIC string (Table 2 rendering only).
    pub nic: &'static str,
    /// Switch between the hosts, if any.
    pub switch: Option<SwitchModel>,
    /// Link model of every host's NIC.
    pub link: LinkModel,
    /// Percentage scale applied to kernel/driver CPU costs relative to the
    /// local testbed (100 = identical).  The CloudLab EPYC 7452 runs
    /// single-thread work ≈1.28× slower than the local i9-10980XE, which
    /// is the paper's explanation for the latency growth in Fig. 5b/7b.
    pub cpu_scale_pct: u32,
    /// Percentage scale applied to middleware-internal per-hop costs
    /// (the paper's Fig. 6 shows INSANE's send/receive stages degrade
    /// *more* than the kernel's on the cloud CPU, because its IPC path is
    /// cache-sensitive; calibrated against Fig. 6/7b).
    pub runtime_scale_pct: u32,
    /// Default capacity (frames) of a device RX queue; the paper enlarges
    /// socket buffers so receivers can keep up (§6.1).
    pub rx_queue_frames: usize,
}

impl TestbedProfile {
    /// The local edge testbed: two directly-cabled nodes (Table 2 row 1).
    pub fn local() -> Self {
        Self {
            name: "Local",
            os: "Ubuntu 22.04",
            cpu: "18-core Intel i9-10980XE @ 3.00GHz",
            ram_gb: 64,
            nic: "Mellanox DX-6 100Gbps",
            switch: None,
            link: LinkModel::mellanox_100g(),
            cpu_scale_pct: 100,
            runtime_scale_pct: 100,
            rx_queue_frames: 4096,
        }
    }

    /// The public-cloud testbed: two CloudLab nodes behind a switch
    /// (Table 2 row 2).
    pub fn cloudlab() -> Self {
        Self {
            name: "Public cloud",
            os: "Ubuntu 22.04",
            cpu: "32-core AMD 7452 @ 2.35GHz",
            ram_gb: 128,
            nic: "Mellanox DX-5 100Gbps",
            switch: Some(SwitchModel::dell_z9264f_on()),
            link: LinkModel::mellanox_100g(),
            cpu_scale_pct: 128,
            runtime_scale_pct: 520,
            rx_queue_frames: 4096,
        }
    }

    /// One-way wire latency added by the switch (0 when direct-cabled).
    pub fn switch_ns(&self) -> u64 {
        self.switch.map(|s| s.traversal_ns).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_testbed_matches_table2() {
        let p = TestbedProfile::local();
        assert_eq!(p.name, "Local");
        assert!(p.cpu.contains("i9-10980XE"));
        assert_eq!(p.ram_gb, 64);
        assert!(p.switch.is_none());
        assert_eq!(p.cpu_scale_pct, 100);
        assert_eq!(p.switch_ns(), 0);
    }

    #[test]
    fn cloudlab_testbed_matches_table2() {
        let p = TestbedProfile::cloudlab();
        assert_eq!(p.name, "Public cloud");
        assert!(p.cpu.contains("AMD 7452"));
        assert_eq!(p.ram_gb, 128);
        assert_eq!(p.switch.unwrap().name, "Dell Z9264F-ON");
        // §6.2: the switch adds on average 1.7 µs per traversal.
        assert_eq!(p.switch_ns(), 1_700);
        assert!(p.cpu_scale_pct > 100);
        assert!(p.runtime_scale_pct > p.cpu_scale_pct);
    }
}
