//! Simulated network devices with the native API shapes of §3.
//!
//! Each device couples three things:
//!
//! 1. the **API shape** of the real technology (sockets for kernel UDP,
//!    mempool + burst I/O for DPDK, umem + rings for AF_XDP, verbs for
//!    RDMA), so code written against a device reads like code written
//!    against the real thing;
//! 2. the **cost model** of [`crate::cost`], charged to the calling thread;
//! 3. the **wire** of [`crate::Fabric`], which supplies serialization,
//!    propagation, switch latency and drop behavior.

mod dpdk;
mod rdma;
mod udp;
mod xdp;

pub use dpdk::{DpdkPort, RxPacket};
pub use rdma::{Completion, CompletionOpcode, MemoryRegion, QueuePair, RdmaNic};
pub use udp::{Datagram, RecvMode, SimUdpSocket};
pub use xdp::{XdpDesc, XdpSocket};

use crate::cost::TechCosts;
use crate::time::{scale_ns, spin_for_ns, Jitter};
use crate::wire::{Endpoint, Payload};

/// A frame received by any device: the payload, who sent it, and how long
/// it spent on the wire (feeds the Fig. 6 latency breakdown).
#[derive(Debug)]
pub struct Received {
    /// Payload bytes or zero-copy slot view.
    pub payload: Payload,
    /// Sender endpoint.
    pub src: Endpoint,
    /// Wire time (serialization + propagation + switch) in nanoseconds.
    pub wire_ns: u64,
}

/// Charges modeled CPU costs on behalf of a device, applying the testbed
/// CPU scale and a deterministic jitter.
#[derive(Debug)]
pub(crate) struct CostCharger {
    costs: TechCosts,
    scale_pct: u32,
    jitter: parking_lot::Mutex<Jitter>,
}

impl CostCharger {
    pub(crate) fn new(costs: TechCosts, scale_pct: u32, seed: u64) -> Self {
        Self {
            costs,
            scale_pct,
            jitter: parking_lot::Mutex::new(Jitter::new(seed, 0.04)),
        }
    }

    pub(crate) fn costs(&self) -> &TechCosts {
        &self.costs
    }

    #[inline]
    fn charge(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        let scaled = scale_ns(ns, self.scale_pct);
        let jittered = self.jitter.lock().apply(scaled);
        spin_for_ns(jittered);
    }

    /// Per-packet TX CPU work for `len` payload bytes.
    #[inline]
    pub(crate) fn charge_tx_packet(&self, len: usize) {
        self.charge(self.costs.tx_packet_ns(len));
    }

    /// Per-packet RX CPU work for `len` payload bytes.
    #[inline]
    pub(crate) fn charge_rx_packet(&self, len: usize) {
        self.charge(self.costs.rx_packet_ns(len));
    }

    /// One TX doorbell / batch submission.
    #[inline]
    pub(crate) fn charge_doorbell(&self) {
        self.charge(self.costs.tx_doorbell_ns);
    }

    /// One RX poll attempt (busy-poll granularity).
    #[inline]
    pub(crate) fn charge_rx_poll(&self) {
        self.charge(self.costs.rx_poll_ns);
    }

    /// The blocking-receive wake-up penalty.
    #[inline]
    pub(crate) fn charge_wakeup(&self) {
        self.charge(self.costs.wakeup_ns);
    }

    /// One bare syscall (non-blocking poll with no data).
    #[inline]
    pub(crate) fn charge_syscall(&self) {
        self.charge(self.costs.syscall_ns);
    }

    /// One TX burst of `n` packets of `len` bytes each: doorbell plus all
    /// per-packet work, charged as a single busy-wait (clock reads are
    /// expensive; a burst is one hardware interaction anyway).
    #[inline]
    pub(crate) fn charge_tx_burst(&self, n: u64, len: usize) {
        self.charge(self.costs.tx_doorbell_ns + n * self.costs.tx_packet_ns(len));
    }
}

/// Measures an elapsed interval in nanoseconds (test helper).
#[cfg(test)]
#[inline]
pub(crate) fn elapsed_ns(since: std::time::Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Technology;
    use std::time::Instant;

    #[test]
    fn charger_spins_for_scaled_cost() {
        let charger = CostCharger::new(TechCosts::of(Technology::KernelUdp), 100, 1);
        let t0 = Instant::now();
        charger.charge_wakeup(); // 3.3 µs modeled
        let spent = elapsed_ns(t0);
        assert!(spent >= 3_000, "charged only {spent} ns");
    }

    #[test]
    fn zero_cost_entries_do_not_spin() {
        let charger = CostCharger::new(TechCosts::of(Technology::Dpdk), 100, 1);
        let t0 = Instant::now();
        charger.charge_syscall(); // DPDK has no syscalls
        assert!(elapsed_ns(t0) < 2_000);
    }

    #[test]
    fn scale_increases_charges() {
        let base = CostCharger::new(TechCosts::of(Technology::KernelUdp), 100, 7);
        let scaled = CostCharger::new(TechCosts::of(Technology::KernelUdp), 200, 7);
        let t0 = Instant::now();
        base.charge_tx_packet(64);
        let base_ns = elapsed_ns(t0);
        let t1 = Instant::now();
        scaled.charge_tx_packet(64);
        let scaled_ns = elapsed_ns(t1);
        assert!(
            scaled_ns > base_ns + base_ns / 2,
            "scaling had no effect: {base_ns} vs {scaled_ns}"
        );
    }
}
