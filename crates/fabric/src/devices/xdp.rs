//! Simulated AF_XDP socket (XDP path of Table 1).
//!
//! The API mirrors the AF_XDP workflow §3 describes: the application owns a
//! *umem* — a shared memory area divided into frames — and exchanges frame
//! descriptors with the driver over rings.  Compared to DPDK, each packet
//! costs more CPU (the in-kernel driver forwards every packet between ring
//! and NIC), but no core has to busy-poll: the socket can block cheaply.
//!
//! Simplification versus real AF_XDP (documented in DESIGN.md): the FILL
//! and COMPLETION rings are bookkeeping — the zero-copy payload travels as
//! a pooled slot view whose lifetime the fabric manages, so the sender's
//! umem frame returns automatically when the receiver is done rather than
//! via an explicit completion-ring read.

use std::sync::atomic::{AtomicU64, Ordering};

use insane_memory::{PoolConfig, SlotGuard, SlotPool};

use crate::cost::{TechCosts, Technology};
use crate::wire::{Endpoint, Fabric, Frame, HostId, Payload, PortStats};
use crate::FabricError;

use super::{CostCharger, Received};

/// A descriptor returned by [`XdpSocket::rx`].
pub type XdpDesc = Received;

/// A simulated `AF_XDP` socket bound to one NIC queue.
#[derive(Debug)]
pub struct XdpSocket {
    fabric: Fabric,
    port: crate::wire::PortHandle,
    charger: CostCharger,
    umem: SlotPool,
    mtu: usize,
    /// TX descriptors submitted (for completion accounting).
    tx_submitted: AtomicU64,
}

impl XdpSocket {
    /// XDP frames are limited to one page in practice.
    pub const DEFAULT_MTU: usize = 3498;

    /// Creates a socket with a umem of `umem_frames` frames on `host`.
    ///
    /// # Errors
    ///
    /// Propagates fabric binding and pool construction failures.
    pub fn open(
        fabric: &Fabric,
        host: HostId,
        queue: u16,
        umem_frames: usize,
    ) -> Result<Self, FabricError> {
        let endpoint = Endpoint { host, port: queue };
        let port = fabric.bind(endpoint)?;
        let umem = SlotPool::new(PoolConfig::new(
            0x8000 | (host.index() as u16) << 4 | (queue & 0xF),
            Self::DEFAULT_MTU,
            umem_frames,
        ))?;
        let scale = fabric.profile().cpu_scale_pct;
        Ok(Self {
            fabric: fabric.clone(),
            port,
            charger: CostCharger::new(
                TechCosts::of(Technology::Xdp),
                scale,
                0xAFD9_0000 ^ (host.index() as u64) << 16 ^ queue as u64,
            ),
            umem,
            mtu: Self::DEFAULT_MTU,
            tx_submitted: AtomicU64::new(0),
        })
    }

    /// The socket's fabric address.
    pub fn local_addr(&self) -> Endpoint {
        self.port.endpoint()
    }

    /// The umem backing this socket.
    pub fn umem(&self) -> &SlotPool {
        &self.umem
    }

    /// MTU in bytes.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// RX statistics.
    pub fn stats(&self) -> PortStats {
        self.port.stats()
    }

    /// Total TX descriptors submitted so far.
    pub fn tx_submitted(&self) -> u64 {
        self.tx_submitted.load(Ordering::Relaxed)
    }

    /// Allocates a umem frame for writing a packet of `len` bytes.
    ///
    /// # Errors
    ///
    /// * [`FabricError::FrameTooLarge`] above the MTU.
    /// * [`FabricError::Memory`] when the umem has no free frame.
    pub fn alloc_frame(&self, len: usize) -> Result<SlotGuard, FabricError> {
        if len > self.mtu {
            return Err(FabricError::FrameTooLarge { len, mtu: self.mtu });
        }
        Ok(self.umem.acquire(len)?)
    }

    /// Submits one packet descriptor to the TX ring and kicks the driver.
    ///
    /// # Errors
    ///
    /// [`FabricError::Unreachable`] if nothing is bound at `dst`.
    pub fn tx(&self, dst: Endpoint, frame: SlotGuard) -> Result<(), FabricError> {
        let len = frame.len();
        // Ring write + syscall kick + driver forwarding work.
        self.charger.charge_doorbell();
        self.charger.charge_tx_packet(len);
        let token = frame.into_token();
        let view = self.umem.view(token)?;
        let wire_frame = Frame::new(self.local_addr(), dst, Payload::Pooled(view));
        let wire = len + self.charger.costs().wire_overhead_bytes;
        self.tx_submitted.fetch_add(1, Ordering::Relaxed);
        self.fabric
            .transmit(wire_frame, wire, self.charger.costs().nic_latency_ns)
    }

    /// Submits an externally-owned zero-copy buffer (e.g. an INSANE
    /// runtime pool slot already framed by the userspace stack).  Costs
    /// are identical to [`XdpSocket::tx`].
    ///
    /// # Errors
    ///
    /// [`FabricError::Unreachable`] if nothing is bound at `dst`.
    pub fn tx_view(&self, dst: Endpoint, view: insane_memory::SlotView) -> Result<(), FabricError> {
        let len = view.len();
        self.charger.charge_doorbell();
        self.charger.charge_tx_packet(len);
        let wire_frame = Frame::new(self.local_addr(), dst, Payload::Pooled(view));
        let wire = len + self.charger.costs().wire_overhead_bytes;
        self.tx_submitted.fetch_add(1, Ordering::Relaxed);
        self.fabric
            .transmit(wire_frame, wire, self.charger.costs().nic_latency_ns)
    }

    /// Polls the RX ring; returns a descriptor if a packet is ready.
    pub fn rx(&self) -> Option<XdpDesc> {
        self.charger.charge_rx_poll();
        let frame = self.port.poll()?;
        self.charger.charge_rx_packet(frame.payload.len());
        Some(Received {
            wire_ns: frame.wire_ns(),
            src: frame.src,
            payload: frame.payload,
        })
    }

    /// Blocks until a packet arrives (XDP sockets can sleep more cheaply
    /// than full-stack sockets; a reduced wake-up penalty applies).
    ///
    /// # Errors
    ///
    /// [`FabricError::Closed`] if the socket closes mid-wait.
    pub fn rx_blocking(&self) -> Result<XdpDesc, FabricError> {
        if let Some(desc) = self.rx() {
            return Ok(desc);
        }
        let frame = self.port.recv_blocking()?;
        self.charger.charge_wakeup();
        self.charger.charge_rx_packet(frame.payload.len());
        Ok(Received {
            wire_ns: frame.wire_ns(),
            src: frame.src,
            payload: frame.payload,
        })
    }

    /// Closes the socket.
    pub fn close(&self) {
        self.port.unbind();
    }
}

impl Drop for XdpSocket {
    fn drop(&mut self) {
        self.port.unbind();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{RecvMode, SimUdpSocket};
    use crate::TestbedProfile;
    use std::time::Instant;

    fn pair() -> (Fabric, XdpSocket, XdpSocket) {
        let f = Fabric::new(TestbedProfile::local());
        let a = f.add_host("a");
        let b = f.add_host("b");
        let xa = XdpSocket::open(&f, a, 0, 32).unwrap();
        let xb = XdpSocket::open(&f, b, 0, 32).unwrap();
        (f, xa, xb)
    }

    #[test]
    fn roundtrip_zero_copy() {
        let (_f, xa, xb) = pair();
        let mut frame = xa.alloc_frame(3).unwrap();
        frame.copy_from_slice(b"xdp");
        xa.tx(xb.local_addr(), frame).unwrap();
        let desc = xb.rx_blocking().unwrap();
        assert_eq!(desc.payload.as_slice(), b"xdp");
        assert!(matches!(desc.payload, Payload::Pooled(_)));
        assert_eq!(xa.tx_submitted(), 1);
        drop(desc);
        assert_eq!(xa.umem().free_slots(), 32);
    }

    #[test]
    fn mtu_enforced() {
        let (_f, xa, _xb) = pair();
        assert!(matches!(
            xa.alloc_frame(4000),
            Err(FabricError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn umem_frames_recycle_through_tx_and_rx() {
        let (_f, xa, xb) = pair();
        // Exhaust the umem with in-flight frames toward an undrained
        // socket, then confirm full recovery once the receiver consumes.
        let mut sent = 0;
        loop {
            match xa.alloc_frame(100) {
                Ok(mut frame) => {
                    frame.copy_from_slice(&[7u8; 100]);
                    xa.tx(xb.local_addr(), frame).unwrap();
                    sent += 1;
                }
                Err(FabricError::Memory(_)) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(sent, 32, "umem bound enforces back-pressure");
        assert_eq!(xa.tx_submitted(), 32);
        let mut drained = 0;
        while drained < 32 {
            if let Some(desc) = xb.rx() {
                drop(desc);
                drained += 1;
            }
        }
        assert_eq!(xa.umem().free_slots(), 32, "all frames recycled");
        assert!(xa.alloc_frame(100).is_ok());
    }

    #[test]
    fn blocking_rx_wakes_on_late_arrival() {
        let (_f, xa, xb) = pair();
        let b_addr = xb.local_addr();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            let mut frame = xa.alloc_frame(4).unwrap();
            frame.copy_from_slice(b"late");
            xa.tx(b_addr, frame).unwrap();
            xa
        });
        let desc = xb.rx_blocking().unwrap();
        assert_eq!(desc.payload.as_slice(), b"late");
        let _xa = sender.join().unwrap();
    }

    #[test]
    fn xdp_sits_between_udp_and_dpdk_in_latency() {
        // Ordering sanity: XDP ping-pong must be faster than kernel UDP,
        // matching the paper's §3 narrative.  Single-threaded inline
        // ping-pongs (one-CPU host), min of several rounds.
        fn xdp_rtt() -> u64 {
            let (_f, xa, xb) = pair();
            let a_addr = xa.local_addr();
            let b_addr = xb.local_addr();
            let mut best = u64::MAX;
            for _ in 0..30 {
                let mut frame = xa.alloc_frame(64).unwrap();
                frame.copy_from_slice(&[1u8; 64]);
                let t0 = Instant::now();
                xa.tx(b_addr, frame).unwrap();
                let ping = loop {
                    if let Some(d) = xb.rx() {
                        break d;
                    }
                };
                let mut echo = xb.alloc_frame(ping.payload.len()).unwrap();
                echo.copy_from_slice(ping.payload.as_slice());
                drop(ping);
                xb.tx(a_addr, echo).unwrap();
                while xa.rx().is_none() {}
                best = best.min(t0.elapsed().as_nanos() as u64);
            }
            best
        }
        fn udp_rtt() -> u64 {
            let f = Fabric::new(TestbedProfile::local());
            let a = f.add_host("a");
            let b = f.add_host("b");
            let sa = SimUdpSocket::bind(&f, a, 1).unwrap();
            let sb = SimUdpSocket::bind(&f, b, 1).unwrap();
            let a_addr = sa.local_addr();
            let b_addr = sb.local_addr();
            let mut best = u64::MAX;
            for _ in 0..30 {
                let t0 = Instant::now();
                sa.send_to(&[1u8; 64], b_addr).unwrap();
                let ping = loop {
                    match sb.recv(RecvMode::NonBlocking) {
                        Ok(d) => break d,
                        Err(FabricError::WouldBlock) => {}
                        Err(e) => panic!("{e}"),
                    }
                };
                sb.send_to(&ping.payload, a_addr).unwrap();
                loop {
                    match sa.recv(RecvMode::NonBlocking) {
                        Ok(_) => break,
                        Err(FabricError::WouldBlock) => {}
                        Err(e) => panic!("{e}"),
                    }
                }
                best = best.min(t0.elapsed().as_nanos() as u64);
            }
            best
        }
        let xdp = xdp_rtt();
        let udp = udp_rtt();
        assert!(xdp < udp, "XDP ({xdp} ns) must beat kernel UDP ({udp} ns)");
    }
}
