//! Simulated RDMA NIC (Verbs path of Table 1, two-sided operations only).
//!
//! The API mirrors the verbs workflow §3 describes: register a *memory
//! region* with the NIC, open a *queue pair* (send queue + receive queue)
//! toward a remote peer, post asynchronous work requests, and harvest
//! *completions* from a completion queue.  The CPU barely participates —
//! the NIC "hardware" runs the protocol — which is why the cost model
//! charges only the WQE post and CQE poll.
//!
//! INSANE deliberately restricts itself to two-sided SEND/RECV (§3), and so
//! does this simulation: one-sided READ/WRITE verbs are out of scope.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use insane_memory::{PoolConfig, SlotGuard, SlotPool};

use crate::cost::{TechCosts, Technology};
use crate::wire::{Endpoint, Fabric, Frame, HostId, Payload, PortStats};
use crate::FabricError;

use super::CostCharger;

/// What a completion describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionOpcode {
    /// A posted send finished (buffer reusable).
    Send,
    /// A posted receive matched an incoming message.
    Recv,
}

/// A completion-queue entry.
#[derive(Debug)]
pub struct Completion {
    /// Caller-chosen work-request id.
    pub wr_id: u64,
    /// Operation that completed.
    pub opcode: CompletionOpcode,
    /// Incoming payload for `Recv` completions (`None` for sends).
    pub payload: Option<Payload>,
    /// Sender endpoint for `Recv` completions.
    pub src: Option<Endpoint>,
    /// Wire time for `Recv` completions, nanoseconds.
    pub wire_ns: u64,
}

/// A registered memory region: a slot pool the NIC may DMA from/to.
#[derive(Debug, Clone)]
pub struct MemoryRegion {
    pool: SlotPool,
}

impl MemoryRegion {
    /// Allocates a send buffer within the region.
    ///
    /// # Errors
    ///
    /// [`FabricError::Memory`] when the region is exhausted.
    pub fn alloc(&self, len: usize) -> Result<SlotGuard, FabricError> {
        Ok(self.pool.acquire(len)?)
    }

    /// The underlying pool (for diagnostics).
    pub fn pool(&self) -> &SlotPool {
        &self.pool
    }
}

/// A simulated RDMA-capable NIC.
#[derive(Debug)]
pub struct RdmaNic {
    fabric: Fabric,
    host: HostId,
    next_mr: AtomicU64,
}

impl RdmaNic {
    /// Message size limit (RoCE MTU aside, messages up to the MR slot size
    /// travel as one unit — RDMA does its own segmentation in hardware).
    pub const MAX_MSG: usize = 1 << 20;

    /// Attaches an RDMA NIC to `host`.
    pub fn new(fabric: &Fabric, host: HostId) -> Self {
        Self {
            fabric: fabric.clone(),
            host,
            next_mr: AtomicU64::new(0),
        }
    }

    /// Registers a memory region of `slots` buffers of `slot_size` bytes.
    ///
    /// # Errors
    ///
    /// [`FabricError::Memory`] on invalid pool dimensions.
    pub fn register(&self, slot_size: usize, slots: usize) -> Result<MemoryRegion, FabricError> {
        let mr_id = self.next_mr.fetch_add(1, Ordering::Relaxed);
        let pool = SlotPool::new(PoolConfig::new(
            0xC000 | (self.host.index() as u16) << 6 | (mr_id as u16 & 0x3F),
            slot_size,
            slots,
        ))?;
        Ok(MemoryRegion { pool })
    }

    /// Creates a queue pair bound to local `qp_port`.
    ///
    /// # Errors
    ///
    /// Fabric binding errors (port collision, unknown host).
    pub fn create_qp(&self, qp_port: u16) -> Result<QueuePair, FabricError> {
        let endpoint = Endpoint {
            host: self.host,
            port: qp_port,
        };
        let port = self.fabric.bind(endpoint)?;
        let scale = self.fabric.profile().cpu_scale_pct;
        Ok(QueuePair {
            fabric: self.fabric.clone(),
            port,
            charger: CostCharger::new(
                TechCosts::of(Technology::Rdma),
                scale,
                0x4DA0_0000 ^ (self.host.index() as u64) << 16 ^ qp_port as u64,
            ),
            remote: Mutex::new(None),
            send_cq: Mutex::new(VecDeque::new()),
            posted_recvs: Mutex::new(VecDeque::new()),
            mrs: Mutex::new(Vec::new()),
        })
    }
}

/// A queue pair: SQ + RQ toward one remote peer, with its CQ.
pub struct QueuePair {
    fabric: Fabric,
    port: crate::wire::PortHandle,
    charger: CostCharger,
    remote: Mutex<Option<Endpoint>>,
    send_cq: Mutex<VecDeque<Completion>>,
    posted_recvs: Mutex<VecDeque<u64>>,
    mrs: Mutex<Vec<MemoryRegion>>,
}

impl fmt::Debug for QueuePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueuePair")
            .field("local", &self.port.endpoint())
            .field("remote", &*self.remote.lock())
            .field("posted_recvs", &self.posted_recvs.lock().len())
            .finish()
    }
}

impl QueuePair {
    /// Local address of this QP.
    pub fn local_addr(&self) -> Endpoint {
        self.port.endpoint()
    }

    /// Connects the QP to a remote endpoint (RoCE exchange abstracted).
    pub fn connect(&self, remote: Endpoint) {
        *self.remote.lock() = Some(remote);
    }

    /// Associates an MR so received messages can be accounted to it
    /// (bookkeeping only — the fabric manages payload lifetime).
    pub fn attach_mr(&self, mr: &MemoryRegion) {
        self.mrs.lock().push(mr.clone());
    }

    /// RX statistics.
    pub fn stats(&self) -> PortStats {
        self.port.stats()
    }

    /// Posts a two-sided SEND of `buf`.
    ///
    /// The NIC takes over: the CPU cost is one WQE write + doorbell, and a
    /// send completion appears in the CQ once the hardware accepts the
    /// message (reliable delivery is the hardware's problem, as with RC
    /// queue pairs).
    ///
    /// # Errors
    ///
    /// * [`FabricError::NotConnected`] before [`QueuePair::connect`].
    /// * [`FabricError::Unreachable`] if the remote QP vanished.
    pub fn post_send(&self, buf: SlotGuard, wr_id: u64) -> Result<(), FabricError> {
        let remote = (*self.remote.lock()).ok_or(FabricError::NotConnected)?;
        let len = buf.len();
        self.charger.charge_tx_packet(len);
        self.charger.charge_doorbell();
        let token = buf.token();
        let pool = {
            let mrs = self.mrs.lock();
            mrs.iter()
                .map(|m| m.pool.clone())
                .find(|p| p.pool_id() == token.pool_id())
        };
        // Transfer the checkout into the frame; an unattached MR is a
        // protection error and the dropped guard returns the slot.
        let Some(pool) = pool else {
            return Err(FabricError::Memory(
                insane_memory::MemoryError::InvalidToken,
            ));
        };
        let view = pool.view(buf.into_token())?;
        let frame = Frame::new(self.local_addr(), remote, Payload::Pooled(view));
        let wire = len + self.charger.costs().wire_overhead_bytes;
        self.fabric
            .transmit(frame, wire, self.charger.costs().nic_latency_ns)?;
        self.send_cq.lock().push_back(Completion {
            wr_id,
            opcode: CompletionOpcode::Send,
            payload: None,
            src: None,
            wire_ns: 0,
        });
        Ok(())
    }

    /// Posts a two-sided SEND of an externally-owned zero-copy buffer
    /// (e.g. an INSANE runtime pool slot; the runtime registered that pool
    /// with the NIC at startup).  Costs are identical to
    /// [`QueuePair::post_send`].
    ///
    /// # Errors
    ///
    /// As [`QueuePair::post_send`].
    pub fn post_send_view(
        &self,
        view: insane_memory::SlotView,
        wr_id: u64,
    ) -> Result<(), FabricError> {
        let remote = (*self.remote.lock()).ok_or(FabricError::NotConnected)?;
        let len = view.len();
        self.charger.charge_tx_packet(len);
        self.charger.charge_doorbell();
        let frame = Frame::new(self.local_addr(), remote, Payload::Pooled(view));
        let wire = len + self.charger.costs().wire_overhead_bytes;
        self.fabric
            .transmit(frame, wire, self.charger.costs().nic_latency_ns)?;
        self.send_cq.lock().push_back(Completion {
            wr_id,
            opcode: CompletionOpcode::Send,
            payload: None,
            src: None,
            wire_ns: 0,
        });
        Ok(())
    }

    /// Posts a receive work request; incoming messages match posted
    /// receives in FIFO order (two-sided semantics: an unposted receive
    /// leaves the message waiting in the NIC queue).
    pub fn post_recv(&self, wr_id: u64) {
        self.posted_recvs.lock().push_back(wr_id);
    }

    /// Harvests up to `max` completions into `out`; returns the count.
    pub fn poll_cq(&self, out: &mut Vec<Completion>, max: usize) -> usize {
        self.charger.charge_rx_poll();
        let mut n = 0;
        {
            let mut sends = self.send_cq.lock();
            while n < max {
                match sends.pop_front() {
                    Some(c) => {
                        out.push(c);
                        n += 1;
                    }
                    None => break,
                }
            }
        }
        while n < max {
            // Claim a posted recv *before* polling the port so a frame is
            // never consumed without a work request to complete into; if
            // no frame is waiting the claim is re-posted at the front.
            let Some(wr_id) = self.posted_recvs.lock().pop_front() else {
                break;
            };
            match self.port.poll() {
                Some(frame) => {
                    self.charger.charge_rx_packet(frame.payload.len());
                    let wire_ns = frame.wire_ns();
                    out.push(Completion {
                        wr_id,
                        opcode: CompletionOpcode::Recv,
                        src: Some(frame.src),
                        payload: Some(frame.payload),
                        wire_ns,
                    });
                    n += 1;
                }
                None => {
                    // Nothing on the wire: return the unconsumed work
                    // request to the head of the queue.
                    self.posted_recvs.lock().push_front(wr_id);
                    break;
                }
            }
        }
        n
    }

    /// Closes the QP and releases its binding.
    pub fn close(&self) {
        self.port.unbind();
    }
}

impl Drop for QueuePair {
    fn drop(&mut self) {
        self.port.unbind();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestbedProfile;
    use std::time::Instant;

    fn connected_pair() -> (Fabric, QueuePair, MemoryRegion, QueuePair, MemoryRegion) {
        let f = Fabric::new(TestbedProfile::local());
        let a = f.add_host("a");
        let b = f.add_host("b");
        let nic_a = RdmaNic::new(&f, a);
        let nic_b = RdmaNic::new(&f, b);
        let mr_a = nic_a.register(4096, 32).unwrap();
        let mr_b = nic_b.register(4096, 32).unwrap();
        let qa = nic_a.create_qp(1).unwrap();
        let qb = nic_b.create_qp(1).unwrap();
        qa.attach_mr(&mr_a);
        qb.attach_mr(&mr_b);
        qa.connect(qb.local_addr());
        qb.connect(qa.local_addr());
        (f, qa, mr_a, qb, mr_b)
    }

    fn poll_until_recv(qp: &QueuePair) -> Completion {
        let mut out = Vec::new();
        loop {
            qp.poll_cq(&mut out, 8);
            if let Some(pos) = out.iter().position(|c| c.opcode == CompletionOpcode::Recv) {
                return out.remove(pos);
            }
            out.clear();
        }
    }

    #[test]
    fn send_before_connect_fails() {
        let f = Fabric::new(TestbedProfile::local());
        let a = f.add_host("a");
        let nic = RdmaNic::new(&f, a);
        let mr = nic.register(1024, 4).unwrap();
        let qp = nic.create_qp(1).unwrap();
        qp.attach_mr(&mr);
        let buf = mr.alloc(8).unwrap();
        assert!(matches!(
            qp.post_send(buf, 1),
            Err(FabricError::NotConnected)
        ));
    }

    #[test]
    fn two_sided_roundtrip() {
        let (_f, qa, mr_a, qb, _mr_b) = connected_pair();
        qb.post_recv(77);
        let mut buf = mr_a.alloc(9).unwrap();
        buf.copy_from_slice(b"verbs msg");
        qa.post_send(buf, 42).unwrap();

        // Sender gets its send completion.
        let mut out = Vec::new();
        qa.poll_cq(&mut out, 8);
        assert!(out
            .iter()
            .any(|c| c.opcode == CompletionOpcode::Send && c.wr_id == 42));

        // Receiver matches the posted receive.
        let recv = poll_until_recv(&qb);
        assert_eq!(recv.wr_id, 77);
        assert_eq!(recv.payload.as_ref().unwrap().as_slice(), b"verbs msg");
    }

    #[test]
    fn message_waits_for_posted_receive() {
        let (_f, qa, mr_a, qb, _mr_b) = connected_pair();
        let mut buf = mr_a.alloc(1).unwrap();
        buf.copy_from_slice(b"x");
        qa.post_send(buf, 1).unwrap();
        crate::time::spin_for_ns(20_000);
        let mut out = Vec::new();
        // No receive posted: nothing to harvest beyond the send side.
        qb.poll_cq(&mut out, 8);
        assert!(out.is_empty());
        qb.post_recv(5);
        let recv = poll_until_recv(&qb);
        assert_eq!(recv.wr_id, 5);
    }

    #[test]
    fn rdma_is_the_fastest_technology() {
        // Single-threaded ping-pong (one-CPU host; the ping-pong critical
        // path is serial anyway).  Retried a few times: hypervisor steal
        // time can stall a whole measurement window.
        for attempt in 0..3 {
            if rdma_beats_dpdk() {
                return;
            }
            eprintln!("attempt {attempt}: measurement window disturbed, retrying");
        }
        panic!("RDMA never beat DPDK across 3 attempts");
    }

    fn rdma_beats_dpdk() -> bool {
        let (_f, qa, mr_a, qb, mr_b) = connected_pair();
        let mut best = u64::MAX;
        for round in 0..50u64 {
            qa.post_recv(300 + round);
            qb.post_recv(100 + round);
            let mut buf = mr_a.alloc(64).unwrap();
            buf.copy_from_slice(&[5u8; 64]);
            let t0 = Instant::now();
            qa.post_send(buf, 4).unwrap();
            let ping = poll_until_recv(&qb);
            // Echo: copy into a local MR buffer and send back.
            let bytes = ping.payload.unwrap().to_vec();
            let mut echo = mr_b.alloc(bytes.len()).unwrap();
            echo.copy_from_slice(&bytes);
            qb.post_send(echo, 2).unwrap();
            let _pong = poll_until_recv(&qa);
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        // RDMA must beat an identically-measured DPDK ping-pong (the
        // absolute band lives in the bench harness, where loop overheads
        // are amortized).
        let dpdk_best = {
            use crate::devices::DpdkPort;
            let f = Fabric::new(TestbedProfile::local());
            let a = f.add_host("a");
            let b = f.add_host("b");
            let pa = DpdkPort::open(&f, a, 9, 32).unwrap();
            let pb = DpdkPort::open(&f, b, 9, 32).unwrap();
            let mut best = u64::MAX;
            let mut out = Vec::new();
            for _ in 0..50 {
                let mut mbuf = pa.alloc_mbuf(64).unwrap();
                mbuf.copy_from_slice(&[5u8; 64]);
                let t0 = Instant::now();
                pa.tx_burst(pb.local_addr(), [mbuf]).unwrap();
                while pb.rx_burst(&mut out, 1) == 0 {}
                let ping = out.remove(0);
                pb.tx_forward(pa.local_addr(), ping).unwrap();
                while pa.rx_burst(&mut out, 1) == 0 {}
                out.clear();
                best = best.min(t0.elapsed().as_nanos() as u64);
            }
            best
        };
        best < dpdk_best
    }

    #[test]
    fn one_nic_serves_multiple_peers_on_distinct_qps() {
        let f = Fabric::new(TestbedProfile::local());
        let hub_host = f.add_host("hub");
        let spoke1_host = f.add_host("spoke1");
        let spoke2_host = f.add_host("spoke2");
        let hub = RdmaNic::new(&f, hub_host);
        let s1 = RdmaNic::new(&f, spoke1_host);
        let s2 = RdmaNic::new(&f, spoke2_host);
        let mr_hub = hub.register(1024, 16).unwrap();
        let mr1 = s1.register(1024, 16).unwrap();
        let mr2 = s2.register(1024, 16).unwrap();
        // Hub opens one QP per spoke on distinct ports.
        let qp_h1 = hub.create_qp(10).unwrap();
        let qp_h2 = hub.create_qp(11).unwrap();
        let qp_1 = s1.create_qp(10).unwrap();
        let qp_2 = s2.create_qp(11).unwrap();
        qp_h1.attach_mr(&mr_hub);
        qp_h2.attach_mr(&mr_hub);
        qp_1.attach_mr(&mr1);
        qp_2.attach_mr(&mr2);
        qp_h1.connect(qp_1.local_addr());
        qp_h2.connect(qp_2.local_addr());
        qp_1.connect(qp_h1.local_addr());
        qp_2.connect(qp_h2.local_addr());
        qp_1.post_recv(1);
        qp_2.post_recv(2);
        let mut buf = mr_hub.alloc(5).unwrap();
        buf.copy_from_slice(b"to #1");
        qp_h1.post_send(buf, 1).unwrap();
        let mut buf = mr_hub.alloc(5).unwrap();
        buf.copy_from_slice(b"to #2");
        qp_h2.post_send(buf, 2).unwrap();
        let r1 = poll_until_recv(&qp_1);
        let r2 = poll_until_recv(&qp_2);
        assert_eq!(r1.payload.unwrap().as_slice(), b"to #1");
        assert_eq!(r2.payload.unwrap().as_slice(), b"to #2");
    }

    #[test]
    fn send_completions_carry_wr_ids_in_order() {
        let (_f, qa, mr_a, qb, _mr_b) = connected_pair();
        for wr in [10u64, 11, 12] {
            qb.post_recv(wr);
            let mut buf = mr_a.alloc(1).unwrap();
            buf.copy_from_slice(&[wr as u8]);
            qa.post_send(buf, wr).unwrap();
        }
        let mut out = Vec::new();
        qa.poll_cq(&mut out, 16);
        let sends: Vec<u64> = out
            .iter()
            .filter(|c| c.opcode == CompletionOpcode::Send)
            .map(|c| c.wr_id)
            .collect();
        assert_eq!(sends, vec![10, 11, 12]);
    }

    #[test]
    fn unattached_mr_is_rejected_without_leaking() {
        let (_f, qa, _mr_a, _qb, mr_b) = connected_pair();
        // mr_b belongs to the other NIC and was never attached to qa.
        let buf = mr_b.alloc(4).unwrap();
        assert_eq!(mr_b.pool().free_slots(), 31);
        assert!(qa.post_send(buf, 9).is_err());
        // The rejected guard was dropped, returning the slot.
        assert_eq!(mr_b.pool().free_slots(), 32);
    }
}
