//! Simulated DPDK port (RTE path of Table 1).
//!
//! The API mirrors the poll-mode-driver workflow §3 describes: the
//! application allocates *mbufs* from a *mempool* (here, slots from an
//! [`insane_memory::SlotPool`]), writes payloads in place, and exchanges
//! pointer bursts with the driver via `tx_burst`/`rx_burst`.  There are no
//! syscalls and no copies; the costs are a fixed doorbell per TX burst and
//! a small per-packet driver touch — which is why batching pays (Fig. 8a)
//! and why an lcore must busy-poll for RX.

use insane_memory::{PoolConfig, SlotGuard, SlotPool, SlotView};

use crate::cost::{TechCosts, Technology};
use crate::wire::{Endpoint, Fabric, Frame, HostId, Payload, PortStats};
use crate::FabricError;

use super::{CostCharger, Received};

/// A packet returned by [`DpdkPort::rx_burst`].
pub type RxPacket = Received;

/// A simulated DPDK port with its attached mempool.
#[derive(Debug)]
pub struct DpdkPort {
    fabric: Fabric,
    port: crate::wire::PortHandle,
    charger: CostCharger,
    mempool: SlotPool,
    mtu: usize,
}

impl DpdkPort {
    /// Jumbo-capable MTU (DPDK testbeds in the paper enable jumbo frames
    /// for payloads above 1.5 KB).
    pub const DEFAULT_MTU: usize = 9216;
    /// Largest burst accepted by `tx_burst`/`rx_burst` (DPDK's customary
    /// default).
    pub const MAX_BURST: usize = 32;

    /// Opens a port on `host` with a private mempool of `mempool_slots`
    /// mbufs.
    ///
    /// # Errors
    ///
    /// Propagates binding errors from the fabric and pool-construction
    /// errors from the memory crate.
    pub fn open(
        fabric: &Fabric,
        host: HostId,
        port_no: u16,
        mempool_slots: usize,
    ) -> Result<Self, FabricError> {
        let endpoint = Endpoint {
            host,
            port: port_no,
        };
        let port = fabric.bind(endpoint)?;
        let mempool = SlotPool::new(PoolConfig::new(
            // Pool ids only need to be unique within one consumer's token
            // space; devices use a high bit to stay clear of runtime pools.
            0x4000 | (host.index() as u16) << 4 | (port_no & 0xF),
            Self::DEFAULT_MTU,
            mempool_slots,
        ))?;
        let scale = fabric.profile().cpu_scale_pct;
        Ok(Self {
            fabric: fabric.clone(),
            port,
            charger: CostCharger::new(
                TechCosts::of(Technology::Dpdk),
                scale,
                0xD9D4_0000 ^ (host.index() as u64) << 16 ^ port_no as u64,
            ),
            mempool,
            mtu: Self::DEFAULT_MTU,
        })
    }

    /// The port's fabric address.
    pub fn local_addr(&self) -> Endpoint {
        self.port.endpoint()
    }

    /// The port's MTU.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// The mempool backing this port (mbuf allocation).
    pub fn mempool(&self) -> &SlotPool {
        &self.mempool
    }

    /// RX-queue statistics (dropped = ring overrun).
    pub fn stats(&self) -> PortStats {
        self.port.stats()
    }

    /// Allocates an mbuf large enough for `len` payload bytes.
    ///
    /// # Errors
    ///
    /// * [`FabricError::FrameTooLarge`] above the MTU.
    /// * [`FabricError::Memory`] when the mempool is exhausted.
    pub fn alloc_mbuf(&self, len: usize) -> Result<SlotGuard, FabricError> {
        if len > self.mtu {
            return Err(FabricError::FrameTooLarge { len, mtu: self.mtu });
        }
        Ok(self.mempool.acquire(len)?)
    }

    /// Transmits a burst of mbufs to `dst`; returns how many were accepted.
    ///
    /// One doorbell is charged for the whole burst plus a small per-packet
    /// driver cost — the amortization INSANE's opportunistic batching
    /// exploits and Demikernel's one-packet-at-a-time strategy forgoes.
    ///
    /// # Errors
    ///
    /// [`FabricError::Unreachable`] if `dst` has no bound port; mbufs not
    /// yet sent are dropped back to the mempool in that case.
    pub fn tx_burst(
        &self,
        dst: Endpoint,
        mbufs: impl IntoIterator<Item = SlotGuard>,
    ) -> Result<usize, FabricError> {
        self.charger.charge_doorbell();
        let mut sent = 0;
        for mbuf in mbufs {
            let len = mbuf.len();
            self.charger.charge_tx_packet(len);
            let token = mbuf.into_token();
            let view = self.mempool.view(token)?;
            let frame = Frame::new(self.local_addr(), dst, Payload::Pooled(view));
            let wire = len + self.charger.costs().wire_overhead_bytes;
            self.fabric
                .transmit(frame, wire, self.charger.costs().nic_latency_ns)?;
            sent += 1;
        }
        Ok(sent)
    }

    /// Transmits a burst of externally-owned zero-copy buffers (e.g. the
    /// INSANE runtime's pool slots, already framed by the userspace
    /// stack).  Costs are identical to [`DpdkPort::tx_burst`].
    ///
    /// # Errors
    ///
    /// [`FabricError::Unreachable`] if `dst` has no bound port.
    pub fn tx_burst_views(
        &self,
        dst: Endpoint,
        views: impl IntoIterator<Item = SlotView>,
    ) -> Result<usize, FabricError> {
        // Stage the burst first so the whole hardware interaction can be
        // charged as one busy-wait and timestamped with one clock read.
        let views: Vec<SlotView> = views.into_iter().collect();
        if views.is_empty() {
            self.charger.charge_doorbell();
            return Ok(0);
        }
        let total_len: usize = views.iter().map(|v| v.len()).sum();
        self.charger
            .charge_tx_burst(views.len() as u64, total_len / views.len());
        let now = std::time::Instant::now();
        let mut sent = 0;
        for view in views {
            let len = view.len();
            let frame = Frame::new(self.local_addr(), dst, Payload::Pooled(view));
            let wire = len + self.charger.costs().wire_overhead_bytes;
            self.fabric
                .transmit_at(frame, wire, self.charger.costs().nic_latency_ns, now)?;
            sent += 1;
        }
        Ok(sent)
    }

    /// Re-transmits an already-received packet without copying (zero-copy
    /// echo / forward — what a raw-DPDK pong server does).
    ///
    /// # Errors
    ///
    /// [`FabricError::Unreachable`] if `dst` has no bound port.
    pub fn tx_forward(&self, dst: Endpoint, packet: RxPacket) -> Result<(), FabricError> {
        self.charger.charge_doorbell();
        let len = packet.payload.len();
        self.charger.charge_tx_packet(len);
        let frame = Frame::new(self.local_addr(), dst, packet.payload);
        let wire = len + self.charger.costs().wire_overhead_bytes;
        self.fabric
            .transmit(frame, wire, self.charger.costs().nic_latency_ns)
    }

    /// Polls the RX ring for up to `max` packets (capped at
    /// [`DpdkPort::MAX_BURST`]); returns how many were appended to `out`.
    ///
    /// Always charges one poll (the lcore burns that CPU whether or not
    /// packets arrived) plus a per-packet driver cost for each packet.
    pub fn rx_burst(&self, out: &mut Vec<RxPacket>, max: usize) -> usize {
        self.charger.charge_rx_poll();
        let mut frames = Vec::new();
        let n = self.port.poll_burst(&mut frames, max.min(Self::MAX_BURST));
        for frame in frames {
            self.charger.charge_rx_packet(frame.payload.len());
            out.push(Received {
                wire_ns: frame.wire_ns(),
                src: frame.src,
                payload: frame.payload,
            });
        }
        n
    }

    /// Closes the port and releases its binding.
    pub fn close(&self) {
        self.port.unbind();
    }
}

impl Drop for DpdkPort {
    fn drop(&mut self) {
        self.port.unbind();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestbedProfile;
    use std::time::Instant;

    fn pair() -> (Fabric, DpdkPort, DpdkPort) {
        let f = Fabric::new(TestbedProfile::local());
        let a = f.add_host("a");
        let b = f.add_host("b");
        let pa = DpdkPort::open(&f, a, 0, 64).unwrap();
        let pb = DpdkPort::open(&f, b, 0, 64).unwrap();
        (f, pa, pb)
    }

    fn send_one(port: &DpdkPort, dst: Endpoint, bytes: &[u8]) {
        let mut mbuf = port.alloc_mbuf(bytes.len()).unwrap();
        mbuf.copy_from_slice(bytes);
        assert_eq!(port.tx_burst(dst, [mbuf]).unwrap(), 1);
    }

    fn recv_one(port: &DpdkPort) -> RxPacket {
        let mut out = Vec::new();
        loop {
            if port.rx_burst(&mut out, 32) > 0 {
                return out.remove(0);
            }
        }
    }

    #[test]
    fn burst_roundtrip_zero_copy() {
        let (_f, pa, pb) = pair();
        send_one(&pa, pb.local_addr(), b"mbuf payload");
        let got = recv_one(&pb);
        assert_eq!(got.payload.as_slice(), b"mbuf payload");
        assert!(
            matches!(got.payload, Payload::Pooled(_)),
            "must be zero-copy"
        );
        // Sender's mempool slot is still out until the receiver drops it.
        assert_eq!(pa.mempool().free_slots(), 63);
        drop(got);
        assert_eq!(pa.mempool().free_slots(), 64);
    }

    #[test]
    fn mtu_and_mempool_limits() {
        let (_f, pa, _pb) = pair();
        assert!(matches!(
            pa.alloc_mbuf(20_000),
            Err(FabricError::FrameTooLarge { .. })
        ));
        let held: Vec<_> = (0..64).map(|_| pa.alloc_mbuf(64).unwrap()).collect();
        assert!(matches!(pa.alloc_mbuf(64), Err(FabricError::Memory(_))));
        drop(held);
        assert!(pa.alloc_mbuf(64).is_ok());
    }

    #[test]
    fn zero_copy_echo_via_forward() {
        let (_f, pa, pb) = pair();
        send_one(&pa, pb.local_addr(), b"ping");
        let ping = recv_one(&pb);
        pb.tx_forward(pa.local_addr(), ping).unwrap();
        let pong = recv_one(&pa);
        assert_eq!(pong.payload.as_slice(), b"ping");
    }

    #[test]
    fn rtt_64b_matches_calibration_band() {
        // Single-threaded ping-pong (see the UDP twin test for rationale).
        let (_f, pa, pb) = pair();
        let a_addr = pa.local_addr();
        let b_addr = pb.local_addr();
        let mut best = u64::MAX;
        for _ in 0..50 {
            let t0 = Instant::now();
            send_one(&pa, b_addr, &[9u8; 64]);
            let ping = recv_one(&pb);
            pb.tx_forward(a_addr, ping).unwrap();
            let _pong = recv_one(&pa);
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        // Paper: raw DPDK 64B RTT ≈ 3.44 µs on the local testbed.
        assert!(
            (2_000..6_000).contains(&best),
            "DPDK RTT {best} ns off-band"
        );
    }

    #[test]
    fn rx_burst_caps_at_max_burst() {
        let (_f, pa, pb) = pair();
        for i in 0..40u8 {
            send_one(&pa, pb.local_addr(), &[i]);
        }
        crate::time::spin_for_ns(20_000);
        let mut out = Vec::new();
        let n = pb.rx_burst(&mut out, 100);
        assert!(n <= DpdkPort::MAX_BURST);
    }

    #[test]
    fn ring_overrun_drops_packets() {
        let f = Fabric::new(TestbedProfile::local());
        let a = f.add_host("a");
        let b = f.add_host("b");
        let pa = DpdkPort::open(&f, a, 0, 128).unwrap();
        // Tiny RX ring on the receiving side.
        let dst = Endpoint { host: b, port: 0 };
        let _rx = f.bind_with_capacity(dst, 4).unwrap();
        for _ in 0..10 {
            send_one(&pa, dst, b"x");
        }
        // Mempool slots for dropped frames must come back (frame dropped =>
        // payload view dropped => slot released).
        crate::time::spin_for_ns(10_000);
        assert!(pa.mempool().free_slots() >= 128 - 4);
    }
}
