//! Simulated kernel UDP socket (AF_INET path of Table 1).
//!
//! Every operation pays the kernel's price: a syscall per send/receive, a
//! traversal of the kernel network stack, and a payload copy in each
//! direction — the overheads §3 of the paper blames for kernel networking
//! falling behind fast links.  Blocking receives additionally pay a thread
//! wake-up, which is exactly the difference between the paper's
//! "Blocking UDP Socket" and "Non-Blocking UDP Socket" bars in Fig. 7.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::cost::{TechCosts, Technology};
use crate::wire::{Endpoint, Fabric, Frame, HostId, Payload, PortStats};
use crate::FabricError;

use super::CostCharger;

/// How [`SimUdpSocket::recv`] waits for data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvMode {
    /// Sleep until a datagram arrives (pays the wake-up penalty).
    Blocking,
    /// Return [`FabricError::WouldBlock`] immediately when nothing is
    /// ready (each attempt still pays its syscall).
    NonBlocking,
}

/// A received datagram.
#[derive(Debug)]
pub struct Datagram {
    /// Payload bytes, copied out of the kernel (this is the copy the
    /// kernel path cannot avoid).
    pub payload: Vec<u8>,
    /// Sender address.
    pub from: Endpoint,
    /// Wire time in nanoseconds.
    pub wire_ns: u64,
}

impl Datagram {
    /// Payload as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.payload
    }
}

/// A simulated `AF_INET` UDP socket.
#[derive(Debug)]
pub struct SimUdpSocket {
    fabric: Fabric,
    port: crate::wire::PortHandle,
    charger: CostCharger,
    mtu: AtomicUsize,
}

impl SimUdpSocket {
    /// Default MTU: standard Ethernet.
    pub const DEFAULT_MTU: usize = 1500;
    /// Jumbo-frame MTU the paper enables for payloads above 1.5 KB (§6.2).
    pub const JUMBO_MTU: usize = 9000;

    /// Binds a UDP socket on `host` at `udp_port`.
    ///
    /// # Errors
    ///
    /// [`FabricError::AddrInUse`] / [`FabricError::UnknownHost`] as for
    /// [`Fabric::bind`].
    pub fn bind(fabric: &Fabric, host: HostId, udp_port: u16) -> Result<Self, FabricError> {
        let endpoint = Endpoint {
            host,
            port: udp_port,
        };
        let port = fabric.bind(endpoint)?;
        let scale = fabric.profile().cpu_scale_pct;
        Ok(Self {
            fabric: fabric.clone(),
            port,
            charger: CostCharger::new(
                TechCosts::of(Technology::KernelUdp),
                scale,
                0x5EED_0000 ^ (host.index() as u64) << 16 ^ udp_port as u64,
            ),
            mtu: AtomicUsize::new(Self::DEFAULT_MTU),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> Endpoint {
        self.port.endpoint()
    }

    /// Current MTU in bytes.
    pub fn mtu(&self) -> usize {
        self.mtu.load(Ordering::Relaxed)
    }

    /// Changes the MTU (e.g. enable jumbo frames).
    pub fn set_mtu(&self, mtu: usize) {
        self.mtu.store(mtu, Ordering::Relaxed);
    }

    /// Delivery statistics of the receive queue.
    pub fn stats(&self) -> PortStats {
        self.port.stats()
    }

    /// Sends `payload` to `dst`.
    ///
    /// The kernel has no IP fragmentation here, matching the INSANE
    /// prototype's deliberate choice (§8): oversized payloads are
    /// rejected.
    ///
    /// # Errors
    ///
    /// * [`FabricError::FrameTooLarge`] above the MTU.
    /// * [`FabricError::Unreachable`] when nothing listens at `dst`.
    pub fn send_to(&self, payload: &[u8], dst: Endpoint) -> Result<(), FabricError> {
        let mtu = self.mtu();
        if payload.len() > mtu {
            return Err(FabricError::FrameTooLarge {
                len: payload.len(),
                mtu,
            });
        }
        // syscall + stack traversal + copy into a kernel skb.
        self.charger.charge_tx_packet(payload.len());
        let frame = Frame::new(
            self.local_addr(),
            dst,
            Payload::Inline(payload.to_vec().into_boxed_slice()),
        );
        let wire = payload.len() + self.charger.costs().wire_overhead_bytes;
        self.fabric
            .transmit(frame, wire, self.charger.costs().nic_latency_ns)
    }

    /// Sends `payload` without the userspace→kernel copy, modeling the
    /// `sendfile(2)` path the paper uses as its streaming baseline
    /// (§7.2): data leaves straight from the page cache, so only the
    /// syscall and stack traversal are charged.
    ///
    /// # Errors
    ///
    /// As [`SimUdpSocket::send_to`].
    pub fn sendfile_to(&self, payload: &[u8], dst: Endpoint) -> Result<(), FabricError> {
        let mtu = self.mtu();
        if payload.len() > mtu {
            return Err(FabricError::FrameTooLarge {
                len: payload.len(),
                mtu,
            });
        }
        // Same syscall + stack costs, zero copy cost.
        self.charger.charge_tx_packet(0);
        let frame = Frame::new(
            self.local_addr(),
            dst,
            Payload::Inline(payload.to_vec().into_boxed_slice()),
        );
        let wire = payload.len() + self.charger.costs().wire_overhead_bytes;
        self.fabric
            .transmit(frame, wire, self.charger.costs().nic_latency_ns)
    }

    /// Receives one datagram.
    ///
    /// # Errors
    ///
    /// * [`FabricError::WouldBlock`] in non-blocking mode with no data.
    /// * [`FabricError::Closed`] if the socket is closed mid-wait.
    pub fn recv(&self, mode: RecvMode) -> Result<Datagram, FabricError> {
        let frame = match mode {
            RecvMode::NonBlocking => {
                // Each poll is a syscall whether or not data is ready.
                self.charger.charge_syscall();
                match self.port.poll() {
                    Some(f) => f,
                    None => return Err(FabricError::WouldBlock),
                }
            }
            RecvMode::Blocking => match self.port.poll() {
                Some(f) => f, // data was already queued: no sleep, no wake-up
                None => {
                    let f = self.port.recv_blocking()?;
                    self.charger.charge_wakeup();
                    f
                }
            },
        };
        let len = frame.payload.len();
        // stack traversal + copy to userspace (the copy is real *and*
        // charged; the model constant accounts for the combination).
        self.charger.charge_rx_packet(len);
        let wire_ns = frame.wire_ns();
        Ok(Datagram {
            from: frame.src,
            wire_ns,
            payload: payload_into_vec(frame.payload),
        })
    }

    /// Blocking receive with the *costs* of a blocking socket but a
    /// busy-wait implementation: waits (uncharged) until a datagram is
    /// deliverable, then charges the wake-up penalty and the RX path.
    ///
    /// Single-core measurement harnesses use this to reproduce the
    /// blocking-socket latency profile while driving both endpoints on
    /// one thread (a real `recv` would deadlock the serial driver).
    ///
    /// # Errors
    ///
    /// [`FabricError::Closed`] if the socket closes while waiting.
    pub fn recv_blocking_emulated(&self) -> Result<Datagram, FabricError> {
        let frame = loop {
            if let Some(frame) = self.port.poll() {
                break frame;
            }
            core::hint::spin_loop();
        };
        self.charger.charge_wakeup();
        let len = frame.payload.len();
        self.charger.charge_rx_packet(len);
        let wire_ns = frame.wire_ns();
        Ok(Datagram {
            from: frame.src,
            wire_ns,
            payload: payload_into_vec(frame.payload),
        })
    }

    /// Closes the socket and releases the port binding.
    pub fn close(&self) {
        self.port.unbind();
    }
}

impl Drop for SimUdpSocket {
    fn drop(&mut self) {
        self.port.unbind();
    }
}

/// Extracts the datagram bytes: inline frames already own their buffer
/// (the kernel's skb) and move out without a second copy; pooled frames
/// must be copied into the application (that copy is the charged one).
fn payload_into_vec(payload: Payload) -> Vec<u8> {
    match payload {
        Payload::Inline(bytes) => bytes.into_vec(),
        Payload::Pooled(view) => view.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestbedProfile;
    use std::time::Instant;

    fn pair() -> (Fabric, SimUdpSocket, SimUdpSocket) {
        let f = Fabric::new(TestbedProfile::local());
        let a = f.add_host("a");
        let b = f.add_host("b");
        let sa = SimUdpSocket::bind(&f, a, 4000).unwrap();
        let sb = SimUdpSocket::bind(&f, b, 4000).unwrap();
        (f, sa, sb)
    }

    #[test]
    fn roundtrip_payload_integrity() {
        let (_f, sa, sb) = pair();
        sa.send_to(b"datagram", sb.local_addr()).unwrap();
        let d = sb.recv(RecvMode::Blocking).unwrap();
        assert_eq!(d.as_slice(), b"datagram");
        assert_eq!(d.from, sa.local_addr());
    }

    #[test]
    fn nonblocking_recv_would_block() {
        let (_f, _sa, sb) = pair();
        assert_eq!(
            sb.recv(RecvMode::NonBlocking).err(),
            Some(FabricError::WouldBlock)
        );
    }

    #[test]
    fn mtu_is_enforced_and_adjustable() {
        let (_f, sa, sb) = pair();
        let big = vec![0u8; 2000];
        assert!(matches!(
            sa.send_to(&big, sb.local_addr()),
            Err(FabricError::FrameTooLarge {
                len: 2000,
                mtu: 1500
            })
        ));
        sa.set_mtu(SimUdpSocket::JUMBO_MTU);
        sa.send_to(&big, sb.local_addr()).unwrap();
        let d = sb.recv(RecvMode::Blocking).unwrap();
        assert_eq!(d.payload.len(), 2000);
    }

    #[test]
    fn blocking_is_slower_than_polling_when_waiting() {
        let (_f, sa, sb) = pair();
        // Pre-fill one datagram so the poll path has data instantly.
        sa.send_to(b"x", sb.local_addr()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let t0 = Instant::now();
        sb.recv(RecvMode::Blocking).unwrap(); // ready -> no wakeup charge
        let ready_ns = t0.elapsed().as_nanos() as u64;
        // Now measure a receive that must actually sleep.
        let dst = sb.local_addr();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            sa.send_to(b"y", dst).unwrap();
        });
        let t1 = Instant::now();
        sb.recv(RecvMode::Blocking).unwrap();
        let slept_ns = t1.elapsed().as_nanos() as u64;
        sender.join().unwrap();
        assert!(slept_ns > ready_ns, "sleeping receive must cost more");
    }

    #[test]
    fn rtt_64b_matches_calibration_band() {
        // Single-threaded ping-pong: this host has one CPU, and in a real
        // ping-pong the critical path is serial anyway — the client's CPU
        // work, the wire, the server's CPU work, the wire back.  Driving
        // both endpoints inline reproduces exactly that serial path.
        // The paper's non-blocking UDP figure is 12.58 µs; we assert a
        // generous band here (the bench asserts the precise shape).
        let (_f, sa, sb) = pair();
        let a_addr = sa.local_addr();
        let b_addr = sb.local_addr();
        let payload = [7u8; 64];
        let mut best = u64::MAX;
        for _ in 0..50 {
            let t0 = Instant::now();
            sa.send_to(&payload, b_addr).unwrap();
            let ping = loop {
                match sb.recv(RecvMode::NonBlocking) {
                    Ok(d) => break d,
                    Err(FabricError::WouldBlock) => {}
                    Err(e) => panic!("{e}"),
                }
            };
            sb.send_to(&ping.payload, a_addr).unwrap();
            loop {
                match sa.recv(RecvMode::NonBlocking) {
                    Ok(_) => break,
                    Err(FabricError::WouldBlock) => {}
                    Err(e) => panic!("{e}"),
                }
            }
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        assert!(
            (8_000..20_000).contains(&best),
            "UDP 64B RTT {best} ns outside calibration band"
        );
    }

    #[test]
    fn drop_releases_binding() {
        let f = Fabric::new(TestbedProfile::local());
        let a = f.add_host("a");
        {
            let _s = SimUdpSocket::bind(&f, a, 1234).unwrap();
            assert!(f.is_bound(Endpoint {
                host: a,
                port: 1234
            }));
        }
        assert!(!f.is_bound(Endpoint {
            host: a,
            port: 1234
        }));
    }
}
