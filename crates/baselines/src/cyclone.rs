//! A Cyclone-DDS-like decentralized pub/sub node.
//!
//! What matters for the comparison (Fig. 9) is architecture, not feature
//! parity:
//!
//! 1. **RTPS framing + CDR serialization** — every message is really
//!    encoded into an RTPS-shaped envelope (header + DATA submessage +
//!    CDR encapsulation), and decoded on receive; the serialization work
//!    is charged per byte on top of the real encode/decode code.
//! 2. **Blocking receiver-thread architecture** — deliveries cross a
//!    handoff between the transport thread and the application reader;
//!    the handoff cost (thread wake-up + queueing) is charged on the
//!    receive path with a deliberately wide jitter, reproducing the
//!    "higher variability" the paper observes.
//! 3. **Peer-wise unicast over UDP** — a decentralized DDS on these
//!    testbeds discovers peers and unicasts to each matched reader.

use parking_lot::Mutex;

use insane_fabric::devices::{RecvMode, SimUdpSocket};
use insane_fabric::time::{scale_ns, spin_for_ns, Jitter};
use insane_fabric::{Endpoint, Fabric, FabricError, HostId};

use crate::BaselineError;

const RTPS_MAGIC: &[u8; 4] = b"RTPS";
const RTPS_HEADER: usize = 20; // magic + version + vendor + GUID prefix
const DATA_SUBMSG: usize = 24; // submessage header + reader/writer ids + SN
const CDR_ENCAP: usize = 4;

/// Wire overhead CycloneLite adds to every payload.
pub const WIRE_OVERHEAD: usize = RTPS_HEADER + DATA_SUBMSG + CDR_ENCAP + 4; // + topic hash

/// A received DDS sample.
#[derive(Debug)]
pub struct Sample {
    /// Deserialized payload.
    pub payload: Vec<u8>,
    /// Topic hash the sample was published on.
    pub topic: u32,
    /// Writer sequence number.
    pub seq: u64,
}

/// A Cyclone-DDS-like node (participant + one writer/reader pair per
/// topic, collapsed into a single object for benchmark ergonomics).
#[derive(Debug)]
pub struct CycloneLite {
    socket: SimUdpSocket,
    peers: Vec<Endpoint>,
    seq: Mutex<u64>,
    /// Per-byte CDR serialization cost ×100 and fixed per-message DDS
    /// bookkeeping, charged on both ends (calibrated against Fig. 9a:
    /// Cyclone ≈ +45 % over Lunar slow, with visible variance).
    ser_ns_per_byte_x100: u64,
    per_msg_tx_ns: u64,
    per_msg_rx_ns: u64,
    jitter: Mutex<Jitter>,
}

impl CycloneLite {
    /// Creates a node on `host`:`port` that will unicast to `peers`.
    ///
    /// # Errors
    ///
    /// Propagates socket binding failures.
    pub fn new(
        fabric: &Fabric,
        host: HostId,
        port: u16,
        peers: Vec<Endpoint>,
    ) -> Result<Self, BaselineError> {
        let socket = SimUdpSocket::bind(fabric, host, port)?;
        socket.set_mtu(SimUdpSocket::JUMBO_MTU);
        let scale = fabric.profile().cpu_scale_pct;
        Ok(Self {
            socket,
            peers,
            seq: Mutex::new(0),
            ser_ns_per_byte_x100: scale_ns(9, scale),
            per_msg_tx_ns: scale_ns(1_150, scale),
            per_msg_rx_ns: scale_ns(2_450, scale),
            jitter: Mutex::new(Jitter::new(0xDD5, 0.18)),
        })
    }

    /// The node's address (hand it to other nodes as a peer).
    pub fn local_addr(&self) -> Endpoint {
        self.socket.local_addr()
    }

    fn charge(&self, ns: u64) {
        let jittered = self.jitter.lock().apply(ns);
        spin_for_ns(jittered);
    }

    /// Publishes `payload` on `topic` to every peer.
    ///
    /// # Errors
    ///
    /// Propagates device failures (unreachable peers are skipped, like
    /// unmatched readers).
    pub fn publish(&self, topic: u32, payload: &[u8]) -> Result<(), BaselineError> {
        let seq = {
            let mut s = self.seq.lock();
            *s += 1;
            *s
        };
        // Real RTPS-shaped encode.
        let mut msg = Vec::with_capacity(WIRE_OVERHEAD + payload.len());
        msg.extend_from_slice(RTPS_MAGIC);
        msg.extend_from_slice(&[2, 1, 0x01, 0x10]); // version + vendor
        msg.extend_from_slice(&[0u8; 12]); // GUID prefix
        msg.push(0x15); // DATA submessage id
        msg.push(0x05); // flags: little endian, data present
        msg.extend_from_slice(&0u16.to_le_bytes()); // octets-to-next (elided)
        msg.extend_from_slice(&[0u8; 4]); // extraFlags + octetsToInlineQos
        msg.extend_from_slice(&[0u8; 8]); // reader/writer entity ids
        msg.extend_from_slice(&seq.to_le_bytes());
        msg.extend_from_slice(&topic.to_le_bytes());
        msg.extend_from_slice(&[0x00, 0x01, 0, 0]); // CDR_LE encapsulation
        msg.extend_from_slice(payload);
        // Charged CDR serialization + writer bookkeeping.
        self.charge(self.per_msg_tx_ns + payload.len() as u64 * self.ser_ns_per_byte_x100 / 100);
        for peer in &self.peers {
            match self.socket.send_to(&msg, *peer) {
                Ok(()) | Err(FabricError::Unreachable(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Polls for the next sample; the receiver-thread handoff cost is
    /// charged when a sample is actually delivered.
    ///
    /// # Errors
    ///
    /// * [`BaselineError::WouldBlock`] when nothing arrived.
    /// * [`BaselineError::Malformed`] for non-RTPS bytes.
    pub fn poll(&self) -> Result<Sample, BaselineError> {
        let datagram = match self.socket.recv(RecvMode::NonBlocking) {
            Ok(d) => d,
            Err(FabricError::WouldBlock) => return Err(BaselineError::WouldBlock),
            Err(e) => return Err(e.into()),
        };
        let bytes = &datagram.payload;
        if bytes.len() < WIRE_OVERHEAD || &bytes[0..4] != RTPS_MAGIC {
            return Err(BaselineError::Malformed("not RTPS"));
        }
        let seq = u64::from_le_bytes(bytes[36..44].try_into().expect("8 bytes"));
        let topic = u32::from_le_bytes(bytes[44..48].try_into().expect("4 bytes"));
        let payload = bytes[WIRE_OVERHEAD..].to_vec();
        // Receiver-thread handoff + CDR deserialization.
        self.charge(self.per_msg_rx_ns + payload.len() as u64 * self.ser_ns_per_byte_x100 / 100);
        Ok(Sample {
            payload,
            topic,
            seq,
        })
    }

    /// Polls until a sample for `topic` arrives (samples for other topics
    /// are discarded, like an unmatched reader's).
    ///
    /// # Errors
    ///
    /// As [`CycloneLite::poll`], but never `WouldBlock`.
    pub fn poll_topic_busy(&self, topic: u32) -> Result<Sample, BaselineError> {
        loop {
            match self.poll() {
                Ok(sample) if sample.topic == topic => return Ok(sample),
                Ok(_) => continue,
                Err(BaselineError::WouldBlock) => core::hint::spin_loop(),
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insane_fabric::TestbedProfile;

    fn pair() -> (Fabric, CycloneLite, CycloneLite) {
        let fabric = Fabric::new(TestbedProfile::local());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let ea = Endpoint {
            host: a,
            port: 7400,
        };
        let eb = Endpoint {
            host: b,
            port: 7400,
        };
        let na = CycloneLite::new(&fabric, a, 7400, vec![eb]).unwrap();
        let nb = CycloneLite::new(&fabric, b, 7400, vec![ea]).unwrap();
        (fabric, na, nb)
    }

    #[test]
    fn publish_delivers_rtps_framed_samples() {
        let (_f, na, nb) = pair();
        na.publish(0xFEED, b"dds sample").unwrap();
        let sample = nb.poll_topic_busy(0xFEED).unwrap();
        assert_eq!(sample.payload, b"dds sample");
        assert_eq!(sample.seq, 1);
    }

    #[test]
    fn sequence_numbers_increase() {
        let (_f, na, nb) = pair();
        for _ in 0..3 {
            na.publish(1, b"x").unwrap();
        }
        let seqs: Vec<u64> = (0..3).map(|_| nb.poll_topic_busy(1).unwrap().seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn other_topics_are_filtered() {
        let (_f, na, nb) = pair();
        na.publish(111, b"noise").unwrap();
        na.publish(222, b"signal").unwrap();
        let sample = nb.poll_topic_busy(222).unwrap();
        assert_eq!(sample.payload, b"signal");
    }

    #[test]
    fn empty_poll_would_block() {
        let (_f, _na, nb) = pair();
        assert!(matches!(nb.poll(), Err(BaselineError::WouldBlock)));
    }

    #[test]
    fn cyclone_is_slower_than_a_raw_socket() {
        use std::time::Instant;
        // One-way publish+poll must cost visibly more than a raw UDP
        // send+recv of the same payload (the DDS overheads are charged).
        let (_f, na, nb) = pair();
        let mut cyclone = u64::MAX;
        for _ in 0..20 {
            let t0 = Instant::now();
            na.publish(5, &[1u8; 64]).unwrap();
            nb.poll_topic_busy(5).unwrap();
            cyclone = cyclone.min(t0.elapsed().as_nanos() as u64);
        }

        let fabric = Fabric::new(TestbedProfile::local());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let sa = SimUdpSocket::bind(&fabric, a, 1).unwrap();
        let sb = SimUdpSocket::bind(&fabric, b, 1).unwrap();
        let mut raw = u64::MAX;
        for _ in 0..20 {
            let t0 = Instant::now();
            sa.send_to(&[1u8; 64], sb.local_addr()).unwrap();
            loop {
                match sb.recv(RecvMode::NonBlocking) {
                    Ok(_) => break,
                    Err(FabricError::WouldBlock) => {}
                    Err(e) => panic!("{e}"),
                }
            }
            raw = raw.min(t0.elapsed().as_nanos() as u64);
        }
        assert!(
            cyclone > raw + 2_000,
            "cyclone {cyclone} ns must exceed raw {raw} ns by the DDS overhead"
        );
    }
}
