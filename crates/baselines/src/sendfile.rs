//! `sendfile(2)`-based frame streaming — the baseline of Fig. 11.
//!
//! The paper compares Lunar Streaming against an implementation that
//! ships each frame with `sendfile`, which "sends data directly from a
//! file descriptor loaded into the kernel without involving user space":
//! a *sender-side* zero-copy.  The receive side is an ordinary socket
//! reader, paying the usual kernel RX costs — which is precisely where
//! Lunar's end-to-end zero-copy wins.
//!
//! Frames larger than the MTU are split into jumbo datagrams with a
//! 16-byte chunk header and reassembled with the shared
//! [`insane_netstack::fragment::Reassembler`].

use parking_lot::Mutex;

use insane_fabric::devices::{RecvMode, SimUdpSocket};
use insane_fabric::{Endpoint, Fabric, FabricError, HostId};
use insane_netstack::fragment::{plan, MessageKey, Reassembler};

use crate::BaselineError;

/// Chunk header: frame id (u64) + index (u16) + count (u16) + total (u32).
const CHUNK_HEADER: usize = 16;

/// Streams frames over the kernel's sender-side zero-copy path.
#[derive(Debug)]
pub struct SendfileStreamer {
    socket: SimUdpSocket,
    next_frame: u64,
    chunk_payload: usize,
}

impl SendfileStreamer {
    /// Opens the streaming socket on `host`:`port` (jumbo frames on, as
    /// in the paper's big-payload experiments).
    ///
    /// # Errors
    ///
    /// Propagates binding failures.
    pub fn open(fabric: &Fabric, host: HostId, port: u16) -> Result<Self, BaselineError> {
        let socket = SimUdpSocket::bind(fabric, host, port)?;
        socket.set_mtu(SimUdpSocket::JUMBO_MTU);
        Ok(Self {
            socket,
            next_frame: 0,
            chunk_payload: SimUdpSocket::JUMBO_MTU - CHUNK_HEADER,
        })
    }

    /// Sends one frame to `dst`; returns its frame id.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    pub fn send_frame(&mut self, frame: &[u8], dst: Endpoint) -> Result<u64, BaselineError> {
        self.send_frame_with(frame, dst, || {})
    }

    /// As [`SendfileStreamer::send_frame`], invoking `progress` after
    /// every chunk — single-threaded drivers drain the receiver there so
    /// large frames do not overrun its socket buffer.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    pub fn send_frame_with(
        &mut self,
        frame: &[u8],
        dst: Endpoint,
        mut progress: impl FnMut(),
    ) -> Result<u64, BaselineError> {
        let frame_id = self.next_frame;
        self.next_frame += 1;
        let chunks = plan(frame.len(), self.chunk_payload)
            .map_err(|_| BaselineError::Malformed("frame too large"))?;
        let mut datagram = vec![0u8; CHUNK_HEADER + self.chunk_payload];
        for chunk in chunks {
            datagram[0..8].copy_from_slice(&frame_id.to_le_bytes());
            datagram[8..10].copy_from_slice(&chunk.index.to_le_bytes());
            datagram[10..12].copy_from_slice(&chunk.count.to_le_bytes());
            datagram[12..16].copy_from_slice(&(frame.len() as u32).to_le_bytes());
            datagram[CHUNK_HEADER..CHUNK_HEADER + chunk.len]
                .copy_from_slice(&frame[chunk.offset..chunk.offset + chunk.len]);
            // sendfile: no userspace copy is charged for the payload.
            match self
                .socket
                .sendfile_to(&datagram[..CHUNK_HEADER + chunk.len], dst)
            {
                Ok(()) | Err(FabricError::Unreachable(_)) => {}
                Err(e) => return Err(e.into()),
            }
            progress();
        }
        Ok(frame_id)
    }

    /// The socket's address.
    pub fn local_addr(&self) -> Endpoint {
        self.socket.local_addr()
    }
}

/// Receives and reassembles sendfile-streamed frames.
#[derive(Debug)]
pub struct SendfileReceiver {
    socket: SimUdpSocket,
    reassembler: Mutex<Reassembler>,
}

impl SendfileReceiver {
    /// Opens the receiving socket.
    ///
    /// # Errors
    ///
    /// Propagates binding failures.
    pub fn open(fabric: &Fabric, host: HostId, port: u16) -> Result<Self, BaselineError> {
        let socket = SimUdpSocket::bind(fabric, host, port)?;
        socket.set_mtu(SimUdpSocket::JUMBO_MTU);
        Ok(Self {
            socket,
            reassembler: Mutex::new(Reassembler::new(16)),
        })
    }

    /// The socket's address (the streamer's destination).
    pub fn local_addr(&self) -> Endpoint {
        self.socket.local_addr()
    }

    /// Drains queued datagrams; returns frames completed by them as
    /// `(frame_id, bytes)`.
    ///
    /// # Errors
    ///
    /// [`BaselineError::Malformed`] on chunk-header violations.
    pub fn poll_frames(&self) -> Result<Vec<(u64, Vec<u8>)>, BaselineError> {
        let mut done = Vec::new();
        loop {
            let datagram = match self.socket.recv(RecvMode::NonBlocking) {
                Ok(d) => d,
                Err(FabricError::WouldBlock) => break,
                Err(e) => return Err(e.into()),
            };
            let bytes = &datagram.payload;
            if bytes.len() < CHUNK_HEADER {
                return Err(BaselineError::Malformed("short chunk"));
            }
            let frame_id = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
            let index = u16::from_le_bytes(bytes[8..10].try_into().expect("2 bytes"));
            let count = u16::from_le_bytes(bytes[10..12].try_into().expect("2 bytes"));
            let total = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
            let data = &bytes[CHUNK_HEADER..];
            let offset = if index + 1 == count {
                total - data.len()
            } else {
                index as usize * data.len()
            };
            let key = MessageKey {
                src_runtime: 0,
                channel: 0,
                seq: frame_id,
            };
            let complete = self
                .reassembler
                .lock()
                .offer(key, index, count, total, offset, data)
                .map_err(|_| BaselineError::Malformed("fragment mismatch"))?;
            if let Some(frame) = complete {
                done.push((frame_id, frame));
            }
        }
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insane_fabric::TestbedProfile;

    fn pair() -> (Fabric, SendfileStreamer, SendfileReceiver) {
        let fabric = Fabric::new(TestbedProfile::local());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let tx = SendfileStreamer::open(&fabric, a, 6000).unwrap();
        let rx = SendfileReceiver::open(&fabric, b, 6000).unwrap();
        (fabric, tx, rx)
    }

    fn drain(rx: &SendfileReceiver, expect: usize) -> Vec<(u64, Vec<u8>)> {
        let mut got = Vec::new();
        for _ in 0..1_000_000 {
            got.extend(rx.poll_frames().unwrap());
            if got.len() >= expect {
                break;
            }
            core::hint::spin_loop();
        }
        got
    }

    #[test]
    fn small_frame_single_chunk() {
        let (_f, mut tx, rx) = pair();
        let id = tx.send_frame(b"one chunk", rx.local_addr()).unwrap();
        let got = drain(&rx, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, id);
        assert_eq!(got[0].1, b"one chunk");
    }

    #[test]
    fn multi_chunk_frame_reassembles_exactly() {
        let (_f, mut tx, rx) = pair();
        let frame: Vec<u8> = (0..100_000usize).map(|i| (i % 251) as u8).collect();
        tx.send_frame(&frame, rx.local_addr()).unwrap();
        let got = drain(&rx, 1);
        assert_eq!(got[0].1, frame);
    }

    #[test]
    fn interleaved_frames_keep_their_ids() {
        let (_f, mut tx, rx) = pair();
        for i in 0..3u8 {
            tx.send_frame(&vec![i; 20_000], rx.local_addr()).unwrap();
        }
        let got = drain(&rx, 3);
        assert_eq!(got.len(), 3);
        for (id, frame) in got {
            assert_eq!(frame, vec![id as u8; 20_000]);
        }
    }

    #[test]
    fn sendfile_tx_is_cheaper_than_copying_send() {
        use std::time::Instant;
        // Same payload, same socket type: the sendfile path must spend
        // measurably less sender CPU than the copying path.
        let fabric = Fabric::new(TestbedProfile::local());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let s = SimUdpSocket::bind(&fabric, a, 1).unwrap();
        s.set_mtu(SimUdpSocket::JUMBO_MTU);
        let _sink = fabric.bind(Endpoint { host: b, port: 1 }).unwrap();
        let payload = vec![0u8; 8192];
        let dst = Endpoint { host: b, port: 1 };
        let mut copy_ns = u64::MAX;
        let mut zc_ns = u64::MAX;
        for _ in 0..20 {
            let t0 = Instant::now();
            s.send_to(&payload, dst).unwrap();
            copy_ns = copy_ns.min(t0.elapsed().as_nanos() as u64);
            let t1 = Instant::now();
            s.sendfile_to(&payload, dst).unwrap();
            zc_ns = zc_ns.min(t1.elapsed().as_nanos() as u64);
        }
        assert!(
            zc_ns + 200 < copy_ns,
            "sendfile {zc_ns} ns should beat copying send {copy_ns} ns"
        );
    }
}
