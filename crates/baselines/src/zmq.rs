//! A ZeroMQ-like pub/sub node.
//!
//! ZeroMQ routes every message through an internal I/O thread: the
//! application thread enqueues onto the socket's pipe, the I/O thread
//! dequeues, frames and writes to the transport — and symmetrically on
//! receive.  Those two extra hops, plus multipart envelope framing
//! (topic frame + payload frame) and the associated copies, are why the
//! paper measures ZeroMQ's UDP transport ≈20 µs above Cyclone (Fig. 9a)
//! and calls its throughput unstable.
//!
//! The hops are reproduced as real bounded queues crossed by the message
//! bytes (real copies), with the scheduling cost of the I/O-thread
//! round-trip charged on top with a wide jitter.

use std::collections::VecDeque;

use parking_lot::Mutex;

use insane_fabric::devices::{RecvMode, SimUdpSocket};
use insane_fabric::time::{scale_ns, spin_for_ns, Jitter};
use insane_fabric::{Endpoint, Fabric, FabricError, HostId};

use crate::BaselineError;

/// A received ZeroMQ message (already past the subscription filter).
#[derive(Debug)]
pub struct ZmqMessage {
    /// Topic frame bytes.
    pub topic: Vec<u8>,
    /// Payload frame bytes.
    pub payload: Vec<u8>,
}

/// A ZeroMQ-like PUB/SUB node over the UDP transport.
#[derive(Debug)]
pub struct ZmqLite {
    socket: SimUdpSocket,
    peers: Vec<Endpoint>,
    subscriptions: Mutex<Vec<Vec<u8>>>,
    /// The socket pipe toward the I/O thread (outgoing) — a real queue
    /// the message bytes cross.
    out_pipe: Mutex<VecDeque<Vec<u8>>>,
    /// The pipe back from the I/O thread (incoming).
    in_pipe: Mutex<VecDeque<Vec<u8>>>,
    io_hop_ns: u64,
    jitter: Mutex<Jitter>,
}

impl ZmqLite {
    /// Creates a node on `host`:`port` publishing to `peers`.
    ///
    /// # Errors
    ///
    /// Propagates socket binding failures.
    pub fn new(
        fabric: &Fabric,
        host: HostId,
        port: u16,
        peers: Vec<Endpoint>,
    ) -> Result<Self, BaselineError> {
        let socket = SimUdpSocket::bind(fabric, host, port)?;
        socket.set_mtu(SimUdpSocket::JUMBO_MTU);
        let scale = fabric.profile().cpu_scale_pct;
        Ok(Self {
            socket,
            peers,
            subscriptions: Mutex::new(Vec::new()),
            out_pipe: Mutex::new(VecDeque::new()),
            in_pipe: Mutex::new(VecDeque::new()),
            // One application↔I/O-thread crossing; charged once per
            // pipe hop (two per direction of a message).  Calibrated to
            // Fig. 9a's ≈+20 µs over Cyclone.
            io_hop_ns: scale_ns(5_200, scale),
            jitter: Mutex::new(Jitter::new(0x2290, 0.25)),
        })
    }

    /// The node's address.
    pub fn local_addr(&self) -> Endpoint {
        self.socket.local_addr()
    }

    fn charge_hop(&self) {
        let ns = self.jitter.lock().apply(self.io_hop_ns);
        spin_for_ns(ns);
    }

    /// Subscribes to a topic prefix (ZeroMQ prefix matching).
    pub fn subscribe(&self, prefix: &[u8]) {
        self.subscriptions.lock().push(prefix.to_vec());
    }

    /// Publishes a two-frame message (`topic`, `payload`).
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    pub fn publish(&self, topic: &[u8], payload: &[u8]) -> Result<(), BaselineError> {
        // Envelope framing: [topic_len u16][topic][payload] — one copy
        // into the pipe message, like zmq_msg assembly.
        let mut framed = Vec::with_capacity(2 + topic.len() + payload.len());
        framed.extend_from_slice(&(topic.len() as u16).to_le_bytes());
        framed.extend_from_slice(topic);
        framed.extend_from_slice(payload);
        self.out_pipe.lock().push_back(framed);
        // Application → I/O-thread hop.
        self.charge_hop();
        self.drive_io_tx()?;
        Ok(())
    }

    /// The I/O-thread's TX half: drains the outgoing pipe to the wire.
    fn drive_io_tx(&self) -> Result<(), BaselineError> {
        loop {
            let Some(framed) = self.out_pipe.lock().pop_front() else {
                return Ok(());
            };
            for peer in &self.peers {
                match self.socket.send_to(&framed, *peer) {
                    Ok(()) | Err(FabricError::Unreachable(_)) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
    }

    /// The I/O-thread's RX half: moves datagrams from the wire into the
    /// incoming pipe.  Returns how many messages were moved.
    pub fn drive_io_rx(&self) -> usize {
        let mut moved = 0;
        while let Ok(datagram) = self.socket.recv(RecvMode::NonBlocking) {
            self.in_pipe.lock().push_back(datagram.payload);
            moved += 1;
        }
        moved
    }

    /// Receives the next message matching a subscription.
    ///
    /// # Errors
    ///
    /// * [`BaselineError::WouldBlock`] when nothing matches.
    /// * [`BaselineError::Malformed`] on framing violations.
    pub fn poll(&self) -> Result<ZmqMessage, BaselineError> {
        self.drive_io_rx();
        loop {
            let Some(framed) = self.in_pipe.lock().pop_front() else {
                return Err(BaselineError::WouldBlock);
            };
            if framed.len() < 2 {
                return Err(BaselineError::Malformed("short envelope"));
            }
            let topic_len = u16::from_le_bytes([framed[0], framed[1]]) as usize;
            if framed.len() < 2 + topic_len {
                return Err(BaselineError::Malformed("truncated topic frame"));
            }
            let topic = framed[2..2 + topic_len].to_vec();
            let matched = {
                let subs = self.subscriptions.lock();
                subs.iter().any(|p| topic.starts_with(p))
            };
            if !matched {
                continue; // filtered out, like an unsubscribed topic
            }
            // I/O-thread → application hop (second copy out of the pipe).
            self.charge_hop();
            let payload = framed[2 + topic_len..].to_vec();
            return Ok(ZmqMessage { topic, payload });
        }
    }

    /// Busy-polls until a matching message arrives.
    ///
    /// # Errors
    ///
    /// As [`ZmqLite::poll`], but never `WouldBlock`.
    pub fn poll_busy(&self) -> Result<ZmqMessage, BaselineError> {
        loop {
            match self.poll() {
                Ok(m) => return Ok(m),
                Err(BaselineError::WouldBlock) => core::hint::spin_loop(),
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insane_fabric::TestbedProfile;

    fn pair() -> (Fabric, ZmqLite, ZmqLite) {
        let fabric = Fabric::new(TestbedProfile::local());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let ea = Endpoint {
            host: a,
            port: 5555,
        };
        let eb = Endpoint {
            host: b,
            port: 5555,
        };
        let na = ZmqLite::new(&fabric, a, 5555, vec![eb]).unwrap();
        let nb = ZmqLite::new(&fabric, b, 5555, vec![ea]).unwrap();
        (fabric, na, nb)
    }

    #[test]
    fn pub_sub_roundtrip_with_prefix_filter() {
        let (_f, na, nb) = pair();
        nb.subscribe(b"sensors/");
        na.publish(b"sensors/temp", b"23.4").unwrap();
        let msg = nb.poll_busy().unwrap();
        assert_eq!(msg.topic, b"sensors/temp");
        assert_eq!(msg.payload, b"23.4");
    }

    #[test]
    fn unmatched_topics_are_dropped() {
        let (_f, na, nb) = pair();
        nb.subscribe(b"only/this");
        na.publish(b"other/topic", b"x").unwrap();
        na.publish(b"only/this/one", b"y").unwrap();
        let msg = nb.poll_busy().unwrap();
        assert_eq!(msg.payload, b"y");
        assert!(matches!(nb.poll(), Err(BaselineError::WouldBlock)));
    }

    #[test]
    fn empty_subscription_list_receives_nothing() {
        let (_f, na, nb) = pair();
        na.publish(b"t", b"x").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(matches!(nb.poll(), Err(BaselineError::WouldBlock)));
    }

    #[test]
    fn zmq_is_slower_than_cyclone() {
        use crate::cyclone::CycloneLite;
        use std::time::Instant;
        let (_f, za, zb) = pair();
        zb.subscribe(b"t");
        let mut zmq = u64::MAX;
        for _ in 0..10 {
            let t0 = Instant::now();
            za.publish(b"t", &[1u8; 64]).unwrap();
            zb.poll_busy().unwrap();
            zmq = zmq.min(t0.elapsed().as_nanos() as u64);
        }
        let fabric = Fabric::new(TestbedProfile::local());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let eb = Endpoint {
            host: b,
            port: 7400,
        };
        let ca = CycloneLite::new(&fabric, a, 7400, vec![eb]).unwrap();
        let cb = CycloneLite::new(&fabric, b, 7400, vec![]).unwrap();
        let mut cyclone = u64::MAX;
        for _ in 0..10 {
            let t0 = Instant::now();
            ca.publish(1, &[1u8; 64]).unwrap();
            cb.poll_topic_busy(1).unwrap();
            cyclone = cyclone.min(t0.elapsed().as_nanos() as u64);
        }
        assert!(
            zmq > cyclone + 5_000,
            "zmq one-way {zmq} ns must clearly exceed cyclone {cyclone} ns"
        );
    }
}
