//! Reference systems for the INSANE evaluation (§6–7).
//!
//! The paper compares INSANE and the Lunar applications against widely
//! deployed systems.  This crate provides behavioral stand-ins that
//! reproduce the *architectural* properties the paper credits for each
//! system's performance:
//!
//! * [`cyclone::CycloneLite`] — a Cyclone-DDS-like decentralized pub/sub
//!   node: RTPS-framed messages with CDR serialization over UDP, and a
//!   blocking-receive internal architecture (the paper observes Cyclone's
//!   latency "comparable to systems that use blocking sockets in their
//!   receiver thread, although with higher variability").
//! * [`zmq::ZmqLite`] — a ZeroMQ-like pub/sub node: topic-envelope
//!   framing and an internal I/O thread that every message crosses twice,
//!   the reason the paper measures ≈+20 µs over Cyclone.
//! * [`sendfile::SendfileStreamer`] — frame streaming over the kernel's
//!   `sendfile(2)` sender-side zero-copy path, the baseline of Fig. 11.
//!
//! The raw UDP-socket ping-pong applications of Fig. 7 (blocking and
//! non-blocking) are plain uses of
//! [`insane_fabric::devices::SimUdpSocket`] and live in the benchmark
//! harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cyclone;
pub mod sendfile;
pub mod zmq;

pub use cyclone::CycloneLite;
pub use sendfile::{SendfileReceiver, SendfileStreamer};
pub use zmq::ZmqLite;

use core::fmt;

/// Errors from the baseline systems.
#[derive(Debug)]
pub enum BaselineError {
    /// Underlying simulated device failure.
    Fabric(insane_fabric::FabricError),
    /// Received bytes that do not parse as the system's wire format.
    Malformed(&'static str),
    /// Non-blocking receive found nothing.
    WouldBlock,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Fabric(e) => write!(f, "device error: {e}"),
            BaselineError::Malformed(what) => write!(f, "malformed message: {what}"),
            BaselineError::WouldBlock => write!(f, "no message available"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Fabric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<insane_fabric::FabricError> for BaselineError {
    fn from(e: insane_fabric::FabricError) -> Self {
        BaselineError::Fabric(e)
    }
}
